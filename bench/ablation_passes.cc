/**
 * @file
 * Ablation: contribution of each NoMap stage, measured on the paper's
 * own Figure 4 worked example (the obj.values/obj.sum accumulation
 * loop) and on a bounds-heavy kernel. Shows the per-stage deltas the
 * Table II architecture ladder implies:
 *   Base -> NoMap_S (SMP->abort + conventional opts)
 *        -> NoMap_B (+ bounds combining, Figure 6)
 *        -> NoMap   (+ SOF overflow removal, Figure 7)
 *        -> NoMap_BC (all checks gone; unrealistic bound)
 */

#include <cstdio>

#include "engine/engine.h"
#include "harness.h"
#include "support/statistics.h"

using namespace nomap;

namespace {

const char *kSumLoop = R"JS(
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) {
        var value = obj.values[idx];
        obj.sum += value;
    }
    return obj.sum;
}
var o = {values: [], sum: 0};
for (var i = 0; i < 500; i++) o.values[i] = i % 7;
var total = 0;
for (var r = 0; r < 150; r++) { o.sum = 0; total = sumInto(o); }
result = total;
)JS";

const char *kBoundsHeavy = R"JS(
function gather(src, idxs, dst) {
    var n = dst.length;
    for (var i = 0; i < n; i++) {
        dst[i] = src[i] + idxs[i];
    }
    return dst[n - 1];
}
var src = []; var idxs = []; var dst = [];
for (var i = 0; i < 600; i++) {
    src[i] = i & 255; idxs[i] = (i * 3) & 127; dst[i] = 0;
}
var out = 0;
for (var r = 0; r < 150; r++) out = gather(src, idxs, dst);
result = out;
)JS";

void
report(const char *title, const char *source)
{
    std::printf("Ablation (%s)\n\n", title);
    const Architecture archs[] = {
        Architecture::Base, Architecture::NoMapS, Architecture::NoMapB,
        Architecture::NoMap, Architecture::NoMapBC};

    TextTable table;
    table.header({"Arch", "instr(norm)", "cycles(norm)", "checks",
                  "bounds", "overflow", "hoisted", "sunk",
                  "combined", "SOF-elided"});
    double base_instr = 0, base_cycles = 0;
    for (Architecture arch : archs) {
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EngineResult r = engine.run(source);
        if (arch == Architecture::Base) {
            base_instr =
                static_cast<double>(r.stats.totalInstructions());
            base_cycles = r.stats.totalCycles();
        }
        const FunctionState *state =
            engine.functionState(title[0] == 's' ? "sumInto"
                                                 : "gather");
        const PassStats *ps =
            state && state->ftl ? &state->ftl->passStats : nullptr;
        table.row({architectureName(arch),
                   fmtDouble(r.stats.totalInstructions() / base_instr,
                             3),
                   fmtDouble(r.stats.totalCycles() / base_cycles, 3),
                   std::to_string(r.stats.totalChecks()),
                   std::to_string(
                       r.stats.checksOf(CheckKind::Bounds)),
                   std::to_string(
                       r.stats.checksOf(CheckKind::Overflow)),
                   ps ? std::to_string(ps->opsHoisted) : "-",
                   ps ? std::to_string(ps->storesSunk) : "-",
                   ps ? std::to_string(ps->boundsChecksCombined) : "-",
                   ps ? std::to_string(ps->overflowChecksRemoved)
                      : "-"});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    report("sum-loop (paper Figure 4 example)", kSumLoop);
    if (!bench::quickMode())
        report("gather (bounds-check heavy)", kBoundsHeavy);
    return 0;
}
