/**
 * @file
 * Ablation: NoMap's transaction-scope selection (paper Section V-C).
 * Sweeps the write-set size of a streaming kernel across the RTM and
 * ROT capacity boundaries and reports what the planner chose (whole
 * nest / innermost / tiled) and what the HTM observed (commits,
 * capacity aborts, recompilations).
 */

#include <cstdio>

#include "engine/engine.h"
#include "harness.h"
#include "support/logging.h"
#include "support/statistics.h"

using namespace nomap;

namespace {

std::string
streamKernel(int elems)
{
    return strprintf(R"JS(
function fill(dst, bias) {
    var n = dst.length;
    for (var i = 0; i < n; i++) {
        dst[i] = (i + bias) & 1023;
    }
    return dst[n - 1];
}
var dst = [];
for (var i = 0; i < %d; i++) dst[i] = 0;
var out = 0;
for (var r = 0; r < 80; r++) out = fill(dst, r);
result = out;
)JS", elems);
}

void
sweep(Architecture arch)
{
    std::printf("Transaction scope sweep under %s (write capacity "
                "%s)\n\n", architectureName(arch),
                arch == Architecture::NoMapRTM ? "32KB L1D"
                                               : "256KB L2");
    TextTable table;
    table.header({"array KB", "commits", "cap aborts", "tiled loops",
                  "recompiles", "avg WF KB", "instr vs Base"});
    for (int kb : {4, 16, 32, 64, 128, 256, 384}) {
        int elems = kb * 1024 / 8;
        std::string src = streamKernel(elems);

        EngineConfig base_config;
        base_config.arch = Architecture::Base;
        Engine base_engine(base_config);
        double base_instr = static_cast<double>(
            base_engine.run(src).stats.totalInstructions());

        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EngineResult r = engine.run(src);
        const FunctionState *state = engine.functionState("fill");
        uint32_t tiled = state && state->ftl
                             ? state->ftl->planResult.tiledLoops
                             : 0;
        table.row({std::to_string(kb),
                   std::to_string(r.stats.txCommits),
                   std::to_string(r.stats.txAbortsCapacity),
                   std::to_string(tiled),
                   std::to_string(r.stats.ftlRecompiles),
                   fmtDouble(r.stats.avgWriteFootprintBytes / 1024.0,
                             1),
                   fmtDouble(r.stats.totalInstructions() / base_instr,
                             3)});
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    sweep(Architecture::NoMap);
    if (!bench::quickMode())
        sweep(Architecture::NoMapRTM);
    std::printf("Expected shape: transactions fit easily under ROT "
                "until the write set approaches 256KB, where the "
                "planner tiles; under RTM the boundary is 32KB, so "
                "most sizes run tiled or detransactionalized — the "
                "paper's explanation for Kraken's flat RTM bars.\n");
    return 0;
}
