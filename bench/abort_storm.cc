/**
 * @file
 * Adversarial abort-storm workload: static vs adaptive planning (not
 * a paper artifact — the evaluation harness for the adaptive
 * controller, src/nomap/adaptive.{h,cc}).
 *
 * The storm program's hot loop writes a 16384-element array: ~128 KB
 * of contiguous write footprint, comfortably inside the nominal
 * 256 KB 8-way ROT write capacity. The bench then arms `htm.ways@1`
 * (src/inject/), squeezing the write set to one way — 32 KB — so
 * every nominal-geometry transaction capacity-aborts around line 512.
 *
 *  - **Static NoMap** escalates blindly: nest -> innermost -> tiled
 *    (with tiles sized from the *nominal* capacity, which still
 *    overflow the squeezed hardware) -> level 3, no transactions. It
 *    ends the run committing nothing and paying full price for every
 *    formerly-converted check.
 *
 *  - **--adaptive NoMap** reads the abort telemetry: the smallest
 *    footprint observed at a capacity abort (~32 KB) *is* the
 *    squeezed capacity, so the controller re-plans at the tiled
 *    scope with a learned ~16 KB budget whose tiles fit one-way
 *    hardware — and keeps committing, checks converted.
 *
 * Emits BENCH_adaptive.json (static-vs-adaptive commit rate and
 * guest cycles) into the working directory. `--report` additionally
 * prints the trace-layer abort-attribution report before/after
 * adaptation plus the controller's own summary. `--quick` clips the
 * rounds for the CTest smoke run.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "harness.h"
#include "trace/trace.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

/** The storm: one hot function, ~2048 contiguous written lines. */
std::string
stormProgram(int rounds)
{
    std::string src = R"JS(
var N = 16384;
var A = [];
for (var i = 0; i < N; i++) A[i] = i % 17;
function storm(a, n) {
    var s = 0;
    for (var j = 0; j < n; j++) {
        a[j] = (a[j] + j) % 1021;
        s = (s + a[j]) % 65536;
    }
    return s;
}
var out = 0;
for (var r = 0; r < )JS";
    src += std::to_string(rounds);
    src += R"JS(; r++) out = (out + storm(A, N)) % 65536;
result = out;
)JS";
    return src;
}

struct StormRun {
    std::string resultString;
    ExecutionStats stats;
    uint64_t begins = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    double commitRate = 0.0; ///< commits / begins (0 when no begins).
    std::string attributionBefore; ///< Abort sites, pre-adaptation.
    std::string attributionAfter;  ///< Abort sites, post-adaptation.
    std::string controllerReport;
};

StormRun
runStorm(bool adaptive, const std::string &src, const FaultPlan *plan,
         bool want_reports)
{
    EngineConfig config;
    config.arch = Architecture::NoMap;
    config.adaptive = adaptive;
    if (want_reports)
        config.traceCapacity = 1 << 16;
    Engine engine(config);
    engine.armFaultPlan(plan);
    EngineResult r = engine.run(src);

    StormRun run;
    run.resultString = r.resultString;
    run.stats = r.stats;
    const HtmStats &hs = engine.htm().stats();
    run.begins = hs.begins;
    run.commits = hs.commits;
    run.aborts = hs.aborts;
    run.commitRate = hs.begins
                         ? static_cast<double>(hs.commits) /
                               static_cast<double>(hs.begins)
                         : 0.0;

    if (want_reports && engine.trace()) {
        // Split the event stream at the last adaptive revision so the
        // attribution report shows the storm before the controller
        // reacted vs the (ideally quiet) tail after it.
        std::vector<TraceEvent> events = engine.trace()->drain();
        uint64_t split = 0;
        for (const TraceEvent &e : events) {
            if (e.type == TraceEventType::PassReport &&
                e.aux == static_cast<uint16_t>(TracePassId::Adaptive)) {
                split = e.vcycles;
            }
        }
        std::vector<TraceEvent> before, after;
        for (const TraceEvent &e : events)
            (e.vcycles <= split ? before : after).push_back(e);
        auto resolver = [&engine](uint32_t id) {
            return engine.functionName(id);
        };
        run.attributionBefore =
            abortAttributionReport(before, 5, resolver);
        run.attributionAfter =
            abortAttributionReport(after, 5, resolver);
    }
    if (engine.adaptive())
        run.controllerReport = engine.adaptive()->report();
    return run;
}

void
printRun(const char *label, const StormRun &run)
{
    std::printf("%-10s result=%s commits=%llu aborts=%llu "
                "begins=%llu commit-rate=%.3f guest-cycles=%llu\n",
                label, run.resultString.c_str(),
                static_cast<unsigned long long>(run.commits),
                static_cast<unsigned long long>(run.aborts),
                static_cast<unsigned long long>(run.begins),
                run.commitRate,
                static_cast<unsigned long long>(
                    run.stats.totalCycles()));
}

void
emitJsonRun(std::FILE *out, const char *key, const StormRun &run,
            bool last)
{
    std::fprintf(
        out,
        "  \"%s\": {\"result\": \"%s\", \"begins\": %llu, "
        "\"commits\": %llu, \"aborts\": %llu,\n"
        "    \"commit_rate\": %.6f, \"guest_cycles\": %llu, "
        "\"guest_instructions\": %llu}%s\n",
        key, run.resultString.c_str(),
        static_cast<unsigned long long>(run.begins),
        static_cast<unsigned long long>(run.commits),
        static_cast<unsigned long long>(run.aborts), run.commitRate,
        static_cast<unsigned long long>(run.stats.totalCycles()),
        static_cast<unsigned long long>(
            run.stats.totalInstructions()),
        last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    bool report = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--report") == 0)
            report = true;
    }

    const int rounds = quickMode() ? 60 : 200;
    const std::string src = stormProgram(rounds);
    FaultPlan squeeze = FaultPlan::parse("htm.ways@1");

    std::printf("Abort storm: %d rounds of a 16384-element write "
                "loop under htm.ways@1 (write set squeezed to one "
                "way, 32 KB)\n\n",
                rounds);

    StormRun s = runStorm(false, src, &squeeze, false);
    StormRun a = runStorm(true, src, &squeeze, report);
    printRun("static", s);
    printRun("adaptive", a);

    if (s.resultString != a.resultString) {
        std::fprintf(stderr,
                     "FAIL: static/adaptive results diverge "
                     "(%s vs %s)\n",
                     s.resultString.c_str(), a.resultString.c_str());
        return 1;
    }
    bool wins = a.commitRate > s.commitRate &&
                a.stats.totalCycles() < s.stats.totalCycles();
    std::printf("\nadaptive %s static (commit rate %.3f vs %.3f, "
                "guest cycles %llu vs %llu)\n",
                wins ? "beats" : "DOES NOT BEAT", a.commitRate,
                s.commitRate,
                static_cast<unsigned long long>(a.stats.totalCycles()),
                static_cast<unsigned long long>(
                    s.stats.totalCycles()));

    if (report) {
        std::printf("\n--- abort attribution before adaptation ---\n%s",
                    a.attributionBefore.c_str());
        std::printf("\n--- abort attribution after adaptation ---\n%s",
                    a.attributionAfter.c_str());
        std::printf("\n--- controller ---\n%s",
                    a.controllerReport.c_str());
    }

    const char *path = "BENCH_adaptive.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"schema_version\": 1,\n  \"quick\": %s,\n"
                 "  \"rounds\": %d,\n  \"fault_plan\": \"%s\",\n",
                 quickMode() ? "true" : "false", rounds,
                 squeeze.toString().c_str());
    emitJsonRun(out, "static", s, false);
    emitJsonRun(out, "adaptive", a, true);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);

    return wins ? 0 : 1;
}
