/**
 * @file
 * Characterization of the region template-compilation tier (src/jit/,
 * EngineConfig::jitTier) — not a paper artifact. Two parts:
 *
 *  1. Chain census: run the suites with the tier enabled and report
 *     what buildJitChain produced — how many FTL functions got a
 *     chain, how many records, how many of those are fused
 *     superinstructions (CmpBranch* / *IntChkOvf), and how many
 *     chains are tx-aware (contain transaction-boundary templates and
 *     therefore never fuse).
 *
 *  2. Host throughput: interleaved ftl-vs-jit passes (alternating
 *     pass for pass, same load epoch, like bench/wallclock) with the
 *     min-over-reps ns/instr of each and their ratio. Along the way
 *     every pass's guest-visible stats are compared against the ftl
 *     reference pass — the exhaustive bit-identity contract lives in
 *     tests/test_jit.cc; here a divergence aborts the process so the
 *     --quick smoke test fails loudly instead of reporting a speedup
 *     for an executor that changed guest behaviour.
 *
 * `--quick` clips the suites and repetition counts for the CTest
 * smoke run.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "harness.h"
#include "jit/jit_chain.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

bool
isFusedSpec(JitSpec spec)
{
    switch (spec) {
    case JitSpec::CmpBranchLt:
    case JitSpec::CmpBranchLe:
    case JitSpec::CmpBranchGt:
    case JitSpec::CmpBranchGe:
    case JitSpec::CmpBranchEq:
    case JitSpec::CmpBranchNe:
    case JitSpec::AddIntChkOvf:
    case JitSpec::SubIntChkOvf:
    case JitSpec::MulIntChkOvf:
        return true;
    default:
        return false;
    }
}

struct ChainCensus {
    size_t functions = 0;
    size_t chains = 0;
    size_t aware = 0;
    size_t records = 0;
    size_t fused = 0;
};

/**
 * Run every benchmark of @p suite with the jit tier enabled and
 * tally the chains the engine built for its FTL-hot functions.
 */
ChainCensus
censusSuite(const std::vector<BenchmarkSpec> &suite, Architecture arch)
{
    ChainCensus census;
    for (const BenchmarkSpec &spec : suite) {
        EngineConfig config;
        config.arch = arch;
        config.jitTier = true;
        Engine engine(config);
        engine.run(spec.source);
        const CompiledProgram *prog = engine.program();
        if (!prog)
            continue;
        for (const auto &fnp : prog->functions) {
            ++census.functions;
            const FunctionState *state =
                engine.functionState(fnp->name);
            if (!state || !state->jit)
                continue;
            ++census.chains;
            if (state->jit->aware)
                ++census.aware;
            for (const JitInstr &r : state->jit->records) {
                ++census.records;
                if (isFusedSpec(r.spec))
                    ++census.fused;
            }
        }
    }
    return census;
}

/** One timed pass; returns host ns per guest instruction. */
double
timedPass(const std::vector<BenchmarkSpec> &suite, Architecture arch,
          bool jit, uint64_t *instr_out, double *cycles_out)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> runs =
        runSuite(suite, arch, Tier::Ftl, 0, jit);
    auto end = std::chrono::steady_clock::now();
    uint64_t instr = 0;
    double cycles = 0.0;
    for (const RunResult &r : runs) {
        instr += r.stats.totalInstructions();
        cycles += r.stats.totalCycles();
    }
    *instr_out = instr;
    *cycles_out = cycles;
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start)
            .count());
    return ns / static_cast<double>(instr ? instr : 1);
}

struct TierPair {
    double ftlMin = 0.0;
    double jitMin = 0.0;
};

/**
 * Interleaved ftl/jit repetitions over one suite. Aborts if the jit
 * tier's guest-visible instruction or cycle totals ever diverge from
 * the ftl reference — that would invalidate the ratio (and the tier).
 */
TierPair
measure(const std::vector<BenchmarkSpec> &suite, Architecture arch,
        int reps, int warmups)
{
    uint64_t instr[2];
    double cycles[2];
    for (int w = 0; w < warmups; ++w) {
        timedPass(suite, arch, false, &instr[0], &cycles[0]);
        timedPass(suite, arch, true, &instr[1], &cycles[1]);
    }
    TierPair pair;
    for (int rep = 0; rep < reps; ++rep) {
        double ftl =
            timedPass(suite, arch, false, &instr[0], &cycles[0]);
        double jit =
            timedPass(suite, arch, true, &instr[1], &cycles[1]);
        if (instr[0] != instr[1] || cycles[0] != cycles[1]) {
            std::fprintf(stderr,
                         "FATAL: jit tier diverged from ftl "
                         "(instr %llu vs %llu, cycles %.17g vs "
                         "%.17g)\n",
                         static_cast<unsigned long long>(instr[0]),
                         static_cast<unsigned long long>(instr[1]),
                         cycles[0], cycles[1]);
            std::abort();
        }
        if (rep == 0 || ftl < pair.ftlMin)
            pair.ftlMin = ftl;
        if (rep == 0 || jit < pair.jitMin)
            pair.jitMin = jit;
    }
    return pair;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const int reps = quickMode() ? 3 : 7;
    const int warmups = warmupPasses();

    std::printf("Region template tier characterization "
                "(EngineConfig::jitTier)\n\n");

    TextTable census_table;
    census_table.header({"Suite", "Arch", "Functions", "Chains",
                         "Aware", "Records", "Fused", "Fused%"});
    TextTable speed_table;
    speed_table.header({"Suite", "Arch", "ftl min ns/i",
                        "jit min ns/i", "speedup(min)"});

    struct Workload {
        const char *name;
        std::vector<BenchmarkSpec> suite;
    };
    const Workload workloads[] = {
        {"sunspider", clipForQuick(sunspiderSuite())},
        {"kraken", clipForQuick(krakenSuite())},
    };
    for (const Workload &w : workloads) {
        for (Architecture arch :
             {Architecture::Base, Architecture::NoMap}) {
            ChainCensus census = censusSuite(w.suite, arch);
            double fused_pct =
                census.records
                    ? 100.0 * static_cast<double>(census.fused) /
                          static_cast<double>(census.records)
                    : 0.0;
            census_table.row(
                {w.name, architectureName(arch),
                 std::to_string(census.functions),
                 std::to_string(census.chains),
                 std::to_string(census.aware),
                 std::to_string(census.records),
                 std::to_string(census.fused),
                 fmtDouble(fused_pct, 1) + "%"});

            TierPair pair = measure(w.suite, arch, reps, warmups);
            speed_table.row({w.name, architectureName(arch),
                             fmtDouble(pair.ftlMin, 3),
                             fmtDouble(pair.jitMin, 3),
                             fmtDouble(pair.ftlMin / pair.jitMin,
                                       3)});
        }
    }

    std::printf("Chain census (jit tier enabled)\n%s\n",
                census_table.render().c_str());
    std::printf("Interleaved host throughput (min over %d reps, "
                "guest stats asserted identical)\n%s",
                reps, speed_table.render().c_str());
    return 0;
}
