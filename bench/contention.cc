/**
 * @file
 * Shared-heap contention characterization (not a paper artifact).
 *
 * Runs the stm/shared_heap.h session at K ∈ {1, 2, 4} lanes under
 * three workload shapes and reports the region outcome mix — commits,
 * conflict/capacity aborts, fallbacks — plus host throughput:
 *
 *   low          each lane increments a private object field; write
 *                sets are disjoint, so aborts should be rare
 *   medium       lanes alternate between their private field and one
 *                shared counter; moderate overlap
 *   adversarial  every region increments the same shared counter;
 *                every wall-clock-overlapping pair conflicts
 *
 * The final `expected` column cross-checks correctness: the shared
 * counter must equal the number of regions that incremented it no
 * matter how many aborts and fallbacks the run suffered.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "stm/shared_heap.h"

namespace nomap {
namespace bench {
namespace {

struct ContentionResult {
    LaneCounters totals;
    double wallMs = 0.0;
    bool correct = false;
};

enum class Workload { Low, Medium, Adversarial };

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::Low: return "low";
      case Workload::Medium: return "medium";
      case Workload::Adversarial: return "adversarial";
    }
    return "?";
}

/** Region source for one iteration of @p lane under @p w. */
std::string
regionSource(Workload w, uint32_t lane, int iter)
{
    // The private-counter regions deliberately do NOT assign the
    // `result` global: result lives on the same heap line as every
    // other global, so writing it from all lanes would make even the
    // "disjoint" workload all-conflict by construction.
    std::string priv = "p" + std::to_string(lane);
    switch (w) {
      case Workload::Low:
        return priv + ".v = " + priv + ".v + 1;";
      case Workload::Medium:
        if (iter % 2 == 0)
            return priv + ".v = " + priv + ".v + 1;";
        return "shared = shared + 1; result = shared;";
      case Workload::Adversarial:
        return "shared = shared + 1; result = shared;";
    }
    return "result = 0;";
}

/** Shared-counter increments lane @p lane contributes. */
uint64_t
sharedIncrements(Workload w, int iters)
{
    switch (w) {
      case Workload::Low: return 0;
      case Workload::Medium:
        return static_cast<uint64_t>(iters / 2);
      case Workload::Adversarial:
        return static_cast<uint64_t>(iters);
    }
    return 0;
}

ContentionResult
runContention(Workload w, uint32_t lanes, int iters_per_lane)
{
    SharedHeapConfig sc;
    sc.engine.arch = Architecture::NoMap;
    sc.lanes = lanes;
    SharedHeapSession session(sc);

    // Seed the shared counter and one private object per lane in a
    // setup region (not counted below). The private objects get a
    // full cache line of slots (8 x 8 bytes) so neighbouring lanes'
    // counters don't false-share lines — "low" should measure the
    // disjoint-write-set case, not allocator adjacency.
    std::string init = "var shared = 0;";
    for (uint32_t l = 0; l < lanes; ++l) {
        init += " var p" + std::to_string(l) +
                " = {v: 0, s1: 0, s2: 0, s3: 0, s4: 0, s5: 0, "
                "s6: 0, s7: 0};";
    }
    init += " result = 0;";
    session.run(0, init);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (uint32_t l = 0; l < lanes; ++l) {
        threads.emplace_back([&, l] {
            for (int i = 0; i < iters_per_lane; ++i)
                session.run(l, regionSource(w, l, i));
        });
    }
    for (std::thread &t : threads)
        t.join();
    auto t1 = std::chrono::steady_clock::now();

    uint64_t want_shared =
        lanes * sharedIncrements(w, iters_per_lane);
    RegionResult check = session.run(0, "result = shared;");
    bool correct =
        check.engine.resultString == std::to_string(want_shared);

    ContentionResult out;
    for (uint32_t l = 0; l < lanes; ++l) {
        LaneCounters c = session.laneCounters(l);
        out.totals.regions += c.regions;
        out.totals.retries += c.retries;
        out.totals.conflictAborts += c.conflictAborts;
        out.totals.capacityAborts += c.capacityAborts;
        out.totals.injectedAborts += c.injectedAborts;
        out.totals.fallbacks += c.fallbacks;
    }
    out.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                     .count();
    out.correct = correct;
    return out;
}

} // namespace
} // namespace bench
} // namespace nomap

int
main(int argc, char **argv)
{
    using namespace nomap;
    using namespace nomap::bench;

    initBench(argc, argv);
    const int iters = quickMode() ? 25 : 400;

    std::printf("Shared-heap contention (NoMap, %d regions/lane)\n\n",
                iters);
    std::printf("%-12s %3s %9s %9s %10s %10s %10s %9s %11s %8s\n",
                "workload", "K", "regions", "retries", "conflicts",
                "capacity", "fallbacks", "wall-ms", "regions/s",
                "check");

    for (Workload w :
         {Workload::Low, Workload::Medium, Workload::Adversarial}) {
        for (uint32_t lanes : {1u, 2u, 4u}) {
            ContentionResult r = runContention(w, lanes, iters);
            double secs = r.wallMs / 1000.0;
            double rate =
                secs > 0.0
                    ? static_cast<double>(r.totals.regions) / secs
                    : 0.0;
            std::printf("%-12s %3u %9llu %9llu %10llu %10llu %10llu "
                        "%9.2f %11.0f %8s\n",
                        workloadName(w), lanes,
                        static_cast<unsigned long long>(
                            r.totals.regions),
                        static_cast<unsigned long long>(
                            r.totals.retries),
                        static_cast<unsigned long long>(
                            r.totals.conflictAborts),
                        static_cast<unsigned long long>(
                            r.totals.capacityAborts),
                        static_cast<unsigned long long>(
                            r.totals.fallbacks),
                        r.wallMs, rate, r.correct ? "ok" : "MISMATCH");
            if (!r.correct)
                return 1;
        }
        std::printf("\n");
    }
    return 0;
}
