/**
 * @file
 * Reproduces (as a model) Figure 1: execution time of the Shootout
 * kernels in several languages, normalized to C, log scale.
 *
 * Mechanics (see src/suites/shootout.h): JavaScript runs through the
 * full simulated pipeline; C is the native twin costed analytically
 * with the same cycle model; Python/PHP/Ruby are interpreter-only
 * runs with calibrated dispatch factors. Cross-validation: the native
 * twin must compute exactly the same result as the VM run.
 *
 * Paper reference (means over the suite, normalized to C):
 * JavaScript 3.1x, Python 10.6x, PHP 31.4x, Ruby 47.7x.
 */

#include <cstdio>

#include "engine/engine.h"
#include "harness.h"
#include "suites/shootout.h"
#include "support/statistics.h"

using namespace nomap;

namespace {

double
instructionsOf(const std::string &source, Tier cap,
               std::string *result_out)
{
    EngineConfig config;
    config.arch = Architecture::Base;
    config.maxTier = cap;
    Engine engine(config);
    EngineResult r = engine.run(source);
    if (result_out)
        *result_out = r.resultString;
    return static_cast<double>(r.stats.totalInstructions());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    std::printf("Figure 1 (modeled): Shootout execution time "
                "normalized to C (log-scale data)\n\n");

    TextTable table;
    table.header({"Kernel", "C", "JavaScript", "Python", "PHP",
                  "Ruby", "validated"});

    std::vector<double> js_ratios, py_ratios, php_ratios, rb_ratios;
    for (const ShootoutKernel &kernel :
         bench::clipForQuick(shootoutSuite())) {
        // Both sides in dynamic x86-equivalent instructions: the
        // instruction->cycle conversion is identical for native and
        // simulated code, so it cancels out of the ratios.
        uint64_t c_instr = 0;
        double native_result = kernel.native(&c_instr);
        double c_cycles = static_cast<double>(c_instr);

        std::string js_result;
        double js =
            instructionsOf(kernel.jsSource, Tier::Ftl, &js_result);
        double interp =
            instructionsOf(kernel.jsSource, Tier::Interpreter, nullptr);

        bool validated = false;
        {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.0f", native_result);
            validated = js_result == buf;
        }

        double js_ratio = js / c_cycles;
        js_ratios.push_back(js_ratio);
        std::vector<std::string> cells{kernel.name, "1.00",
                                       fmtDouble(js_ratio, 2)};
        const auto &langs = languageModels();
        double lang_ratios[3];
        for (size_t l = 0; l < langs.size(); ++l) {
            lang_ratios[l] =
                interp * langs[l].dispatchFactor / c_cycles;
            cells.push_back(fmtDouble(lang_ratios[l], 1));
        }
        py_ratios.push_back(lang_ratios[0]);
        php_ratios.push_back(lang_ratios[1]);
        rb_ratios.push_back(lang_ratios[2]);
        cells.push_back(validated ? "yes" : "MISMATCH");
        table.row(cells);
    }
    table.row({"geo-mean", "1.00", fmtDouble(geomean(js_ratios), 2),
               fmtDouble(geomean(py_ratios), 1),
               fmtDouble(geomean(php_ratios), 1),
               fmtDouble(geomean(rb_ratios), 1), ""});
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper (means, normalized to C): JavaScript 3.1x, "
                "Python 10.6x, PHP 31.4x, Ruby 47.7x\n");
    std::printf("'validated' = native C twin computed exactly the "
                "same result as the VM run.\n");
    return 0;
}
