/**
 * @file
 * Reproduces Figure 3: number of SMP-guarding checks executed by
 * FTL-compiled code per 100 dynamic instructions, broken down by
 * category (Bounds / Overflow / Type / Property / Other), for the
 * unmodified (Base) architecture.
 *
 * Paper reference points: AvgT = 8.1 (SunSpider) and 8.5 (Kraken)
 * checks per 100 instructions; AvgS = 11.3 and 12.0. Overflow checks
 * are the largest category (47% / 29% of checks, AvgT), bounds checks
 * second (19% / 27%).
 */

#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

void
report(const char *title, const std::vector<BenchmarkSpec> &suite)
{
    std::vector<RunResult> runs = runSuite(suite, Architecture::Base);

    std::printf("Figure 3 (%s): SMP-guarding checks per 100 dynamic "
                "instructions\n\n", title);
    TextTable table;
    table.header({"Bench", "Bounds", "Overflow", "Type", "Property",
                  "Other", "Total/100"});
    auto emit_row = [&](const std::string &label,
                        const double counts[5], double instr) {
        std::vector<std::string> cells{label};
        double total = 0;
        for (int k = 0; k < 5; ++k) {
            cells.push_back(fmtDouble(100.0 * counts[k] / instr, 2));
            total += counts[k];
        }
        cells.push_back(fmtDouble(100.0 * total / instr, 1));
        table.row(cells);
    };

    double sum_s[5] = {}, sum_t[5] = {};
    double rate_s[5] = {}, rate_t[5] = {};
    double n_s = 0, n_t = 0;
    for (const RunResult &r : runs) {
        double instr = static_cast<double>(r.stats.totalInstructions());
        double counts[5];
        for (int k = 0; k < 5; ++k) {
            counts[k] = static_cast<double>(
                r.stats.checks[static_cast<size_t>(k)]);
        }
        if (r.inAvgS)
            emit_row(r.id, counts, instr);
        for (int k = 0; k < 5; ++k) {
            double rate = counts[k] / instr;
            rate_t[k] += rate;
            sum_t[k] += counts[k];
            if (r.inAvgS) {
                rate_s[k] += rate;
                sum_s[k] += counts[k];
            }
        }
        n_t += 1;
        if (r.inAvgS)
            n_s += 1;
    }
    double avg_s[5], avg_t[5];
    for (int k = 0; k < 5; ++k) {
        avg_s[k] = 100.0 * rate_s[k] / n_s;
        avg_t[k] = 100.0 * rate_t[k] / n_t;
    }
    // Averages of per-benchmark rates (already per-100).
    std::vector<std::string> row_s{"AvgS"}, row_t{"AvgT"};
    double tot_s = 0, tot_t = 0;
    for (int k = 0; k < 5; ++k) {
        row_s.push_back(fmtDouble(avg_s[k], 2));
        row_t.push_back(fmtDouble(avg_t[k], 2));
        tot_s += avg_s[k];
        tot_t += avg_t[k];
    }
    row_s.push_back(fmtDouble(tot_s, 1));
    row_t.push_back(fmtDouble(tot_t, 1));
    table.row(row_s);
    table.row(row_t);
    std::printf("%s\n", table.render().c_str());

    // Category shares (paper quotes overflow/bounds shares of AvgT).
    double total_t = 0;
    for (int k = 0; k < 5; ++k)
        total_t += sum_t[k];
    std::printf("Category shares (AvgT): ");
    const char *names[5] = {"Bounds", "Overflow", "Type", "Property",
                            "Other"};
    for (int k = 0; k < 5; ++k) {
        std::printf("%s %s  ", names[k],
                    fmtPercent(sum_t[k] / total_t, 0).c_str());
    }
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    report("SunSpider", clipForQuick(sunspiderSuite()));
    report("Kraken", clipForQuick(krakenSuite()));
    std::printf("Paper: AvgT 8.1 (SunSpider) / 8.5 (Kraken) per 100; "
                "AvgS 11.3 / 12.0.\n"
                "Paper shares (AvgT): overflow 47%%/29%%, bounds "
                "19%%/27%%.\n");
    return 0;
}
