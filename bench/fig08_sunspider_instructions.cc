/**
 * @file
 * Reproduces Figure 8: total dynamic instructions executed by each
 * SunSpider benchmark under the six architectures of Table II,
 * normalized to Base, broken into NoFTL / NoTM / TMUnopt / TMOpt.
 *
 * Paper reference (AvgS reductions vs Base): NoMap_S 6.3%,
 * NoMap_B 8.6%, NoMap 14.2%, NoMap_BC 17.1%, NoMap_RTM 5.1%.
 * AvgT: NoMap 19.7%, NoMap_RTM 14.2%.
 */

#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::vector<BenchmarkSpec> suite =
        clipForQuick(sunspiderSuite());
    std::printf("Figure 8: SunSpider dynamic instructions, "
                "normalized to Base\n\n");

    std::vector<std::vector<RunResult>> all;
    for (Architecture arch : allArchitectures())
        all.push_back(runSuite(suite, arch));

    TextTable table;
    table.header({"Bench", "Arch", "NoFTL", "NoTM", "TMUnopt",
                  "TMOpt", "Total(norm)"});
    auto add_rows = [&](const std::string &label, size_t idx,
                        bool avgs_only) {
        double base_total = 0;
        if (idx != SIZE_MAX) {
            base_total = static_cast<double>(
                all[0][idx].stats.totalInstructions());
        }
        for (size_t a = 0; a < all.size(); ++a) {
            const ExecutionStats *stats =
                idx == SIZE_MAX ? nullptr : &all[a][idx].stats;
            double parts[4];
            double norm;
            if (stats) {
                for (int k = 0; k < 4; ++k) {
                    parts[k] = static_cast<double>(stats->instr[k]) /
                               base_total;
                }
                norm = static_cast<double>(
                           stats->totalInstructions()) /
                       base_total;
            } else {
                // Average of per-benchmark normalized values.
                double sums[5] = {};
                double n = 0;
                for (size_t i = 0; i < suite.size(); ++i) {
                    if (avgs_only && !suite[i].inAvgS)
                        continue;
                    double bt = static_cast<double>(
                        all[0][i].stats.totalInstructions());
                    for (int k = 0; k < 4; ++k) {
                        sums[k] += all[a][i].stats.instr[k] / bt;
                    }
                    sums[4] +=
                        all[a][i].stats.totalInstructions() / bt;
                    n += 1;
                }
                for (int k = 0; k < 4; ++k)
                    parts[k] = sums[k] / n;
                norm = sums[4] / n;
            }
            table.row({a == 0 ? label : "",
                       architectureName(allArchitectures()[a]),
                       fmtDouble(parts[0], 3), fmtDouble(parts[1], 3),
                       fmtDouble(parts[2], 3), fmtDouble(parts[3], 3),
                       fmtDouble(norm, 3)});
        }
    };

    for (size_t i = 0; i < suite.size(); ++i) {
        if (suite[i].inAvgS)
            add_rows(suite[i].id, i, false);
    }
    add_rows("AvgS", SIZE_MAX, true);
    add_rows("AvgT", SIZE_MAX, false);
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper (AvgS, instructions removed vs Base): "
                "NoMap_S 6.3%%, NoMap_B 8.6%%, NoMap 14.2%%, "
                "NoMap_BC 17.1%%, NoMap_RTM 5.1%%\n");
    return 0;
}
