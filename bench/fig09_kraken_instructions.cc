/**
 * @file
 * Reproduces Figure 9: Kraken dynamic instructions under the six
 * architectures, normalized to Base, broken into NoFTL / NoTM /
 * TMUnopt / TMOpt.
 *
 * Paper reference (AvgS reductions vs Base): NoMap 11.5%,
 * NoMap_BC 18.0%, NoMap_RTM ~0%. AvgT: NoMap 7.8%.
 */

#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::vector<BenchmarkSpec> suite =
        clipForQuick(krakenSuite());
    std::printf("Figure 9: Kraken dynamic instructions, normalized "
                "to Base\n\n");

    std::vector<std::vector<RunResult>> all;
    for (Architecture arch : allArchitectures())
        all.push_back(runSuite(suite, arch));

    TextTable table;
    table.header({"Bench", "Arch", "NoFTL", "NoTM", "TMUnopt",
                  "TMOpt", "Total(norm)"});

    auto avg_row = [&](const std::string &label, bool avgs_only) {
        for (size_t a = 0; a < all.size(); ++a) {
            double sums[5] = {};
            double n = 0;
            for (size_t i = 0; i < suite.size(); ++i) {
                if (avgs_only && !suite[i].inAvgS)
                    continue;
                double bt = static_cast<double>(
                    all[0][i].stats.totalInstructions());
                for (int k = 0; k < 4; ++k)
                    sums[k] += all[a][i].stats.instr[k] / bt;
                sums[4] += all[a][i].stats.totalInstructions() / bt;
                n += 1;
            }
            table.row({a == 0 ? label : "",
                       architectureName(allArchitectures()[a]),
                       fmtDouble(sums[0] / n, 3),
                       fmtDouble(sums[1] / n, 3),
                       fmtDouble(sums[2] / n, 3),
                       fmtDouble(sums[3] / n, 3),
                       fmtDouble(sums[4] / n, 3)});
        }
    };

    for (size_t i = 0; i < suite.size(); ++i) {
        if (!suite[i].inAvgS)
            continue;
        double bt = static_cast<double>(
            all[0][i].stats.totalInstructions());
        for (size_t a = 0; a < all.size(); ++a) {
            const ExecutionStats &stats = all[a][i].stats;
            table.row({a == 0 ? suite[i].id : "",
                       architectureName(allArchitectures()[a]),
                       fmtDouble(stats.instr[0] / bt, 3),
                       fmtDouble(stats.instr[1] / bt, 3),
                       fmtDouble(stats.instr[2] / bt, 3),
                       fmtDouble(stats.instr[3] / bt, 3),
                       fmtDouble(stats.totalInstructions() / bt, 3)});
        }
    }
    avg_row("AvgS", true);
    avg_row("AvgT", false);
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper (AvgS, instructions removed vs Base): "
                "NoMap 11.5%%, NoMap_BC 18.0%%, NoMap_RTM ~0%%; "
                "AvgT: NoMap 7.8%%\n");
    return 0;
}
