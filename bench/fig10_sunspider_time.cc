/**
 * @file
 * Reproduces Figure 10: SunSpider execution time under the six
 * architectures, normalized to Base, split into TMTime (cycles spent
 * inside transactions) and NonTMTime.
 *
 * Paper reference (AvgS time reductions vs Base): NoMap 16.7%,
 * NoMap_RTM 6.5%. AvgT: NoMap 21.7%, NoMap_RTM 15.0%.
 */

#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const std::vector<BenchmarkSpec> suite =
        clipForQuick(sunspiderSuite());
    std::printf("Figure 10: SunSpider execution time (cycles), "
                "normalized to Base\n\n");

    std::vector<std::vector<RunResult>> all;
    for (Architecture arch : allArchitectures())
        all.push_back(runSuite(suite, arch));

    TextTable table;
    table.header({"Bench", "Arch", "TMTime", "NonTMTime",
                  "Total(norm)"});
    auto avg_row = [&](const std::string &label, bool avgs_only) {
        for (size_t a = 0; a < all.size(); ++a) {
            double tm = 0, non_tm = 0, n = 0;
            for (size_t i = 0; i < suite.size(); ++i) {
                if (avgs_only && !suite[i].inAvgS)
                    continue;
                double bt = all[0][i].stats.totalCycles();
                tm += all[a][i].stats.cyclesTm / bt;
                non_tm += all[a][i].stats.cyclesNonTm / bt;
                n += 1;
            }
            table.row({a == 0 ? label : "",
                       architectureName(allArchitectures()[a]),
                       fmtDouble(tm / n, 3), fmtDouble(non_tm / n, 3),
                       fmtDouble((tm + non_tm) / n, 3)});
        }
    };
    for (size_t i = 0; i < suite.size(); ++i) {
        if (!suite[i].inAvgS)
            continue;
        double bt = all[0][i].stats.totalCycles();
        for (size_t a = 0; a < all.size(); ++a) {
            const ExecutionStats &stats = all[a][i].stats;
            table.row({a == 0 ? suite[i].id : "",
                       architectureName(allArchitectures()[a]),
                       fmtDouble(stats.cyclesTm / bt, 3),
                       fmtDouble(stats.cyclesNonTm / bt, 3),
                       fmtDouble(stats.totalCycles() / bt, 3)});
        }
    }
    avg_row("AvgS", true);
    avg_row("AvgT", false);
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper (AvgS, time reduction vs Base): NoMap 16.7%%, "
                "NoMap_RTM 6.5%%; AvgT: 21.7%% / 15.0%%\n");
    return 0;
}
