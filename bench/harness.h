#ifndef NOMAP_BENCH_HARNESS_H
#define NOMAP_BENCH_HARNESS_H

/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Every bench binary regenerates one artifact of the paper's
 * evaluation and prints it as an aligned text table, with the paper's
 * reported numbers alongside where applicable. Averages follow the
 * paper: AvgS over the Table III subset, AvgT over the whole suite.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "suites/suite.h"
#include "support/statistics.h"

namespace nomap {
namespace bench {

/** True once initBench() has seen --quick (CTest smoke runs). */
inline bool &
quickMode()
{
    static bool quick = false;
    return quick;
}

/**
 * Parse bench argv. `--quick` switches the binary into smoke mode:
 * suites are clipped (clipForQuick) and a completion marker is
 * printed at clean exit, which the CTest smoke tests match with
 * PASS_REGULAR_EXPRESSION — a crash or early abort never reaches the
 * atexit handler, so it fails the smoke test.
 */
inline void
initBench(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quickMode() = true;
    }
    if (quickMode()) {
        std::atexit(
            [] { std::printf("[bench-smoke-complete]\n"); });
    }
}

/**
 * Untimed warmup passes to run before timed repetitions. Absorbs
 * one-time host costs (allocator growth, page-in, code paging) so the
 * timed samples are steady-state and the median is stable; --quick
 * keeps a single pass so the smoke tests stay fast.
 */
inline int
warmupPasses()
{
    return quickMode() ? 1 : 2;
}

/** Under --quick, keep only the first @p keep entries of a suite. */
template <typename T>
std::vector<T>
clipForQuick(const std::vector<T> &suite, size_t keep = 2)
{
    if (!quickMode() || suite.size() <= keep)
        return suite;
    return std::vector<T>(suite.begin(),
                          suite.begin() + static_cast<long>(keep));
}

/** Result of running one benchmark under one architecture. */
struct RunResult {
    std::string id;
    bool inAvgS = false;
    ExecutionStats stats;
};

/**
 * Run a whole suite under one architecture. @p trace_capacity > 0
 * enables the engine trace ring (bench/wallclock --traced uses it to
 * gauge tracing overhead); events are discarded, only the cost of
 * emitting them is measured. @p jit_tier selects the region
 * template-compilation tier for FTL-hot functions (bit-identical
 * stats, host speed only).
 */
inline std::vector<RunResult>
runSuite(const std::vector<BenchmarkSpec> &suite, Architecture arch,
         Tier max_tier = Tier::Ftl, uint32_t trace_capacity = 0,
         bool jit_tier = false)
{
    std::vector<RunResult> results;
    for (const BenchmarkSpec &spec : suite) {
        EngineConfig config;
        config.arch = arch;
        config.maxTier = max_tier;
        config.traceCapacity = trace_capacity;
        config.jitTier = jit_tier;
        Engine engine(config);
        EngineResult r = engine.run(spec.source);
        results.push_back({spec.id, spec.inAvgS, r.stats});
    }
    return results;
}

/** Extract one metric from every run. */
template <typename Fn>
std::vector<double>
metric(const std::vector<RunResult> &runs, Fn fn, bool avgs_only)
{
    std::vector<double> out;
    for (const RunResult &r : runs) {
        if (avgs_only && !r.inAvgS)
            continue;
        out.push_back(fn(r));
    }
    return out;
}

/** AvgS/AvgT pair of a per-benchmark metric. */
template <typename Fn>
std::pair<double, double>
averages(const std::vector<RunResult> &runs, Fn fn)
{
    return {mean(metric(runs, fn, true)),
            mean(metric(runs, fn, false))};
}

/** The six architectures in paper order. */
inline const std::vector<Architecture> &
allArchitectures()
{
    static const std::vector<Architecture> archs = {
        Architecture::Base,   Architecture::NoMapS,
        Architecture::NoMapB, Architecture::NoMap,
        Architecture::NoMapBC, Architecture::NoMapRTM,
    };
    return archs;
}

} // namespace bench
} // namespace nomap

#endif // NOMAP_BENCH_HARNESS_H
