/**
 * @file
 * Appendix-style validation of the emulated HTM overheads, built on
 * google-benchmark.
 *
 * The paper validates its emulation platform by checking that the
 * modeled XBegin/XEnd costs do not underestimate real lightweight-HTM
 * hardware (POWER8 ROT mode). Here we measure:
 *  - the simulator-side wall cost of the transaction machinery
 *    (begin/commit/abort with rollback), and
 *  - the modeled cycle charges (constants from the cost model),
 * and print the modeled ROT-vs-RTM commit gap that drives the
 * NoMap vs NoMap_RTM difference.
 */

#include <benchmark/benchmark.h>

#include "htm/transaction.h"
#include "vm/heap.h"

using namespace nomap;

namespace {

struct TxFixture {
    TxFixture(HtmMode mode)
        : heap(shapes, strings), tm(mode)
    {
        tm.setRollbackClient(&heap);
        heap.setTransactionManager(&tm);
        arr = heap.allocArray(1024).payload();
    }

    ShapeTable shapes;
    StringTable strings;
    Heap heap;
    TransactionManager tm;
    uint32_t arr;
};

void
BM_RotCommit(benchmark::State &state)
{
    TxFixture fx(HtmMode::Rot);
    int64_t writes = state.range(0);
    for (auto _ : state) {
        fx.tm.begin();
        for (int64_t i = 0; i < writes; ++i) {
            fx.heap.setElementFast(fx.arr, static_cast<uint32_t>(i),
                                   Value::int32(static_cast<int>(i)));
        }
        benchmark::DoNotOptimize(fx.tm.end().committed);
    }
    state.counters["modeled_begin_cycles"] =
        TransactionManager::kRotBeginCycles;
    state.counters["modeled_commit_cycles"] =
        TransactionManager::kRotCommitCycles;
}

void
BM_RtmCommit(benchmark::State &state)
{
    TxFixture fx(HtmMode::Rtm);
    int64_t writes = state.range(0);
    for (auto _ : state) {
        fx.tm.begin();
        for (int64_t i = 0; i < writes; ++i) {
            fx.heap.setElementFast(fx.arr, static_cast<uint32_t>(i),
                                   Value::int32(static_cast<int>(i)));
        }
        benchmark::DoNotOptimize(fx.tm.end().committed);
    }
    state.counters["modeled_begin_cycles"] =
        TransactionManager::kRtmBeginCycles;
    state.counters["modeled_commit_cycles"] =
        TransactionManager::kRtmCommitCycles;
}

void
BM_AbortRollback(benchmark::State &state)
{
    TxFixture fx(HtmMode::Rot);
    int64_t writes = state.range(0);
    for (auto _ : state) {
        fx.tm.begin();
        for (int64_t i = 0; i < writes; ++i) {
            fx.heap.setElementFast(fx.arr, static_cast<uint32_t>(i),
                                   Value::int32(static_cast<int>(i)));
        }
        benchmark::DoNotOptimize(
            fx.tm.abort(AbortCode::ExplicitCheck));
    }
    state.counters["modeled_abort_cycles"] =
        TransactionManager::kAbortCycles;
}

void
BM_SofLatchAndCheck(benchmark::State &state)
{
    TxFixture fx(HtmMode::Rot);
    for (auto _ : state) {
        fx.tm.begin();
        fx.tm.noteArithmeticOverflow();
        CommitResult r = fx.tm.end(); // Aborts via the SOF.
        benchmark::DoNotOptimize(r.abortCode);
    }
}

} // namespace

BENCHMARK(BM_RotCommit)->Arg(8)->Arg(128)->Arg(1024);
BENCHMARK(BM_RtmCommit)->Arg(8)->Arg(128);
BENCHMARK(BM_AbortRollback)->Arg(8)->Arg(128)->Arg(1024);
BENCHMARK(BM_SofLatchAndCheck);

BENCHMARK_MAIN();
