/**
 * @file
 * Soak benchmark: sustained mixed traffic against the TCP serving
 * front-end from a pool of event-loop client threads.
 *
 * The server is in-process (ephemeral port, `--loops` event loops)
 * but every byte crosses a real loopback socket. Connections are
 * partitioned across `--client-threads` client threads, each running
 * its own Poller-based event loop with its own deterministic PRNG
 * stream (base seed xor thread id), so the client side scales past
 * one core the same way the server side does. Each connection keeps
 * up to `--pipeline` requests in flight, matched to responses by
 * request id — responses reorder across shards under pipelining, so
 * every in-flight id carries its own program bucket and send
 * timestamp.
 *
 * Program sizes are heavy-tailed (quantized Pareto over loop trip
 * counts — many small scripts, a fat tail of big ones); quantization
 * means repeated sizes exercise the compiled-program cache the way
 * real multi-tenant traffic would.
 *
 * Reported (JSON on stdout): throughput, latency p50/p95/p99, shed
 * rate under admission control, differential-check verdict (every Ok
 * response's result string must match the in-process Engine::run
 * reference for its program — the PR-1 guarantee, held under load),
 * plus the server's own sharded metrics snapshot.
 *
 *   soak [--quick] [--connections N] [--duration-s S] [--shards K]
 *        [--workers W] [--shed-depth D] [--arch ARCH] [--loops L]
 *        [--client-threads T] [--pipeline P]
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness.h"
#include "net/poller.h"
#include "net/server.h"
#include "net/wire.h"
#include "support/logging.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

// ---- Heavy-tailed program mix ------------------------------------------

/** xorshift64* — deterministic across runs and platforms. */
struct Rng {
    uint64_t state = 0x9e3779b97f4a7c15ull;
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }
};

/** One program size bucket (quantized Pareto). */
struct SizeBucket {
    uint32_t iterations;
    double weight;
    std::string source;
    std::string expected; ///< In-process reference result string.
};

std::string
programFor(uint32_t iterations)
{
    return strprintf(
        "function churn(n) {\n"
        "    var acc = 0;\n"
        "    for (var i = 0; i < n; i++) {\n"
        "        acc = (acc * 31 + i) %% 65521;\n"
        "        acc = acc + (acc %% 13);\n"
        "    }\n"
        "    return acc;\n"
        "}\n"
        "result = churn(%u);\n",
        iterations);
}

/**
 * Doubling sizes from 100 to ~51k iterations, weight ~ size^-1.1:
 * a discrete Pareto. Quick mode stops at ~3k so the smoke run is
 * seconds, not minutes.
 */
std::vector<SizeBucket>
makeBuckets(Architecture arch)
{
    std::vector<SizeBucket> buckets;
    uint32_t cap = quickMode() ? 3200 : 51200;
    for (uint32_t n = 100; n <= cap; n *= 2) {
        SizeBucket bucket;
        bucket.iterations = n;
        bucket.weight = 1.0 / std::pow(static_cast<double>(n), 1.1);
        bucket.source = programFor(n);
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        bucket.expected = engine.run(bucket.source).resultString;
        buckets.push_back(std::move(bucket));
    }
    return buckets;
}

size_t
sampleBucket(const std::vector<SizeBucket> &buckets, Rng *rng)
{
    double total = 0;
    for (const SizeBucket &bucket : buckets)
        total += bucket.weight;
    double u = static_cast<double>(rng->next() >> 11) *
               (1.0 / 9007199254740992.0) * total;
    for (size_t i = 0; i < buckets.size(); ++i) {
        u -= buckets[i].weight;
        if (u <= 0)
            return i;
    }
    return buckets.size() - 1;
}

// ---- Event-loop client pool --------------------------------------------

/** One request awaiting its response, keyed by wire id. */
struct Pending {
    size_t bucketIdx = 0;
    std::chrono::steady_clock::time_point sentAt;
};

struct SoakConn {
    int fd = -1;
    FrameDecoder decoder;
    std::string outbuf;
    size_t outPos = 0;
    uint64_t nextId = 1;
    /**
     * In-flight requests by id. Under pipelining the server answers
     * in completion order, not send order (shards race), so each id
     * carries its own expected-result bucket and timestamp.
     */
    std::map<uint64_t, Pending> inflight;
};

struct SoakStats {
    uint64_t sent = 0;
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t otherErrors = 0;
    uint64_t mismatches = 0;
    std::vector<double> latenciesUs;
};

double
percentileOf(std::vector<double> *xs, double p)
{
    if (xs->empty())
        return 0;
    std::sort(xs->begin(), xs->end());
    size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(xs->size() - 1) + 0.5);
    return (*xs)[std::min(rank, xs->size() - 1)];
}

int
connectTo(uint16_t port)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        ::close(fd);
        fatal("connect: %s", std::strerror(err));
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Nonblocking from here on: the event loop owns this socket.
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    return fd;
}

void
queueOneRequest(SoakConn *conn, const std::vector<SizeBucket> &buckets,
                Rng *rng, Architecture arch, SoakStats *stats)
{
    Pending pending;
    pending.bucketIdx = sampleBucket(buckets, rng);
    pending.sentAt = std::chrono::steady_clock::now();
    WireRequest request;
    request.id = conn->nextId++;
    request.arch = static_cast<uint8_t>(arch);
    request.tenant = "tenant-" + std::to_string(rng->next() % 8);
    request.source = buckets[pending.bucketIdx].source;
    conn->outbuf += frameMessage(encodeRequestPayload(request));
    conn->inflight[request.id] = pending;
    stats->sent++;
}

/** Top the connection's pipeline back up to the window size. */
void
fillPipeline(SoakConn *conn, const std::vector<SizeBucket> &buckets,
             Rng *rng, Architecture arch, size_t pipeline,
             SoakStats *stats)
{
    while (conn->inflight.size() < pipeline)
        queueOneRequest(conn, buckets, rng, arch, stats);
}

struct ClientThreadArgs {
    size_t tid = 0;
    uint16_t port = 0;
    size_t connections = 0;
    size_t pipeline = 1;
    Architecture arch = Architecture::NoMap;
    const std::vector<SizeBucket> *buckets = nullptr;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point drainDeadline;
};

/**
 * One client thread: a private Poller event loop over its slice of
 * the connection pool, writing into a private SoakStats (merged by
 * the main thread after join — no cross-thread sharing while hot).
 */
void
runClientThread(const ClientThreadArgs &args, SoakStats *stats)
{
    const std::vector<SizeBucket> &buckets = *args.buckets;
    Poller poller;
    std::unordered_map<int, std::unique_ptr<SoakConn>> conns;
    Rng rng;
    // Distinct deterministic stream per thread; tid 0 keeps the
    // historical single-threaded sequence.
    rng.state ^= args.tid * 0xbf58476d1ce4e5b9ull;

    for (size_t i = 0; i < args.connections; ++i) {
        auto conn = std::make_unique<SoakConn>();
        conn->fd = connectTo(args.port);
        fillPipeline(conn.get(), buckets, &rng, args.arch,
                     args.pipeline, stats);
        poller.add(conn->fd, kPollIn | kPollOut);
        conns[conn->fd] = std::move(conn);
    }

    std::vector<Poller::Event> events;
    size_t open = conns.size();
    while (open > 0) {
        auto now = std::chrono::steady_clock::now();
        bool sending = now < args.deadline;
        if (!sending && now > args.drainDeadline)
            break;
        poller.wait(&events, 100);
        for (const Poller::Event &event : events) {
            auto it = conns.find(event.fd);
            if (it == conns.end())
                continue;
            SoakConn *conn = it->second.get();
            bool dead = false;

            if (event.ready & kPollOut) {
                while (conn->outPos < conn->outbuf.size()) {
                    ssize_t n = ::send(
                        conn->fd, conn->outbuf.data() + conn->outPos,
                        conn->outbuf.size() - conn->outPos,
                        MSG_NOSIGNAL);
                    if (n > 0) {
                        conn->outPos += static_cast<size_t>(n);
                        continue;
                    }
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    if (n < 0 && errno == EINTR)
                        continue;
                    dead = true;
                    break;
                }
                if (conn->outPos == conn->outbuf.size()) {
                    conn->outbuf.clear();
                    conn->outPos = 0;
                }
            }

            if (!dead && (event.ready & kPollIn)) {
                char buf[64 * 1024];
                for (;;) {
                    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
                    if (n > 0) {
                        conn->decoder.feed(
                            buf, static_cast<size_t>(n));
                        if (static_cast<size_t>(n) < sizeof(buf))
                            break;
                        continue;
                    }
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    if (n < 0 && errno == EINTR)
                        continue;
                    dead = true;
                    break;
                }
                std::string payload, error;
                while (!dead &&
                       conn->decoder.next(&payload, &error) ==
                           FrameDecoder::Result::Frame) {
                    WireResponse response;
                    if (!decodeResponsePayload(payload, &response,
                                               &error)) {
                        dead = true;
                        break;
                    }
                    auto pendingIt = conn->inflight.find(response.id);
                    if (pendingIt == conn->inflight.end()) {
                        // Response to an id we never sent (or a
                        // duplicate) — protocol violation.
                        stats->otherErrors++;
                        continue;
                    }
                    const Pending &pending = pendingIt->second;
                    double us =
                        std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() -
                            pending.sentAt)
                            .count();
                    stats->latenciesUs.push_back(us);
                    auto status =
                        static_cast<ResponseStatus>(response.status);
                    if (status == ResponseStatus::Ok) {
                        stats->ok++;
                        if (response.resultString !=
                            buckets[pending.bucketIdx].expected)
                            stats->mismatches++;
                    } else if (status == ResponseStatus::Shed) {
                        stats->shed++;
                    } else {
                        stats->otherErrors++;
                    }
                    conn->inflight.erase(pendingIt);
                    if (sending) {
                        fillPipeline(conn, buckets, &rng, args.arch,
                                     args.pipeline, stats);
                    }
                }
            }

            bool idle = conn->inflight.empty() &&
                        conn->outPos == conn->outbuf.size();
            if (dead || (!sending && idle)) {
                poller.remove(conn->fd);
                ::close(conn->fd);
                conns.erase(it);
                open--;
                continue;
            }
            uint32_t want = kPollIn;
            if (conn->outPos < conn->outbuf.size())
                want |= kPollOut;
            poller.modify(conn->fd, want);
        }
    }
    for (auto &entry : conns)
        ::close(entry.second->fd);
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    size_t num_connections = quickMode() ? 64 : 1000;
    double duration_s = quickMode() ? 2.0 : 10.0;
    size_t num_shards = 2;
    size_t num_workers = 2;
    size_t shed_depth = 256;
    size_t num_loops = 1;
    size_t client_threads = 2;
    size_t pipeline = 1;
    Architecture arch = Architecture::NoMap;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (flag == "--connections")
            num_connections = std::strtoul(next(), nullptr, 10);
        else if (flag == "--duration-s")
            duration_s = std::strtod(next(), nullptr);
        else if (flag == "--shards")
            num_shards = std::strtoul(next(), nullptr, 10);
        else if (flag == "--workers")
            num_workers = std::strtoul(next(), nullptr, 10);
        else if (flag == "--shed-depth")
            shed_depth = std::strtoul(next(), nullptr, 10);
        else if (flag == "--loops")
            num_loops = std::strtoul(next(), nullptr, 10);
        else if (flag == "--client-threads")
            client_threads = std::strtoul(next(), nullptr, 10);
        else if (flag == "--pipeline")
            pipeline = std::strtoul(next(), nullptr, 10);
        else if (flag == "--arch") {
            std::string name = next();
            if (name == "base") arch = Architecture::Base;
            else if (name == "nomap_s") arch = Architecture::NoMapS;
            else if (name == "nomap_b") arch = Architecture::NoMapB;
            else if (name == "nomap") arch = Architecture::NoMap;
            else if (name == "nomap_bc") arch = Architecture::NoMapBC;
            else if (name == "nomap_rtm")
                arch = Architecture::NoMapRTM;
            else
                fatal("unknown --arch '%s'", name.c_str());
        }
    }
    if (num_loops == 0)
        num_loops = 1;
    if (pipeline == 0)
        pipeline = 1;
    if (client_threads == 0)
        client_threads = 1;
    if (client_threads > num_connections && num_connections > 0)
        client_threads = num_connections;

    std::vector<SizeBucket> buckets = makeBuckets(arch);

    ServerConfig server_config;
    server_config.backlog = 1024;
    server_config.maxConnections = num_connections + 64;
    server_config.loops = num_loops;
    server_config.service.shards = num_shards;
    server_config.service.shedQueueDepth = shed_depth;
    server_config.service.shard.workers = num_workers;
    server_config.service.shard.queueCapacity = 8192;
    NoMapServer server(std::move(server_config));
    server.start();

    std::fprintf(stderr,
                 "soak: %zu connections, %.1fs, %zu loops%s, "
                 "%zu shards x %zu workers, shed depth %zu, "
                 "%zu client threads, pipeline %zu, %s backend\n",
                 num_connections, duration_s, server.loopCount(),
                 server.reuseportActive() ? " (SO_REUSEPORT)" : "",
                 num_shards, num_workers, shed_depth, client_threads,
                 pipeline, Poller::backendName());

    auto started = std::chrono::steady_clock::now();
    auto deadline =
        started +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(duration_s));
    // After the send window closes, allow in-flight requests this
    // long to drain before giving up.
    auto drain_deadline =
        deadline + std::chrono::seconds(quickMode() ? 30 : 120);

    std::vector<SoakStats> thread_stats(client_threads);
    std::vector<std::thread> threads;
    size_t base = num_connections / client_threads;
    size_t extra = num_connections % client_threads;
    for (size_t t = 0; t < client_threads; ++t) {
        ClientThreadArgs args;
        args.tid = t;
        args.port = server.port();
        args.connections = base + (t < extra ? 1 : 0);
        args.pipeline = pipeline;
        args.arch = arch;
        args.buckets = &buckets;
        args.deadline = deadline;
        args.drainDeadline = drain_deadline;
        threads.emplace_back(runClientThread, args,
                             &thread_stats[t]);
    }
    for (std::thread &thread : threads)
        thread.join();

    SoakStats stats;
    for (SoakStats &ts : thread_stats) {
        stats.sent += ts.sent;
        stats.ok += ts.ok;
        stats.shed += ts.shed;
        stats.otherErrors += ts.otherErrors;
        stats.mismatches += ts.mismatches;
        stats.latenciesUs.insert(stats.latenciesUs.end(),
                                 ts.latenciesUs.begin(),
                                 ts.latenciesUs.end());
    }

    double elapsed_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started)
            .count();
    uint64_t answered = stats.ok + stats.shed + stats.otherErrors;
    double shed_rate =
        answered ? static_cast<double>(stats.shed) /
                       static_cast<double>(answered)
                 : 0;

    std::string server_metrics = server.metricsJson();
    server.stop();

    std::printf(
        "{\n"
        "  \"soak\": {\n"
        "    \"connections\": %zu,\n"
        "    \"loops\": %zu,\n"
        "    \"client_threads\": %zu,\n"
        "    \"pipeline\": %zu,\n"
        "    \"duration_s\": %.2f,\n"
        "    \"sent\": %llu,\n"
        "    \"answered\": %llu,\n"
        "    \"ok\": %llu,\n"
        "    \"shed\": %llu,\n"
        "    \"errors\": %llu,\n"
        "    \"result_mismatches\": %llu,\n"
        "    \"throughput_rps\": %.1f,\n"
        "    \"shed_rate\": %.4f,\n"
        "    \"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, "
        "\"p99\": %.1f}\n"
        "  },\n"
        "  \"server\": ",
        num_connections, num_loops, client_threads, pipeline,
        elapsed_s, static_cast<unsigned long long>(stats.sent),
        static_cast<unsigned long long>(answered),
        static_cast<unsigned long long>(stats.ok),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.otherErrors),
        static_cast<unsigned long long>(stats.mismatches),
        static_cast<double>(answered) / elapsed_s, shed_rate,
        percentileOf(&stats.latenciesUs, 50),
        percentileOf(&stats.latenciesUs, 95),
        percentileOf(&stats.latenciesUs, 99));
    std::printf("%s\n}\n", server_metrics.c_str());

    // The soak fails loudly if the differential guarantee broke or
    // nothing got through.
    if (stats.mismatches != 0 || stats.ok == 0)
        return 1;
    return 0;
}
