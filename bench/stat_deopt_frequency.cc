/**
 * @file
 * Reproduces the Section III-A2 statistic: deoptimization SMPs are
 * everywhere in FTL code but virtually never fire. The paper ran the
 * suites 1000x and saw fewer than 50 deoptimizations across ~85M FTL
 * function invocations.
 *
 * We run every suite benchmark repeatedly (scaled down: 20 rounds)
 * and report FTL invocations vs deopts taken.
 */

#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    const int kRounds = quickMode() ? 2 : 20;
    uint64_t ftl_calls = 0;
    uint64_t deopts = 0;
    uint64_t checks = 0;

    auto accumulate = [&](const std::vector<BenchmarkSpec> &suite) {
        for (const BenchmarkSpec &spec : suite) {
            for (int round = 0; round < kRounds; ++round) {
                EngineConfig config;
                config.arch = Architecture::Base;
                config.rngSeed = 0x5eed + round;
                Engine engine(config);
                EngineResult r = engine.run(spec.source);
                ftl_calls += r.stats.ftlFunctionCalls;
                deopts += r.stats.deopts;
                checks += r.stats.totalChecks();
            }
        }
    };
    accumulate(clipForQuick(sunspiderSuite()));
    accumulate(clipForQuick(krakenSuite()));

    std::printf("Deoptimization frequency (Base/FTL, %d rounds per "
                "benchmark)\n\n", kRounds);
    TextTable table;
    table.header({"Metric", "Value"});
    table.row({"FTL function invocations", std::to_string(ftl_calls)});
    table.row({"SMP-guarding checks executed",
               std::to_string(checks)});
    table.row({"Deoptimizations taken", std::to_string(deopts)});
    table.row({"Deopts per million FTL calls",
               fmtDouble(ftl_calls
                             ? 1e6 * static_cast<double>(deopts) /
                                   static_cast<double>(ftl_calls)
                             : 0.0,
                         2)});
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: <50 deopts across ~85M FTL calls (1000 "
                "rounds); checks practically never fail after ~50 "
                "iterations.\n");
    return 0;
}
