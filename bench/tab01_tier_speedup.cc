/**
 * @file
 * Reproduces Table I: steady-state speedup of each JavaScriptCore
 * tier over the Interpreter tier, for SunSpider and Kraken, reported
 * as AvgS and AvgT.
 *
 * Paper values for reference:
 *   SunSpider  Baseline 2.13x/1.88x, DFG 7.71x/6.64x, FTL 11.48x/9.37x
 *   Kraken     Baseline 1.22x/0.87x, DFG 8.45x/6.67x, FTL 15.03x/10.94x
 */

#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

struct SuiteSpeedups {
    double avgs[3];
    double avgt[3];
};

SuiteSpeedups
measure(const std::vector<BenchmarkSpec> &suite)
{
    // Per-benchmark interpreter cycles, then speedups per tier cap.
    std::vector<RunResult> interp =
        runSuite(suite, Architecture::Base, Tier::Interpreter);
    const Tier caps[3] = {Tier::Baseline, Tier::Dfg, Tier::Ftl};
    SuiteSpeedups out{};
    for (int t = 0; t < 3; ++t) {
        std::vector<RunResult> runs =
            runSuite(suite, Architecture::Base, caps[t]);
        std::vector<double> speedups_s, speedups_t;
        for (size_t i = 0; i < runs.size(); ++i) {
            double s = interp[i].stats.totalCycles() /
                       runs[i].stats.totalCycles();
            speedups_t.push_back(s);
            if (runs[i].inAvgS)
                speedups_s.push_back(s);
        }
        out.avgs[t] = mean(speedups_s);
        out.avgt[t] = mean(speedups_t);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    std::printf("Table I: speedup of tiers over the Interpreter "
                "(steady state)\n\n");
    SuiteSpeedups ss = measure(clipForQuick(sunspiderSuite()));
    SuiteSpeedups kk = measure(clipForQuick(krakenSuite()));

    TextTable table;
    table.header({"Highest Tier", "SunSpider AvgS", "SunSpider AvgT",
                  "Kraken AvgS", "Kraken AvgT"});
    const char *tiers[3] = {"Baseline", "DFG", "FTL"};
    const double paper_ss[3][2] = {{2.13, 1.88}, {7.71, 6.64},
                                   {11.48, 9.37}};
    const double paper_kk[3][2] = {{1.22, 0.87}, {8.45, 6.67},
                                   {15.03, 10.94}};
    for (int t = 0; t < 3; ++t) {
        table.row({tiers[t], fmtDouble(ss.avgs[t], 2) + "x",
                   fmtDouble(ss.avgt[t], 2) + "x",
                   fmtDouble(kk.avgs[t], 2) + "x",
                   fmtDouble(kk.avgt[t], 2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());

    TextTable paper;
    paper.header({"(paper)", "SunSpider AvgS", "SunSpider AvgT",
                  "Kraken AvgS", "Kraken AvgT"});
    for (int t = 0; t < 3; ++t) {
        paper.row({tiers[t], fmtDouble(paper_ss[t][0], 2) + "x",
                   fmtDouble(paper_ss[t][1], 2) + "x",
                   fmtDouble(paper_kk[t][0], 2) + "x",
                   fmtDouble(paper_kk[t][1], 2) + "x"});
    }
    std::printf("%s", paper.render().c_str());
    return 0;
}
