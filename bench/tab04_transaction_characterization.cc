/**
 * @file
 * Reproduces Table IV: characterization of the transactions NoMap
 * inserts — average write footprint per committed transaction and the
 * maximum cache-set associativity any transaction needed — for AvgS
 * and the per-suite maximum.
 *
 * Paper reference: average write footprints of 44.9 KB (SunSpider)
 * and 47.4 KB (Kraken), comfortably inside the 256 KB 8-way L2 that
 * bounds ROT-style transactions — and far beyond the 32 KB L1D that
 * bounds RTM writes, which is why NoMap_RTM starves on Kraken.
 */

#include <algorithm>
#include <cstdio>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

void
report(const char *title, const std::vector<BenchmarkSpec> &suite)
{
    std::vector<RunResult> runs = runSuite(suite, Architecture::NoMap);

    std::printf("Table IV (%s): NoMap transaction characterization\n\n",
                title);
    TextTable table;
    table.header({"Bench", "avg WF (KB)", "max WF (KB)", "max assoc",
                  "commits", "aborts"});
    double avg_sum = 0, n = 0, max_wf = 0;
    uint32_t max_assoc = 0;
    for (const RunResult &r : runs) {
        if (!r.inAvgS)
            continue;
        table.row({r.id,
                   fmtDouble(r.stats.avgWriteFootprintBytes / 1024.0, 1),
                   fmtDouble(r.stats.maxWriteFootprintBytes / 1024.0, 1),
                   std::to_string(r.stats.maxWriteWaysUsed),
                   std::to_string(r.stats.txCommits),
                   std::to_string(r.stats.txAborts)});
        if (r.stats.txCommits > 0) {
            avg_sum += r.stats.avgWriteFootprintBytes;
            n += 1;
        }
        max_wf = std::max(
            max_wf, static_cast<double>(r.stats.maxWriteFootprintBytes));
        max_assoc = std::max(max_assoc, r.stats.maxWriteWaysUsed);
    }
    table.row({"AvgS", fmtDouble(n ? avg_sum / n / 1024.0 : 0, 1), "",
               "", "", ""});
    table.row({"Max", "", fmtDouble(max_wf / 1024.0, 1),
               std::to_string(max_assoc), "", ""});
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    report("SunSpider", clipForQuick(sunspiderSuite()));
    report("Kraken", clipForQuick(krakenSuite()));
    std::printf("Paper: avg write footprint 44.9 KB (SunSpider) / "
                "47.4 KB (Kraken); fits the 256 KB 8-way L2 amply.\n");
    return 0;
}
