/**
 * @file
 * Serving-layer benchmark: requests/sec vs worker count, per
 * architecture, over the Shootout kernel mix, plus a cold-vs-warm
 * program-cache comparison.
 *
 * Two effects are measured:
 *
 *  1. *Worker scaling.* Isolates are fully independent (per-Engine
 *     heap/HTM/caches), so throughput should scale with workers up to
 *     the machine's core count. The table reports requests/sec and
 *     the speedup vs 1 worker; on a single-core container the ceiling
 *     is 1x by physics, so the detected hardware concurrency is
 *     printed next to the table.
 *
 *  2. *Compiled-program cache.* A warm cache skips lexing + parsing +
 *     bytecode compilation. The second table compares cold (cache
 *     disabled) vs warm (cache pre-seeded) p50 latency on the same
 *     mix and reports the hit counter.
 */

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "service/engine_pool.h"
#include "suites/shootout.h"

using namespace nomap;

namespace {

struct MixResult {
    double seconds = 0.0;
    double rps = 0.0;
    double p50Micros = 0.0;
    uint64_t cacheHits = 0;
    uint64_t failures = 0;
};

/** Expected `result` strings from each kernel's native twin. */
const std::vector<std::string> &
expectedResults()
{
    static const std::vector<std::string> expected = [] {
        std::vector<std::string> out;
        for (const ShootoutKernel &kernel : shootoutSuite()) {
            uint64_t native_instr = 0;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.0f",
                          kernel.native(&native_instr));
            out.push_back(buf);
        }
        return out;
    }();
    return expected;
}

/** Push the kernel mix through a service and time it end-to-end. */
MixResult
runMix(size_t num_workers, Architecture arch, size_t repeats,
       bool use_cache, bool prewarm)
{
    const std::vector<ShootoutKernel> &kernels = shootoutSuite();
    ServiceConfig sc;
    sc.workers = num_workers;
    sc.queueCapacity = kernels.size() * repeats + 1;
    sc.enableProgramCache = use_cache;
    ExecutionService service(sc);

    if (prewarm) {
        // Compile every script once so the timed run is all hits.
        std::vector<std::future<Response>> warmup;
        for (const ShootoutKernel &kernel : kernels) {
            Request req;
            req.source = kernel.jsSource;
            req.config.arch = arch;
            warmup.push_back(service.submit(std::move(req)));
        }
        for (auto &f : warmup)
            f.get();
    }
    ServiceMetricsSnapshot before = service.metrics();

    auto started = std::chrono::steady_clock::now();
    std::vector<std::future<Response>> futures;
    for (size_t r = 0; r < repeats; ++r) {
        for (const ShootoutKernel &kernel : kernels) {
            Request req;
            req.source = kernel.jsSource;
            req.config.arch = arch;
            futures.push_back(service.submit(std::move(req)));
        }
    }
    MixResult out;
    for (size_t i = 0; i < futures.size(); ++i) {
        Response resp = futures[i].get();
        if (!resp.ok() ||
            resp.resultString != expectedResults()[i % kernels.size()])
            ++out.failures;
    }
    auto finished = std::chrono::steady_clock::now();

    ServiceMetricsSnapshot after = service.metrics();
    out.seconds =
        std::chrono::duration<double>(finished - started).count();
    out.rps = out.seconds > 0.0
                  ? static_cast<double>(futures.size()) / out.seconds
                  : 0.0;
    out.p50Micros = after.p50Micros;
    out.cacheHits = after.cacheHits - before.cacheHits;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    const Architecture archs[] = {Architecture::Base,
                                  Architecture::NoMap};
    std::vector<size_t> worker_counts = {1, 2, 4};
    size_t kRepeats = 3;
    if (bench::quickMode()) {
        worker_counts = {1, 2};
        kRepeats = 1;
    }

    std::printf("Throughput scaling over the Shootout kernel mix "
                "(%zu kernels x %zu repeats)\n",
                shootoutSuite().size(), kRepeats);
    std::printf("hardware concurrency: %u core(s) — scaling is "
                "capped at that many workers\n\n",
                std::thread::hardware_concurrency());

    std::printf("%-10s %8s %12s %10s %10s\n", "arch", "workers",
                "req/s", "seconds", "speedup");
    for (Architecture arch : archs) {
        double base_rps = 0.0;
        for (size_t workers : worker_counts) {
            MixResult r = runMix(workers, arch, kRepeats,
                                 /*use_cache=*/true,
                                 /*prewarm=*/true);
            if (workers == 1)
                base_rps = r.rps;
            std::printf("%-10s %8zu %12.2f %10.2f %9.2fx%s\n",
                        architectureName(arch), workers, r.rps,
                        r.seconds,
                        base_rps > 0.0 ? r.rps / base_rps : 0.0,
                        r.failures ? "  [FAILURES!]" : "");
        }
        std::printf("\n");
    }

    std::printf("Program cache effect (NoMap, 2 workers, same "
                "mix)\n");
    std::printf("%-18s %12s %14s %12s\n", "cache", "req/s",
                "p50 (us)", "hits");
    MixResult cold = runMix(2, Architecture::NoMap, kRepeats,
                            /*use_cache=*/false, /*prewarm=*/false);
    MixResult warm = runMix(2, Architecture::NoMap, kRepeats,
                            /*use_cache=*/true, /*prewarm=*/true);
    std::printf("%-18s %12.2f %14.1f %12llu\n", "cold (disabled)",
                cold.rps, cold.p50Micros,
                static_cast<unsigned long long>(cold.cacheHits));
    std::printf("%-18s %12.2f %14.1f %12llu\n", "warm (pre-seeded)",
                warm.rps, warm.p50Micros,
                static_cast<unsigned long long>(warm.cacheHits));
    std::printf("\nwarm/cold p50: %.2fx  (hits=%llu > 0 means "
                "recompilation was skipped)\n",
                warm.p50Micros > 0.0 ? cold.p50Micros / warm.p50Micros
                                     : 0.0,
                static_cast<unsigned long long>(warm.cacheHits));
    return 0;
}
