/**
 * @file
 * Host wall-clock throughput of the simulator itself (not a paper
 * artifact): nanoseconds of host time per simulated guest
 * instruction, per suite, reported as median/p50/p95 over repeated
 * full passes after untimed warmup. This is the regression gauge for
 * executor-dispatch and accounting changes — guest-visible stats are
 * pinned bit-identical by test_accounting_diff, so the only thing
 * allowed to move here is host speed.
 *
 * To make the committed baseline portable across machines, a fixed
 * integer/memory calibration kernel is timed immediately after each
 * suite's passes, and `normalized_ns_per_instr` = median ns/instr
 * divided by that *adjacent* kernel ns/iteration. Measuring the
 * kernel next to the suite (rather than once per run) matters on
 * shared hosts: CPU-steal load comes in multi-second epochs, and a
 * calibration taken in a different epoch than the suite would skew
 * the ratio instead of cancelling the load.
 *
 * Writes BENCH_wallclock.json (schema_version 4) into the working
 * directory, one row per (suite, arch, tier) with tier one of
 * "interp" (pure interpreter), "ftl" (the direct-threaded FTL
 * executor), or "jit" (the region template-compilation tier,
 * EngineConfig::jitTier). The ftl and jit rows are measured
 * *interleaved*: their repetitions alternate pass for pass inside the
 * same load epoch, so the ftl/jit ratio printed under "Interleaved
 * tier speedups" is robust against shared-host load drift — that
 * ratio is what the README perf-trajectory table quotes. `--tier=T`
 * restricts the run to a single tier (ad-hoc measurement; the
 * written JSON is then partial and the baseline diff goes
 * report-only as stale). Full runs additionally measure the
 * quick-clipped suites and record them under "quick_suites", so a
 * full-mode baseline can be checked by the fast `--quick`
 * perf-regression CTest. `--traced` runs every pass with the engine
 * trace ring enabled (EngineConfig::traceCapacity) to gauge the
 * overhead of event emission; the untraced numbers are what the
 * check.sh envelope and the committed baseline guard.
 *
 * `--baseline=FILE` diffs this run against a previously committed
 * BENCH_wallclock.json. The gate statistic is the *minimum* ns/instr
 * over the repetitions (host load only ever inflates a sample, so
 * the min is the most noise-robust estimate of true speed), and a
 * (suite, arch) only fails when BOTH the raw min ratio and the
 * calibration-normalized min ratio exceed NOMAP_PERF_TOLERANCE
 * percent (default 15): a genuine code regression shows through
 * both metrics, while an epoch mismatch between run and baseline
 * typically distorts only one. A REGRESSED verdict triggers up to
 * two re-measurements of just the flagged groups, folding the new
 * samples into the min before re-judging — noise epochs converge
 * the min down, real regressions survive every retry. Exit code 1
 * on a regression that survives. Under
 * sanitizer builds (NOMAP_SANITIZED) the diff is report-only —
 * sanitizer instrumentation skews the engine and the calibration
 * kernel differently, so the ratio is not meaningful there.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

/** Nearest-rank percentile of a sample set; 0 if empty. */
double
percentileOf(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = std::ceil(p / 100.0 * static_cast<double>(xs.size()));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    if (idx >= xs.size())
        idx = xs.size() - 1;
    return xs[idx];
}

/**
 * ns per iteration of a fixed xorshift64 + array-walk kernel (best of
 * three runs). ALU work plus L1 traffic, like the interpreter loop,
 * so it scales with host speed the same way the measured ns/instr
 * does and their ratio is machine-portable.
 */
double
hostCalibrationSample()
{
    static uint64_t lanes[1024];
    constexpr uint64_t kIters = 1ull << 24;
    std::memset(lanes, 0, sizeof lanes);
    uint64_t x = 0x9e3779b97f4a7c15ull;
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        lanes[i & 1023] += x;
    }
    auto end = std::chrono::steady_clock::now();
    // Volatile sink keeps the kernel from being optimized away.
    volatile uint64_t sink = x + lanes[0];
    (void)sink;
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start)
            .count());
    return ns / static_cast<double>(kIters);
}

double
hostCalibrationNsPerIter()
{
    double best = 0.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        double per = hostCalibrationSample();
        if (attempt == 0 || per < best)
            best = per;
    }
    return best;
}

/**
 * One measured execution tier. "interp" caps the engine at the
 * interpreter; "ftl" is the direct-threaded reference executor;
 * "jit" runs FTL-hot functions through the region template tier.
 */
struct TierSpec {
    const char *name;
    Tier maxTier;
    bool jitTier;
};

constexpr TierSpec kAllTiers[] = {
    {"interp", Tier::Interpreter, false},
    {"ftl", Tier::Ftl, false},
    {"jit", Tier::Ftl, true},
};

struct SuiteTiming {
    std::string suite;
    std::string arch;
    std::string tier;
    size_t benchmarks = 0;
    uint64_t guestInstructions = 0;
    std::vector<double> nsPerInstr;
    /**
     * Per-rep ns/instr divided by the calibration-kernel sample timed
     * in the SAME repetition. A load burst inflates the pass and its
     * adjacent kernel sample alike, so these quotients are stable
     * across load epochs in a way the raw samples are not — the
     * baseline gate's normalized statistic is the min of this series.
     */
    std::vector<double> normPerInstr;
    /** Best calibration kernel ns/iter seen across the reps. */
    double calibration = 0.0;
};

/** One timed full pass of @p suite under @p tier; ns per guest instr. */
double
timeOnePass(const std::vector<BenchmarkSpec> &suite, Architecture arch,
            const TierSpec &tier, uint32_t trace_capacity,
            uint64_t &instr_out)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> runs = runSuite(
        suite, arch, tier.maxTier, trace_capacity, tier.jitTier);
    auto end = std::chrono::steady_clock::now();
    uint64_t instr = 0;
    for (const RunResult &r : runs)
        instr += r.stats.totalInstructions();
    instr_out = instr;
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start)
            .count());
    return ns / static_cast<double>(instr);
}

/**
 * Time @p suite under every tier in @p tiers, interleaved: each
 * repetition cycles through the tiers pass for pass, so all tiers'
 * samples come from the same load epochs and inter-tier ratios (the
 * ftl/jit speedup in particular) see shared-host load cancel instead
 * of landing on one side. Returns one SuiteTiming per tier, all
 * sharing one epoch-local calibration timed right after the block.
 */
std::vector<SuiteTiming>
timeSuiteTiers(const std::string &name,
               const std::vector<BenchmarkSpec> &suite,
               Architecture arch,
               const std::vector<TierSpec> &tiers, int reps,
               int warmups, uint32_t trace_capacity)
{
    std::vector<SuiteTiming> out(tiers.size());
    for (size_t k = 0; k < tiers.size(); ++k) {
        out[k].suite = name;
        out[k].arch = architectureName(arch);
        out[k].tier = tiers[k].name;
        out[k].benchmarks = suite.size();
    }

    // Untimed warmup passes so one-time costs (host allocator,
    // page-in) don't land in the timed samples.
    for (int w = 0; w < warmups; ++w) {
        for (const TierSpec &tier : tiers) {
            runSuite(suite, arch, tier.maxTier, trace_capacity,
                     tier.jitTier);
        }
    }

    double calibration = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        std::vector<double> per_tier(tiers.size());
        for (size_t k = 0; k < tiers.size(); ++k) {
            uint64_t instr = 0;
            per_tier[k] = timeOnePass(suite, arch, tiers[k],
                                      trace_capacity, instr);
            out[k].guestInstructions = instr;
            out[k].nsPerInstr.push_back(per_tier[k]);
        }
        // Rep-local calibration: one kernel sample timed inside the
        // same repetition as the passes it normalizes, so a
        // shared-host load epoch hits pass and kernel alike and
        // cancels in the per-rep quotient. (A single end-of-suite
        // calibration is not enough — quick-clipped passes run in
        // tens of milliseconds, and steal bursts shorter than the
        // suite block used to skew the ratio instead of cancelling.)
        double cal = hostCalibrationSample();
        for (size_t k = 0; k < tiers.size(); ++k)
            out[k].normPerInstr.push_back(per_tier[k] / cal);
        if (rep == 0 || cal < calibration)
            calibration = cal;
    }
    for (SuiteTiming &t : out)
        t.calibration = calibration;
    return out;
}

/** First @p keep entries, independent of --quick (for quick_suites). */
std::vector<BenchmarkSpec>
firstN(const std::vector<BenchmarkSpec> &suite, size_t keep)
{
    if (suite.size() <= keep)
        return suite;
    return std::vector<BenchmarkSpec>(
        suite.begin(), suite.begin() + static_cast<long>(keep));
}

void
emitSuiteArray(std::FILE *out, const char *key,
               const std::vector<SuiteTiming> &timings, bool last)
{
    std::fprintf(out, "  \"%s\": [\n", key);
    for (size_t i = 0; i < timings.size(); ++i) {
        const SuiteTiming &t = timings[i];
        double median = medianOf(t.nsPerInstr);
        std::fprintf(
            out,
            "    {\"suite\": \"%s\", \"arch\": \"%s\", "
            "\"tier\": \"%s\", "
            "\"benchmarks\": %zu, \"guest_instructions\": %llu,\n"
            "     \"ns_per_instr_median\": %.6f, "
            "\"ns_per_instr_p50\": %.6f, "
            "\"ns_per_instr_p95\": %.6f, "
            "\"ns_per_instr_min\": %.6f,\n"
            "     \"calibration_ns_per_iter\": %.6f, "
            "\"normalized_ns_per_instr\": %.6f, "
            "\"ns_per_instr_norm_min\": %.6f}%s\n",
            t.suite.c_str(), t.arch.c_str(), t.tier.c_str(),
            t.benchmarks,
            static_cast<unsigned long long>(t.guestInstructions),
            median, percentileOf(t.nsPerInstr, 50.0),
            percentileOf(t.nsPerInstr, 95.0), minOf(t.nsPerInstr),
            t.calibration, median / t.calibration,
            minOf(t.normPerInstr), i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(out, "  ]%s\n", last ? "" : ",");
}

// ---------------------------------------------------------------
// Baseline comparison (--baseline=FILE)
// ---------------------------------------------------------------

struct BaselineEntry {
    std::string suite;
    std::string arch;
    /** Execution tier of the row; empty in pre-v4 baselines. */
    std::string tier;
    double normalized = 0.0;
    /** Raw min ns/instr over reps; 0 when absent (old baselines). */
    double minRaw = 0.0;
    /** Min over per-rep (ns/instr ÷ rep-local kernel sample); 0 when
     *  absent (baselines written before rep-local calibration). */
    double normMin = 0.0;
    /** Epoch-local calibration ns/iter; 0 when absent. */
    double calibration = 0.0;
    /** Benchmarks in the suite when the baseline was recorded; 0 when
     *  absent. A mismatch against the current suite means the
     *  baseline predates a suite-set change. */
    size_t benchmarks = 0;
};

bool
readFile(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

/** Value of `"key": "..."` inside @p obj, or empty. */
std::string
jsonString(const std::string &obj, const char *key)
{
    std::string pat = std::string("\"") + key + "\": \"";
    size_t at = obj.find(pat);
    if (at == std::string::npos)
        return "";
    at += pat.size();
    size_t end = obj.find('"', at);
    if (end == std::string::npos)
        return "";
    return obj.substr(at, end - at);
}

/** Value of `"key": <number>` inside @p obj, or @p fallback. */
double
jsonNumber(const std::string &obj, const char *key, double fallback)
{
    std::string pat = std::string("\"") + key + "\": ";
    size_t at = obj.find(pat);
    if (at == std::string::npos)
        return fallback;
    return std::strtod(obj.c_str() + at + pat.size(), nullptr);
}

/**
 * Parse the (suite, arch, normalized) entries of one `"key": [...]`
 * array in a self-authored BENCH_wallclock.json. The writer's format
 * is fixed (see emitSuiteArray), so a scanner is sufficient — no
 * general JSON parser needed.
 */
std::vector<BaselineEntry>
parseSuiteArray(const std::string &json, const char *key)
{
    std::vector<BaselineEntry> entries;
    std::string pat = std::string("\"") + key + "\": [";
    size_t at = json.find(pat);
    if (at == std::string::npos)
        return entries;
    size_t end = json.find(']', at);
    if (end == std::string::npos)
        return entries;
    std::string body = json.substr(at + pat.size(), end - at - pat.size());
    size_t pos = 0;
    while ((pos = body.find('{', pos)) != std::string::npos) {
        size_t close = body.find('}', pos);
        if (close == std::string::npos)
            break;
        std::string obj = body.substr(pos, close - pos + 1);
        BaselineEntry e;
        e.suite = jsonString(obj, "suite");
        e.arch = jsonString(obj, "arch");
        e.tier = jsonString(obj, "tier");
        e.normalized = jsonNumber(obj, "normalized_ns_per_instr", 0.0);
        e.minRaw = jsonNumber(obj, "ns_per_instr_min", 0.0);
        e.normMin = jsonNumber(obj, "ns_per_instr_norm_min", 0.0);
        e.calibration = jsonNumber(obj, "calibration_ns_per_iter", 0.0);
        e.benchmarks =
            static_cast<size_t>(jsonNumber(obj, "benchmarks", 0.0));
        if (!e.suite.empty() && !e.arch.empty() && e.normalized > 0.0)
            entries.push_back(e);
        pos = close + 1;
    }
    return entries;
}

/**
 * Diff @p current against the committed baseline at @p path.
 * Returns 0 if every (suite, arch) is within tolerance, 1 on
 * regression (always 0 when @p report_only).
 *
 * Gate statistic: min ns/instr over reps (load only inflates
 * samples, so the min estimates unloaded speed best). A suite is
 * REGRESSED only when both the raw min ratio and the normalized
 * ratio exceed the tolerance — real regressions move both, epoch
 * skew usually moves one. The normalized statistic is the min of
 * the per-rep (pass ÷ rep-local kernel sample) quotients when both
 * sides recorded it (ns_per_instr_norm_min), falling back to
 * min / end-of-suite calibration for older baselines.
 *
 * Staleness vs regression: a baseline that predates the current
 * schema or suite set (schema_version != 4, a (suite, arch, tier)
 * triple with no baseline row, or a per-suite benchmark-count
 * change) is not evidence of a slowdown — the numbers are simply no
 * longer comparable. Those runs print what they can, say why, and
 * return 0 with a regenerate reminder instead of failing the gate.
 * Genuine within-schema regressions still return 1.
 */
int
compareToBaseline(const char *path,
                  const std::vector<SuiteTiming> &current,
                  bool quick, bool report_only,
                  std::vector<std::pair<std::string, std::string>>
                      *flagged_groups = nullptr)
{
    std::string json;
    if (!readFile(path, json)) {
        std::fprintf(stderr, "cannot read baseline %s\n", path);
        return report_only ? 0 : 1;
    }
    // A quick run compares against the baseline's quick-clipped
    // entries (a full-mode baseline records them as "quick_suites";
    // a quick-mode baseline as "suites"). A full run compares
    // against full "suites".
    std::vector<BaselineEntry> base;
    if (quick) {
        base = parseSuiteArray(json, "quick_suites");
        if (base.empty() &&
            json.find("\"quick\": true") != std::string::npos)
            base = parseSuiteArray(json, "suites");
    } else {
        base = parseSuiteArray(json, "suites");
    }
    if (base.empty()) {
        // A readable baseline with nothing to compare predates the
        // current schema (e.g. no "quick_suites" array yet) — that is
        // staleness, not a regression.
        std::fprintf(stderr,
                     "baseline %s has no comparable entries for this "
                     "mode (%s); it predates the current schema — "
                     "regenerate it with a full ./bench/wallclock "
                     "run\n",
                     path, quick ? "quick" : "full");
        return 0;
    }

    double tolerance = 15.0;
    if (const char *env = std::getenv("NOMAP_PERF_TOLERANCE")) {
        double v = std::strtod(env, nullptr);
        if (v > 0.0)
            tolerance = v;
    }

    std::vector<std::string> stale_reasons;
    int base_schema =
        static_cast<int>(jsonNumber(json, "schema_version", 0.0));
    if (base_schema != 4) {
        stale_reasons.push_back(
            "baseline schema_version is " +
            std::to_string(base_schema) +
            ", current writer emits 4 (per-tier rows)");
    }

    // Fallback calibration for pre-v3 baselines that recorded only a
    // single run-level kernel timing (first occurrence in the file
    // is the top-level field).
    double base_global_cal =
        jsonNumber(json, "calibration_ns_per_iter", 0.0);

    std::printf("Baseline comparison vs %s (min ns/instr over reps, "
                "raw and normalized, tolerance %.1f%%%s)\n\n",
                path, tolerance,
                report_only ? ", report-only: sanitized build" : "");
    TextTable table;
    table.header({"Suite", "Arch", "Tier", "Base-min", "Cur-min",
                  "RawRatio", "NormRatio", "Verdict"});
    int regressions = 0;
    for (const SuiteTiming &t : current) {
        const BaselineEntry *match = nullptr;
        for (const BaselineEntry &e : base) {
            if (e.suite == t.suite && e.arch == t.arch &&
                e.tier == t.tier) {
                match = &e;
                break;
            }
        }
        double cur_min = minOf(t.nsPerInstr);
        if (!match) {
            stale_reasons.push_back("no baseline row for (" +
                                    t.suite + ", " + t.arch + ", " +
                                    t.tier + ")");
            table.row({t.suite, t.arch, t.tier, "-",
                       fmtDouble(cur_min, 3), "-", "-",
                       "no-baseline"});
            continue;
        }
        if (match->benchmarks > 0 &&
            match->benchmarks != t.benchmarks) {
            // The suite's benchmark set changed since the baseline
            // was recorded; its ns/instr is a different workload.
            stale_reasons.push_back(
                "(" + t.suite + ", " + t.arch + ") has " +
                std::to_string(t.benchmarks) +
                " benchmarks, baseline recorded " +
                std::to_string(match->benchmarks));
            table.row({t.suite, t.arch, t.tier,
                       fmtDouble(match->minRaw, 3),
                       fmtDouble(cur_min, 3), "-", "-",
                       "suite-changed"});
            continue;
        }
        double base_cal = match->calibration > 0.0
                              ? match->calibration
                              : base_global_cal;
        double raw_ratio = 0.0;
        if (match->minRaw > 0.0)
            raw_ratio = cur_min / match->minRaw;
        double norm_ratio;
        if (match->normMin > 0.0 && !t.normPerInstr.empty()) {
            // Preferred: both sides carry rep-local normalized
            // samples, whose min is stable across load epochs.
            norm_ratio = minOf(t.normPerInstr) / match->normMin;
        } else if (match->minRaw > 0.0 && base_cal > 0.0) {
            norm_ratio = (cur_min / t.calibration) /
                         (match->minRaw / base_cal);
        } else {
            // Old baseline without min fields: median-normalized
            // comparison is all that is available.
            norm_ratio = (medianOf(t.nsPerInstr) / t.calibration) /
                         match->normalized;
        }
        double limit = 1.0 + tolerance / 100.0;
        // Both metrics must agree before a regression is declared;
        // with only one metric available, it decides alone.
        bool regressed = norm_ratio > limit &&
                         (raw_ratio == 0.0 || raw_ratio > limit);
        if (regressed) {
            ++regressions;
            if (flagged_groups)
                flagged_groups->push_back({t.suite, t.arch});
        }
        table.row({t.suite, t.arch, t.tier,
                   match->minRaw > 0.0 ? fmtDouble(match->minRaw, 3)
                                       : "-",
                   fmtDouble(cur_min, 3),
                   raw_ratio > 0.0 ? fmtDouble(raw_ratio, 3) : "-",
                   fmtDouble(norm_ratio, 3),
                   regressed ? "REGRESSED" : "ok"});
    }
    std::printf("%s\n", table.render().c_str());
    if (!stale_reasons.empty()) {
        std::printf("baseline %s predates the current schema/suite "
                    "set:\n",
                    path);
        for (const std::string &r : stale_reasons)
            std::printf("  - %s\n", r.c_str());
        std::printf("comparison is report-only; regenerate the "
                    "committed baseline with a full ./bench/wallclock "
                    "run\n");
        return 0;
    }
    if (regressions > 0) {
        std::printf("%d suite(s) regressed beyond %.1f%%%s\n",
                    regressions, tolerance,
                    report_only ? " (ignored: sanitized build)" : "");
        return report_only ? 0 : 1;
    }
    std::printf("all suites within tolerance\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    bool traced = false;
    const char *baseline_path = nullptr;
    const char *tier_filter = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--traced") == 0)
            traced = true;
        else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
        else if (std::strncmp(argv[i], "--tier=", 7) == 0)
            tier_filter = argv[i] + 7;
    }

    // Tier set: all three by default; --tier=interp|ftl|jit restricts
    // to one for ad-hoc measurement (the baseline diff then reports
    // the missing rows as stale rather than failing).
    std::vector<TierSpec> tiers;
    for (const TierSpec &tier : kAllTiers) {
        if (!tier_filter || std::strcmp(tier_filter, tier.name) == 0)
            tiers.push_back(tier);
    }
    if (tiers.empty()) {
        std::fprintf(stderr,
                     "unknown --tier=%s (known: interp, ftl, jit)\n",
                     tier_filter);
        return 1;
    }

    const uint32_t trace_capacity = traced ? 65536 : 0;
    // 5 quick reps, not 3: the quick-clipped sunspider passes run in
    // tens of milliseconds, and on a shared host a min over 3 such
    // samples does not converge — the baseline gate then flags pure
    // load noise. Min over 5 keeps both sides of the ratio honest
    // while the quick run stays well under its CTest timeout.
    const int kQuickReps = 5, kQuickWarmups = 1;
    const int kFullReps = 7, kFullWarmups = 2;
    const bool quick = quickMode();
    const int reps = quick ? kQuickReps : kFullReps;
    const int warmups = quick ? kQuickWarmups : kFullWarmups;

    // Run-level calibration: recorded for the JSON header and the
    // console banner. The per-suite (epoch-local) calibrations taken
    // inside timeSuite are what normalization and the baseline gate
    // actually use.
    double calibration = hostCalibrationNsPerIter();
    std::printf("Host wall-clock per guest instruction "
                "(%d repetitions after %d warmup pass(es)%s%s)\n"
                "calibration kernel: %.4f ns/iter\n\n",
                reps, warmups, quick ? ", --quick" : "",
                traced ? ", --traced" : "", calibration);

    std::vector<SuiteTiming> timings;
    for (Architecture arch :
         {Architecture::Base, Architecture::NoMap}) {
        std::vector<SuiteTiming> rows = timeSuiteTiers(
            "sunspider", clipForQuick(sunspiderSuite()), arch, tiers,
            reps, warmups, trace_capacity);
        timings.insert(timings.end(), rows.begin(), rows.end());
        rows = timeSuiteTiers("kraken", clipForQuick(krakenSuite()),
                              arch, tiers, reps, warmups,
                              trace_capacity);
        timings.insert(timings.end(), rows.begin(), rows.end());
    }

    // Full runs also measure the quick-clipped suites, so the
    // committed full-mode baseline carries entries the fast --quick
    // perf-regression CTest can compare against.
    std::vector<SuiteTiming> quick_timings;
    if (!quick) {
        for (Architecture arch :
             {Architecture::Base, Architecture::NoMap}) {
            std::vector<SuiteTiming> rows = timeSuiteTiers(
                "sunspider", firstN(sunspiderSuite(), 2), arch, tiers,
                kQuickReps, kQuickWarmups, trace_capacity);
            quick_timings.insert(quick_timings.end(), rows.begin(),
                                 rows.end());
            rows = timeSuiteTiers("kraken", firstN(krakenSuite(), 2),
                                  arch, tiers, kQuickReps,
                                  kQuickWarmups, trace_capacity);
            quick_timings.insert(quick_timings.end(), rows.begin(),
                                 rows.end());
        }
    }

    TextTable table;
    table.header({"Suite", "Arch", "Tier", "GuestInstr",
                  "ns/instr med", "ns/instr p95", "ns/instr min",
                  "normalized"});
    for (const SuiteTiming &t : timings) {
        double median = medianOf(t.nsPerInstr);
        table.row({t.suite, t.arch, t.tier,
                   std::to_string(t.guestInstructions),
                   fmtDouble(median, 3),
                   fmtDouble(percentileOf(t.nsPerInstr, 95.0), 3),
                   fmtDouble(minOf(t.nsPerInstr), 3),
                   fmtDouble(median / t.calibration, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    // The interleaved ftl/jit ratio: both tiers' samples alternated
    // inside the same load epoch, so their min-over-reps ratio is the
    // defensible host-speedup number for the README perf-trajectory
    // table.
    bool any_pair = false;
    TextTable speedups;
    speedups.header({"Suite", "Arch", "ftl min", "jit min",
                     "speedup(min)", "speedup(med)"});
    for (const SuiteTiming &ftl : timings) {
        if (ftl.tier != "ftl")
            continue;
        for (const SuiteTiming &jit : timings) {
            if (jit.tier != "jit" || jit.suite != ftl.suite ||
                jit.arch != ftl.arch)
                continue;
            any_pair = true;
            speedups.row(
                {ftl.suite, ftl.arch,
                 fmtDouble(minOf(ftl.nsPerInstr), 3),
                 fmtDouble(minOf(jit.nsPerInstr), 3),
                 fmtDouble(minOf(ftl.nsPerInstr) /
                               minOf(jit.nsPerInstr),
                           3),
                 fmtDouble(medianOf(ftl.nsPerInstr) /
                               medianOf(jit.nsPerInstr),
                           3)});
        }
    }
    if (any_pair) {
        std::printf("Interleaved tier speedups (ftl vs jit, "
                    "same-epoch samples)\n%s\n",
                    speedups.render().c_str());
    }

    const char *path = "BENCH_wallclock.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"schema_version\": 4,\n"
                 "  \"quick\": %s,\n  \"traced\": %s,\n"
                 "  \"repetitions\": %d,\n"
                 "  \"warmup_passes\": %d,\n"
                 "  \"calibration_ns_per_iter\": %.6f,\n",
                 quick ? "true" : "false", traced ? "true" : "false",
                 reps, warmups, calibration);
    emitSuiteArray(out, "suites", timings, quick_timings.empty());
    if (!quick_timings.empty())
        emitSuiteArray(out, "quick_suites", quick_timings, true);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);

    if (baseline_path) {
#ifdef NOMAP_SANITIZED
        const bool report_only = true;
#else
        const bool report_only = false;
#endif
        // Accumulate-and-retry: a REGRESSED verdict re-measures the
        // flagged suite×arch groups and FOLDS the new samples into
        // the old rows before re-judging. The gate statistic is a
        // min, so for pure load noise (this container is cgroup
        // CPU-share throttled — co-tenant epochs never show in our
        // own loadavg) extra samples from a later epoch converge the
        // min down to true speed and the verdict flips to ok, while
        // a genuine code regression keeps the min high through every
        // retry. Only flagged groups re-run, so a clean gate pays
        // nothing.
        const int kGateRetries = 2;
        int rc = 0;
        for (int attempt = 0;; ++attempt) {
            std::vector<std::pair<std::string, std::string>> flagged;
            rc = compareToBaseline(baseline_path, timings, quick,
                                   report_only, &flagged);
            if (rc == 0 || attempt == kGateRetries)
                break;
            std::sort(flagged.begin(), flagged.end());
            flagged.erase(
                std::unique(flagged.begin(), flagged.end()),
                flagged.end());
            std::printf("re-measuring %zu flagged group(s) to "
                        "separate load noise from regression "
                        "(retry %d of %d)\n\n",
                        flagged.size(), attempt + 1, kGateRetries);
            for (const auto &group : flagged) {
                Architecture arch = Architecture::Base;
                for (Architecture a :
                     {Architecture::Base, Architecture::NoMap}) {
                    if (group.second == architectureName(a))
                        arch = a;
                }
                std::vector<SuiteTiming> rows = timeSuiteTiers(
                    group.first,
                    group.first == "sunspider"
                        ? clipForQuick(sunspiderSuite())
                        : clipForQuick(krakenSuite()),
                    arch, tiers, reps, 0, trace_capacity);
                for (const SuiteTiming &row : rows) {
                    for (SuiteTiming &t : timings) {
                        if (t.suite != row.suite ||
                            t.arch != row.arch ||
                            t.tier != row.tier)
                            continue;
                        t.nsPerInstr.insert(t.nsPerInstr.end(),
                                            row.nsPerInstr.begin(),
                                            row.nsPerInstr.end());
                        t.normPerInstr.insert(
                            t.normPerInstr.end(),
                            row.normPerInstr.begin(),
                            row.normPerInstr.end());
                        if (row.calibration < t.calibration)
                            t.calibration = row.calibration;
                    }
                }
            }
        }
        return rc;
    }
    return 0;
}
