/**
 * @file
 * Host wall-clock throughput of the simulator itself (not a paper
 * artifact): nanoseconds of host time per simulated guest
 * instruction, per suite, reported as median/p50/p95 over repeated
 * full passes after untimed warmup. This is the regression gauge for
 * executor-dispatch and accounting changes — guest-visible stats are
 * pinned bit-identical by test_accounting_diff, so the only thing
 * allowed to move here is host speed.
 *
 * To make the committed baseline portable across machines, a fixed
 * integer/memory calibration kernel is timed immediately after each
 * suite's passes, and `normalized_ns_per_instr` = median ns/instr
 * divided by that *adjacent* kernel ns/iteration. Measuring the
 * kernel next to the suite (rather than once per run) matters on
 * shared hosts: CPU-steal load comes in multi-second epochs, and a
 * calibration taken in a different epoch than the suite would skew
 * the ratio instead of cancelling the load.
 *
 * Writes BENCH_wallclock.json (schema_version 3) into the working
 * directory. Full runs additionally measure the quick-clipped suites
 * and record them under "quick_suites", so a full-mode baseline can
 * be checked by the fast `--quick` perf-regression CTest. `--traced`
 * runs every pass with the engine trace ring enabled
 * (EngineConfig::traceCapacity) to gauge the overhead of event
 * emission; the untraced numbers are what the check.sh envelope and
 * the committed baseline guard.
 *
 * `--baseline=FILE` diffs this run against a previously committed
 * BENCH_wallclock.json. The gate statistic is the *minimum* ns/instr
 * over the repetitions (host load only ever inflates a sample, so
 * the min is the most noise-robust estimate of true speed), and a
 * (suite, arch) only fails when BOTH the raw min ratio and the
 * calibration-normalized min ratio exceed NOMAP_PERF_TOLERANCE
 * percent (default 15): a genuine code regression shows through
 * both metrics, while an epoch mismatch between run and baseline
 * typically distorts only one. Exit code 1 on regression. Under
 * sanitizer builds (NOMAP_SANITIZED) the diff is report-only —
 * sanitizer instrumentation skews the engine and the calibration
 * kernel differently, so the ratio is not meaningful there.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

/** Nearest-rank percentile of a sample set; 0 if empty. */
double
percentileOf(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = std::ceil(p / 100.0 * static_cast<double>(xs.size()));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    if (idx >= xs.size())
        idx = xs.size() - 1;
    return xs[idx];
}

/**
 * ns per iteration of a fixed xorshift64 + array-walk kernel (best of
 * three runs). ALU work plus L1 traffic, like the interpreter loop,
 * so it scales with host speed the same way the measured ns/instr
 * does and their ratio is machine-portable.
 */
double
hostCalibrationNsPerIter()
{
    static uint64_t lanes[1024];
    constexpr uint64_t kIters = 1ull << 24;
    double best = 0.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        std::memset(lanes, 0, sizeof lanes);
        uint64_t x = 0x9e3779b97f4a7c15ull;
        auto start = std::chrono::steady_clock::now();
        for (uint64_t i = 0; i < kIters; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            lanes[i & 1023] += x;
        }
        auto end = std::chrono::steady_clock::now();
        // Volatile sink keeps the kernel from being optimized away.
        volatile uint64_t sink = x + lanes[0];
        (void)sink;
        double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count());
        double per = ns / static_cast<double>(kIters);
        if (attempt == 0 || per < best)
            best = per;
    }
    return best;
}

struct SuiteTiming {
    std::string suite;
    std::string arch;
    size_t benchmarks = 0;
    uint64_t guestInstructions = 0;
    std::vector<double> nsPerInstr;
    /** Calibration kernel ns/iter timed right after this suite. */
    double calibration = 0.0;
};

SuiteTiming
timeSuite(const std::string &name,
          const std::vector<BenchmarkSpec> &suite, Architecture arch,
          int reps, int warmups, uint32_t trace_capacity)
{
    SuiteTiming t;
    t.suite = name;
    t.arch = architectureName(arch);
    t.benchmarks = suite.size();

    // Untimed warmup passes so one-time costs (host allocator,
    // page-in) don't land in the timed samples.
    for (int w = 0; w < warmups; ++w)
        runSuite(suite, arch, Tier::Ftl, trace_capacity);

    for (int rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        std::vector<RunResult> runs =
            runSuite(suite, arch, Tier::Ftl, trace_capacity);
        auto end = std::chrono::steady_clock::now();
        uint64_t instr = 0;
        for (const RunResult &r : runs)
            instr += r.stats.totalInstructions();
        double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count());
        t.guestInstructions = instr;
        t.nsPerInstr.push_back(ns / static_cast<double>(instr));
    }
    // Epoch-local calibration: timed here, adjacent to the suite, so
    // shared-host load epochs hit suite and kernel alike and cancel
    // in the normalized ratio.
    t.calibration = hostCalibrationNsPerIter();
    return t;
}

/** First @p keep entries, independent of --quick (for quick_suites). */
std::vector<BenchmarkSpec>
firstN(const std::vector<BenchmarkSpec> &suite, size_t keep)
{
    if (suite.size() <= keep)
        return suite;
    return std::vector<BenchmarkSpec>(
        suite.begin(), suite.begin() + static_cast<long>(keep));
}

void
emitSuiteArray(std::FILE *out, const char *key,
               const std::vector<SuiteTiming> &timings, bool last)
{
    std::fprintf(out, "  \"%s\": [\n", key);
    for (size_t i = 0; i < timings.size(); ++i) {
        const SuiteTiming &t = timings[i];
        double median = medianOf(t.nsPerInstr);
        std::fprintf(
            out,
            "    {\"suite\": \"%s\", \"arch\": \"%s\", "
            "\"benchmarks\": %zu, \"guest_instructions\": %llu,\n"
            "     \"ns_per_instr_median\": %.6f, "
            "\"ns_per_instr_p50\": %.6f, "
            "\"ns_per_instr_p95\": %.6f, "
            "\"ns_per_instr_min\": %.6f,\n"
            "     \"calibration_ns_per_iter\": %.6f, "
            "\"normalized_ns_per_instr\": %.6f}%s\n",
            t.suite.c_str(), t.arch.c_str(), t.benchmarks,
            static_cast<unsigned long long>(t.guestInstructions),
            median, percentileOf(t.nsPerInstr, 50.0),
            percentileOf(t.nsPerInstr, 95.0), minOf(t.nsPerInstr),
            t.calibration, median / t.calibration,
            i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(out, "  ]%s\n", last ? "" : ",");
}

// ---------------------------------------------------------------
// Baseline comparison (--baseline=FILE)
// ---------------------------------------------------------------

struct BaselineEntry {
    std::string suite;
    std::string arch;
    double normalized = 0.0;
    /** Raw min ns/instr over reps; 0 when absent (old baselines). */
    double minRaw = 0.0;
    /** Epoch-local calibration ns/iter; 0 when absent. */
    double calibration = 0.0;
    /** Benchmarks in the suite when the baseline was recorded; 0 when
     *  absent. A mismatch against the current suite means the
     *  baseline predates a suite-set change. */
    size_t benchmarks = 0;
};

bool
readFile(const char *path, std::string &out)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

/** Value of `"key": "..."` inside @p obj, or empty. */
std::string
jsonString(const std::string &obj, const char *key)
{
    std::string pat = std::string("\"") + key + "\": \"";
    size_t at = obj.find(pat);
    if (at == std::string::npos)
        return "";
    at += pat.size();
    size_t end = obj.find('"', at);
    if (end == std::string::npos)
        return "";
    return obj.substr(at, end - at);
}

/** Value of `"key": <number>` inside @p obj, or @p fallback. */
double
jsonNumber(const std::string &obj, const char *key, double fallback)
{
    std::string pat = std::string("\"") + key + "\": ";
    size_t at = obj.find(pat);
    if (at == std::string::npos)
        return fallback;
    return std::strtod(obj.c_str() + at + pat.size(), nullptr);
}

/**
 * Parse the (suite, arch, normalized) entries of one `"key": [...]`
 * array in a self-authored BENCH_wallclock.json. The writer's format
 * is fixed (see emitSuiteArray), so a scanner is sufficient — no
 * general JSON parser needed.
 */
std::vector<BaselineEntry>
parseSuiteArray(const std::string &json, const char *key)
{
    std::vector<BaselineEntry> entries;
    std::string pat = std::string("\"") + key + "\": [";
    size_t at = json.find(pat);
    if (at == std::string::npos)
        return entries;
    size_t end = json.find(']', at);
    if (end == std::string::npos)
        return entries;
    std::string body = json.substr(at + pat.size(), end - at - pat.size());
    size_t pos = 0;
    while ((pos = body.find('{', pos)) != std::string::npos) {
        size_t close = body.find('}', pos);
        if (close == std::string::npos)
            break;
        std::string obj = body.substr(pos, close - pos + 1);
        BaselineEntry e;
        e.suite = jsonString(obj, "suite");
        e.arch = jsonString(obj, "arch");
        e.normalized = jsonNumber(obj, "normalized_ns_per_instr", 0.0);
        e.minRaw = jsonNumber(obj, "ns_per_instr_min", 0.0);
        e.calibration = jsonNumber(obj, "calibration_ns_per_iter", 0.0);
        e.benchmarks =
            static_cast<size_t>(jsonNumber(obj, "benchmarks", 0.0));
        if (!e.suite.empty() && !e.arch.empty() && e.normalized > 0.0)
            entries.push_back(e);
        pos = close + 1;
    }
    return entries;
}

/**
 * Diff @p current against the committed baseline at @p path.
 * Returns 0 if every (suite, arch) is within tolerance, 1 on
 * regression (always 0 when @p report_only).
 *
 * Gate statistic: min ns/instr over reps (load only inflates
 * samples, so the min estimates unloaded speed best). A suite is
 * REGRESSED only when both the raw min ratio and the normalized
 * (min / epoch-local calibration) ratio exceed the tolerance —
 * real regressions move both, epoch skew usually moves one.
 *
 * Staleness vs regression: a baseline that predates the current
 * schema or suite set (schema_version != 3, a (suite, arch) pair
 * with no baseline row, or a per-suite benchmark-count change) is
 * not evidence of a slowdown — the numbers are simply no longer
 * comparable. Those runs print what they can, say why, and return
 * 0 with a regenerate reminder instead of failing the gate.
 * Genuine within-schema regressions still return 1.
 */
int
compareToBaseline(const char *path,
                  const std::vector<SuiteTiming> &current,
                  bool quick, bool report_only)
{
    std::string json;
    if (!readFile(path, json)) {
        std::fprintf(stderr, "cannot read baseline %s\n", path);
        return report_only ? 0 : 1;
    }
    // A quick run compares against the baseline's quick-clipped
    // entries (a full-mode baseline records them as "quick_suites";
    // a quick-mode baseline as "suites"). A full run compares
    // against full "suites".
    std::vector<BaselineEntry> base;
    if (quick) {
        base = parseSuiteArray(json, "quick_suites");
        if (base.empty() &&
            json.find("\"quick\": true") != std::string::npos)
            base = parseSuiteArray(json, "suites");
    } else {
        base = parseSuiteArray(json, "suites");
    }
    if (base.empty()) {
        // A readable baseline with nothing to compare predates the
        // current schema (e.g. no "quick_suites" array yet) — that is
        // staleness, not a regression.
        std::fprintf(stderr,
                     "baseline %s has no comparable entries for this "
                     "mode (%s); it predates the current schema — "
                     "regenerate it with a full ./bench/wallclock "
                     "run\n",
                     path, quick ? "quick" : "full");
        return 0;
    }

    double tolerance = 15.0;
    if (const char *env = std::getenv("NOMAP_PERF_TOLERANCE")) {
        double v = std::strtod(env, nullptr);
        if (v > 0.0)
            tolerance = v;
    }

    std::vector<std::string> stale_reasons;
    int base_schema =
        static_cast<int>(jsonNumber(json, "schema_version", 0.0));
    if (base_schema != 3) {
        stale_reasons.push_back(
            "baseline schema_version is " +
            std::to_string(base_schema) +
            ", current writer emits 3");
    }

    // Fallback calibration for pre-v3 baselines that recorded only a
    // single run-level kernel timing (first occurrence in the file
    // is the top-level field).
    double base_global_cal =
        jsonNumber(json, "calibration_ns_per_iter", 0.0);

    std::printf("Baseline comparison vs %s (min ns/instr over reps, "
                "raw and normalized, tolerance %.1f%%%s)\n\n",
                path, tolerance,
                report_only ? ", report-only: sanitized build" : "");
    TextTable table;
    table.header({"Suite", "Arch", "Base-min", "Cur-min", "RawRatio",
                  "NormRatio", "Verdict"});
    int regressions = 0;
    for (const SuiteTiming &t : current) {
        const BaselineEntry *match = nullptr;
        for (const BaselineEntry &e : base) {
            if (e.suite == t.suite && e.arch == t.arch) {
                match = &e;
                break;
            }
        }
        double cur_min = minOf(t.nsPerInstr);
        if (!match) {
            stale_reasons.push_back("no baseline row for (" +
                                    t.suite + ", " + t.arch + ")");
            table.row({t.suite, t.arch, "-", fmtDouble(cur_min, 3),
                       "-", "-", "no-baseline"});
            continue;
        }
        if (match->benchmarks > 0 &&
            match->benchmarks != t.benchmarks) {
            // The suite's benchmark set changed since the baseline
            // was recorded; its ns/instr is a different workload.
            stale_reasons.push_back(
                "(" + t.suite + ", " + t.arch + ") has " +
                std::to_string(t.benchmarks) +
                " benchmarks, baseline recorded " +
                std::to_string(match->benchmarks));
            table.row({t.suite, t.arch, fmtDouble(match->minRaw, 3),
                       fmtDouble(cur_min, 3), "-", "-",
                       "suite-changed"});
            continue;
        }
        double base_cal = match->calibration > 0.0
                              ? match->calibration
                              : base_global_cal;
        double raw_ratio = 0.0;
        if (match->minRaw > 0.0)
            raw_ratio = cur_min / match->minRaw;
        double norm_ratio;
        if (match->minRaw > 0.0 && base_cal > 0.0) {
            norm_ratio = (cur_min / t.calibration) /
                         (match->minRaw / base_cal);
        } else {
            // Old baseline without min fields: median-normalized
            // comparison is all that is available.
            norm_ratio = (medianOf(t.nsPerInstr) / t.calibration) /
                         match->normalized;
        }
        double limit = 1.0 + tolerance / 100.0;
        // Both metrics must agree before a regression is declared;
        // with only one metric available, it decides alone.
        bool regressed = norm_ratio > limit &&
                         (raw_ratio == 0.0 || raw_ratio > limit);
        if (regressed)
            ++regressions;
        table.row({t.suite, t.arch,
                   match->minRaw > 0.0 ? fmtDouble(match->minRaw, 3)
                                       : "-",
                   fmtDouble(cur_min, 3),
                   raw_ratio > 0.0 ? fmtDouble(raw_ratio, 3) : "-",
                   fmtDouble(norm_ratio, 3),
                   regressed ? "REGRESSED" : "ok"});
    }
    std::printf("%s\n", table.render().c_str());
    if (!stale_reasons.empty()) {
        std::printf("baseline %s predates the current schema/suite "
                    "set:\n",
                    path);
        for (const std::string &r : stale_reasons)
            std::printf("  - %s\n", r.c_str());
        std::printf("comparison is report-only; regenerate the "
                    "committed baseline with a full ./bench/wallclock "
                    "run\n");
        return 0;
    }
    if (regressions > 0) {
        std::printf("%d suite(s) regressed beyond %.1f%%%s\n",
                    regressions, tolerance,
                    report_only ? " (ignored: sanitized build)" : "");
        return report_only ? 0 : 1;
    }
    std::printf("all suites within tolerance\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    bool traced = false;
    const char *baseline_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--traced") == 0)
            traced = true;
        else if (std::strncmp(argv[i], "--baseline=", 11) == 0)
            baseline_path = argv[i] + 11;
    }
    const uint32_t trace_capacity = traced ? 65536 : 0;
    const int kQuickReps = 3, kQuickWarmups = 1;
    const int kFullReps = 7, kFullWarmups = 2;
    const bool quick = quickMode();
    const int reps = quick ? kQuickReps : kFullReps;
    const int warmups = quick ? kQuickWarmups : kFullWarmups;

    // Run-level calibration: recorded for the JSON header and the
    // console banner. The per-suite (epoch-local) calibrations taken
    // inside timeSuite are what normalization and the baseline gate
    // actually use.
    double calibration = hostCalibrationNsPerIter();
    std::printf("Host wall-clock per guest instruction "
                "(%d repetitions after %d warmup pass(es)%s%s)\n"
                "calibration kernel: %.4f ns/iter\n\n",
                reps, warmups, quick ? ", --quick" : "",
                traced ? ", --traced" : "", calibration);

    std::vector<SuiteTiming> timings;
    for (Architecture arch :
         {Architecture::Base, Architecture::NoMap}) {
        timings.push_back(timeSuite("sunspider",
                                    clipForQuick(sunspiderSuite()),
                                    arch, reps, warmups,
                                    trace_capacity));
        timings.push_back(timeSuite("kraken",
                                    clipForQuick(krakenSuite()), arch,
                                    reps, warmups, trace_capacity));
    }

    // Full runs also measure the quick-clipped suites, so the
    // committed full-mode baseline carries entries the fast --quick
    // perf-regression CTest can compare against.
    std::vector<SuiteTiming> quick_timings;
    if (!quick) {
        for (Architecture arch :
             {Architecture::Base, Architecture::NoMap}) {
            quick_timings.push_back(
                timeSuite("sunspider", firstN(sunspiderSuite(), 2),
                          arch, kQuickReps, kQuickWarmups,
                          trace_capacity));
            quick_timings.push_back(
                timeSuite("kraken", firstN(krakenSuite(), 2), arch,
                          kQuickReps, kQuickWarmups, trace_capacity));
        }
    }

    TextTable table;
    table.header({"Suite", "Arch", "GuestInstr", "ns/instr med",
                  "ns/instr p95", "ns/instr min", "normalized"});
    for (const SuiteTiming &t : timings) {
        double median = medianOf(t.nsPerInstr);
        table.row({t.suite, t.arch,
                   std::to_string(t.guestInstructions),
                   fmtDouble(median, 3),
                   fmtDouble(percentileOf(t.nsPerInstr, 95.0), 3),
                   fmtDouble(minOf(t.nsPerInstr), 3),
                   fmtDouble(median / t.calibration, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    const char *path = "BENCH_wallclock.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"schema_version\": 3,\n"
                 "  \"quick\": %s,\n  \"traced\": %s,\n"
                 "  \"repetitions\": %d,\n"
                 "  \"warmup_passes\": %d,\n"
                 "  \"calibration_ns_per_iter\": %.6f,\n",
                 quick ? "true" : "false", traced ? "true" : "false",
                 reps, warmups, calibration);
    emitSuiteArray(out, "suites", timings, quick_timings.empty());
    if (!quick_timings.empty())
        emitSuiteArray(out, "quick_suites", quick_timings, true);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);

    if (baseline_path) {
#ifdef NOMAP_SANITIZED
        const bool report_only = true;
#else
        const bool report_only = false;
#endif
        return compareToBaseline(baseline_path, timings, quick,
                                 report_only);
    }
    return 0;
}
