/**
 * @file
 * Host wall-clock throughput of the simulator itself (not a paper
 * artifact): nanoseconds of host time per simulated guest
 * instruction, per suite, reported as p50/p95 over repeated full
 * passes. This is the regression gauge for executor-dispatch and
 * accounting changes — guest-visible stats are pinned bit-identical
 * by test_accounting_diff, so the only thing allowed to move here is
 * host speed.
 *
 * Writes BENCH_wallclock.json into the working directory. `--quick`
 * clips the suites and repetition count for the perf-smoke CTest
 * entry. `--traced` runs every pass with the engine trace ring
 * enabled (EngineConfig::traceCapacity) to gauge the overhead of
 * event emission; the default (untraced) mode is the number the
 * <2%-regression envelope in scripts/check.sh guards.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "harness.h"

using namespace nomap;
using namespace nomap::bench;

namespace {

/** Nearest-rank percentile of a sample set; 0 if empty. */
double
percentileOf(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    double rank = std::ceil(p / 100.0 * static_cast<double>(xs.size()));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    if (idx >= xs.size())
        idx = xs.size() - 1;
    return xs[idx];
}

struct SuiteTiming {
    std::string suite;
    std::string arch;
    size_t benchmarks = 0;
    uint64_t guestInstructions = 0;
    std::vector<double> nsPerInstr;
};

SuiteTiming
timeSuite(const std::string &name,
          const std::vector<BenchmarkSpec> &suite, Architecture arch,
          int reps, uint32_t trace_capacity)
{
    SuiteTiming t;
    t.suite = name;
    t.arch = architectureName(arch);
    t.benchmarks = suite.size();

    // One untimed warmup pass so one-time costs (host allocator,
    // page-in) don't land in the first sample.
    runSuite(suite, arch, Tier::Ftl, trace_capacity);

    for (int rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        std::vector<RunResult> runs =
            runSuite(suite, arch, Tier::Ftl, trace_capacity);
        auto end = std::chrono::steady_clock::now();
        uint64_t instr = 0;
        for (const RunResult &r : runs)
            instr += r.stats.totalInstructions();
        double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count());
        t.guestInstructions = instr;
        t.nsPerInstr.push_back(ns / static_cast<double>(instr));
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    bool traced = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--traced") == 0)
            traced = true;
    }
    const uint32_t trace_capacity = traced ? 65536 : 0;
    const int reps = quickMode() ? 2 : 7;
    std::printf("Host wall-clock per guest instruction "
                "(%d repetitions%s%s)\n\n",
                reps, quickMode() ? ", --quick" : "",
                traced ? ", --traced" : "");

    std::vector<SuiteTiming> timings;
    for (Architecture arch :
         {Architecture::Base, Architecture::NoMap}) {
        timings.push_back(timeSuite("sunspider",
                                    clipForQuick(sunspiderSuite()),
                                    arch, reps, trace_capacity));
        timings.push_back(timeSuite("kraken",
                                    clipForQuick(krakenSuite()), arch,
                                    reps, trace_capacity));
    }

    TextTable table;
    table.header({"Suite", "Arch", "GuestInstr", "ns/instr p50",
                  "ns/instr p95", "ns/instr min"});
    for (const SuiteTiming &t : timings) {
        table.row({t.suite, t.arch,
                   std::to_string(t.guestInstructions),
                   fmtDouble(percentileOf(t.nsPerInstr, 50.0), 3),
                   fmtDouble(percentileOf(t.nsPerInstr, 95.0), 3),
                   fmtDouble(minOf(t.nsPerInstr), 3)});
    }
    std::printf("%s\n", table.render().c_str());

    const char *path = "BENCH_wallclock.json";
    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"quick\": %s,\n  \"traced\": %s,\n"
                 "  \"repetitions\": %d,\n",
                 quickMode() ? "true" : "false",
                 traced ? "true" : "false", reps);
    std::fprintf(out, "  \"suites\": [\n");
    for (size_t i = 0; i < timings.size(); ++i) {
        const SuiteTiming &t = timings[i];
        std::fprintf(
            out,
            "    {\"suite\": \"%s\", \"arch\": \"%s\", "
            "\"benchmarks\": %zu, \"guest_instructions\": %llu,\n"
            "     \"ns_per_instr_p50\": %.6f, "
            "\"ns_per_instr_p95\": %.6f, "
            "\"ns_per_instr_min\": %.6f}%s\n",
            t.suite.c_str(), t.arch.c_str(), t.benchmarks,
            static_cast<unsigned long long>(t.guestInstructions),
            percentileOf(t.nsPerInstr, 50.0),
            percentileOf(t.nsPerInstr, 95.0), minOf(t.nsPerInstr),
            i + 1 < timings.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
    return 0;
}
