/**
 * @file
 * Deoptimization / abort inspector.
 *
 * Feeds a function corner-case inputs *after* it has been compiled by
 * the top tier, and traces what happens under each architecture:
 *  - Base: the failing check's SMP fires and execution OSR-exits to
 *    the Baseline tier mid-function;
 *  - NoMap: the failing check is a transactional abort — the HTM
 *    rolls memory back and execution re-enters Baseline at the loop
 *    head ("Entry3", paper Figure 5).
 *
 * The inspected corner cases: an int32 accumulator overflowing, and
 * an object whose shape differs from the trained one.
 */

#include <cstdio>

#include "engine/engine.h"

using namespace nomap;

namespace {

void
inspect(const char *title, const char *program)
{
    std::printf("=== %s ===\n", title);
    for (Architecture arch :
         {Architecture::Base, Architecture::NoMap}) {
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EngineResult r = engine.run(program);
        std::printf("%-8s result=%-14s deopts=%llu  tx aborts=%llu "
                    "(check %llu, SOF %llu)  commits=%llu\n",
                    architectureName(arch), r.resultString.c_str(),
                    static_cast<unsigned long long>(r.stats.deopts),
                    static_cast<unsigned long long>(r.stats.txAborts),
                    static_cast<unsigned long long>(
                        r.stats.txAbortsCheck),
                    static_cast<unsigned long long>(r.stats.txAbortsSof),
                    static_cast<unsigned long long>(r.stats.txCommits));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    inspect("integer overflow after training", R"JS(
function accumulate(step, n) {
    var acc = 0;
    for (var i = 0; i < n; i++) acc = acc + step;
    return acc;
}
var out = 0;
for (var r = 0; r < 120; r++) out = accumulate(1000, 50);
out = accumulate(1000000000, 50);
result = out;
)JS");

    inspect("shape change after training", R"JS(
function readX(p, n) {
    var acc = 0;
    for (var i = 0; i < n; i++) acc += p.x;
    return acc;
}
var trained = {x: 3, y: 4};
var out = 0;
for (var r = 0; r < 120; r++) out = readX(trained, 40);
var different = {y: 9, x: 5};
out += readX(different, 40);
result = out;
)JS");

    inspect("out-of-bounds read after training", R"JS(
function sumFirst(arr, k) {
    var acc = 0;
    for (var i = 0; i < k; i++) {
        var v = arr[i];
        if (v === undefined) acc += 1000;
        else acc += v;
    }
    return acc;
}
var data = [];
for (var i = 0; i < 64; i++) data[i] = 2;
var out = 0;
for (var r = 0; r < 120; r++) out = sumFirst(data, 64);
out = sumFirst(data, 66);
result = out;
)JS");
    return 0;
}
