/**
 * @file
 * Serving-mode demo, in-process or over TCP.
 *
 * Usage:
 *   nomap_serve [--workers M] [--requests N] [--arch ARCH]
 *               [--timeout-ms T] [--no-cache] [--trace FILE]
 *   nomap_serve --listen PORT [--shards S] [--loops L]
 *               [--shed-depth D] ...
 *   nomap_serve --connect HOST:PORT [--requests N] [--arch ARCH]
 *   nomap_serve --loopback [--shards S] [--loops L] [--requests N]
 *
 * Default mode drives N requests through the in-process
 * ExecutionService and prints the pool metrics JSON. --listen serves
 * the sharded pool over TCP until SIGINT/SIGTERM. --connect is the
 * matching driver client: it sends the Shootout kernel mix, then
 * checks every response bit-for-bit (result string, printed output,
 * stats digest) against a sequential in-process Engine::run of the
 * same source — the differential guarantee, asserted across the wire.
 * --loopback runs both ends in one process as a self-test.
 *
 * --trace FILE enables per-request tracing (EngineConfig::
 * traceCapacity), writes the combined Chrome trace_event JSON of all
 * requests to FILE (load it in Perfetto / chrome://tracing), and
 * prints the abort-attribution report to stdout.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "service/engine_pool.h"
#include "suites/shootout.h"
#include "trace/trace.h"

using namespace nomap;

namespace {

Architecture
parseArch(const std::string &name)
{
    if (name == "base") return Architecture::Base;
    if (name == "nomap_s") return Architecture::NoMapS;
    if (name == "nomap_b") return Architecture::NoMapB;
    if (name == "nomap") return Architecture::NoMap;
    if (name == "nomap_bc") return Architecture::NoMapBC;
    if (name == "nomap_rtm") return Architecture::NoMapRTM;
    std::fprintf(stderr, "unknown --arch '%s'\n", name.c_str());
    std::exit(1);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: nomap_serve [--workers M] [--requests N]\n"
        "                   [--arch base|nomap_s|nomap_b|nomap|"
        "nomap_bc|nomap_rtm]\n"
        "                   [--timeout-ms T] [--no-cache] "
        "[--trace FILE]\n"
        "       nomap_serve --listen PORT [--shards S] [--loops L]\n"
        "                   [--shed-depth D]\n"
        "       nomap_serve --connect HOST:PORT [--requests N]\n"
        "       nomap_serve --loopback [--shards S] [--loops L]\n"
        "                   [--requests N]\n");
    std::exit(1);
}

volatile std::sig_atomic_t gStopRequested = 0;

void
onSignal(int)
{
    gStopRequested = 1;
}

/**
 * Drive @p num_requests of the kernel mix through a live server and
 * verify each response bit-for-bit against a sequential in-process
 * Engine::run. Returns the number of mismatches.
 */
size_t
driveClient(const std::string &host, uint16_t port,
            size_t num_requests, Architecture arch)
{
    const std::vector<ShootoutKernel> &kernels = shootoutSuite();

    // Sequential in-process reference for the differential check.
    struct Reference {
        std::string resultString;
        std::string printed;
        WireResponse digest;
    };
    std::vector<Reference> refs;
    refs.reserve(kernels.size());
    for (const ShootoutKernel &kernel : kernels) {
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EngineResult r = engine.run(kernel.jsSource);
        Response asResponse;
        asResponse.stats = r.stats;
        Reference ref;
        ref.resultString = r.resultString;
        ref.printed = r.printed;
        ref.digest = responseToWire(asResponse);
        refs.push_back(std::move(ref));
    }

    NetClient client;
    client.connect(host, port);

    // Pipeline everything, then collect; responses arrive in
    // completion order and are matched back by id.
    for (size_t i = 0; i < num_requests; ++i) {
        WireRequest request;
        request.id = i + 1;
        request.arch = static_cast<uint8_t>(arch);
        request.tenant = "tenant-" + std::to_string(i % 4);
        request.source = kernels[i % kernels.size()].jsSource;
        client.sendRequest(request);
    }
    std::map<uint64_t, WireResponse> byId;
    for (size_t i = 0; i < num_requests; ++i) {
        WireResponse response = client.recvResponse();
        byId[response.id] = response;
    }

    size_t failed = 0;
    for (size_t i = 0; i < num_requests; ++i) {
        auto it = byId.find(i + 1);
        if (it == byId.end()) {
            std::fprintf(stderr, "request %zu: no response\n", i);
            ++failed;
            continue;
        }
        const WireResponse &got = it->second;
        const Reference &ref = refs[i % kernels.size()];
        if (got.status != static_cast<uint8_t>(ResponseStatus::Ok)) {
            std::fprintf(stderr, "request %zu: status %u: %s\n", i,
                         static_cast<unsigned>(got.status),
                         got.error.c_str());
            ++failed;
            continue;
        }
        bool same = got.resultString == ref.resultString &&
                    got.printed == ref.printed &&
                    got.instructions == ref.digest.instructions &&
                    got.checks == ref.digest.checks &&
                    got.cyclesBits == ref.digest.cyclesBits &&
                    got.txCommits == ref.digest.txCommits &&
                    got.txAborts == ref.digest.txAborts &&
                    got.deopts == ref.digest.deopts;
        if (!same) {
            std::fprintf(stderr,
                         "request %zu: differs from in-process run "
                         "(result %s want %s)\n",
                         i, got.resultString.c_str(),
                         ref.resultString.c_str());
            ++failed;
        }
    }
    std::printf("%zu/%zu responses bit-identical to in-process "
                "execution\n",
                num_requests - failed, num_requests);
    return failed;
}

int
serverMode(uint16_t port, size_t shards, size_t loops,
           size_t shed_depth, size_t workers)
{
    ServerConfig config;
    config.port = port;
    config.loops = loops;
    config.service.shards = shards;
    config.service.shedQueueDepth = shed_depth;
    config.service.shard.workers = workers;
    NoMapServer server(std::move(config));
    server.start();
    std::printf("listening on %s:%u (%zu shards, %zu loop%s%s, %s "
                "backend)\n",
                server.config().bindHost.c_str(),
                static_cast<unsigned>(server.port()), shards,
                server.loopCount(),
                server.loopCount() == 1 ? "" : "s",
                server.reuseportActive() ? " via SO_REUSEPORT" : "",
                Poller::backendName());
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!gStopRequested)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    std::printf("%s\n", server.metricsJson().c_str());
    return 0;
}

int
loopbackMode(size_t shards, size_t loops, size_t shed_depth,
             size_t workers, size_t num_requests, Architecture arch)
{
    ServerConfig config;
    config.loops = loops;
    config.service.shards = shards;
    config.service.shedQueueDepth = shed_depth;
    config.service.shard.workers = workers;
    NoMapServer server(std::move(config));
    server.start();
    std::printf("loopback server on port %u (%zu shards, %zu "
                "loop%s%s, %s backend)\n",
                static_cast<unsigned>(server.port()), shards,
                server.loopCount(),
                server.loopCount() == 1 ? "" : "s",
                server.reuseportActive() ? " via SO_REUSEPORT" : "",
                Poller::backendName());

    size_t failed =
        driveClient("127.0.0.1", server.port(), num_requests, arch);
    server.stop();
    std::printf("%s\n", server.metricsJson().c_str());
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t num_workers = 4;
    size_t num_requests = 24;
    size_t num_shards = 2;
    size_t num_loops = 1;
    size_t shed_depth = 0;
    Architecture arch = Architecture::NoMap;
    uint64_t timeout_ms = 0;
    bool use_cache = true;
    bool loopback = false;
    int listen_port = -1;
    std::string connect_to;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (flag == "--workers") {
            num_workers = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--requests") {
            num_requests = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--shards") {
            num_shards = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--loops") {
            num_loops = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--shed-depth") {
            shed_depth = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--arch") {
            arch = parseArch(next());
        } else if (flag == "--timeout-ms") {
            timeout_ms = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--no-cache") {
            use_cache = false;
        } else if (flag == "--listen") {
            listen_port =
                static_cast<int>(std::strtoul(next().c_str(),
                                              nullptr, 10));
        } else if (flag.rfind("--listen=", 0) == 0) {
            listen_port = static_cast<int>(std::strtoul(
                flag.c_str() + std::strlen("--listen="), nullptr,
                10));
        } else if (flag == "--connect") {
            connect_to = next();
        } else if (flag.rfind("--connect=", 0) == 0) {
            connect_to = flag.substr(std::strlen("--connect="));
        } else if (flag == "--loopback") {
            loopback = true;
        } else if (flag == "--trace") {
            trace_path = next();
        } else if (flag.rfind("--trace=", 0) == 0) {
            trace_path = flag.substr(std::strlen("--trace="));
        } else {
            usage();
        }
    }

    if (loopback) {
        return loopbackMode(num_shards, num_loops, shed_depth,
                            num_workers, num_requests, arch);
    }
    if (listen_port >= 0) {
        return serverMode(static_cast<uint16_t>(listen_port),
                          num_shards, num_loops, shed_depth,
                          num_workers);
    }
    if (!connect_to.empty()) {
        size_t colon = connect_to.rfind(':');
        if (colon == std::string::npos)
            usage();
        std::string host = connect_to.substr(0, colon);
        uint16_t port = static_cast<uint16_t>(std::strtoul(
            connect_to.c_str() + colon + 1, nullptr, 10));
        return driveClient(host, port, num_requests, arch) == 0 ? 0
                                                                : 1;
    }

    ServiceConfig sc;
    sc.workers = num_workers;
    sc.defaultTimeoutMs = timeout_ms;
    sc.enableProgramCache = use_cache;
    ExecutionService service(sc);

    const std::vector<ShootoutKernel> &kernels = shootoutSuite();
    // Expected `result` strings come from each kernel's native twin
    // (the same cross-validation fig01_shootout performs).
    std::vector<std::string> expected;
    expected.reserve(kernels.size());
    for (const ShootoutKernel &kernel : kernels) {
        uint64_t native_instr = 0;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f",
                      kernel.native(&native_instr));
        expected.push_back(buf);
    }
    std::printf("serving %zu requests over %zu workers (%s, %zu "
                "distinct scripts)\n",
                num_requests, num_workers, architectureName(arch),
                kernels.size());

    std::vector<std::future<Response>> futures;
    futures.reserve(num_requests);
    for (size_t i = 0; i < num_requests; ++i) {
        Request req;
        req.source = kernels[i % kernels.size()].jsSource;
        req.config.arch = arch;
        if (!trace_path.empty())
            req.config.traceCapacity = 65536;
        futures.push_back(service.submit(std::move(req)));
    }

    size_t failed = 0;
    std::vector<TraceEvent> all_events;
    uint64_t trace_dropped = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        Response resp = futures[i].get();
        const ShootoutKernel &kernel = kernels[i % kernels.size()];
        all_events.insert(all_events.end(), resp.traceEvents.begin(),
                          resp.traceEvents.end());
        trace_dropped += resp.traceDropped;
        if (!resp.ok()) {
            ++failed;
            std::fprintf(stderr, "request %zu (%s): %s: %s\n", i,
                         kernel.name.c_str(),
                         responseStatusName(resp.status),
                         resp.error.c_str());
        } else if (resp.resultString !=
                   expected[i % kernels.size()]) {
            ++failed;
            std::fprintf(stderr,
                         "request %zu (%s): wrong result %s "
                         "(want %s)\n",
                         i, kernel.name.c_str(),
                         resp.resultString.c_str(),
                         expected[i % kernels.size()].c_str());
        }
    }

    std::printf("%s\n", service.metricsJson().c_str());

    if (!trace_path.empty()) {
        std::ofstream out(trace_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write trace file '%s'\n",
                         trace_path.c_str());
            return 1;
        }
        out << chromeTraceJson(all_events);
        out.close();
        std::printf("wrote %zu trace event(s) to %s", all_events.size(),
                    trace_path.c_str());
        if (trace_dropped != 0)
            std::printf(" (%llu dropped)",
                        static_cast<unsigned long long>(trace_dropped));
        std::printf("\n\n%s",
                    abortAttributionReport(all_events).c_str());
    }

    if (failed != 0) {
        std::fprintf(stderr, "%zu/%zu requests failed\n", failed,
                     futures.size());
        return 1;
    }
    return 0;
}
