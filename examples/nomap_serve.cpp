/**
 * @file
 * Serving-mode demo: drive N requests through the concurrent
 * multi-isolate ExecutionService and print the pool metrics JSON.
 *
 * Usage:
 *   nomap_serve [--workers M] [--requests N] [--arch ARCH]
 *               [--timeout-ms T] [--no-cache] [--trace FILE]
 *
 * The request mix cycles through the Shootout kernels (the same mix
 * bench/throughput_scaling uses), so repeated scripts exercise the
 * compiled-program cache while distinct ones keep the isolate pool
 * honest.
 *
 * --trace FILE enables per-request tracing (EngineConfig::
 * traceCapacity), writes the combined Chrome trace_event JSON of all
 * requests to FILE (load it in Perfetto / chrome://tracing), and
 * prints the abort-attribution report to stdout.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "service/engine_pool.h"
#include "suites/shootout.h"
#include "trace/trace.h"

using namespace nomap;

namespace {

Architecture
parseArch(const std::string &name)
{
    if (name == "base") return Architecture::Base;
    if (name == "nomap_s") return Architecture::NoMapS;
    if (name == "nomap_b") return Architecture::NoMapB;
    if (name == "nomap") return Architecture::NoMap;
    if (name == "nomap_bc") return Architecture::NoMapBC;
    if (name == "nomap_rtm") return Architecture::NoMapRTM;
    std::fprintf(stderr, "unknown --arch '%s'\n", name.c_str());
    std::exit(1);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: nomap_serve [--workers M] [--requests N]\n"
        "                   [--arch base|nomap_s|nomap_b|nomap|"
        "nomap_bc|nomap_rtm]\n"
        "                   [--timeout-ms T] [--no-cache] "
        "[--trace FILE]\n");
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t num_workers = 4;
    size_t num_requests = 24;
    Architecture arch = Architecture::NoMap;
    uint64_t timeout_ms = 0;
    bool use_cache = true;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (flag == "--workers") {
            num_workers = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--requests") {
            num_requests = std::strtoul(next().c_str(), nullptr, 10);
        } else if (flag == "--arch") {
            arch = parseArch(next());
        } else if (flag == "--timeout-ms") {
            timeout_ms = std::strtoull(next().c_str(), nullptr, 10);
        } else if (flag == "--no-cache") {
            use_cache = false;
        } else if (flag == "--trace") {
            trace_path = next();
        } else if (flag.rfind("--trace=", 0) == 0) {
            trace_path = flag.substr(std::strlen("--trace="));
        } else {
            usage();
        }
    }

    ServiceConfig sc;
    sc.workers = num_workers;
    sc.defaultTimeoutMs = timeout_ms;
    sc.enableProgramCache = use_cache;
    ExecutionService service(sc);

    const std::vector<ShootoutKernel> &kernels = shootoutSuite();
    // Expected `result` strings come from each kernel's native twin
    // (the same cross-validation fig01_shootout performs).
    std::vector<std::string> expected;
    expected.reserve(kernels.size());
    for (const ShootoutKernel &kernel : kernels) {
        uint64_t native_instr = 0;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f",
                      kernel.native(&native_instr));
        expected.push_back(buf);
    }
    std::printf("serving %zu requests over %zu workers (%s, %zu "
                "distinct scripts)\n",
                num_requests, num_workers, architectureName(arch),
                kernels.size());

    std::vector<std::future<Response>> futures;
    futures.reserve(num_requests);
    for (size_t i = 0; i < num_requests; ++i) {
        Request req;
        req.source = kernels[i % kernels.size()].jsSource;
        req.config.arch = arch;
        if (!trace_path.empty())
            req.config.traceCapacity = 65536;
        futures.push_back(service.submit(std::move(req)));
    }

    size_t failed = 0;
    std::vector<TraceEvent> all_events;
    uint64_t trace_dropped = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        Response resp = futures[i].get();
        const ShootoutKernel &kernel = kernels[i % kernels.size()];
        all_events.insert(all_events.end(), resp.traceEvents.begin(),
                          resp.traceEvents.end());
        trace_dropped += resp.traceDropped;
        if (!resp.ok()) {
            ++failed;
            std::fprintf(stderr, "request %zu (%s): %s: %s\n", i,
                         kernel.name.c_str(),
                         responseStatusName(resp.status),
                         resp.error.c_str());
        } else if (resp.resultString !=
                   expected[i % kernels.size()]) {
            ++failed;
            std::fprintf(stderr,
                         "request %zu (%s): wrong result %s "
                         "(want %s)\n",
                         i, kernel.name.c_str(),
                         resp.resultString.c_str(),
                         expected[i % kernels.size()].c_str());
        }
    }

    std::printf("%s\n", service.metricsJson().c_str());

    if (!trace_path.empty()) {
        std::ofstream out(trace_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write trace file '%s'\n",
                         trace_path.c_str());
            return 1;
        }
        out << chromeTraceJson(all_events);
        out.close();
        std::printf("wrote %zu trace event(s) to %s", all_events.size(),
                    trace_path.c_str());
        if (trace_dropped != 0)
            std::printf(" (%llu dropped)",
                        static_cast<unsigned long long>(trace_dropped));
        std::printf("\n\n%s",
                    abortAttributionReport(all_events).c_str());
    }

    if (failed != 0) {
        std::fprintf(stderr, "%zu/%zu requests failed\n", failed,
                     futures.size());
        return 1;
    }
    return 0;
}
