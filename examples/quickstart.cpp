/**
 * @file
 * Quickstart: run a JS-subset program under two architectures and
 * compare what NoMap changed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "engine/engine.h"

using namespace nomap;

int
main()
{
    const char *program = R"JS(
function dotProduct(a, b) {
    var sum = 0;
    for (var i = 0; i < a.length; i++) {
        sum += a[i] * b[i];
    }
    return sum;
}
var a = [];
var b = [];
for (var i = 0; i < 300; i++) {
    a[i] = i % 13;
    b[i] = i % 7;
}
var out = 0;
for (var round = 0; round < 120; round++) {
    out = dotProduct(a, b);
}
print("dot product:", out);
result = out;
)JS";

    for (Architecture arch :
         {Architecture::Base, Architecture::NoMap}) {
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EngineResult r = engine.run(program);

        std::printf("--- %s ---\n", architectureName(arch));
        std::printf("program output: %s", r.printed.c_str());
        std::printf("result global : %s\n", r.resultString.c_str());
        std::printf("instructions  : %llu\n",
                    static_cast<unsigned long long>(
                        r.stats.totalInstructions()));
        std::printf("cycles        : %.0f\n", r.stats.totalCycles());
        std::printf("checks run    : %llu  (bounds %llu, overflow "
                    "%llu, type %llu)\n",
                    static_cast<unsigned long long>(
                        r.stats.totalChecks()),
                    static_cast<unsigned long long>(
                        r.stats.checksOf(CheckKind::Bounds)),
                    static_cast<unsigned long long>(
                        r.stats.checksOf(CheckKind::Overflow)),
                    static_cast<unsigned long long>(
                        r.stats.checksOf(CheckKind::Type)));
        std::printf("transactions  : %llu commits, %llu aborts\n\n",
                    static_cast<unsigned long long>(r.stats.txCommits),
                    static_cast<unsigned long long>(r.stats.txAborts));
    }
    return 0;
}
