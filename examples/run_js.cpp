/**
 * @file
 * Command-line runner: execute a JS-subset file (or one of the
 * built-in suite benchmarks) under a chosen architecture and print
 * the program output plus the full statistics block.
 *
 * Usage:
 *   run_js [--arch base|nomap_s|nomap_b|nomap|nomap_bc|nomap_rtm]
 *          [--tier interp|baseline|dfg|ftl] [--jit]
 *          (<file.js> | --bench S01..S26|K01..K14)
 *
 * --jit executes FTL-hot functions through the region template tier
 * (EngineConfig::jitTier) — host speed only; the printed result and
 * every statistic must be identical with and without it.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "engine/engine.h"
#include "suites/suite.h"
#include "support/logging.h"

using namespace nomap;

namespace {

bool
parseArch(const char *name, Architecture *out)
{
    const struct {
        const char *name;
        Architecture arch;
    } table[] = {
        {"base", Architecture::Base},
        {"nomap_s", Architecture::NoMapS},
        {"nomap_b", Architecture::NoMapB},
        {"nomap", Architecture::NoMap},
        {"nomap_bc", Architecture::NoMapBC},
        {"nomap_rtm", Architecture::NoMapRTM},
    };
    for (const auto &entry : table) {
        if (std::strcmp(entry.name, name) == 0) {
            *out = entry.arch;
            return true;
        }
    }
    return false;
}

bool
parseTier(const char *name, Tier *out)
{
    const struct {
        const char *name;
        Tier tier;
    } table[] = {
        {"interp", Tier::Interpreter},
        {"baseline", Tier::Baseline},
        {"dfg", Tier::Dfg},
        {"ftl", Tier::Ftl},
    };
    for (const auto &entry : table) {
        if (std::strcmp(entry.name, name) == 0) {
            *out = entry.tier;
            return true;
        }
    }
    return false;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: run_js [--arch <arch>] [--tier <tier>] "
                 "[--jit] (<file.js> | --bench <id>)\n"
                 "  arch: base nomap_s nomap_b nomap nomap_bc "
                 "nomap_rtm (default base)\n"
                 "  tier: interp baseline dfg ftl (default ftl)\n"
                 "  --jit: region template tier for FTL-hot "
                 "functions (same stats, faster host)\n"
                 "  bench ids: S01..S26, K01..K14\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    EngineConfig config;
    std::string source;
    std::string label;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--arch") == 0 && i + 1 < argc) {
            if (!parseArch(argv[++i], &config.arch))
                return usage();
        } else if (std::strcmp(argv[i], "--tier") == 0 &&
                   i + 1 < argc) {
            if (!parseTier(argv[++i], &config.maxTier))
                return usage();
        } else if (std::strcmp(argv[i], "--jit") == 0) {
            config.jitTier = true;
        } else if (std::strcmp(argv[i], "--bench") == 0 &&
                   i + 1 < argc) {
            const BenchmarkSpec *spec = findBenchmark(argv[++i]);
            if (!spec) {
                std::fprintf(stderr, "unknown benchmark id\n");
                return 2;
            }
            source = spec->source;
            label = spec->id + " (" + spec->name + ")";
        } else if (argv[i][0] != '-') {
            std::ifstream in(argv[i]);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", argv[i]);
                return 2;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            source = buf.str();
            label = argv[i];
        } else {
            return usage();
        }
    }
    if (source.empty())
        return usage();

    try {
        Engine engine(config);
        EngineResult r = engine.run(source);
        std::printf("%s under %s (max tier %s%s)\n", label.c_str(),
                    architectureName(config.arch),
                    tierName(config.maxTier),
                    config.jitTier ? ", jit templates" : "");
        if (!r.printed.empty())
            std::printf("--- program output ---\n%s----------------"
                        "------\n", r.printed.c_str());
        std::printf("result        : %s\n", r.resultString.c_str());
        std::printf("instructions  : %llu (NoFTL %llu, NoTM %llu, "
                    "TMUnopt %llu, TMOpt %llu)\n",
                    static_cast<unsigned long long>(
                        r.stats.totalInstructions()),
                    static_cast<unsigned long long>(r.stats.instr[0]),
                    static_cast<unsigned long long>(r.stats.instr[1]),
                    static_cast<unsigned long long>(r.stats.instr[2]),
                    static_cast<unsigned long long>(r.stats.instr[3]));
        std::printf("cycles        : %.0f (TM %.0f / non-TM %.0f)\n",
                    r.stats.totalCycles(), r.stats.cyclesTm,
                    r.stats.cyclesNonTm);
        std::printf("checks        : %llu total",
                    static_cast<unsigned long long>(
                        r.stats.totalChecks()));
        for (int k = 0; k < 5; ++k) {
            std::printf("  %s %llu",
                        checkKindName(static_cast<CheckKind>(k)),
                        static_cast<unsigned long long>(
                            r.stats.checks[k]));
        }
        std::printf("\n");
        std::printf("tiering       : %llu baseline, %llu DFG, %llu "
                    "FTL compiles; %llu deopts\n",
                    static_cast<unsigned long long>(
                        r.stats.baselineCompiles),
                    static_cast<unsigned long long>(
                        r.stats.dfgCompiles),
                    static_cast<unsigned long long>(
                        r.stats.ftlCompiles),
                    static_cast<unsigned long long>(r.stats.deopts));
        std::printf("transactions  : %llu commits, %llu aborts, avg "
                    "write footprint %.1f KB (max %.1f KB)\n",
                    static_cast<unsigned long long>(r.stats.txCommits),
                    static_cast<unsigned long long>(r.stats.txAborts),
                    r.stats.avgWriteFootprintBytes / 1024.0,
                    r.stats.maxWriteFootprintBytes / 1024.0);
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
