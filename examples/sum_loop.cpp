/**
 * @file
 * The paper's worked example (Figures 4-7): the obj.values / obj.sum
 * accumulation loop, traced through every NoMap stage.
 *
 * For each architecture this prints the optimized FTL IR of the hot
 * function, so you can watch:
 *  - Base: every check carries an SMP; obj.sum is stored every
 *    iteration (Figure 4c);
 *  - NoMap_S: TxBegin/TxEnd appear, checks become aborts, the
 *    invariant loads hoist and obj.sum is promoted to a register and
 *    stored once at the commit (Figure 4d's shape);
 *  - NoMap_B: the per-iteration bounds check becomes one
 *    CheckBoundsRange at the loop exit (Figure 6);
 *  - NoMap: the overflow checks disappear — the SOF at TxEnd covers
 *    them (Figure 7).
 */

#include <cstdio>

#include "engine/engine.h"

using namespace nomap;

int
main()
{
    const char *program = R"JS(
function sumInto(obj) {
    var len = obj.values.length;
    for (var idx = 0; idx < len; idx++) {
        var value = obj.values[idx];
        obj.sum += value;
    }
    return obj.sum;
}
var o = {values: [], sum: 0};
for (var i = 0; i < 300; i++) o.values[i] = i % 7;
var total = 0;
for (var r = 0; r < 150; r++) { o.sum = 0; total = sumInto(o); }
result = total;
)JS";

    for (Architecture arch :
         {Architecture::Base, Architecture::NoMapS,
          Architecture::NoMapB, Architecture::NoMap}) {
        EngineConfig config;
        config.arch = arch;
        Engine engine(config);
        EngineResult r = engine.run(program);

        std::printf("==================== %s ====================\n",
                    architectureName(arch));
        std::printf("result=%s  instructions=%llu  checks=%llu "
                    "(bounds %llu, overflow %llu, property %llu)\n\n",
                    r.resultString.c_str(),
                    static_cast<unsigned long long>(
                        r.stats.totalInstructions()),
                    static_cast<unsigned long long>(
                        r.stats.totalChecks()),
                    static_cast<unsigned long long>(
                        r.stats.checksOf(CheckKind::Bounds)),
                    static_cast<unsigned long long>(
                        r.stats.checksOf(CheckKind::Overflow)),
                    static_cast<unsigned long long>(
                        r.stats.checksOf(CheckKind::Property)));
        const IrFunction *ir = engine.ftlIr("sumInto");
        if (ir)
            std::printf("%s\n", ir->print().c_str());
    }
    return 0;
}
