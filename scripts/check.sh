#!/usr/bin/env bash
#
# CI driver: the three standard configurations, in order of cost.
#
#   1. plain           — full suite (unit, integration, concurrency,
#                        chaos, trace, adaptive, examples, bench
#                        smokes), then the perf-smoke label and the
#                        disabled-trace wallclock envelope as explicit
#                        steps
#   2. address+undefined — full suite under ASan+UBSan
#   3. thread          — concurrency-, chaos-, trace-, net-,
#                        adaptive-, stm-, and jit-labeled tests only
#                        under TSan (the rest is single-threaded and
#                        just slows down 10x for nothing; trace rides
#                        along because its service-span tests cross
#                        threads, net because the server's event loop
#                        and shard workers race by construction,
#                        adaptive because the controller consumes
#                        telemetry the chaos storms also stress, stm
#                        because shared-heap sessions run K caller
#                        threads against one Heap, jit because the
#                        template tier shares the adaptive/abort
#                        telemetry paths the storms exercise)
#
# Usage: scripts/check.sh [jobs]
#
# Build trees live in build-check*/ so they never collide with a
# developer's ./build. Any failure aborts the run (sanitizers are
# compiled with -fno-sanitize-recover=all, so findings are fatal).

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

run() {
    echo
    echo "==> $*"
    "$@"
}

step() {
    echo
    echo "============================================================"
    echo "== $*"
    echo "============================================================"
}

step "1/3 plain build + full test suite"
run cmake -B build-check -S . -DNOMAP_SANITIZE=
run cmake --build build-check -j "$JOBS"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -j "$JOBS"

step "1b/3 perf-smoke: wallclock clean-exit + baseline regression gate"
# The full run above already exercised the perf-smoke tests; repeat
# them by label so a perf-gauge crash or a ns/instr regression beyond
# NOMAP_PERF_TOLERANCE percent of the committed BENCH_wallclock.json
# baseline (perf_regression_wallclock) is reported as its own step.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -L perf-smoke

step "1c/3 trace label: attribution layer + golden + differential"
# Also covered by the full run; repeated by label so trace-layer
# breakage (golden drift, stats perturbation) is its own CI signal.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -j "$JOBS" -L trace

step "1d/3 disabled-trace wallclock envelope"
# Tracing off must stay free: the host ns-per-guest-instruction gauge
# (median, any suite/arch) has to stay under NOMAP_WALLCLOCK_MAX_NS.
# The envelope is deliberately loose — seed baselines sit at 2.8-4.1
# ns/instr on the reference runner — so it only catches a tracing
# guard leaking onto the hot path, not machine-to-machine noise.
run bash -c "cd build-check && ./bench/wallclock --quick"
MAX_NS="${NOMAP_WALLCLOCK_MAX_NS:-8.0}"
run python3 - "$MAX_NS" <<'PY'
import json, sys
max_ns = float(sys.argv[1])
with open("build-check/BENCH_wallclock.json") as f:
    doc = json.load(f)
# The envelope guards the compiled tiers only: interpreter rows spend
# host time per *bytecode* dispatch, so their ns per (much denser)
# guest-instruction stream sits on a different scale by design.
worst = max(s.get("ns_per_instr_median", s["ns_per_instr_p50"])
            for s in doc["suites"] if s.get("tier") != "interp")
print(f"worst ns/instr median = {worst:.3f} (limit {max_ns})")
if worst > max_ns:
    sys.exit(f"wallclock envelope exceeded: {worst:.3f} > {max_ns}")
PY

step "1e/3 net label: wire codec + loopback differential + chaos"
# Also covered by the full run; repeated by label so serving-stack
# breakage (codec drift, router instability, a fault site that stops
# being content-preserving) is its own CI signal. Twice: single-loop
# (the full-run default) and NOMAP_NET_LOOPS=4, which makes every
# loopback test drive a 4-event-loop server (SO_REUSEPORT where the
# kernel has it, acceptor round-robin fallback elsewhere).
run env CTEST_OUTPUT_ON_FAILURE=1 NOMAP_NET_LOOPS=1 \
    ctest --test-dir build-check -j "$JOBS" -L net
run env CTEST_OUTPUT_ON_FAILURE=1 NOMAP_NET_LOOPS=4 \
    ctest --test-dir build-check -j "$JOBS" -L net

step "1f/3 adaptive label: controller properties + differential + storms"
# Also covered by the full run; repeated by label so adaptive-planner
# breakage (a revision on an unfaulted run, capacity-model golden
# drift, a storm that stops converging) is its own CI signal.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -j "$JOBS" -L adaptive

step "1g/3 stm label: shared-heap isolate parity + litmus + fallback"
# Also covered by the full run; repeated by label so shared-heap
# breakage (K=1 parity drift, a non-serializable litmus outcome, a
# retry that stops being bit-identical) is its own CI signal.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -j "$JOBS" -L stm

step "1h/3 jit label: template-tier bit-identity differential"
# Also covered by the full run; repeated by label so region-template
# breakage (a template whose stats/trace/injection behaviour drifts
# from the FTL reference, a fusion that changes charge order, a deopt
# that stops refunding exactly) is its own CI signal.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -j "$JOBS" -L jit

step "2/3 AddressSanitizer + UndefinedBehaviorSanitizer, full suite"
run cmake -B build-check-asan -S . "-DNOMAP_SANITIZE=address;undefined"
run cmake --build build-check-asan -j "$JOBS"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ASAN_OPTIONS=abort_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-check-asan -j "$JOBS"

step "2a/3 jit label under ASan+UBSan"
# The template tier's label-capture trick, per-record function
# pointers and literal-pool indexing are exactly where an
# out-of-bounds record read would hide; run the differential as its
# own sanitized step.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ASAN_OPTIONS=abort_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-check-asan -j "$JOBS" -L jit

step "2b/3 stm label under ASan+UBSan"
# The shared-heap rollback paths (undo replay, heap-mark truncation,
# cache-snapshot restore) are exactly where lifetime bugs would hide;
# run them as their own sanitized step.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ASAN_OPTIONS=abort_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-check-asan -j "$JOBS" -L stm

step "2c/3 perf-smoke under ASan+UBSan (report-only baseline diff)"
# Sanitized builds compile with NOMAP_SANITIZED, so the baseline
# comparison prints its table but never fails; this step still
# catches perf-gauge crashes under instrumentation.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ASAN_OPTIONS=abort_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-check-asan -L perf-smoke

step "3/3 ThreadSanitizer, concurrency + chaos + trace + net + adaptive + stm + jit labels"
# stm rides along because shared-heap sessions are the one place K
# caller threads execute guest programs against a single Heap — the
# domain-mutex serialization has to be TSan-clean by construction.
# jit rides along so the template tier proves itself under the same
# instrumented scheduler the other executor differentials run under.
run cmake -B build-check-tsan -S . -DNOMAP_SANITIZE=thread
run cmake --build build-check-tsan -j "$JOBS"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-check-tsan -j "$JOBS" \
    -L 'concurrency|chaos|trace|net|adaptive|stm|jit'

step "3b/3 TSan net label in 4-loop mode"
# The multi-loop server's cross-thread seams (completion inboxes,
# adopted-fd handoff, shared fault injector, server-level counters)
# only exist with loops > 1, so the net label runs again under TSan
# with every loopback test on a 4-loop server.
run env CTEST_OUTPUT_ON_FAILURE=1 NOMAP_NET_LOOPS=4 \
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-check-tsan -j "$JOBS" -L net

step "3c/3 perf-smoke under TSan (report-only baseline diff)"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-check-tsan -L perf-smoke

step "all three configurations passed"
