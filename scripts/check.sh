#!/usr/bin/env bash
#
# CI driver: the three standard configurations, in order of cost.
#
#   1. plain           — full suite (unit, integration, concurrency,
#                        chaos, examples, bench smokes), then the
#                        perf-smoke label as an explicit step
#   2. address+undefined — full suite under ASan+UBSan
#   3. thread          — concurrency- and chaos-labeled tests only
#                        under TSan (the rest is single-threaded and
#                        just slows down 10x for nothing)
#
# Usage: scripts/check.sh [jobs]
#
# Build trees live in build-check*/ so they never collide with a
# developer's ./build. Any failure aborts the run (sanitizers are
# compiled with -fno-sanitize-recover=all, so findings are fatal).

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"

run() {
    echo
    echo "==> $*"
    "$@"
}

step() {
    echo
    echo "============================================================"
    echo "== $*"
    echo "============================================================"
}

step "1/3 plain build + full test suite"
run cmake -B build-check -S . -DNOMAP_SANITIZE=
run cmake --build build-check -j "$JOBS"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -j "$JOBS"

step "1b/3 perf-smoke: wallclock gauge clean-exit check"
# The full run above already exercised perf_smoke_wallclock; repeat it
# by label so a perf-gauge crash is reported as its own step and the
# [bench-smoke-complete] marker is checked in isolation.
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ctest --test-dir build-check -L perf-smoke

step "2/3 AddressSanitizer + UndefinedBehaviorSanitizer, full suite"
run cmake -B build-check-asan -S . "-DNOMAP_SANITIZE=address;undefined"
run cmake --build build-check-asan -j "$JOBS"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    ASAN_OPTIONS=abort_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-check-asan -j "$JOBS"

step "3/3 ThreadSanitizer, concurrency + chaos labels"
run cmake -B build-check-tsan -S . -DNOMAP_SANITIZE=thread
run cmake --build build-check-tsan -j "$JOBS"
run env CTEST_OUTPUT_ON_FAILURE=1 \
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-check-tsan -j "$JOBS" \
    -L 'concurrency|chaos'

step "all three configurations passed"
