#include "bytecode/bytecode.h"

#include <sstream>

namespace nomap {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::LoadConst: return "LoadConst";
      case Opcode::Move: return "Move";
      case Opcode::LoadGlobal: return "LoadGlobal";
      case Opcode::StoreGlobal: return "StoreGlobal";
      case Opcode::Binary: return "Binary";
      case Opcode::Unary: return "Unary";
      case Opcode::GetProp: return "GetProp";
      case Opcode::SetProp: return "SetProp";
      case Opcode::GetIndex: return "GetIndex";
      case Opcode::SetIndex: return "SetIndex";
      case Opcode::NewArray: return "NewArray";
      case Opcode::NewObject: return "NewObject";
      case Opcode::Call: return "Call";
      case Opcode::CallNative: return "CallNative";
      case Opcode::CallMethod: return "CallMethod";
      case Opcode::Jump: return "Jump";
      case Opcode::JumpIfTrue: return "JumpIfTrue";
      case Opcode::JumpIfFalse: return "JumpIfFalse";
      case Opcode::Return: return "Return";
      case Opcode::ReturnUndef: return "ReturnUndef";
      case Opcode::LoopHeader: return "LoopHeader";
    }
    return "?";
}

std::string
BytecodeFunction::disassemble() const
{
    std::ostringstream out;
    out << "function " << name << " (params=" << numParams
        << " locals=" << numLocals << " regs=" << numRegs
        << " loops=" << numLoops << ")\n";
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const BytecodeInstr &instr = code[pc];
        out << "  " << pc << ": " << opcodeName(instr.op) << " a=" <<
            instr.a << " b=" << instr.b << " c=" << instr.c
            << " imm=" << instr.imm << "\n";
    }
    return out.str();
}

} // namespace nomap
