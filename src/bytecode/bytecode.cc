#include "bytecode/bytecode.h"

#include <sstream>

#include "support/logging.h"

namespace nomap {

const char *
opcodeName(Opcode op)
{
    static const char *const kNames[] = {
#define NOMAP_BYTECODE_OP_NAME(name) #name,
        NOMAP_BYTECODE_OP_LIST(NOMAP_BYTECODE_OP_NAME)
#undef NOMAP_BYTECODE_OP_NAME
    };
    static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumOpcodes);
    size_t i = static_cast<size_t>(op);
    return i < kNumOpcodes ? kNames[i] : "?";
}

void
BytecodeFunction::computeChargePlan()
{
    // Backward suffix scan: runLen[pc] counts the ops from pc through
    // the end of its straight-line run (terminator included — every
    // op pays the tier base cost, terminators too); runExtra[pc]
    // accumulates the tier-independent static extras (the +2
    // conditional-branch cost every JumpIf pays). The executor
    // charges base * runLen[pc] + runExtra[pc] once on run entry and
    // refunds the unexecuted suffix if it exits the run early.
    //
    // Ops are classified through genericOpcodeOf so the plan is
    // invariant under quickening: a superinstruction counts as its
    // first fused op, and the plain tail ops it covers remain in the
    // code array with their own runLen entries, so recomputing the
    // plan on a quickened function yields the original plan.
    size_t n = code.size();
    // One-time structural validation, so the executor hot loops can
    // dispatch without per-op bounds checks: every jump lands inside
    // the code array, and control cannot fall off the end (the last
    // op is an unconditional exit).
    NOMAP_ASSERT(n > 0);
    {
        Opcode last = genericOpcodeOf(code[n - 1].op);
        NOMAP_ASSERT(last == Opcode::Jump || last == Opcode::Return ||
                     last == Opcode::ReturnUndef);
    }
    for (size_t pc = 0; pc < n; ++pc) {
        switch (genericOpcodeOf(code[pc].op)) {
          case Opcode::Jump:
          case Opcode::JumpIfTrue:
          case Opcode::JumpIfFalse:
            NOMAP_ASSERT(code[pc].imm < n);
            break;
          default:
            break;
        }
    }
    runLen.assign(n, 0);
    runExtra.assign(n, 0);
    for (size_t pc = n; pc-- > 0;) {
        Opcode gop = genericOpcodeOf(code[pc].op);
        bool last = isRunTerminator(gop) || pc + 1 == n;
        uint32_t extra = gop == Opcode::JumpIfTrue ||
                                 gop == Opcode::JumpIfFalse
                             ? 2u
                             : 0u;
        runLen[pc] = 1 + (last ? 0 : runLen[pc + 1]);
        runExtra[pc] = extra + (last ? 0 : runExtra[pc + 1]);
    }
}

std::string
BytecodeFunction::disassemble() const
{
    std::ostringstream out;
    out << "function " << name << " (params=" << numParams
        << " locals=" << numLocals << " regs=" << numRegs
        << " loops=" << numLoops << ")\n";
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const BytecodeInstr &instr = code[pc];
        out << "  " << pc << ": " << opcodeName(instr.op) << " a=" <<
            instr.a << " b=" << instr.b << " c=" << instr.c
            << " imm=" << instr.imm << "\n";
    }
    return out.str();
}

} // namespace nomap
