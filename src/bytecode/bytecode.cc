#include "bytecode/bytecode.h"

#include <sstream>

namespace nomap {

const char *
opcodeName(Opcode op)
{
    static const char *const kNames[] = {
#define NOMAP_BYTECODE_OP_NAME(name) #name,
        NOMAP_BYTECODE_OP_LIST(NOMAP_BYTECODE_OP_NAME)
#undef NOMAP_BYTECODE_OP_NAME
    };
    static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumOpcodes);
    size_t i = static_cast<size_t>(op);
    return i < kNumOpcodes ? kNames[i] : "?";
}

void
BytecodeFunction::computeChargePlan()
{
    // Backward suffix scan: runLen[pc] counts the ops from pc through
    // the end of its straight-line run (terminator included — every
    // op pays the tier base cost, terminators too); runExtra[pc]
    // accumulates the tier-independent static extras (the +2
    // conditional-branch cost every JumpIf pays). The executor
    // charges base * runLen[pc] + runExtra[pc] once on run entry and
    // refunds the unexecuted suffix if it exits the run early.
    size_t n = code.size();
    runLen.assign(n, 0);
    runExtra.assign(n, 0);
    for (size_t pc = n; pc-- > 0;) {
        const BytecodeInstr &instr = code[pc];
        bool last = isRunTerminator(instr.op) || pc + 1 == n;
        uint32_t extra = instr.op == Opcode::JumpIfTrue ||
                                 instr.op == Opcode::JumpIfFalse
                             ? 2u
                             : 0u;
        runLen[pc] = 1 + (last ? 0 : runLen[pc + 1]);
        runExtra[pc] = extra + (last ? 0 : runExtra[pc + 1]);
    }
}

std::string
BytecodeFunction::disassemble() const
{
    std::ostringstream out;
    out << "function " << name << " (params=" << numParams
        << " locals=" << numLocals << " regs=" << numRegs
        << " loops=" << numLoops << ")\n";
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const BytecodeInstr &instr = code[pc];
        out << "  " << pc << ": " << opcodeName(instr.op) << " a=" <<
            instr.a << " b=" << instr.b << " c=" << instr.c
            << " imm=" << instr.imm << "\n";
    }
    return out.str();
}

} // namespace nomap
