#ifndef NOMAP_BYTECODE_BYTECODE_H
#define NOMAP_BYTECODE_BYTECODE_H

/**
 * @file
 * Compiled-function container: bytecode, constants, and metadata.
 * One BytecodeFunction exists per source function, plus one for the
 * implicit top-level "<main>" function.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/opcode.h"
#include "bytecode/profile.h"
#include "vm/value.h"

namespace nomap {

/** Object-literal descriptor: property name ids in insertion order. */
struct ObjectDesc {
    std::vector<uint32_t> nameIds;
};

/** A compiled function. */
struct BytecodeFunction {
    std::string name;
    uint32_t funcId = 0;
    uint16_t numParams = 0;
    /** Params + named locals (the registers OSR stack maps cover). */
    uint16_t numLocals = 0;
    /** Total frame size including expression temporaries. */
    uint16_t numRegs = 0;
    uint32_t numLoops = 0;

    std::vector<BytecodeInstr> code;
    std::vector<Value> constants;
    std::vector<ObjectDesc> objectDescs;

    /** Type feedback, sized by the compiler after emission. */
    FunctionProfile profile;

    /**
     * Set once the static quickening pass (superinstruction fusion)
     * has run over this function; dynamic per-op rewrites happen
     * independently as feedback warms up. Cleared copies of cached
     * programs start false, so cache hits re-quicken from scratch
     * exactly like fresh compiles.
     */
    bool quickened = false;

    /**
     * Static charge plan for batched accounting, one entry per pc
     * (empty until computeChargePlan runs): the op count and the
     * static extra-instruction cost of the straight-line run starting
     * at that pc. See computeChargePlan for the exact definition.
     */
    std::vector<uint32_t> runLen;
    std::vector<uint32_t> runExtra;

    /**
     * (Re)compute runLen/runExtra from code. The compiler calls this
     * after emission; the executor calls it lazily for hand-built
     * functions in tests.
     */
    void computeChargePlan();

    /** Pretty-print for tests/debugging. */
    std::string disassemble() const;
};

} // namespace nomap

#endif // NOMAP_BYTECODE_BYTECODE_H
