#include "bytecode/compiler.h"

#include <functional>

#include "support/logging.h"
#include "vm/builtins.h"

namespace nomap {

int32_t
CompiledProgram::findFunction(const std::string &name) const
{
    auto it = functionIds.find(name);
    return it == functionIds.end() ? -1
                                   : static_cast<int32_t>(it->second);
}

namespace {

/** Per-function compilation state. */
class FunctionCompiler
{
  public:
    FunctionCompiler(CompiledProgram &program, Heap &heap,
                     BytecodeFunction &fn, bool is_main)
        : prog(program), heapRef(heap), out(fn), isMain(is_main)
    {
    }

    void
    compileFunction(const FunctionDecl &decl)
    {
        for (const std::string &param : decl.params)
            declareLocal(param);
        out.numParams = static_cast<uint16_t>(decl.params.size());
        for (const StmtPtr &stmt : decl.body)
            hoistVars(*stmt);
        out.numLocals = static_cast<uint16_t>(locals.size());
        nextTemp = out.numLocals;
        highWater = nextTemp;
        for (const StmtPtr &stmt : decl.body)
            compileStmt(*stmt);
        emit(Opcode::ReturnUndef, 0, 0, 0, 0, 0);
        finish();
    }

    void
    compileMain(const std::vector<StmtPtr> &top_level)
    {
        // Top-level vars become globals; no hoisting into the frame.
        out.numParams = 0;
        out.numLocals = 0;
        nextTemp = 0;
        highWater = 0;
        for (const StmtPtr &stmt : top_level)
            compileStmt(*stmt);
        emit(Opcode::ReturnUndef, 0, 0, 0, 0, 0);
        finish();
    }

  private:
    struct LoopContext {
        std::vector<uint32_t> breakPatches;
        std::vector<uint32_t> continuePatches;
        /** True for switch statements: break targets them, continue
         *  falls through to the enclosing loop. */
        bool isSwitch = false;
    };

    void
    finish()
    {
        out.numRegs = highWater;
        out.numLoops = loopCount;
        out.profile.sizeFor(out.code.size(), loopCount);
        out.computeChargePlan();
    }

    // ---- Registers ------------------------------------------------------
    void
    declareLocal(const std::string &name)
    {
        if (locals.count(name))
            return;
        uint16_t reg = static_cast<uint16_t>(locals.size());
        locals.emplace(name, reg);
    }

    void
    hoistVars(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case StmtKind::VarDecl:
            for (const auto &d :
                 static_cast<const VarDeclStmt &>(stmt).decls) {
                declareLocal(d.first);
            }
            break;
          case StmtKind::Block:
            for (const StmtPtr &s :
                 static_cast<const BlockStmt &>(stmt).body) {
                hoistVars(*s);
            }
            break;
          case StmtKind::If: {
            const auto &ifs = static_cast<const IfStmt &>(stmt);
            hoistVars(*ifs.thenStmt);
            if (ifs.elseStmt)
                hoistVars(*ifs.elseStmt);
            break;
          }
          case StmtKind::While:
            hoistVars(*static_cast<const WhileStmt &>(stmt).body);
            break;
          case StmtKind::DoWhile:
            hoistVars(*static_cast<const DoWhileStmt &>(stmt).body);
            break;
          case StmtKind::For: {
            const auto &loop = static_cast<const ForStmt &>(stmt);
            if (loop.init)
                hoistVars(*loop.init);
            hoistVars(*loop.body);
            break;
          }
          case StmtKind::Switch: {
            const auto &sw = static_cast<const SwitchStmt &>(stmt);
            for (const SwitchClause &clause : sw.clauses) {
                for (const StmtPtr &inner : clause.body)
                    hoistVars(*inner);
            }
            break;
          }
          default:
            break;
        }
    }

    uint16_t
    allocTemp()
    {
        uint16_t reg = nextTemp++;
        if (nextTemp > highWater)
            highWater = nextTemp;
        NOMAP_ASSERT(nextTemp < 0xfff0);
        return reg;
    }

    void
    freeTo(uint16_t mark)
    {
        nextTemp = mark;
    }

    uint16_t tempMark() const { return nextTemp; }

    bool
    isLocalReg(uint16_t reg) const
    {
        return reg < out.numLocals;
    }

    // ---- Emission ---------------------------------------------------------
    uint32_t
    emit(Opcode op, uint16_t a, uint16_t b, uint16_t c, uint32_t imm,
         uint32_t line)
    {
        BytecodeInstr instr;
        instr.op = op;
        instr.a = a;
        instr.b = b;
        instr.c = c;
        instr.imm = imm;
        instr.line = line;
        out.code.push_back(instr);
        return static_cast<uint32_t>(out.code.size() - 1);
    }

    uint32_t
    addConstant(Value v)
    {
        for (size_t i = 0; i < out.constants.size(); ++i) {
            if (out.constants[i] == v)
                return static_cast<uint32_t>(i);
        }
        out.constants.push_back(v);
        return static_cast<uint32_t>(out.constants.size() - 1);
    }

    void
    patchJump(uint32_t at)
    {
        out.code[at].imm = static_cast<uint32_t>(out.code.size());
    }

    uint32_t here() const
    {
        return static_cast<uint32_t>(out.code.size());
    }

    // ---- Statements ----------------------------------------------------
    void
    compileStmt(const Stmt &stmt)
    {
        uint16_t mark = tempMark();
        switch (stmt.kind) {
          case StmtKind::Expression:
            compileExpr(*static_cast<const ExpressionStmt &>(stmt).expr);
            break;
          case StmtKind::VarDecl: {
            const auto &decl = static_cast<const VarDeclStmt &>(stmt);
            for (const auto &d : decl.decls) {
                if (!d.second)
                    continue;
                uint16_t value = compileExpr(*d.second);
                storeToName(d.first, value, stmt.line);
            }
            break;
          }
          case StmtKind::Block:
            for (const StmtPtr &s :
                 static_cast<const BlockStmt &>(stmt).body) {
                compileStmt(*s);
            }
            break;
          case StmtKind::If: {
            const auto &ifs = static_cast<const IfStmt &>(stmt);
            uint16_t cond = compileExpr(*ifs.cond);
            uint32_t to_else =
                emit(Opcode::JumpIfFalse, 0, cond, 0, 0, stmt.line);
            freeTo(mark);
            compileStmt(*ifs.thenStmt);
            if (ifs.elseStmt) {
                uint32_t to_end =
                    emit(Opcode::Jump, 0, 0, 0, 0, stmt.line);
                patchJump(to_else);
                compileStmt(*ifs.elseStmt);
                patchJump(to_end);
            } else {
                patchJump(to_else);
            }
            break;
          }
          case StmtKind::While: {
            const auto &loop = static_cast<const WhileStmt &>(stmt);
            uint32_t loop_id = loopCount++;
            loops.emplace_back();
            uint32_t head = here();
            emit(Opcode::LoopHeader, 0, 0, 0, loop_id, stmt.line);
            uint16_t cond = compileExpr(*loop.cond);
            uint32_t exit_jump =
                emit(Opcode::JumpIfFalse, 0, cond, 0, 0, stmt.line);
            freeTo(mark);
            compileStmt(*loop.body);
            for (uint32_t at : loops.back().continuePatches)
                out.code[at].imm = head;
            emit(Opcode::Jump, 0, 0, 0, head, stmt.line);
            patchJump(exit_jump);
            for (uint32_t at : loops.back().breakPatches)
                patchJump(at);
            loops.pop_back();
            break;
          }
          case StmtKind::DoWhile: {
            const auto &loop = static_cast<const DoWhileStmt &>(stmt);
            uint32_t loop_id = loopCount++;
            loops.emplace_back();
            uint32_t head = here();
            emit(Opcode::LoopHeader, 0, 0, 0, loop_id, stmt.line);
            compileStmt(*loop.body);
            uint32_t cond_at = here();
            for (uint32_t at : loops.back().continuePatches)
                out.code[at].imm = cond_at;
            uint16_t cond = compileExpr(*loop.cond);
            emit(Opcode::JumpIfTrue, 0, cond, 0, head, stmt.line);
            freeTo(mark);
            for (uint32_t at : loops.back().breakPatches)
                patchJump(at);
            loops.pop_back();
            break;
          }
          case StmtKind::For: {
            const auto &loop = static_cast<const ForStmt &>(stmt);
            if (loop.init)
                compileStmt(*loop.init);
            uint32_t loop_id = loopCount++;
            loops.emplace_back();
            uint32_t head = here();
            emit(Opcode::LoopHeader, 0, 0, 0, loop_id, stmt.line);
            uint32_t exit_jump = 0;
            bool has_cond = loop.cond != nullptr;
            if (has_cond) {
                uint16_t cond = compileExpr(*loop.cond);
                exit_jump =
                    emit(Opcode::JumpIfFalse, 0, cond, 0, 0, stmt.line);
                freeTo(mark);
            }
            compileStmt(*loop.body);
            uint32_t update_at = here();
            for (uint32_t at : loops.back().continuePatches)
                out.code[at].imm = update_at;
            if (loop.update) {
                compileExpr(*loop.update);
                freeTo(mark);
            }
            emit(Opcode::Jump, 0, 0, 0, head, stmt.line);
            if (has_cond)
                patchJump(exit_jump);
            for (uint32_t at : loops.back().breakPatches)
                patchJump(at);
            loops.pop_back();
            break;
          }
          case StmtKind::Return: {
            const auto &ret = static_cast<const ReturnStmt &>(stmt);
            if (ret.value) {
                uint16_t v = compileExpr(*ret.value);
                emit(Opcode::Return, 0, v, 0, 0, stmt.line);
            } else {
                emit(Opcode::ReturnUndef, 0, 0, 0, 0, stmt.line);
            }
            break;
          }
          case StmtKind::Break: {
            if (loops.empty())
                fatal("line %u: break outside loop", stmt.line);
            uint32_t at = emit(Opcode::Jump, 0, 0, 0, 0, stmt.line);
            loops.back().breakPatches.push_back(at);
            break;
          }
          case StmtKind::Continue: {
            // Continue skips over enclosing switches.
            LoopContext *target = nullptr;
            for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
                if (!it->isSwitch) {
                    target = &*it;
                    break;
                }
            }
            if (!target)
                fatal("line %u: continue outside loop", stmt.line);
            uint32_t at = emit(Opcode::Jump, 0, 0, 0, 0, stmt.line);
            target->continuePatches.push_back(at);
            break;
          }
          case StmtKind::Switch:
            compileSwitch(static_cast<const SwitchStmt &>(stmt));
            break;
          case StmtKind::Empty:
            break;
        }
        freeTo(mark);
    }

    void
    compileSwitch(const SwitchStmt &stmt)
    {
        // Evaluate the discriminant once, run the case tests in
        // order (strict equality), then lay the clause bodies out
        // sequentially so fall-through is the natural control flow.
        uint16_t disc = allocTemp();
        {
            uint16_t mark = tempMark();
            uint16_t v = compileExpr(*stmt.discriminant);
            if (v != disc)
                emit(Opcode::Move, disc, v, 0, 0, stmt.line);
            freeTo(mark);
        }
        loops.emplace_back();
        loops.back().isSwitch = true;

        std::vector<std::pair<size_t, uint32_t>> test_jumps;
        int32_t default_idx = -1;
        for (size_t i = 0; i < stmt.clauses.size(); ++i) {
            const SwitchClause &clause = stmt.clauses[i];
            if (!clause.test) {
                default_idx = static_cast<int32_t>(i);
                continue;
            }
            uint16_t mark = tempMark();
            uint16_t t = compileExpr(*clause.test);
            uint16_t cond = allocTemp();
            emit(Opcode::Binary, cond, disc, t,
                 static_cast<uint32_t>(BinaryOp::StrictEq), stmt.line);
            uint32_t at =
                emit(Opcode::JumpIfTrue, 0, cond, 0, 0, stmt.line);
            test_jumps.emplace_back(i, at);
            freeTo(mark);
        }
        uint32_t no_match = emit(Opcode::Jump, 0, 0, 0, 0, stmt.line);

        std::vector<uint32_t> body_pcs(stmt.clauses.size());
        for (size_t i = 0; i < stmt.clauses.size(); ++i) {
            body_pcs[i] = here();
            uint16_t mark = tempMark();
            for (const StmtPtr &inner : stmt.clauses[i].body)
                compileStmt(*inner);
            freeTo(mark);
        }
        for (auto &[idx, at] : test_jumps)
            out.code[at].imm = body_pcs[idx];
        if (default_idx >= 0) {
            out.code[no_match].imm =
                body_pcs[static_cast<size_t>(default_idx)];
        } else {
            patchJump(no_match);
        }
        for (uint32_t at : loops.back().breakPatches)
            patchJump(at);
        loops.pop_back();
    }

    // ---- Names ------------------------------------------------------------
    void
    storeToName(const std::string &name, uint16_t value, uint32_t line)
    {
        auto it = locals.find(name);
        if (it != locals.end()) {
            if (value != it->second)
                emit(Opcode::Move, it->second, value, 0, 0, line);
            return;
        }
        uint32_t g = heapRef.globalIndex(name);
        emit(Opcode::StoreGlobal, 0, value, 0, g, line);
    }

    uint16_t
    loadName(const std::string &name, uint32_t line)
    {
        auto it = locals.find(name);
        if (it != locals.end())
            return it->second;
        int32_t fid = prog.findFunction(name);
        if (fid >= 0) {
            uint16_t dst = allocTemp();
            emit(Opcode::LoadConst, dst, 0, 0,
                 addConstant(Value::function(
                     static_cast<uint32_t>(fid))),
                 line);
            return dst;
        }
        uint32_t g = heapRef.globalIndex(name);
        uint16_t dst = allocTemp();
        emit(Opcode::LoadGlobal, dst, 0, 0, g, line);
        return dst;
    }

    // ---- Expressions ---------------------------------------------------
    /** Compile @p expr; returns the register holding the result. */
    uint16_t
    compileExpr(const Expr &expr)
    {
        switch (expr.kind) {
          case ExprKind::NumberLit: {
            uint16_t dst = allocTemp();
            emit(Opcode::LoadConst, dst, 0, 0,
                 addConstant(Value::number(
                     static_cast<const NumberLitExpr &>(expr).value)),
                 expr.line);
            return dst;
          }
          case ExprKind::StringLit: {
            uint16_t dst = allocTemp();
            uint32_t sid = heapRef.stringTable().intern(
                static_cast<const StringLitExpr &>(expr).value);
            emit(Opcode::LoadConst, dst, 0, 0,
                 addConstant(Value::string(sid)), expr.line);
            return dst;
          }
          case ExprKind::BoolLit: {
            uint16_t dst = allocTemp();
            emit(Opcode::LoadConst, dst, 0, 0,
                 addConstant(Value::boolean(
                     static_cast<const BoolLitExpr &>(expr).value)),
                 expr.line);
            return dst;
          }
          case ExprKind::NullLit: {
            uint16_t dst = allocTemp();
            emit(Opcode::LoadConst, dst, 0, 0, addConstant(Value::null()),
                 expr.line);
            return dst;
          }
          case ExprKind::UndefinedLit: {
            uint16_t dst = allocTemp();
            emit(Opcode::LoadConst, dst, 0, 0,
                 addConstant(Value::undefined()), expr.line);
            return dst;
          }
          case ExprKind::ArrayLit:
            return compileArrayLit(
                static_cast<const ArrayLitExpr &>(expr));
          case ExprKind::ObjectLit:
            return compileObjectLit(
                static_cast<const ObjectLitExpr &>(expr));
          case ExprKind::Ident:
            return loadName(static_cast<const IdentExpr &>(expr).name,
                            expr.line);
          case ExprKind::Unary: {
            const auto &un = static_cast<const UnaryExpr &>(expr);
            uint16_t src = compileExpr(*un.operand);
            uint16_t dst = allocTemp();
            emit(Opcode::Unary, dst, src, 0,
                 static_cast<uint32_t>(un.op), expr.line);
            return dst;
          }
          case ExprKind::Binary: {
            const auto &bin = static_cast<const BinaryExpr &>(expr);
            uint16_t lhs = compileExpr(*bin.lhs);
            uint16_t rhs = compileExpr(*bin.rhs);
            uint16_t dst = allocTemp();
            emit(Opcode::Binary, dst, lhs, rhs,
                 static_cast<uint32_t>(bin.op), expr.line);
            return dst;
          }
          case ExprKind::Logical: {
            const auto &log = static_cast<const LogicalExpr &>(expr);
            uint16_t dst = allocTemp();
            uint16_t lhs = compileExpr(*log.lhs);
            emit(Opcode::Move, dst, lhs, 0, 0, expr.line);
            uint32_t skip =
                emit(log.op == LogicalOp::And ? Opcode::JumpIfFalse
                                              : Opcode::JumpIfTrue,
                     0, dst, 0, 0, expr.line);
            uint16_t mark = tempMark();
            uint16_t rhs = compileExpr(*log.rhs);
            emit(Opcode::Move, dst, rhs, 0, 0, expr.line);
            freeTo(mark);
            patchJump(skip);
            return dst;
          }
          case ExprKind::Conditional: {
            const auto &c = static_cast<const ConditionalExpr &>(expr);
            uint16_t dst = allocTemp();
            uint16_t cond = compileExpr(*c.cond);
            uint32_t to_else =
                emit(Opcode::JumpIfFalse, 0, cond, 0, 0, expr.line);
            uint16_t mark = tempMark();
            uint16_t t = compileExpr(*c.thenExpr);
            emit(Opcode::Move, dst, t, 0, 0, expr.line);
            freeTo(mark);
            uint32_t to_end = emit(Opcode::Jump, 0, 0, 0, 0, expr.line);
            patchJump(to_else);
            uint16_t f = compileExpr(*c.elseExpr);
            emit(Opcode::Move, dst, f, 0, 0, expr.line);
            freeTo(mark);
            patchJump(to_end);
            return dst;
          }
          case ExprKind::Assign: {
            const auto &a = static_cast<const AssignExpr &>(expr);
            uint16_t v = compileExpr(*a.value);
            compileStoreTarget(*a.target, v);
            return v;
          }
          case ExprKind::CompoundAssign:
            return compileCompoundAssign(
                static_cast<const CompoundAssignExpr &>(expr));
          case ExprKind::PreIncDec: {
            const auto &p = static_cast<const PreIncDecExpr &>(expr);
            return compileIncDec(*p.target, p.isIncrement, false,
                                 expr.line);
          }
          case ExprKind::PostIncDec: {
            const auto &p = static_cast<const PostIncDecExpr &>(expr);
            return compileIncDec(*p.target, p.isIncrement, true,
                                 expr.line);
          }
          case ExprKind::Member: {
            const auto &m = static_cast<const MemberExpr &>(expr);
            // Math.PI / Math.E resolve to constants at compile time
            // (unless a local shadows the Math name).
            if (m.object->kind == ExprKind::Ident) {
                const std::string &obj_name =
                    static_cast<const IdentExpr &>(*m.object).name;
                if (obj_name == "Math" && !locals.count(obj_name)) {
                    double constant = 0.0;
                    bool known = false;
                    if (m.property == "PI") {
                        constant = 3.141592653589793;
                        known = true;
                    } else if (m.property == "E") {
                        constant = 2.718281828459045;
                        known = true;
                    }
                    if (known) {
                        uint16_t dst = allocTemp();
                        emit(Opcode::LoadConst, dst, 0, 0,
                             addConstant(Value::boxDouble(constant)),
                             expr.line);
                        return dst;
                    }
                }
            }
            uint16_t obj = compileExpr(*m.object);
            uint16_t dst = allocTemp();
            uint32_t name = heapRef.stringTable().intern(m.property);
            emit(Opcode::GetProp, dst, obj, 0, name, expr.line);
            return dst;
          }
          case ExprKind::Index: {
            const auto &ix = static_cast<const IndexExpr &>(expr);
            uint16_t obj = compileExpr(*ix.object);
            uint16_t idx = compileExpr(*ix.index);
            uint16_t dst = allocTemp();
            emit(Opcode::GetIndex, dst, obj, idx, 0, expr.line);
            return dst;
          }
          case ExprKind::Call:
            return compileCall(static_cast<const CallExpr &>(expr));
        }
        panic("bad expr kind");
    }

    uint16_t
    compileArrayLit(const ArrayLitExpr &arr)
    {
        uint16_t first = nextTemp;
        for (const ExprPtr &elem : arr.elements) {
            uint16_t slot = allocTemp();
            uint16_t mark = tempMark();
            uint16_t v = compileExpr(*elem);
            if (v != slot)
                emit(Opcode::Move, slot, v, 0, 0, arr.line);
            freeTo(mark);
        }
        uint16_t dst = allocTemp();
        emit(Opcode::NewArray, dst, first,
             static_cast<uint16_t>(arr.elements.size()), 0, arr.line);
        return dst;
    }

    uint16_t
    compileObjectLit(const ObjectLitExpr &obj)
    {
        ObjectDesc desc;
        uint16_t first = nextTemp;
        for (const auto &prop : obj.properties) {
            desc.nameIds.push_back(
                heapRef.stringTable().intern(prop.first));
            uint16_t slot = allocTemp();
            uint16_t mark = tempMark();
            uint16_t v = compileExpr(*prop.second);
            if (v != slot)
                emit(Opcode::Move, slot, v, 0, 0, obj.line);
            freeTo(mark);
        }
        out.objectDescs.push_back(std::move(desc));
        uint32_t desc_idx =
            static_cast<uint32_t>(out.objectDescs.size() - 1);
        uint16_t dst = allocTemp();
        emit(Opcode::NewObject, dst, first,
             static_cast<uint16_t>(obj.properties.size()), desc_idx,
             obj.line);
        return dst;
    }

    void
    compileStoreTarget(const Expr &target, uint16_t value)
    {
        switch (target.kind) {
          case ExprKind::Ident:
            storeToName(static_cast<const IdentExpr &>(target).name,
                        value, target.line);
            break;
          case ExprKind::Member: {
            const auto &m = static_cast<const MemberExpr &>(target);
            uint16_t obj = compileExpr(*m.object);
            uint32_t name = heapRef.stringTable().intern(m.property);
            emit(Opcode::SetProp, 0, obj, value, name, target.line);
            break;
          }
          case ExprKind::Index: {
            const auto &ix = static_cast<const IndexExpr &>(target);
            uint16_t obj = compileExpr(*ix.object);
            uint16_t idx = compileExpr(*ix.index);
            emit(Opcode::SetIndex, obj, idx, value, 0, target.line);
            break;
          }
          default:
            fatal("line %u: invalid assignment target", target.line);
        }
    }

    uint16_t
    compileCompoundAssign(const CompoundAssignExpr &a)
    {
        switch (a.target->kind) {
          case ExprKind::Ident: {
            const auto &id = static_cast<const IdentExpr &>(*a.target);
            uint16_t cur = loadName(id.name, a.line);
            uint16_t rhs = compileExpr(*a.value);
            uint16_t dst = allocTemp();
            emit(Opcode::Binary, dst, cur, rhs,
                 static_cast<uint32_t>(a.op), a.line);
            storeToName(id.name, dst, a.line);
            return dst;
          }
          case ExprKind::Member: {
            const auto &m = static_cast<const MemberExpr &>(*a.target);
            uint16_t obj = compileExpr(*m.object);
            uint32_t name = heapRef.stringTable().intern(m.property);
            uint16_t cur = allocTemp();
            emit(Opcode::GetProp, cur, obj, 0, name, a.line);
            uint16_t rhs = compileExpr(*a.value);
            uint16_t dst = allocTemp();
            emit(Opcode::Binary, dst, cur, rhs,
                 static_cast<uint32_t>(a.op), a.line);
            emit(Opcode::SetProp, 0, obj, dst, name, a.line);
            return dst;
          }
          case ExprKind::Index: {
            const auto &ix = static_cast<const IndexExpr &>(*a.target);
            uint16_t obj = compileExpr(*ix.object);
            uint16_t idx = compileExpr(*ix.index);
            uint16_t cur = allocTemp();
            emit(Opcode::GetIndex, cur, obj, idx, 0, a.line);
            uint16_t rhs = compileExpr(*a.value);
            uint16_t dst = allocTemp();
            emit(Opcode::Binary, dst, cur, rhs,
                 static_cast<uint32_t>(a.op), a.line);
            emit(Opcode::SetIndex, obj, idx, dst, 0, a.line);
            return dst;
          }
          default:
            fatal("line %u: invalid compound-assignment target", a.line);
        }
    }

    uint16_t
    compileIncDec(const Expr &target, bool increment, bool post,
                  uint32_t line)
    {
        // Compile as: old = ToNumber(load); new = old +/- 1; store new;
        // result = post ? old : new.
        auto load_store =
            [&](std::function<uint16_t()> load,
                std::function<void(uint16_t)> store) -> uint16_t {
            uint16_t raw = load();
            uint16_t old_num = allocTemp();
            emit(Opcode::Unary, old_num, raw, 0,
                 static_cast<uint32_t>(UnaryOp::Plus), line);
            uint16_t one = allocTemp();
            emit(Opcode::LoadConst, one, 0, 0,
                 addConstant(Value::int32(1)), line);
            uint16_t fresh = allocTemp();
            emit(Opcode::Binary, fresh, old_num, one,
                 static_cast<uint32_t>(increment ? BinaryOp::Add
                                                 : BinaryOp::Sub),
                 line);
            store(fresh);
            return post ? old_num : fresh;
        };

        switch (target.kind) {
          case ExprKind::Ident: {
            const auto &id = static_cast<const IdentExpr &>(target);
            return load_store(
                [&] { return loadName(id.name, line); },
                [&](uint16_t v) { storeToName(id.name, v, line); });
          }
          case ExprKind::Member: {
            const auto &m = static_cast<const MemberExpr &>(target);
            uint16_t obj = compileExpr(*m.object);
            uint32_t name = heapRef.stringTable().intern(m.property);
            return load_store(
                [&] {
                    uint16_t dst = allocTemp();
                    emit(Opcode::GetProp, dst, obj, 0, name, line);
                    return dst;
                },
                [&](uint16_t v) {
                    emit(Opcode::SetProp, 0, obj, v, name, line);
                });
          }
          case ExprKind::Index: {
            const auto &ix = static_cast<const IndexExpr &>(target);
            uint16_t obj = compileExpr(*ix.object);
            uint16_t idx = compileExpr(*ix.index);
            return load_store(
                [&] {
                    uint16_t dst = allocTemp();
                    emit(Opcode::GetIndex, dst, obj, idx, 0, line);
                    return dst;
                },
                [&](uint16_t v) {
                    emit(Opcode::SetIndex, obj, idx, v, 0, line);
                });
          }
          default:
            fatal("line %u: invalid ++/-- target", line);
        }
    }

    uint16_t
    compileCall(const CallExpr &call)
    {
        uint32_t nargs = static_cast<uint32_t>(call.args.size());
        if (nargs > 15)
            fatal("line %u: too many call arguments", call.line);

        // Builtin via Object.member (Math.sqrt, String.fromCharCode)?
        if (call.callee->kind == ExprKind::Member) {
            const auto &m = static_cast<const MemberExpr &>(*call.callee);
            if (m.object->kind == ExprKind::Ident) {
                const std::string &obj_name =
                    static_cast<const IdentExpr &>(*m.object).name;
                BuiltinId bid;
                if (!locals.count(obj_name) &&
                    resolveBuiltin(obj_name, m.property, &bid)) {
                    uint16_t first = compileArgs(call);
                    uint16_t dst = allocTemp();
                    emit(Opcode::CallNative, dst, first,
                         static_cast<uint16_t>(nargs),
                         static_cast<uint32_t>(bid), call.line);
                    return dst;
                }
            }
            // Method call on an arbitrary receiver.
            uint16_t recv = compileExpr(*m.object);
            uint32_t name = heapRef.stringTable().intern(m.property);
            uint16_t first = compileArgs(call);
            uint16_t dst = allocTemp();
            emit(Opcode::CallMethod, dst, recv, first,
                 name * 16 + nargs, call.line);
            return dst;
        }

        if (call.callee->kind == ExprKind::Ident) {
            const std::string &name =
                static_cast<const IdentExpr &>(*call.callee).name;
            int32_t fid = prog.findFunction(name);
            if (fid >= 0) {
                uint16_t first = compileArgs(call);
                uint16_t dst = allocTemp();
                emit(Opcode::Call, dst, first,
                     static_cast<uint16_t>(nargs),
                     static_cast<uint32_t>(fid), call.line);
                return dst;
            }
            BuiltinId bid;
            if (resolveGlobalBuiltin(name, &bid)) {
                uint16_t first = compileArgs(call);
                uint16_t dst = allocTemp();
                emit(Opcode::CallNative, dst, first,
                     static_cast<uint16_t>(nargs),
                     static_cast<uint32_t>(bid), call.line);
                return dst;
            }
            fatal("line %u: call to unknown function '%s'", call.line,
                  name.c_str());
        }
        fatal("line %u: unsupported call target", call.line);
    }

    /** Evaluate args into consecutive temps; returns the first reg. */
    uint16_t
    compileArgs(const CallExpr &call)
    {
        uint16_t first = nextTemp;
        for (const ExprPtr &arg : call.args) {
            uint16_t slot = allocTemp();
            uint16_t mark = tempMark();
            uint16_t v = compileExpr(*arg);
            if (v != slot)
                emit(Opcode::Move, slot, v, 0, 0, call.line);
            freeTo(mark);
        }
        return first;
    }

    CompiledProgram &prog;
    Heap &heapRef;
    BytecodeFunction &out;
    bool isMain;

    std::unordered_map<std::string, uint16_t> locals;
    uint16_t nextTemp = 0;
    uint16_t highWater = 0;
    uint32_t loopCount = 0;
    std::vector<LoopContext> loops;
};

} // namespace

CompiledProgram
compile(const Program &program, Heap &heap)
{
    CompiledProgram compiled;

    // Reserve funcId 0 for <main>, then register all declared
    // functions so calls can be resolved in any order.
    auto main_fn = std::make_unique<BytecodeFunction>();
    main_fn->name = "<main>";
    main_fn->funcId = 0;
    compiled.functions.push_back(std::move(main_fn));

    for (const auto &decl : program.functions) {
        if (compiled.functionIds.count(decl->name))
            fatal("line %u: duplicate function '%s'", decl->line,
                  decl->name.c_str());
        auto fn = std::make_unique<BytecodeFunction>();
        fn->name = decl->name;
        fn->funcId = static_cast<uint32_t>(compiled.functions.size());
        compiled.functionIds.emplace(decl->name, fn->funcId);
        compiled.functions.push_back(std::move(fn));
    }

    for (size_t i = 0; i < program.functions.size(); ++i) {
        BytecodeFunction &fn = *compiled.functions[i + 1];
        FunctionCompiler fc(compiled, heap, fn, false);
        fc.compileFunction(*program.functions[i]);
    }
    {
        FunctionCompiler fc(compiled, heap, *compiled.functions[0], true);
        fc.compileMain(program.topLevel);
    }
    return compiled;
}

} // namespace nomap
