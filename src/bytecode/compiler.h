#ifndef NOMAP_BYTECODE_COMPILER_H
#define NOMAP_BYTECODE_COMPILER_H

/**
 * @file
 * AST -> bytecode compiler.
 *
 * Produces one BytecodeFunction per source function plus the implicit
 * "<main>" function (funcId 0) holding the top-level statements.
 * Top-level `var` declarations become globals (as in real JS);
 * function-local `var`s become frame registers.
 *
 * Builtin calls (Math.sqrt, print, ...) are resolved at compile time
 * to CallNative; calls to unknown identifiers are compile errors
 * (the subset has no first-class function values).
 */

#include <memory>
#include <unordered_map>
#include <vector>

#include "bytecode/bytecode.h"
#include "js/ast.h"
#include "vm/heap.h"

namespace nomap {

/** A whole compiled program: function table, <main> at index 0. */
struct CompiledProgram {
    std::vector<std::unique_ptr<BytecodeFunction>> functions;

    BytecodeFunction &main() { return *functions[0]; }

    /** funcId for a named function, or -1. */
    int32_t findFunction(const std::string &name) const;

    std::unordered_map<std::string, uint32_t> functionIds;
};

/**
 * Compile a parsed program. Throws FatalError on semantic errors
 * (unknown callee, break outside loop, ...).
 *
 * @param heap Supplies global-variable indices and string interning.
 */
CompiledProgram compile(const Program &program, Heap &heap);

} // namespace nomap

#endif // NOMAP_BYTECODE_COMPILER_H
