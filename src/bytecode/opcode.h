#ifndef NOMAP_BYTECODE_OPCODE_H
#define NOMAP_BYTECODE_OPCODE_H

/**
 * @file
 * Register-based bytecode shared by the Interpreter and Baseline
 * tiers, and the input to the DFG/FTL IR builder.
 *
 * Frame layout: [params][locals][temps]. Register indices are
 * uint16_t. Instructions are fixed-width with three register operands
 * (a, b, c) and one 32-bit immediate.
 */

#include <cstdint>
#include <string>

namespace nomap {

/** Bytecode operations. */
enum class Opcode : uint8_t {
    LoadConst,    ///< a <- constants[imm]
    Move,         ///< a <- b
    LoadGlobal,   ///< a <- globals[imm]
    StoreGlobal,  ///< globals[imm] <- b
    Binary,       ///< a <- b (BinaryOp)imm c        [profiled]
    Unary,        ///< a <- (UnaryOp)imm b           [profiled]
    GetProp,      ///< a <- b.names[imm]             [profiled, IC]
    SetProp,      ///< b.names[imm] <- c             [profiled, IC]
    GetIndex,     ///< a <- b[c]                     [profiled]
    SetIndex,     ///< a[b] <- c                     [profiled]
    NewArray,     ///< a <- [regs b .. b+c-1]
    NewObject,    ///< a <- {desc imm, values regs b .. b+c-1}
    Call,         ///< a <- functions[imm](regs b .. b+c-1)
    CallNative,   ///< a <- builtin[imm](regs b .. b+c-1)
    CallMethod,   ///< a <- b.method[imm>>4](regs c .. c+(imm&15)-1)
    Jump,         ///< pc <- imm
    JumpIfTrue,   ///< if (truthy b) pc <- imm
    JumpIfFalse,  ///< if (!truthy b) pc <- imm
    Return,       ///< return b
    ReturnUndef,  ///< return undefined
    LoopHeader,   ///< loop-entry marker; imm = loop id  [profiled]
};

/** Printable opcode name. */
const char *opcodeName(Opcode op);

/** One bytecode instruction. */
struct BytecodeInstr {
    Opcode op;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
    uint32_t imm = 0;
    uint32_t line = 0; ///< Source line for diagnostics.
};

} // namespace nomap

#endif // NOMAP_BYTECODE_OPCODE_H
