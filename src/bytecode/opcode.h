#ifndef NOMAP_BYTECODE_OPCODE_H
#define NOMAP_BYTECODE_OPCODE_H

/**
 * @file
 * Register-based bytecode shared by the Interpreter and Baseline
 * tiers, and the input to the DFG/FTL IR builder.
 *
 * Frame layout: [params][locals][temps]. Register indices are
 * uint16_t. Instructions are fixed-width with three register operands
 * (a, b, c) and one 32-bit immediate.
 */

#include <cstddef>
#include <cstdint>
#include <string>

namespace nomap {

/**
 * X-macro list of the generic (compiler-emitted) bytecode operations,
 * in opcode-value order. The enum, the name table, and the
 * direct-threaded dispatch tables in the executor are all generated
 * from this one list so they can never fall out of sync.
 */
#define NOMAP_BYTECODE_GENERIC_OP_LIST(V)                               \
    V(LoadConst)   /* a <- constants[imm] */                            \
    V(Move)        /* a <- b */                                         \
    V(LoadGlobal)  /* a <- globals[imm] */                              \
    V(StoreGlobal) /* globals[imm] <- b */                              \
    V(Binary)      /* a <- b (BinaryOp)imm c        [profiled] */       \
    V(Unary)       /* a <- (UnaryOp)imm b           [profiled] */       \
    V(GetProp)     /* a <- b.names[imm]             [profiled, IC] */   \
    V(SetProp)     /* b.names[imm] <- c             [profiled, IC] */   \
    V(GetIndex)    /* a <- b[c]                     [profiled] */       \
    V(SetIndex)    /* a[b] <- c                     [profiled] */       \
    V(NewArray)    /* a <- [regs b .. b+c-1] */                         \
    V(NewObject)   /* a <- {desc imm, values regs b .. b+c-1} */        \
    V(Call)        /* a <- functions[imm](regs b .. b+c-1) */           \
    V(CallNative)  /* a <- builtin[imm](regs b .. b+c-1) */             \
    V(CallMethod)  /* a <- b.method[imm>>4](regs c .. c+(imm&15)-1) */  \
    V(Jump)        /* pc <- imm */                                      \
    V(JumpIfTrue)  /* if (truthy b) pc <- imm */                        \
    V(JumpIfFalse) /* if (!truthy b) pc <- imm */                       \
    V(Return)      /* return b */                                       \
    V(ReturnUndef) /* return undefined */                               \
    V(LoopHeader)  /* loop-entry marker; imm = loop id  [profiled] */

/**
 * X-macro list of quickened bytecode operations. A warm executor
 * rewrites generic ops to these in place (see the "Quickening"
 * comment in bytecode_executor.cc); they are pure host-side
 * accelerations — every quickened form charges, profiles, and
 * computes exactly like the generic sequence it replaced, so guest
 * behaviour (results, ExecutionStats, traces) is bit-identical. The
 * superinstructions (QCmpBranch, QConstCmpBranch) occupy the pc of
 * the first fused op; the remaining ops of the pair/triple stay in
 * place, so jump targets into the middle of a fused sequence still
 * execute the plain tail ops and every pc-indexed side table
 * (profiles, charge plans, SMPs) stays valid.
 */
#define NOMAP_BYTECODE_QUICK_OP_LIST(V)                                 \
    V(QAddII)          /* Binary Add, int32 operands observed */        \
    V(QSubII)          /* Binary Sub, int32 operands observed */        \
    V(QGetPropMono)    /* GetProp, monomorphic IC hit observed */       \
    V(QCmpBranch)      /* Binary cmp fused with next JumpIf */          \
    V(QConstCmpBranch) /* LoadConst + Binary cmp + JumpIf triple */

/** All bytecode operations: generic ops first, quickened after. */
#define NOMAP_BYTECODE_OP_LIST(V)                                       \
    NOMAP_BYTECODE_GENERIC_OP_LIST(V)                                   \
    NOMAP_BYTECODE_QUICK_OP_LIST(V)

/** Bytecode operations (see NOMAP_BYTECODE_OP_LIST for semantics). */
enum class Opcode : uint8_t {
#define NOMAP_BYTECODE_OP_ENUM(name) name,
    NOMAP_BYTECODE_OP_LIST(NOMAP_BYTECODE_OP_ENUM)
#undef NOMAP_BYTECODE_OP_ENUM
};

/** Number of bytecode operations (dispatch-table size). */
#define NOMAP_BYTECODE_OP_COUNT(name) +1
constexpr size_t kNumOpcodes =
    0 NOMAP_BYTECODE_OP_LIST(NOMAP_BYTECODE_OP_COUNT);
#undef NOMAP_BYTECODE_OP_COUNT

/** Number of generic (compiler-emitted) operations. */
constexpr size_t kNumGenericOpcodes =
    static_cast<size_t>(Opcode::LoopHeader) + 1;

/** Printable opcode name. */
const char *opcodeName(Opcode op);

/** True for ops installed by quickening (never compiler-emitted). */
inline bool
isQuickened(Opcode op)
{
    return static_cast<size_t>(op) >= kNumGenericOpcodes;
}

/**
 * The generic op a quickened form was rewritten from (identity for
 * generic ops). Charge plans, run classification, and any other
 * pc-indexed static analysis must look through quickening via this
 * mapping so a plan computed before or after quickening is identical.
 */
inline Opcode
genericOpcodeOf(Opcode op)
{
    switch (op) {
      case Opcode::QAddII:
      case Opcode::QSubII:
      case Opcode::QCmpBranch:
        return Opcode::Binary;
      case Opcode::QGetPropMono:
        return Opcode::GetProp;
      case Opcode::QConstCmpBranch:
        return Opcode::LoadConst;
      default:
        return op;
    }
}

/**
 * True for ops that end a straight-line run of bytecode: everything
 * the executor charges as one batch (see
 * BytecodeFunction::computeChargePlan). Quickened superinstructions
 * classify as their first fused op (not a terminator): the run still
 * ends at the JumpIf op that remains in place at the end of the fused
 * sequence, so the charge plan is unchanged by quickening.
 */
inline bool
isRunTerminator(Opcode op)
{
    switch (genericOpcodeOf(op)) {
      case Opcode::Jump:
      case Opcode::JumpIfTrue:
      case Opcode::JumpIfFalse:
      case Opcode::Return:
      case Opcode::ReturnUndef:
        return true;
      default:
        return false;
    }
}

/** One bytecode instruction. */
struct BytecodeInstr {
    Opcode op;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
    uint32_t imm = 0;
    uint32_t line = 0; ///< Source line for diagnostics.
};

} // namespace nomap

#endif // NOMAP_BYTECODE_OPCODE_H
