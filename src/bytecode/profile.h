#ifndef NOMAP_BYTECODE_PROFILE_H
#define NOMAP_BYTECODE_PROFILE_H

/**
 * @file
 * Type-feedback profiles collected by the Interpreter and Baseline
 * tiers, consumed by the DFG/FTL IR builder to decide what to
 * speculate on. This mirrors JavaScriptCore's value profiles and
 * array profiles: the higher tier emits a *check* for exactly the
 * speculation the profile justifies.
 */

#include <cstdint>
#include <vector>

#include "vm/shape.h"
#include "vm/value.h"

namespace nomap {

/** Operand/result kinds observed at a binary/unary operation. */
struct ArithProfile {
    uint16_t lhsMask = 0;
    uint16_t rhsMask = 0;
    uint16_t resultMask = 0;
    bool sawIntOverflow = false;

    bool
    lhsOnly(uint16_t mask) const
    {
        return lhsMask != 0 && (lhsMask & ~mask) == 0;
    }
    bool
    rhsOnly(uint16_t mask) const
    {
        return rhsMask != 0 && (rhsMask & ~mask) == 0;
    }
};

/** Shape feedback at a property access site (inline-cache state). */
struct PropertyProfile {
    uint16_t baseMask = 0;
    uint32_t shape = kInvalidShape; ///< Monomorphic shape, if any.
    int32_t slot = -1;              ///< Slot for that shape.
    bool polymorphic = false;       ///< More than one shape seen.

    bool
    monomorphicObject() const
    {
        return baseMask == kMaskObject && !polymorphic &&
               shape != kInvalidShape && slot >= 0;
    }
};

/** Feedback at an indexed access site. */
struct IndexProfile {
    uint16_t baseMask = 0;
    uint16_t indexMask = 0;
    uint16_t elemMask = 0;
    bool sawOutOfBounds = false;
    bool sawHole = false;
};

/** Per-loop trip-count feedback (drives transaction sizing). */
struct LoopProfile {
    uint64_t entries = 0;
    uint64_t totalIterations = 0;

    double
    avgTripCount() const
    {
        return entries ? static_cast<double>(totalIterations) /
                             static_cast<double>(entries)
                       : 0.0;
    }
};

/** All profile state for one function. */
struct FunctionProfile {
    /** Indexed by bytecode pc (sparse; only profiled ops use them). */
    std::vector<ArithProfile> arith;
    std::vector<PropertyProfile> property;
    std::vector<IndexProfile> index;
    /** Indexed by loop id. */
    std::vector<LoopProfile> loops;

    /** Hotness: calls + scaled back edges; drives tier-up. */
    uint64_t callCount = 0;
    uint64_t backEdgeCount = 0;

    void
    sizeFor(size_t code_len, size_t loop_count)
    {
        arith.resize(code_len);
        property.resize(code_len);
        index.resize(code_len);
        loops.resize(loop_count);
    }
};

} // namespace nomap

#endif // NOMAP_BYTECODE_PROFILE_H
