#ifndef NOMAP_ENGINE_CONFIG_H
#define NOMAP_ENGINE_CONFIG_H

/**
 * @file
 * Engine configuration: the architectures of the paper's Table II
 * plus tiering policy knobs.
 */

#include <cstdint>

#include "engine/cost_model.h"
#include "htm/transaction.h"

namespace nomap {

/** The six evaluated architectures (paper Table II). */
enum class Architecture : uint8_t {
    Base,     ///< Unmodified JavaScriptCore-like pipeline.
    NoMapS,   ///< Transactions + SMP->abort + cross-abort opts.
    NoMapB,   ///< NoMap_S + bounds-check hoisting/sinking.
    NoMap,    ///< NoMap_B + SOF overflow-check removal (proposed).
    NoMapBC,  ///< Unrealistic bound: all in-tx checks removed.
    NoMapRTM, ///< NoMap_B on Intel-style heavyweight HTM.
};

/** Printable architecture name (matches the paper's labels). */
inline const char *
architectureName(Architecture arch)
{
    switch (arch) {
      case Architecture::Base: return "Base";
      case Architecture::NoMapS: return "NoMap_S";
      case Architecture::NoMapB: return "NoMap_B";
      case Architecture::NoMap: return "NoMap";
      case Architecture::NoMapBC: return "NoMap_BC";
      case Architecture::NoMapRTM: return "NoMap_RTM";
    }
    return "?";
}

/** Does this architecture place transactions at all? */
inline bool
usesTransactions(Architecture arch)
{
    return arch != Architecture::Base;
}

/** HTM flavor an architecture targets. */
inline HtmMode
htmModeOf(Architecture arch)
{
    return arch == Architecture::NoMapRTM ? HtmMode::Rtm : HtmMode::Rot;
}

/** Full engine configuration. */
struct EngineConfig {
    Architecture arch = Architecture::Base;
    /** Highest tier allowed (paper Table I caps this). */
    Tier maxTier = Tier::Ftl;

    // Tier-up thresholds (hotness = calls + backEdges/8).
    uint64_t baselineThreshold = 4;
    uint64_t dfgThreshold = 16;
    uint64_t ftlThreshold = 60;

    /** Seed for Math.random() and any synthetic workload data. */
    uint64_t rngSeed = 0x5eed;

    /**
     * Abort watchdog: a transaction exceeding this many charged
     * instructions is killed (models the timer interrupt that aborts
     * real hardware transactions).
     */
    uint64_t txWatchdogInstructions = 400ull * 1000 * 1000;

    /** Consecutive explicit aborts before detransactionalizing. */
    uint32_t abortEscalationLimit = 8;

    /**
     * Shared-heap sessions (stm/shared_heap.h): HTM attempts a region
     * gets before it takes the software fallback path (Brown's
     * retry-N-then-fallback template). Ignored outside shared
     * sessions — plain isolate execution never consults it, which is
     * part of why a K=1 shared session stays bit-identical to an
     * isolate.
     */
    uint32_t htmRetryLimit = 4;

    /**
     * Charge accounting per executed operation instead of per basic
     * block. Slow reference mode: the batched fast path must produce
     * bit-identical ExecutionStats (the differential accounting test
     * runs every suite program both ways and compares).
     */
    bool perOpAccounting = false;

    /**
     * Rewrite warm bytecode in place to quickened forms
     * (superinstructions, monomorphic slot loads, int32 arith) and
     * run the quickening-enabled executor variants. Host-side
     * acceleration only: results, ExecutionStats, and traces are
     * bit-identical with quickening on or off (enforced by the
     * quickening differential test). Off is the reference mode.
     */
    bool quickening = true;

    /**
     * Region template-compilation tier (src/jit/): execute
     * FTL-compiled functions as chains of build-time-compiled
     * continuation templates bound per flat-IR record instead of the
     * direct-threaded FTL executor loop. Host-side acceleration only:
     * results, ExecutionStats, and traces are bit-identical with the
     * tier on or off (enforced by the jit differential test). Off is
     * the reference mode.
     */
    bool jitTier = false;

    /**
     * Adaptive transaction planning: attach an AdaptiveController to
     * the HTM telemetry stream and revise per-function transaction
     * scopes from observed abort behavior (learned capacity budgets,
     * per-site blacklists, re-widening) instead of the static
     * escalation ladder. Deterministic: decisions are a pure function
     * of the virtual-cycle telemetry stream, and an abort-free run
     * is bit-identical to static planning (enforced by the adaptive
     * differential test). Ignored for Architecture::Base.
     */
    bool adaptive = false;

    /**
     * Capacity-model flavor for the HTM write/read sets.
     * WaysAssoc (the default) is the paper's set-associative cache
     * geometry and the reference mode; LimitedSet models a
     * fixed-entry transactional write buffer (FORTH TR-450-style).
     */
    CapacityModelKind capacityModel = CapacityModelKind::WaysAssoc;

    /**
     * Trace-buffer capacity in events; 0 (the default) disables
     * tracing entirely — no buffer is allocated and every trace site
     * reduces to a null-pointer test. Tracing must not perturb the
     * simulation: ExecutionStats are bit-identical with tracing on or
     * off (enforced by the trace differential test).
     */
    uint32_t traceCapacity = 0;
};

} // namespace nomap

#endif // NOMAP_ENGINE_CONFIG_H
