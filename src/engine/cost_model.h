#ifndef NOMAP_ENGINE_COST_MODEL_H
#define NOMAP_ENGINE_COST_MODEL_H

/**
 * @file
 * The instruction-cost and timing model.
 *
 * Every value here is an *x86-64-equivalent dynamic instruction count*
 * for one operation in a given tier, or a cycle cost for the timing
 * model. The absolute values are calibrated once so that the
 * tier-speedup ladder lands near the paper's Table I; every relative
 * NoMap effect (Figures 8-11) then emerges from the passes themselves
 * removing or adding operations, not from tuning.
 *
 * Tier rationale:
 *  - Interpreter: dispatch loop + operand decode + boxing on every
 *    bytecode, and every non-trivial operation is a runtime call.
 *  - Baseline: templated machine code per bytecode; property access
 *    through inline caches; arithmetic still goes through runtime
 *    helpers for non-int cases.
 *  - DFG: speculative typed code with checks; moderate instruction
 *    selection quality.
 *  - FTL: LLVM-quality selection; each IR op costs roughly its real
 *    x86 equivalent.
 */

#include <cstdint>

namespace nomap {

/** Compiler tiers (paper Figure 2). */
enum class Tier : uint8_t {
    Interpreter,
    Baseline,
    Dfg,
    Ftl,
};

/** Printable tier name. */
inline const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Interpreter: return "Interpreter";
      case Tier::Baseline: return "Baseline";
      case Tier::Dfg: return "DFG";
      case Tier::Ftl: return "FTL";
    }
    return "?";
}

/** Static cost table; all units are dynamic instructions. */
struct CostModel {
    // ---- Interpreter (per bytecode op) --------------------------------
    static constexpr uint32_t kInterpDispatch = 26;

    // ---- Baseline (per bytecode op) ------------------------------------
    static constexpr uint32_t kBaselineOp = 11;
    static constexpr uint32_t kBaselineArith = 14;   ///< Helper stub.
    static constexpr uint32_t kBaselineIcHit = 12;   ///< Monomorphic IC.
    static constexpr uint32_t kBaselineIcMiss = 36; ///< Slow path.
    static constexpr uint32_t kBaselineIndex = 18;
    static constexpr uint32_t kBaselineCall = 14;

    // ---- Runtime helpers (charged wherever they are invoked) ----------
    static constexpr uint32_t kRuntimeGenericOp = 28;
    static constexpr uint32_t kRuntimePropAccess = 34;
    static constexpr uint32_t kRuntimeIndexAccess = 26;
    static constexpr uint32_t kRuntimeNativeCall = 18;
    static constexpr uint32_t kRuntimeMethodCall = 30;
    static constexpr uint32_t kRuntimeAllocation = 40;

    // ---- FTL IR ops (x86-equivalent) ------------------------------------
    static constexpr uint32_t kFtlConst = 1;
    static constexpr uint32_t kFtlMove = 0;  ///< Register allocation.
    static constexpr uint32_t kFtlArith = 1;
    static constexpr uint32_t kFtlDoubleArith = 1;
    static constexpr uint32_t kFtlCompareBranch = 2;
    static constexpr uint32_t kFtlConvert = 1;
    static constexpr uint32_t kFtlLoad = 2;
    static constexpr uint32_t kFtlStore = 3; ///< store + GC barrier.
    static constexpr uint32_t kFtlElemAddr = 1; ///< Index scaling.
    static constexpr uint32_t kFtlCallOverhead = 6;
    static constexpr uint32_t kFtlCheck = 2;    ///< cmp + jcc.
    static constexpr uint32_t kFtlOverflowCheck = 1; ///< jo only.
    static constexpr uint32_t kFtlTxBegin = 3;
    static constexpr uint32_t kFtlTxEnd = 2;

    /** DFG uses the same IR but worse instruction selection. */
    static constexpr double kDfgFactor = 2.1;

    // ---- Timing model (cycles) -------------------------------------------
    /** Cycles per plain instruction (wide superscalar, ~IPC 2.5). */
    static constexpr double kCpiBase = 0.4;
    /** Extra cycles per executed check (branch + dependency). */
    static constexpr double kCheckExtraCycles = 0.5;
    /** Extra cycles per memory access beyond an L1 hit (added from
     *  the cache model's reported latency). */
    static constexpr double kMemLatencyScale = 1.0;
};

} // namespace nomap

#endif // NOMAP_ENGINE_COST_MODEL_H
