#include "engine/engine.h"

#include "engine/program_cache.h"
#include "js/parser.h"
#include "support/logging.h"

namespace nomap {

// trace.cc renders tiers from a mirrored name table; pin the layout.
static_assert(static_cast<uint8_t>(Tier::Interpreter) == 0 &&
              static_cast<uint8_t>(Tier::Baseline) == 1 &&
              static_cast<uint8_t>(Tier::Dfg) == 2 &&
              static_cast<uint8_t>(Tier::Ftl) == 3);

Engine::Engine(const EngineConfig &config)
    : engineConfig(config)
{
    if (std::optional<FaultPlan> plan = FaultPlan::fromEnv()) {
        envPlan = std::make_unique<FaultPlan>(std::move(*plan));
        armedPlan = envPlan.get();
    }
    initVm();
}

Engine::Engine(const EngineConfig &config, const ExternalVm &vm)
    : engineConfig(config)
{
    NOMAP_ASSERT(vm.shapes && vm.strings && vm.heap);
    externalVm = true;
    shapesPtr = vm.shapes;
    stringsPtr = vm.strings;
    heapPtr = vm.heap;
    if (std::optional<FaultPlan> plan = FaultPlan::fromEnv()) {
        envPlan = std::make_unique<FaultPlan>(std::move(*plan));
        armedPlan = envPlan.get();
    }
    initVm();
}

void
Engine::initVm()
{
    if (!externalVm) {
        ownedShapes = std::make_unique<ShapeTable>();
        ownedStrings = std::make_unique<StringTable>();
        ownedHeap = std::make_unique<Heap>(*ownedShapes, *ownedStrings);
        shapesPtr = ownedShapes.get();
        stringsPtr = ownedStrings.get();
        heapPtr = ownedHeap.get();
    }
    runtimePtr = std::make_unique<Runtime>(*heapPtr);
    builtinsPtr =
        std::make_unique<Builtins>(*runtimePtr, engineConfig.rngSeed);
    htmPtr = std::make_unique<TransactionManager>(
        htmModeOf(engineConfig.arch), engineConfig.capacityModel);
    memPtr = std::make_unique<MemHierarchy>();

    htmPtr->setRollbackClient(heapPtr);
    // In shared-heap mode the session points the heap at whichever
    // engine is executing the current region; attaching here would
    // just leave it aimed at the last engine constructed.
    if (!externalVm)
        heapPtr->setTransactionManager(htmPtr.get());

    acctPtr = std::make_unique<Accounting>(stats);
    if (engineConfig.traceCapacity > 0) {
        tracePtr =
            std::make_unique<TraceBuffer>(engineConfig.traceCapacity);
    }
    htmPtr->setTrace(tracePtr.get(), acctPtr.get());
    envPtr = std::make_unique<ExecEnv>(
        ExecEnv{*heapPtr, *runtimePtr, *builtinsPtr, *htmPtr, *memPtr,
                *acctPtr, *this, nullptr});
    envPtr->trace = tracePtr.get();
    interpreter =
        std::make_unique<BytecodeExecutor>(*envPtr, Tier::Interpreter);
    baselineExec =
        std::make_unique<BytecodeExecutor>(*envPtr, Tier::Baseline);
    irExec =
        std::make_unique<IrExecutor>(*envPtr, *baselineExec,
                                     engineConfig);
    jitExec =
        std::make_unique<JitExecutor>(*envPtr, *baselineExec,
                                      engineConfig);
    envPtr->perOpAccounting = engineConfig.perOpAccounting;
    envPtr->quickening = engineConfig.quickening;
    acctPtr->setCancelFlag(cancelFlag);
    applyFaultPlan();
}

void
Engine::applyFaultPlan()
{
    injector.reset();
    if (armedPlan && !armedPlan->empty())
        injector = std::make_unique<FaultInjector>(*armedPlan);
    FaultInjector *inj = injector.get();
    htmPtr->setFaultInjector(inj);
    acctPtr->setFaultInjector(inj);
    envPtr->inj = inj;
    if (inj) {
        uint64_t ways = inj->valueOf(FaultSite::HtmWaysSqueeze, 0);
        if (ways) {
            htmPtr->squeezeWriteWays(
                static_cast<uint32_t>(ways));
        }
    }

    // (Re)build the adaptive controller *after* any ways squeeze so
    // its re-widen ceiling reflects the capacity the model actually
    // has. Re-arming resets controller state along with the injector
    // counters, keeping the two occurrence streams aligned.
    adaptivePtr.reset();
    if (engineConfig.adaptive && usesTransactions(engineConfig.arch)) {
        AdaptiveConfig ac;
        ac.siteBlacklistStreak = engineConfig.abortEscalationLimit;
        ac.modelCapacityBytes = htmPtr->writeCapacityBytes();
        adaptivePtr = std::make_unique<AdaptiveController>(ac);
    }
    htmPtr->setTelemetry(adaptivePtr.get());
}

void
Engine::armFaultPlan(const FaultPlan *plan)
{
    armedPlan = plan;
    applyFaultPlan();
}

Engine::~Engine() = default;

void
Engine::resetStats()
{
    stats = ExecutionStats();
    acctPtr->discardPendingInstructionCycles();
    htmPtr->resetStats();
    memPtr->resetStats();
    builtinsPtr->clearPrinted();
    if (tracePtr)
        tracePtr->clear();
}

void
Engine::reset()
{
    if (externalVm) {
        // The heap and tables belong to the session (and to the other
        // K-1 engines); this engine cannot recreate them.
        fatal("Engine::reset: unsupported on an external-VM engine");
    }
    // Drop execution state, then everything that holds references to
    // the VM (reverse construction order), then the VM itself, and
    // rebuild pristine.
    programPtr.reset();
    functionStates.clear();
    jitExec.reset();
    irExec.reset();
    baselineExec.reset();
    interpreter.reset();
    envPtr.reset();
    tracePtr.reset();
    acctPtr.reset();
    memPtr.reset();
    htmPtr.reset();
    builtinsPtr.reset();
    runtimePtr.reset();
    ownedHeap.reset();
    ownedStrings.reset();
    ownedShapes.reset();
    heapPtr = nullptr;
    stringsPtr = nullptr;
    shapesPtr = nullptr;
    stats = ExecutionStats();
    hasRun = false;
    initVm();
}

void
Engine::setCancelFlag(const std::atomic<bool> *flag)
{
    cancelFlag = flag;
    acctPtr->setCancelFlag(flag);
}

EngineResult
Engine::run(const std::string &source)
{
    bool cache_hit = false;
    std::unique_ptr<CompiledProgram> prog;
    if (programCache && !hasRun) {
        uint64_t hash = CompiledProgramCache::hashSource(source);
        prog = programCache->instantiate(hash, source, *heapPtr);
        if (prog) {
            cache_hit = true;
        } else {
            Program ast = parseProgram(source);
            prog = std::make_unique<CompiledProgram>(
                compile(ast, *heapPtr));
            programCache->insert(hash, source, *prog, *heapPtr);
        }
    } else {
        Program ast = parseProgram(source);
        prog =
            std::make_unique<CompiledProgram>(compile(ast, *heapPtr));
    }
    programPtr = std::move(prog);
    hasRun = true;
    envPtr->program = programPtr.get();

    functionStates.clear();
    functionStates.resize(programPtr->functions.size());

    // Execute <main> (always interpreted: top-level runs once).
    interpreter->run(programPtr->main(), nullptr, 0);

    // Convert the batched instruction units into cycles exactly once,
    // before anything reads the stats.
    acctPtr->flushInstructionCycles();

    EngineResult result;
    int32_t result_global = heapPtr->findGlobal("result");
    result.resultValue = result_global >= 0
                             ? heapPtr->getGlobal(
                                   static_cast<uint32_t>(result_global))
                             : Value::undefined();
    result.resultString =
        heapPtr->valueToDisplayString(result.resultValue);
    result.printed = builtinsPtr->printedOutput();

    // Copy transaction summary into the stats.
    const HtmStats &hs = htmPtr->stats();
    stats.txCommits = hs.commits;
    stats.txAborts = hs.aborts;
    stats.txAbortsCapacity =
        hs.abortsByCode[static_cast<size_t>(AbortCode::Capacity)];
    stats.txAbortsCheck =
        hs.abortsByCode[static_cast<size_t>(AbortCode::ExplicitCheck)];
    stats.txAbortsSof = hs.abortsByCode[static_cast<size_t>(
        AbortCode::StickyOverflow)];
    stats.avgWriteFootprintBytes = hs.avgWriteFootprintBytes();
    stats.maxWriteFootprintBytes = hs.maxWriteFootprintBytes;
    stats.maxWriteWaysUsed = hs.maxWriteWaysUsed;

    result.stats = stats;
    result.programCacheHit = cache_hit;
    return result;
}

uint64_t
Engine::hotness(const BytecodeFunction &fn) const
{
    return fn.profile.callCount + fn.profile.backEdgeCount / 8;
}

void
Engine::maybeTierUp(uint32_t func_id)
{
    BytecodeFunction &fn = *programPtr->functions[func_id];
    FunctionState &state = functionStates[func_id];
    uint64_t heat = hotness(fn);

    Tier want = Tier::Interpreter;
    if (heat >= engineConfig.ftlThreshold)
        want = Tier::Ftl;
    else if (heat >= engineConfig.dfgThreshold)
        want = Tier::Dfg;
    else if (heat >= engineConfig.baselineThreshold)
        want = Tier::Baseline;
    if (want > engineConfig.maxTier)
        want = engineConfig.maxTier;
    if (want <= state.tier)
        return;

    // Injected compile failure (engine.compile): the tier-up attempt
    // is abandoned and the function keeps running its current code;
    // the next call re-attempts, like a real OOM'd JIT allocation.
    if ((want == Tier::Dfg || want == Tier::Ftl) && injector &&
        injector->fire(FaultSite::EngineCompileFail)) {
        return;
    }

    switch (want) {
      case Tier::Baseline:
        ++stats.baselineCompiles;
        break;
      case Tier::Dfg:
        state.dfg = std::make_unique<CompiledIr>(
            compileFunction(fn, *heapPtr, Tier::Dfg, engineConfig.arch,
                            0, tracePtr.get(), acctPtr.get()));
        ++stats.dfgCompiles;
        break;
      case Tier::Ftl:
        state.ftl = std::make_unique<CompiledIr>(
            compileFunction(fn, *heapPtr, Tier::Ftl, engineConfig.arch,
                            state.txScopeLevel, tracePtr.get(),
                            acctPtr.get(), planOverridesFor(state)));
        ++stats.ftlCompiles;
        break;
      default:
        break;
    }
    state.tier = want;

    if (tracePtr && tracePtr->enabled()) {
        TraceEvent event;
        event.vcycles = acctPtr->virtualCycles();
        event.type = TraceEventType::TierUp;
        event.code = static_cast<uint8_t>(want);
        event.funcId = func_id;
        tracePtr->emit(event);
    }
}

PlanOverrides
Engine::planOverridesFor(const FunctionState &state) const
{
    PlanOverrides ov;
    // The default WaysAssoc model *is* the paper geometry the planner
    // already assumes; only a swapped-in model re-routes the planner
    // to the live capacity oracle (keeps static compiles bit-stable).
    if (engineConfig.capacityModel != CapacityModelKind::WaysAssoc)
        ov.capacityBytes = htmPtr->writeCapacityBytes();
    if (adaptivePtr) {
        ov.budgetOverrideBytes = state.capacityOverrideBytes;
        ov.blacklistPcs = state.blacklistedPcs;
    }
    return ov;
}

void
Engine::recompileFtl(uint32_t func_id, FunctionState &state)
{
    NOMAP_ASSERT(state.activeRuns == 0);
    // Injected compile failure: the function keeps its current code
    // (the revised plan state stays and rides the next recompile).
    if (injector && injector->fire(FaultSite::EngineCompileFail))
        return;
    BytecodeFunction &fn = *programPtr->functions[func_id];
    state.ftl = std::make_unique<CompiledIr>(compileFunction(
        fn, *heapPtr, Tier::Ftl, engineConfig.arch, state.txScopeLevel,
        tracePtr.get(), acctPtr.get(), planOverridesFor(state)));
    // The region chain's literal pool (charge-plan fields, branch
    // targets) was compiled from the IR just replaced.
    state.jit.reset();
    ++stats.ftlRecompiles;
}

void
Engine::applyAdaptiveRevision(uint32_t func_id, FunctionState &state)
{
    std::optional<PlanRevision> rev =
        adaptivePtr->takePending(func_id);
    if (!rev)
        return;

    // adaptive.blacklist: force the function untransactional instead
    // of whatever was decided (models an operator kill switch).
    if (injector && injector->fire(FaultSite::AdaptiveBlacklist)) {
        adaptivePtr->noteForcedBlacklist(func_id);
        state.txScopeLevel = 3;
        state.capacityOverrideBytes = 0;
    } else if (injector &&
               injector->fire(FaultSite::AdaptiveDecision)) {
        // adaptive.decision: veto this application; the controller
        // rolls back and re-decides once the streaks rebuild.
        adaptivePtr->noteVetoed(*rev);
        return;
    } else {
        state.txScopeLevel = rev->scopeLevel;
        state.capacityOverrideBytes = rev->capacityOverrideBytes;
        state.blacklistedPcs = rev->blacklistPcs;
    }

    if (tracePtr && tracePtr->enabled()) {
        TraceEvent event;
        event.vcycles = acctPtr->virtualCycles();
        event.type = TraceEventType::PassReport;
        event.aux = static_cast<uint16_t>(TracePassId::Adaptive);
        event.funcId = func_id;
        event.pc = rev->hasAddedBlacklistPc ? rev->addedBlacklistPc
                                            : 0;
        event.bytes = state.capacityOverrideBytes;
        event.ways = state.txScopeLevel;
        tracePtr->emit(event);
    }
    recompileFtl(func_id, state);
}

Value
Engine::call(uint32_t func_id, const Value *args, uint32_t nargs)
{
    NOMAP_ASSERT(programPtr && func_id < programPtr->functions.size());
    BytecodeFunction &fn = *programPtr->functions[func_id];
    FunctionState &state = functionStates[func_id];

    ++fn.profile.callCount;
    maybeTierUp(func_id);

    switch (state.tier) {
      case Tier::Interpreter:
        return interpreter->run(fn, args, nargs);
      case Tier::Baseline:
        return baselineExec->run(fn, args, nargs);
      case Tier::Dfg:
        return irExec->run(state.dfg->ir, fn, args, nargs);
      case Tier::Ftl: {
        ++stats.ftlFunctionCalls;
        uint64_t cap_before = htmPtr->stats().abortsByCode[
            static_cast<size_t>(AbortCode::Capacity)];
        uint64_t chk_before = htmPtr->stats().abortsByCode[
            static_cast<size_t>(AbortCode::ExplicitCheck)];
        uint64_t commits_before = htmPtr->stats().commits;

        // Guard the activation: replacing state.ftl mid-run would
        // free IR an outer recursive activation still executes.
        ++state.activeRuns;
        Value v;
        try {
            if (engineConfig.jitTier) {
                // Region template tier: compile the chain lazily on
                // the first FTL-tier call (recompileFtl invalidates
                // it, so the literals always track the live IR).
                if (!state.jit)
                    state.jit = buildJitChain(state.ftl->ir);
                v = jitExec->run(*state.jit, state.ftl->ir, fn, args,
                                 nargs);
            } else {
                v = irExec->run(state.ftl->ir, fn, args, nargs);
            }
        } catch (...) {
            --state.activeRuns;
            throw;
        }
        --state.activeRuns;

        if (adaptivePtr) {
            // Adaptive mode: the controller already decided from the
            // telemetry stream; apply once no activation is live.
            if (state.activeRuns == 0 &&
                adaptivePtr->hasPending(func_id)) {
                applyAdaptiveRevision(func_id, state);
            }
            return v;
        }

        // NoMap runtime policy (paper V-C): repeated capacity aborts
        // shrink the transaction scope and recompile; repeated
        // explicit aborts eventually drop transactions entirely.
        const HtmStats &hs = htmPtr->stats();
        uint64_t new_caps = hs.abortsByCode[static_cast<size_t>(
                                AbortCode::Capacity)] -
                            cap_before;
        uint64_t new_chks = hs.abortsByCode[static_cast<size_t>(
                                AbortCode::ExplicitCheck)] -
                            chk_before;
        uint64_t new_commits = hs.commits - commits_before;
        if (new_commits > 0 && new_caps == 0 && new_chks == 0) {
            state.consecutiveCapacityAborts = 0;
            state.consecutiveCheckAborts = 0;
        }
        if (new_caps > 0) {
            state.consecutiveCapacityAborts +=
                static_cast<uint32_t>(new_caps);
            if (state.consecutiveCapacityAborts >= 2 &&
                state.txScopeLevel < 3) {
                ++state.txScopeLevel;
                state.pendingRecompile = true;
                state.consecutiveCapacityAborts = 0;
            }
        }
        if (new_chks > 0) {
            state.consecutiveCheckAborts +=
                static_cast<uint32_t>(new_chks);
            if (state.consecutiveCheckAborts >=
                    engineConfig.abortEscalationLimit &&
                state.txScopeLevel < 3) {
                state.txScopeLevel = 3;
                state.pendingRecompile = true;
                state.consecutiveCheckAborts = 0;
            }
        }
        // Deferred while recursive activations were live (the old IR
        // must stay allocated until the outermost frame returns).
        if (state.pendingRecompile && state.activeRuns == 0) {
            state.pendingRecompile = false;
            recompileFtl(func_id, state);
        }
        return v;
      }
    }
    panic("bad tier");
}

std::string
Engine::functionName(uint32_t func_id) const
{
    if (!programPtr || func_id >= programPtr->functions.size())
        return "";
    return programPtr->functions[func_id]->name;
}

const FunctionState *
Engine::functionState(const std::string &name) const
{
    if (!programPtr)
        return nullptr;
    int32_t id = programPtr->findFunction(name);
    if (id < 0)
        return nullptr;
    return &functionStates[static_cast<size_t>(id)];
}

const IrFunction *
Engine::ftlIr(const std::string &name) const
{
    const FunctionState *state = functionState(name);
    return state && state->ftl ? &state->ftl->ir : nullptr;
}

} // namespace nomap
