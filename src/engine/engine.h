#ifndef NOMAP_ENGINE_ENGINE_H
#define NOMAP_ENGINE_ENGINE_H

/**
 * @file
 * The public entry point of the library.
 *
 * An Engine owns one complete VM instance: string/shape tables, heap,
 * runtime, builtins, HTM manager, cache hierarchy, code cache, and
 * the tiering controller. `Engine::run` executes a JS-subset program
 * under the configured architecture (paper Table II) and returns the
 * collected ExecutionStats — the raw material for every figure and
 * table reproduction in bench/.
 *
 * Typical use:
 * @code
 *   EngineConfig config;
 *   config.arch = Architecture::NoMap;
 *   Engine engine(config);
 *   EngineResult result = engine.run(source);
 *   std::cout << result.stats.totalInstructions() << "\n";
 * @endcode
 */

#include <atomic>
#include <memory>
#include <string>

#include "engine/config.h"
#include "engine/stats.h"
#include "ftl/compile.h"
#include "ftl/ir_executor.h"
#include "inject/fault_plan.h"
#include "interp/bytecode_executor.h"
#include "jit/jit_executor.h"
#include "nomap/adaptive.h"

namespace nomap {

class CompiledProgramCache;

/** Outcome of one Engine::run. */
struct EngineResult {
    /** Value of the program's `result` global (undefined if unset). */
    Value resultValue;
    /** Display string of resultValue (valid after run returns). */
    std::string resultString;
    /** Everything print() emitted. */
    std::string printed;
    /** All counters. */
    ExecutionStats stats;
    /** True when compilation was skipped via the program cache. */
    bool programCacheHit = false;
};

/** Per-function tiering state. */
struct FunctionState {
    Tier tier = Tier::Interpreter;
    std::unique_ptr<CompiledIr> dfg;
    std::unique_ptr<CompiledIr> ftl;
    /**
     * Region template chain compiled from `ftl->ir`
     * (EngineConfig::jitTier). Built lazily on the first FTL-tier
     * call; reset whenever `ftl` is recompiled so the chain's
     * charge-plan literals always track the live IR.
     */
    std::unique_ptr<JitChain> jit;
    /** NoMap recompilation escalation (0 nest, 1 inner, 2 tile, 3 off). */
    uint32_t txScopeLevel = 0;
    uint32_t consecutiveCapacityAborts = 0;
    uint32_t consecutiveCheckAborts = 0;
    /** Adaptive mode: learned planner budget (0 = default). */
    uint64_t capacityOverrideBytes = 0;
    /** Adaptive mode: blacklisted loop-header pcs, ascending. */
    std::vector<uint32_t> blacklistedPcs;
    /**
     * Live activations of this function's FTL code (recursion depth).
     * Replacing `ftl` while an outer activation still executes the
     * old IR would be a use-after-free, so recompiles decided inside
     * a recursive call are deferred until the outermost activation
     * returns (see pendingRecompile).
     */
    uint32_t activeRuns = 0;
    /** A scope-escalation recompile is owed once activeRuns == 0. */
    bool pendingRecompile = false;
};

/**
 * Externally-owned VM state for shared-heap execution: a
 * SharedHeapSession constructs one ShapeTable/StringTable/Heap triple
 * and hands it to K engines, which then share guest memory while each
 * keeps its own runtime, JIT, HTM manager, and cache model. The
 * pointees must outlive every engine viewing them.
 */
struct ExternalVm {
    ShapeTable *shapes = nullptr;
    StringTable *strings = nullptr;
    Heap *heap = nullptr;
};

/** One self-contained VM + JIT + hardware model instance. */
class Engine : public CallDispatcher
{
  public:
    explicit Engine(const EngineConfig &config = EngineConfig());

    /**
     * Construct an engine over an externally-owned heap and tables
     * (shared-heap mode; see ExternalVm). Differences from the owning
     * form: the engine does not attach itself to the heap as its
     * transaction manager (the session re-points the heap at the
     * running engine per region), and reset() is unsupported — the
     * engine cannot recreate state it does not own.
     */
    Engine(const EngineConfig &config, const ExternalVm &vm);

    ~Engine() override;

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Parse, compile, and execute @p source to completion.
     * Throws FatalError on syntax/semantic errors.
     *
     * An Engine may run several programs in sequence: they share the
     * heap (globals persist, like successive scripts in one page) and
     * the statistics accumulate across runs. Use a fresh Engine for
     * isolated measurements.
     */
    EngineResult run(const std::string &source);

    // ---- Serving-layer hooks ------------------------------------------
    /**
     * Zero every per-run counter (ExecutionStats, HTM summary, memory
     * hierarchy stats, accumulated print() output) without touching
     * VM state. A reused isolate calls this between requests so each
     * run reports clean stats instead of accumulating.
     */
    void resetStats();

    /**
     * Tear the VM down to its freshly-constructed state: new heap,
     * tables, runtime, HTM, executors, zeroed stats. After reset()
     * the engine is pristine — it behaves bit-identically to a newly
     * constructed Engine with the same config, which is what lets the
     * service pool reuse isolates across unrelated tenants while
     * keeping per-request determinism, and what makes the shared
     * program cache applicable again.
     */
    void reset();

    /** Has run() executed since construction/reset()? */
    bool pristine() const { return !hasRun; }

    /**
     * Attach a shared compiled-program cache. Consulted by run() only
     * while the engine is pristine (cached programs are only valid
     * against a pristine heap; see program_cache.h). May be null.
     */
    void setProgramCache(CompiledProgramCache *cache)
    {
        programCache = cache;
    }

    /**
     * Install a cooperative cancellation flag (deadline watchdog).
     * When the flag becomes true mid-run, run() throws
     * ExecutionCancelled; the engine must then be reset() or
     * destroyed. Pass nullptr to detach. Survives reset().
     */
    void setCancelFlag(const std::atomic<bool> *flag);

    /**
     * Arm a deterministic fault plan (see src/inject/fault_plan.h):
     * a fresh FaultInjector is wired into the HTM manager, the
     * executors, and the accounting poll site, with all occurrence
     * counters at zero. @p plan must outlive the engine (or its next
     * armFaultPlan/reset call). Passing nullptr disarms injection
     * entirely — including a plan picked up from NOMAP_FAULT_PLAN at
     * construction. reset() re-arms the current plan with fresh
     * counters. Note: an htm.ways squeeze applied while armed is only
     * restored by reset(), not by disarming.
     */
    void armFaultPlan(const FaultPlan *plan);

    /**
     * The live injector (occurrence counters) for the armed plan, or
     * nullptr when no plan is armed.
     */
    const FaultInjector *faultInjector() const
    {
        return injector.get();
    }

    // ---- CallDispatcher ------------------------------------------------
    Value call(uint32_t func_id, const Value *args,
               uint32_t nargs) override;

    // ---- Introspection (tests, benches, examples) ---------------------
    const EngineConfig &config() const { return engineConfig; }
    Heap &heap() { return *heapPtr; }
    TransactionManager &htm() { return *htmPtr; }
    MemHierarchy &memHierarchy() { return *memPtr; }

    /**
     * The Math.random() generator. Exposed so shared-heap sessions can
     * snapshot/restore its raw state across region retries (support/
     * random.h); ordinary callers have no business poking it.
     */
    Xorshift64Star &rng() { return builtinsPtr->rng(); }
    const CompiledProgram *program() const { return programPtr.get(); }

    /**
     * The engine's trace buffer, or nullptr when
     * EngineConfig::traceCapacity is 0. Callers drain() it between
     * runs; resetStats()/reset() clear it.
     */
    TraceBuffer *trace() { return tracePtr.get(); }

    /**
     * The adaptive controller, or nullptr unless
     * EngineConfig::adaptive is set (and the architecture places
     * transactions at all). Rebuilt fresh by reset()/armFaultPlan().
     */
    const AdaptiveController *adaptive() const
    {
        return adaptivePtr.get();
    }

    /**
     * Resolve a function id to its source name for trace exporters
     * ("" when unknown / no program loaded).
     */
    std::string functionName(uint32_t func_id) const;

    /** Tiering state of a function (by name; nullptr if unknown). */
    const FunctionState *functionState(const std::string &name) const;

    /** The FTL IR compiled for a function, if any (for inspection). */
    const IrFunction *ftlIr(const std::string &name) const;

  private:
    void initVm();
    void applyFaultPlan();
    void maybeTierUp(uint32_t func_id);
    uint64_t hotness(const BytecodeFunction &fn) const;
    PlanOverrides planOverridesFor(const FunctionState &state) const;
    void recompileFtl(uint32_t func_id, FunctionState &state);
    void applyAdaptiveRevision(uint32_t func_id,
                               FunctionState &state);

    EngineConfig engineConfig;
    CompiledProgramCache *programCache = nullptr;
    const std::atomic<bool> *cancelFlag = nullptr;
    /** Plan captured from NOMAP_FAULT_PLAN at construction. */
    std::unique_ptr<FaultPlan> envPlan;
    /** Currently armed plan (envPlan or caller-provided); nullable. */
    const FaultPlan *armedPlan = nullptr;
    std::unique_ptr<FaultInjector> injector;
    bool hasRun = false;

    /** Viewing an ExternalVm instead of owning the triple below. */
    bool externalVm = false;

    // Construction order matters: tables before heap, heap before
    // runtime, everything before executors. The shape/string/heap
    // triple is held as views so it can alternatively come from an
    // ExternalVm; in the owning form the owned* members back them.
    std::unique_ptr<ShapeTable> ownedShapes;
    std::unique_ptr<StringTable> ownedStrings;
    std::unique_ptr<Heap> ownedHeap;
    ShapeTable *shapesPtr = nullptr;
    StringTable *stringsPtr = nullptr;
    Heap *heapPtr = nullptr;
    std::unique_ptr<Runtime> runtimePtr;
    std::unique_ptr<Builtins> builtinsPtr;
    std::unique_ptr<TransactionManager> htmPtr;
    std::unique_ptr<MemHierarchy> memPtr;
    std::unique_ptr<AdaptiveController> adaptivePtr;

    ExecutionStats stats;
    std::unique_ptr<Accounting> acctPtr;
    std::unique_ptr<TraceBuffer> tracePtr;
    std::unique_ptr<ExecEnv> envPtr;
    std::unique_ptr<BytecodeExecutor> interpreter;
    std::unique_ptr<BytecodeExecutor> baselineExec;
    std::unique_ptr<IrExecutor> irExec;
    std::unique_ptr<JitExecutor> jitExec;

    std::unique_ptr<CompiledProgram> programPtr;
    std::vector<FunctionState> functionStates;
};

} // namespace nomap

#endif // NOMAP_ENGINE_ENGINE_H
