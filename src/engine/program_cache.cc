#include "engine/program_cache.h"

#include "vm/heap.h"

namespace nomap {

CompiledProgramCache::CompiledProgramCache(size_t capacity)
    : maxEntries(capacity ? capacity : 1)
{
}

uint64_t
CompiledProgramCache::hashSource(const std::string &source)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : source) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

CompiledProgram
CompiledProgramCache::cloneProgram(const CompiledProgram &src)
{
    CompiledProgram copy;
    copy.functions.reserve(src.functions.size());
    for (const auto &fn : src.functions)
        copy.functions.push_back(std::make_unique<BytecodeFunction>(*fn));
    copy.functionIds = src.functionIds;
    return copy;
}

std::unique_ptr<CompiledProgram>
CompiledProgramCache::instantiate(uint64_t hash,
                                  const std::string &source, Heap &heap)
{
    std::shared_ptr<const Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = entries.find(hash);
        if (it != entries.end() && it->second->source == source) {
            entry = it->second;
        } else {
            ++counters.misses;
            return nullptr;
        }
    }

    // Replay the compile's heap side effects and verify the layout
    // matches: on a pristine heap every intern/global lands on the id
    // the template's bytecode embeds.
    StringTable &strings = heap.stringTable();
    bool ok = true;
    for (size_t i = 0; ok && i < entry->internedStrings.size(); ++i)
        ok = strings.intern(entry->internedStrings[i]) == i;
    for (size_t i = 0; ok && i < entry->globalNames.size(); ++i)
        ok = heap.globalIndex(entry->globalNames[i]) == i;

    std::lock_guard<std::mutex> lock(mutex);
    if (!ok) {
        ++counters.rebindFailures;
        ++counters.misses;
        return nullptr;
    }
    ++counters.hits;
    return std::make_unique<CompiledProgram>(
        cloneProgram(entry->program));
}

void
CompiledProgramCache::insert(uint64_t hash, const std::string &source,
                             const CompiledProgram &program,
                             const Heap &heap)
{
    auto entry = std::make_shared<Entry>();
    entry->source = source;
    entry->program = cloneProgram(program);

    const StringTable &strings = heap.stringTable();
    entry->internedStrings.reserve(strings.size());
    for (size_t i = 0; i < strings.size(); ++i)
        entry->internedStrings.push_back(
            strings.get(static_cast<uint32_t>(i)));
    entry->globalNames.reserve(heap.globalCount());
    for (uint32_t i = 0; i < heap.globalCount(); ++i)
        entry->globalNames.push_back(heap.globalName(i));

    std::lock_guard<std::mutex> lock(mutex);
    if (entries.count(hash))
        return;
    while (entries.size() >= maxEntries && !insertionOrder.empty()) {
        entries.erase(insertionOrder.front());
        insertionOrder.pop_front();
        ++counters.evictions;
    }
    entries.emplace(hash, std::move(entry));
    insertionOrder.push_back(hash);
    ++counters.insertions;
}

ProgramCacheStats
CompiledProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

size_t
CompiledProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

} // namespace nomap
