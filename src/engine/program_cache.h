#ifndef NOMAP_ENGINE_PROGRAM_CACHE_H
#define NOMAP_ENGINE_PROGRAM_CACHE_H

/**
 * @file
 * Shared cache of compiled programs, keyed by source hash.
 *
 * Lexing + parsing + bytecode compilation is the dominant fixed cost
 * of a short request, so the serving layer wants to pay it once per
 * distinct script, not once per request. The complication is that
 * compile() is not a pure function of the source: it interns property
 * names into the engine's StringTable and allocates global-variable
 * slots in its Heap, and the emitted bytecode embeds the resulting
 * ids. A compiled program is therefore only valid against a heap with
 * the exact same intern/global layout.
 *
 * The cache exploits that every *pristine* Engine (freshly
 * constructed or reset()) starts from an identical, deterministic
 * baseline. Each entry captures, alongside a pre-execution clone of
 * the CompiledProgram, the full string-table and global-table layout
 * of the heap it was compiled against. Instantiating into another
 * pristine engine replays that layout (interning the same strings and
 * creating the same globals, in order) and verifies every id matches;
 * the replayed heap is then bit-identical to one that ran the real
 * compiler, so the cloned bytecode — including its zeroed type
 * profiles — behaves exactly like a fresh compile. If any id
 * diverges (non-pristine heap), instantiation refuses and the caller
 * falls back to compiling for real.
 *
 * Thread-safe: entries are immutable after insertion and published
 * via shared_ptr under a mutex; the expensive clone/replay work runs
 * outside the lock. Bounded with FIFO eviction.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bytecode/compiler.h"

namespace nomap {

class Heap;

/** Monotonic counters describing cache effectiveness. */
struct ProgramCacheStats {
    uint64_t hits = 0;           ///< Successful instantiations.
    uint64_t misses = 0;         ///< Lookups with no usable entry.
    uint64_t insertions = 0;     ///< Entries captured.
    uint64_t evictions = 0;      ///< Entries dropped for capacity.
    uint64_t rebindFailures = 0; ///< Replay refused (dirty heap).
};

/** Shared, bounded source-hash -> compiled-program cache. */
class CompiledProgramCache
{
  public:
    explicit CompiledProgramCache(size_t capacity = 256);

    /** FNV-1a hash of the program text. */
    static uint64_t hashSource(const std::string &source);

    /**
     * Look up @p source (pre-hashed as @p hash) and, on a hit,
     * instantiate the cached program into @p heap by replaying the
     * original compile's intern/global side effects. @p heap must be
     * pristine (see file comment); returns nullptr on miss or when
     * the replay detects a layout divergence.
     */
    std::unique_ptr<CompiledProgram>
    instantiate(uint64_t hash, const std::string &source, Heap &heap);

    /**
     * Capture @p program, which was just compiled against @p heap and
     * has not executed yet (profiles still zeroed). No-op if an entry
     * for @p hash already exists.
     */
    void insert(uint64_t hash, const std::string &source,
                const CompiledProgram &program, const Heap &heap);

    ProgramCacheStats stats() const;
    size_t size() const;
    size_t capacity() const { return maxEntries; }

  private:
    struct Entry {
        std::string source;
        CompiledProgram program;
        /** Full string table at capture, in id order. */
        std::vector<std::string> internedStrings;
        /** Full global table at capture, in index order. */
        std::vector<std::string> globalNames;
    };

    static CompiledProgram cloneProgram(const CompiledProgram &src);

    mutable std::mutex mutex;
    std::unordered_map<uint64_t, std::shared_ptr<const Entry>> entries;
    std::deque<uint64_t> insertionOrder;
    size_t maxEntries;
    ProgramCacheStats counters;
};

} // namespace nomap

#endif // NOMAP_ENGINE_PROGRAM_CACHE_H
