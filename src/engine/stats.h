#ifndef NOMAP_ENGINE_STATS_H
#define NOMAP_ENGINE_STATS_H

/**
 * @file
 * Execution statistics: the observables every figure and table in the
 * paper is built from.
 *
 * Dynamic instructions are x86-64-equivalent counts produced by the
 * cost model, bucketed exactly like the paper's Figures 8/9:
 *  - NoFTL:   interpreter, Baseline, DFG, and runtime-call instructions;
 *  - NoTM:    FTL instructions outside transactions;
 *  - TMUnopt: FTL instructions inside a transaction but in code that
 *             was compiled without transaction awareness (callees);
 *  - TMOpt:   FTL instructions in transactional, NoMap-optimized code.
 *
 * Checks are bucketed like Figure 3 (Bounds / Overflow / Type /
 * Property / Other). Cycles split into TMTime / NonTMTime like
 * Figures 10/11.
 */

#include <cstddef>
#include <cstdint>

namespace nomap {

/** Check categories as broken down in the paper's Figure 3. */
enum class CheckKind : uint8_t {
    Bounds,
    Overflow,
    Type,
    Property,
    Other,
    NumKinds,
};

/** Printable name for a check kind. */
inline const char *
checkKindName(CheckKind kind)
{
    switch (kind) {
      case CheckKind::Bounds: return "Bounds";
      case CheckKind::Overflow: return "Overflow";
      case CheckKind::Type: return "Type";
      case CheckKind::Property: return "Property";
      case CheckKind::Other: return "Other";
      case CheckKind::NumKinds: break;
    }
    return "?";
}

/** Instruction-count buckets (paper Figures 8/9). */
enum class InstrBucket : uint8_t {
    NoFtl,
    NoTm,
    TmUnopt,
    TmOpt,
    NumBuckets,
};

/** All counters accumulated during one Engine run. */
struct ExecutionStats {
    // ---- Dynamic instructions ---------------------------------------
    uint64_t instr[static_cast<size_t>(InstrBucket::NumBuckets)] = {};

    uint64_t
    totalInstructions() const
    {
        uint64_t total = 0;
        for (uint64_t v : instr)
            total += v;
        return total;
    }

    uint64_t
    instrIn(InstrBucket b) const
    {
        return instr[static_cast<size_t>(b)];
    }

    // ---- SMP-guarding checks executed (FTL code only) ----------------
    uint64_t checks[static_cast<size_t>(CheckKind::NumKinds)] = {};

    uint64_t
    totalChecks() const
    {
        uint64_t total = 0;
        for (uint64_t v : checks)
            total += v;
        return total;
    }

    uint64_t
    checksOf(CheckKind k) const
    {
        return checks[static_cast<size_t>(k)];
    }

    // ---- Cycles -------------------------------------------------------
    double cyclesTm = 0.0;    ///< Cycles spent inside transactions.
    double cyclesNonTm = 0.0; ///< Everything else.

    double totalCycles() const { return cyclesTm + cyclesNonTm; }

    // ---- Tiering / deoptimization --------------------------------------
    uint64_t ftlFunctionCalls = 0; ///< Invocations of FTL-compiled code.
    uint64_t deopts = 0;           ///< OSR exits taken (check failures).
    uint64_t baselineCompiles = 0;
    uint64_t dfgCompiles = 0;
    uint64_t ftlCompiles = 0;
    uint64_t ftlRecompiles = 0;    ///< NoMap transaction-resize recompiles.

    // ---- Transactions (summary copied from TransactionManager) --------
    uint64_t txCommits = 0;
    uint64_t txAborts = 0;
    uint64_t txAbortsCapacity = 0;
    uint64_t txAbortsCheck = 0;
    uint64_t txAbortsSof = 0;
    double avgWriteFootprintBytes = 0.0;
    uint64_t maxWriteFootprintBytes = 0;
    uint32_t maxWriteWaysUsed = 0;

    // ---- Shared-heap regions (filled by SharedHeapSession only) -------
    // An Engine never touches these: per-run EngineResult stats keep
    // them at zero, so every existing differential invariant — and the
    // K=1 session-vs-isolate comparison — is unaffected. The session
    // reports them in its aggregate view and metrics JSON.
    uint64_t stmRegions = 0;        ///< Regions executed to completion.
    uint64_t stmRegionRetries = 0;  ///< Aborted HTM attempts (retried).
    uint64_t stmConflictAborts = 0; ///< ... due to footprint overlap.
    uint64_t stmCapacityAborts = 0; ///< ... due to footprint overflow.
    uint64_t stmInjectedAborts = 0; ///< ... due to stm.fallback storms.
    uint64_t stmFallbacks = 0;      ///< Regions that ran the fallback.

    /** Fold another stats object into this one (suite aggregation). */
    void merge(const ExecutionStats &other);
};

inline void
ExecutionStats::merge(const ExecutionStats &other)
{
    for (size_t i = 0; i < static_cast<size_t>(InstrBucket::NumBuckets);
         ++i) {
        instr[i] += other.instr[i];
    }
    for (size_t i = 0; i < static_cast<size_t>(CheckKind::NumKinds); ++i)
        checks[i] += other.checks[i];
    cyclesTm += other.cyclesTm;
    cyclesNonTm += other.cyclesNonTm;
    ftlFunctionCalls += other.ftlFunctionCalls;
    deopts += other.deopts;
    baselineCompiles += other.baselineCompiles;
    dfgCompiles += other.dfgCompiles;
    ftlCompiles += other.ftlCompiles;
    ftlRecompiles += other.ftlRecompiles;
    uint64_t prev_commits = txCommits;
    txCommits += other.txCommits;
    txAborts += other.txAborts;
    txAbortsCapacity += other.txAbortsCapacity;
    txAbortsCheck += other.txAbortsCheck;
    txAbortsSof += other.txAbortsSof;
    if (txCommits > 0) {
        avgWriteFootprintBytes =
            (avgWriteFootprintBytes * static_cast<double>(prev_commits) +
             other.avgWriteFootprintBytes *
                 static_cast<double>(other.txCommits)) /
            static_cast<double>(txCommits);
    }
    if (other.maxWriteFootprintBytes > maxWriteFootprintBytes)
        maxWriteFootprintBytes = other.maxWriteFootprintBytes;
    if (other.maxWriteWaysUsed > maxWriteWaysUsed)
        maxWriteWaysUsed = other.maxWriteWaysUsed;
    stmRegions += other.stmRegions;
    stmRegionRetries += other.stmRegionRetries;
    stmConflictAborts += other.stmConflictAborts;
    stmCapacityAborts += other.stmCapacityAborts;
    stmInjectedAborts += other.stmInjectedAborts;
    stmFallbacks += other.stmFallbacks;
}

} // namespace nomap

#endif // NOMAP_ENGINE_STATS_H
