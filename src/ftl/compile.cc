#include "ftl/compile.h"

#include "support/logging.h"

namespace nomap {

CompiledIr
compileFunction(const BytecodeFunction &fn, Heap &heap, Tier tier,
                Architecture arch, uint32_t tx_scope_level)
{
    CompiledIr out;
    out.ir = buildIr(fn, heap, tier);

    if (tier == Tier::Dfg) {
        // The DFG runs its abstract interpreter and little else.
        runKindInference(out.ir, out.passStats);
        runLocalCse(out.ir, out.passStats);
        out.ir.verify();
        computeChargePlan(out.ir);
        return out;
    }

    // FTL. NoMap's transformation runs *before* the optimization
    // pipeline so every pass sees aborts instead of SMPs (paper IV-B).
    if (usesTransactions(arch)) {
        PlannerConfig pc;
        pc.htmMode = htmModeOf(arch);
        pc.scopeLevel = tx_scope_level;
        out.planResult = planTransactions(out.ir, fn.profile, pc);
    }

    runKindInference(out.ir, out.passStats);
    runCheckElim(out.ir, out.passStats);
    runLocalCse(out.ir, out.passStats);
    runLicm(out.ir, out.passStats);
    runStoreSink(out.ir, out.passStats);
    // A second round: promotion and hoisting expose more redundancy.
    runLocalCse(out.ir, out.passStats);
    runCheckElim(out.ir, out.passStats);
    runDce(out.ir, out.passStats);
    for (int i = 0; i < 6; ++i) {
        uint32_t before = out.passStats.emptyLoopsRemoved +
                          out.passStats.deadOpsRemoved;
        runLoopAccumulatorDce(out.ir, out.passStats);
        runDce(out.ir, out.passStats);
        runEmptyLoopElim(out.ir, out.passStats);
        if (out.passStats.emptyLoopsRemoved +
                out.passStats.deadOpsRemoved == before) {
            break;
        }
    }

    switch (arch) {
      case Architecture::Base:
      case Architecture::NoMapS:
        break;
      case Architecture::NoMapB:
      case Architecture::NoMapRTM:
        runBoundsCombine(out.ir, out.passStats);
        break;
      case Architecture::NoMap:
        runBoundsCombine(out.ir, out.passStats);
        runSofElim(out.ir, out.passStats);
        break;
      case Architecture::NoMapBC:
        runBoundsCombine(out.ir, out.passStats);
        runRemoveConvertedChecks(out.ir, out.passStats);
        break;
    }

    out.ir.verify();
    computeChargePlan(out.ir);
    return out;
}

} // namespace nomap
