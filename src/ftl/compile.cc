#include "ftl/compile.h"

#include "support/logging.h"

namespace nomap {

namespace {

/**
 * Runs passes and attributes their PassStats deltas to PassReport
 * trace events. A pass that changed nothing emits nothing, so traces
 * only carry the passes that explain the final code.
 */
class PassRunner
{
  public:
    PassRunner(IrFunction &ir, PassStats &stats, TraceBuffer *trace,
               const TraceClock *clock)
        : ir(ir), stats(stats), trace(trace), clock(clock)
    {
    }

    void
    run(TracePassId id, void (*pass)(IrFunction &, PassStats &))
    {
        uint32_t checks_before = totalChecksRemoved(stats);
        uint32_t ops_before = totalOpsChanged(stats);
        pass(ir, stats);
        if (!trace || !trace->enabled())
            return;
        uint32_t checks = totalChecksRemoved(stats) - checks_before;
        uint32_t ops = totalOpsChanged(stats) - ops_before;
        if (checks == 0 && ops == 0)
            return;
        TraceEvent event;
        event.vcycles = clock ? clock->virtualCycles() : 0;
        event.type = TraceEventType::PassReport;
        event.aux = static_cast<uint16_t>(id);
        event.funcId = ir.funcId;
        event.bytes = checks;
        event.ways = ops;
        trace->emit(event);
    }

  private:
    IrFunction &ir;
    PassStats &stats;
    TraceBuffer *trace;
    const TraceClock *clock;
};

} // namespace

CompiledIr
compileFunction(const BytecodeFunction &fn, Heap &heap, Tier tier,
                Architecture arch, uint32_t tx_scope_level,
                TraceBuffer *trace, const TraceClock *clock,
                const PlanOverrides &overrides)
{
    CompiledIr out;
    out.ir = buildIr(fn, heap, tier);
    PassRunner passes(out.ir, out.passStats, trace, clock);

    if (tier == Tier::Dfg) {
        // The DFG runs its abstract interpreter and little else.
        passes.run(TracePassId::KindInference, runKindInference);
        passes.run(TracePassId::LocalCse, runLocalCse);
        out.ir.verify();
        computeChargePlan(out.ir);
        return out;
    }

    // FTL. NoMap's transformation runs *before* the optimization
    // pipeline so every pass sees aborts instead of SMPs (paper IV-B).
    if (usesTransactions(arch)) {
        PlannerConfig pc;
        pc.htmMode = htmModeOf(arch);
        pc.scopeLevel = tx_scope_level;
        pc.capacityBytes = overrides.capacityBytes;
        pc.budgetOverrideBytes = overrides.budgetOverrideBytes;
        pc.blacklistPcs = overrides.blacklistPcs;
        out.planResult = planTransactions(out.ir, fn.profile, pc);
        if (trace && trace->enabled()) {
            for (const LoopPlan &plan : out.planResult.loops) {
                TraceEvent event;
                event.vcycles = clock ? clock->virtualCycles() : 0;
                event.type = TraceEventType::PassReport;
                event.aux =
                    static_cast<uint16_t>(TracePassId::Planner);
                event.funcId = out.ir.funcId;
                event.pc = plan.headerPc;
                event.bytes = plan.checksConverted;
                event.ways = plan.tileEvery;
                trace->emit(event);
            }
        }
    }

    passes.run(TracePassId::KindInference, runKindInference);
    passes.run(TracePassId::CheckElim, runCheckElim);
    passes.run(TracePassId::LocalCse, runLocalCse);
    passes.run(TracePassId::Licm, runLicm);
    passes.run(TracePassId::StoreSink, runStoreSink);
    // A second round: promotion and hoisting expose more redundancy.
    passes.run(TracePassId::LocalCse, runLocalCse);
    passes.run(TracePassId::CheckElim, runCheckElim);
    passes.run(TracePassId::Dce, runDce);
    for (int i = 0; i < 6; ++i) {
        uint32_t before = out.passStats.emptyLoopsRemoved +
                          out.passStats.deadOpsRemoved;
        passes.run(TracePassId::LoopAccumulatorDce,
                   runLoopAccumulatorDce);
        passes.run(TracePassId::Dce, runDce);
        passes.run(TracePassId::EmptyLoopElim, runEmptyLoopElim);
        if (out.passStats.emptyLoopsRemoved +
                out.passStats.deadOpsRemoved == before) {
            break;
        }
    }

    switch (arch) {
      case Architecture::Base:
      case Architecture::NoMapS:
        break;
      case Architecture::NoMapB:
      case Architecture::NoMapRTM:
        passes.run(TracePassId::BoundsCombine, runBoundsCombine);
        break;
      case Architecture::NoMap:
        passes.run(TracePassId::BoundsCombine, runBoundsCombine);
        passes.run(TracePassId::SofElim, runSofElim);
        break;
      case Architecture::NoMapBC:
        passes.run(TracePassId::BoundsCombine, runBoundsCombine);
        passes.run(TracePassId::RemoveConvertedChecks,
                   runRemoveConvertedChecks);
        break;
    }

    out.ir.verify();
    computeChargePlan(out.ir);
    return out;
}

} // namespace nomap
