#ifndef NOMAP_FTL_COMPILE_H
#define NOMAP_FTL_COMPILE_H

/**
 * @file
 * DFG/FTL compilation driver: builds IR from bytecode + profiles,
 * runs the NoMap planner (for NoMap architectures), then the
 * optimization pipeline appropriate to the tier and architecture.
 */

#include "engine/config.h"
#include "ir/builder.h"
#include "nomap/planner.h"
#include "passes/passes.h"

namespace nomap {

/** Result of one DFG/FTL compilation. */
struct CompiledIr {
    IrFunction ir;
    PassStats passStats;
    PlanResult planResult;
};

/**
 * Adaptive-mode knobs forwarded to the planner (see PlannerConfig).
 * The defaults reproduce static planning exactly.
 */
struct PlanOverrides {
    /** Actual HTM-model write capacity; 0 = paper geometry table. */
    uint64_t capacityBytes = 0;
    /** Controller-learned absolute budget; 0 = fraction of capacity. */
    uint64_t budgetOverrideBytes = 0;
    /** Blacklisted loop-header pcs, ascending. */
    std::vector<uint32_t> blacklistPcs;
};

/**
 * Compile @p fn at @p tier for @p arch.
 *
 * @param tx_scope_level NoMap recompilation escalation: 0 = loop
 *        nest, 1 = innermost, 2 = tiled, 3 = no transactions (set
 *        after repeated capacity aborts at run time).
 * @param trace Optional sink for PassReport events: one per pass that
 *        changed the function (checks removed / ops changed deltas)
 *        plus one per planner-wrapped loop. Null disables.
 * @param clock Timestamp source for those events (the engine's
 *        Accounting); null stamps 0.
 * @param overrides Adaptive-controller planner knobs; the default
 *        reproduces static planning bit-for-bit.
 */
CompiledIr compileFunction(const BytecodeFunction &fn, Heap &heap,
                           Tier tier, Architecture arch,
                           uint32_t tx_scope_level = 0,
                           TraceBuffer *trace = nullptr,
                           const TraceClock *clock = nullptr,
                           const PlanOverrides &overrides = {});

} // namespace nomap

#endif // NOMAP_FTL_COMPILE_H
