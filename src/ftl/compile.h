#ifndef NOMAP_FTL_COMPILE_H
#define NOMAP_FTL_COMPILE_H

/**
 * @file
 * DFG/FTL compilation driver: builds IR from bytecode + profiles,
 * runs the NoMap planner (for NoMap architectures), then the
 * optimization pipeline appropriate to the tier and architecture.
 */

#include "engine/config.h"
#include "ir/builder.h"
#include "nomap/planner.h"
#include "passes/passes.h"

namespace nomap {

/** Result of one DFG/FTL compilation. */
struct CompiledIr {
    IrFunction ir;
    PassStats passStats;
    PlanResult planResult;
};

/**
 * Compile @p fn at @p tier for @p arch.
 *
 * @param tx_scope_level NoMap recompilation escalation: 0 = loop
 *        nest, 1 = innermost, 2 = tiled, 3 = no transactions (set
 *        after repeated capacity aborts at run time).
 * @param trace Optional sink for PassReport events: one per pass that
 *        changed the function (checks removed / ops changed deltas)
 *        plus one per planner-wrapped loop. Null disables.
 * @param clock Timestamp source for those events (the engine's
 *        Accounting); null stamps 0.
 */
CompiledIr compileFunction(const BytecodeFunction &fn, Heap &heap,
                           Tier tier, Architecture arch,
                           uint32_t tx_scope_level = 0,
                           TraceBuffer *trace = nullptr,
                           const TraceClock *clock = nullptr);

} // namespace nomap

#endif // NOMAP_FTL_COMPILE_H
