#include "ftl/ir_executor.h"

#include <cmath>

#include "support/logging.h"

namespace nomap {

namespace {

/** x86-64-equivalent instruction count for one IR op. */
uint32_t
baseCost(IrOp op)
{
    switch (op) {
      case IrOp::Nop: return 0;
      case IrOp::Const: return CostModel::kFtlConst;
      case IrOp::Move: return CostModel::kFtlMove;
      case IrOp::AddInt:
      case IrOp::SubInt:
      case IrOp::MulInt:
      case IrOp::NegInt:
      case IrOp::BitAndInt:
      case IrOp::BitOrInt:
      case IrOp::BitXorInt:
      case IrOp::ShlInt:
      case IrOp::ShrInt:
      case IrOp::UShrInt:
      case IrOp::BitNotInt:
        return CostModel::kFtlArith;
      case IrOp::AddDouble:
      case IrOp::SubDouble:
      case IrOp::MulDouble:
      case IrOp::DivDouble:
      case IrOp::ModDouble:
      case IrOp::NegDouble:
        return CostModel::kFtlDoubleArith;
      case IrOp::CmpInt:
      case IrOp::CmpDouble:
      case IrOp::ToDouble:
      case IrOp::ToBoolean:
      case IrOp::NotBool:
        return 1;
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckShape:
      case IrOp::CheckArray:
      case IrOp::CheckIndexInt:
      case IrOp::CheckBounds:
      case IrOp::CheckNotHole:
        return CostModel::kFtlCheck;
      case IrOp::CheckBoundsRange:
        return CostModel::kFtlCheck + 1;
      case IrOp::CheckOverflow:
        return CostModel::kFtlOverflowCheck;
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::LoadGlobal:
        return CostModel::kFtlLoad;
      case IrOp::SetSlot:
      case IrOp::StoreGlobal:
        return CostModel::kFtlStore;
      case IrOp::GetElem:
        return CostModel::kFtlLoad + 2 * CostModel::kFtlElemAddr;
      case IrOp::SetElem:
        return CostModel::kFtlStore + 2 * CostModel::kFtlElemAddr;
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericSetProp:
      case IrOp::GenericGetIndex:
      case IrOp::GenericSetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::CallMethod:
        return CostModel::kFtlCallOverhead;
      case IrOp::Intrinsic:
        return 8; // sqrtsd-class inlined sequence.
      case IrOp::Jump:
      case IrOp::Return:
      case IrOp::ReturnUndef:
        return 1;
      case IrOp::Branch:
        return 2;
      case IrOp::TxBegin: return CostModel::kFtlTxBegin;
      case IrOp::TxEnd: return CostModel::kFtlTxEnd;
      case IrOp::TxTile: return 2;
    }
    return 1;
}

/** Deterministic garbage produced by unguarded speculative ops. */
Value
garbageValue()
{
    return Value::int32(0);
}

/** Injection site of a check kind (check.bounds, check.type, ...). */
FaultSite
faultSiteOfCheck(CheckKind kind)
{
    switch (kind) {
      case CheckKind::Bounds: return FaultSite::CheckBounds;
      case CheckKind::Overflow: return FaultSite::CheckOverflow;
      case CheckKind::Type: return FaultSite::CheckType;
      case CheckKind::Property: return FaultSite::CheckProperty;
      case CheckKind::Other: return FaultSite::CheckOther;
    }
    return FaultSite::CheckOther;
}

} // namespace

IrExecutor::IrExecutor(ExecEnv &env_, BytecodeExecutor &baseline_,
                       const EngineConfig &config_)
    : env(env_), baseline(baseline_), config(config_)
{
}

Value
IrExecutor::run(IrFunction &ir, BytecodeFunction &fn, const Value *args,
                uint32_t nargs)
{
    std::vector<Value> regs(ir.numRegs, Value::undefined());
    std::vector<uint8_t> overflow(ir.numRegs, 0);
    for (uint32_t i = 0; i < fn.numParams; ++i)
        regs[i] = i < nargs ? args[i] : Value::undefined();

    const bool dfg = ir.tier == Tier::Dfg;
    const bool ftl = ir.tier == Tier::Ftl;
    // Frame prologue + argument marshalling.
    env.acct.chargeInstructions(ir.tier, 8, ir.txAware);

    // Transaction-owner state for this frame.
    bool tx_owner = false;
    std::vector<Value> tx_snapshot;
    uint32_t tx_entry_pc = 0;
    uint64_t tx_instr = 0;
    uint64_t tile_count = 0;

    auto charge = [&](uint32_t cost) {
        uint32_t scaled =
            dfg ? static_cast<uint32_t>(
                      std::lround(cost * CostModel::kDfgFactor))
                : cost;
        env.acct.chargeInstructions(ir.tier, scaled, ir.txAware);
        if (tx_owner)
            tx_instr += scaled;
    };

    auto sync_tx_flag = [&] {
        env.acct.setInTransaction(env.htm.inTransaction());
    };

    // After an abort (memory already rolled back), re-enter the
    // Baseline tier at the transaction's entry SMP (paper "Entry3").
    auto resume_baseline = [&]() -> Value {
        env.mem.discardSpeculative();
        tx_owner = false;
        sync_tx_flag();
        std::vector<Value> locals(
            tx_snapshot.begin(),
            tx_snapshot.begin() +
                std::min<size_t>(tx_snapshot.size(), ir.bytecodeRegs));
        return baseline.runFrom(fn, locals, tx_entry_pc);
    };

    uint32_t block = 0;
    size_t idx = 0;

    try {
        for (;;) {
            NOMAP_ASSERT(block < ir.blocks.size());
            IrBlock &blk = ir.blocks[block];
            NOMAP_ASSERT(idx < blk.instrs.size());
            IrInstr &instr = blk.instrs[idx];
            charge(baseCost(instr.op));

            // Watchdog: a timer interrupt would abort a transaction
            // that runs unreasonably long (e.g. spinning on garbage
            // after speculative check removal). The engine.watchdog
            // site polls here too — once per in-transaction
            // instruction — so a FaultPlan can kill a transaction at
            // any point of its lifetime.
            if (tx_owner &&
                (tx_instr > config.txWatchdogInstructions ||
                 (env.inj &&
                  env.inj->fire(FaultSite::EngineTxWatchdog)))) {
                env.acct.chargeCycles(
                    env.htm.abort(AbortCode::Irrevocable));
                return resume_baseline();
            }

            bool in_tx = env.htm.inTransaction();

            switch (instr.op) {
              case IrOp::Nop:
                break;
              case IrOp::Const:
                regs[instr.dst] = ir.constants[instr.imm];
                break;
              case IrOp::Move:
                regs[instr.dst] = regs[instr.a];
                overflow[instr.dst] = overflow[instr.a];
                break;

              // ---- Integer arithmetic (sets the overflow flag) -----
              case IrOp::AddInt:
              case IrOp::SubInt:
              case IrOp::MulInt: {
                Value va = regs[instr.a];
                Value vb = regs[instr.b];
                if (!va.isInt32() || !vb.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    overflow[instr.dst] = 0;
                    break;
                }
                int64_t wide;
                int64_t x = va.asInt32();
                int64_t y = vb.asInt32();
                if (instr.op == IrOp::AddInt)
                    wide = x + y;
                else if (instr.op == IrOp::SubInt)
                    wide = x - y;
                else
                    wide = x * y;
                bool ovf = wide < INT32_MIN || wide > INT32_MAX;
                regs[instr.dst] =
                    Value::int32(static_cast<int32_t>(wide));
                overflow[instr.dst] = ovf;
                if (ovf && in_tx)
                    env.htm.noteArithmeticOverflow();
                break;
              }
              case IrOp::NegInt: {
                Value va = regs[instr.a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                int32_t x = va.asInt32();
                bool ovf = (x == 0) || (x == INT32_MIN);
                regs[instr.dst] =
                    Value::int32(ovf && x == INT32_MIN ? x : -x);
                overflow[instr.dst] = ovf;
                if (ovf && in_tx)
                    env.htm.noteArithmeticOverflow();
                break;
              }

              // ---- Double arithmetic -------------------------------
              case IrOp::AddDouble:
              case IrOp::SubDouble:
              case IrOp::MulDouble:
              case IrOp::DivDouble:
              case IrOp::ModDouble: {
                Value va = regs[instr.a];
                Value vb = regs[instr.b];
                if (!va.isNumber() || !vb.isNumber()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                double x = va.asNumber();
                double y = vb.asNumber();
                double r;
                switch (instr.op) {
                  case IrOp::AddDouble: r = x + y; break;
                  case IrOp::SubDouble: r = x - y; break;
                  case IrOp::MulDouble: r = x * y; break;
                  case IrOp::DivDouble: r = x / y; break;
                  default: r = std::fmod(x, y); break;
                }
                regs[instr.dst] = Value::number(r);
                break;
              }
              case IrOp::NegDouble: {
                Value va = regs[instr.a];
                if (!va.isNumber()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                regs[instr.dst] = Value::boxDouble(-va.asNumber());
                break;
              }

              // ---- Bitwise / shifts ---------------------------------
              case IrOp::BitAndInt:
              case IrOp::BitOrInt:
              case IrOp::BitXorInt:
              case IrOp::ShlInt:
              case IrOp::ShrInt:
              case IrOp::UShrInt: {
                Value va = regs[instr.a];
                Value vb = regs[instr.b];
                if (!va.isInt32() || !vb.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                int32_t x = va.asInt32();
                uint32_t sh = static_cast<uint32_t>(vb.asInt32()) & 31;
                switch (instr.op) {
                  case IrOp::BitAndInt:
                    regs[instr.dst] = Value::int32(x & vb.asInt32());
                    break;
                  case IrOp::BitOrInt:
                    regs[instr.dst] = Value::int32(x | vb.asInt32());
                    break;
                  case IrOp::BitXorInt:
                    regs[instr.dst] = Value::int32(x ^ vb.asInt32());
                    break;
                  case IrOp::ShlInt:
                    regs[instr.dst] = Value::int32(x << sh);
                    break;
                  case IrOp::ShrInt:
                    regs[instr.dst] = Value::int32(x >> sh);
                    break;
                  default:
                    regs[instr.dst] = Value::number(
                        static_cast<double>(
                            static_cast<uint32_t>(x) >> sh));
                    break;
                }
                break;
              }
              case IrOp::BitNotInt: {
                Value va = regs[instr.a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                regs[instr.dst] = Value::int32(~va.asInt32());
                break;
              }

              // ---- Comparisons -------------------------------------
              case IrOp::CmpInt:
              case IrOp::CmpDouble: {
                Value va = regs[instr.a];
                Value vb = regs[instr.b];
                if (!va.isNumber() || !vb.isNumber()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = Value::boolean(false);
                    break;
                }
                double x = va.asNumber();
                double y = vb.asNumber();
                bool r;
                switch (static_cast<BinaryOp>(instr.imm)) {
                  case BinaryOp::Lt: r = x < y; break;
                  case BinaryOp::Le: r = x <= y; break;
                  case BinaryOp::Gt: r = x > y; break;
                  case BinaryOp::Ge: r = x >= y; break;
                  case BinaryOp::Eq:
                  case BinaryOp::StrictEq: r = x == y; break;
                  case BinaryOp::NotEq:
                  case BinaryOp::StrictNotEq: r = x != y; break;
                  default:
                    panic("bad compare subop");
                }
                regs[instr.dst] = Value::boolean(r);
                break;
              }
              case IrOp::ToDouble:
                regs[instr.dst] =
                    Value::boxDouble(regs[instr.a].asNumber());
                break;
              case IrOp::ToBoolean:
                regs[instr.dst] = Value::boolean(
                    env.runtime.toBoolean(regs[instr.a]));
                break;
              case IrOp::NotBool:
                regs[instr.dst] =
                    Value::boolean(!regs[instr.a].asBoolean());
                break;

              // ---- Checks -------------------------------------------
              case IrOp::CheckInt32:
              case IrOp::CheckNumber:
              case IrOp::CheckShape:
              case IrOp::CheckArray:
              case IrOp::CheckIndexInt:
              case IrOp::CheckBounds:
              case IrOp::CheckBoundsRange:
              case IrOp::CheckOverflow:
              case IrOp::CheckNotHole: {
                if (ftl)
                    env.acct.recordCheck(checkKindOf(instr.op));
                bool pass;
                Value va = regs[instr.a];
                switch (instr.op) {
                  case IrOp::CheckInt32:
                  case IrOp::CheckIndexInt:
                    pass = va.isInt32();
                    break;
                  case IrOp::CheckNumber:
                    pass = va.isNumber();
                    break;
                  case IrOp::CheckShape:
                    pass = va.isObject() &&
                           env.heap.object(va.payload()).shape ==
                               instr.imm;
                    break;
                  case IrOp::CheckArray:
                    pass = va.isArray();
                    break;
                  case IrOp::CheckBounds: {
                    Value vi = regs[instr.b];
                    pass = va.isArray() && vi.isInt32() &&
                           vi.asInt32() >= 0 &&
                           static_cast<uint32_t>(vi.asInt32()) <
                               env.heap.array(va.payload()).length();
                    break;
                  }
                  case IrOp::CheckBoundsRange: {
                    Value lo = regs[instr.b];
                    Value hi = regs[instr.c];
                    if (!lo.isInt32() || !hi.isInt32() ||
                        !va.isArray()) {
                        pass = false;
                    } else if (hi.asInt32() < lo.asInt32()) {
                        pass = true; // Zero-trip loop: vacuous.
                    } else {
                        pass = lo.asInt32() >= 0 &&
                               static_cast<uint32_t>(hi.asInt32()) <
                                   env.heap.array(va.payload())
                                       .length();
                        }
                    break;
                  }
                  case IrOp::CheckOverflow:
                    pass = !overflow[instr.a];
                    break;
                  case IrOp::CheckNotHole:
                    pass = !va.isUndefined();
                    break;
                  default:
                    pass = true;
                    break;
                }

                // Fault injection: force this check to fail. Every
                // armed check-site counts this occurrence (no
                // short-circuiting) so occurrence numbering never
                // depends on which other actions are armed. A forced
                // failure is only honored where the generic recovery
                // below can run: unconverted checks need an SMP to
                // OSR through; converted checks need a live
                // transaction to abort.
                if (pass && env.inj) {
                    CheckKind kind = checkKindOf(instr.op);
                    bool force =
                        env.inj->fire(faultSiteOfCheck(kind));
                    force |= env.inj->fire(FaultSite::CheckAny);
                    if (!instr.converted && instr.smpPc != kNoSmp) {
                        force |= env.inj->fire(FaultSite::FtlOsr,
                                               instr.smpPc);
                    }
                    if (force &&
                        (instr.converted ? env.htm.inTransaction()
                                         : instr.smpPc != kNoSmp)) {
                        pass = false;
                    }
                }
                if (pass)
                    break;

                if (!instr.converted) {
                    // OSR exit through the stack map: hand the
                    // baseline registers to the Baseline tier at the
                    // SMP's bytecode pc.
                    ++env.acct.stats().deopts;
                    NOMAP_ASSERT(instr.smpPc != kNoSmp);
                    std::vector<Value> locals(
                        regs.begin(), regs.begin() + ir.bytecodeRegs);
                    return baseline.runFrom(fn, locals, instr.smpPc);
                }
                // Converted check: transactional abort.
                ++checkAborts;
                env.acct.chargeCycles(
                    env.htm.abort(AbortCode::ExplicitCheck));
                if (!tx_owner) {
                    // The transaction belongs to a caller; unwind.
                    sync_tx_flag();
                    throw TxAbortUnwind{AbortCode::ExplicitCheck};
                }
                return resume_baseline();
              }

              // ---- Memory -------------------------------------------
              case IrOp::GetSlot: {
                Value va = regs[instr.a];
                if (!va.isObject() ||
                    instr.imm >=
                        env.heap.object(va.payload()).slots.size()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                regs[instr.dst] =
                    env.heap.getSlot(va.payload(), instr.imm);
                env.memAccess(
                    env.heap.slotAddr(va.payload(), instr.imm), false);
                break;
              }
              case IrOp::SetSlot: {
                Value va = regs[instr.a];
                if (!va.isObject() ||
                    instr.imm >=
                        env.heap.object(va.payload()).slots.size()) {
                    NOMAP_ASSERT(in_tx);
                    break; // Speculative store to nowhere.
                }
                env.heap.setSlot(va.payload(), instr.imm,
                                 regs[instr.b]);
                env.memAccess(
                    env.heap.slotAddr(va.payload(), instr.imm), true);
                break;
              }
              case IrOp::GetArrayLen: {
                Value va = regs[instr.a];
                if (!va.isArray()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                regs[instr.dst] = Value::int32(static_cast<int32_t>(
                    env.heap.array(va.payload()).length()));
                env.memAccess(env.heap.array(va.payload()).baseAddr,
                              false);
                break;
              }
              case IrOp::GetElem: {
                Value va = regs[instr.a];
                Value vi = regs[instr.b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    break;
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr.dst] = garbageValue();
                    if (i >= 0) {
                        env.memAccess(
                            arr.baseAddr + 8ull *
                                static_cast<uint32_t>(i),
                            false);
                    }
                    break;
                }
                regs[instr.dst] = arr.storage[static_cast<size_t>(i)];
                env.memAccess(env.heap.elementAddr(
                                  va.payload(),
                                  static_cast<uint32_t>(i)),
                              false);
                break;
              }
              case IrOp::SetElem: {
                Value va = regs[instr.a];
                Value vi = regs[instr.b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    break;
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(in_tx);
                    if (i >= 0) {
                        Addr addr = arr.baseAddr +
                                    8ull * static_cast<uint32_t>(i);
                        if (!env.htm.recordWrite(addr))
                            throw TxAbortUnwind{AbortCode::Capacity};
                        env.memAccess(addr, true);
                    }
                    break; // Speculative OOB store: dropped.
                }
                env.heap.setElementFast(va.payload(),
                                        static_cast<uint32_t>(i),
                                        regs[instr.c]);
                env.memAccess(env.heap.elementAddr(
                                  va.payload(),
                                  static_cast<uint32_t>(i)),
                              true);
                break;
              }
              case IrOp::LoadGlobal:
                regs[instr.dst] = env.heap.getGlobal(instr.imm);
                env.memAccess(env.heap.globalAddr(instr.imm), false);
                break;
              case IrOp::StoreGlobal:
                env.heap.setGlobal(instr.imm, regs[instr.a]);
                env.memAccess(env.heap.globalAddr(instr.imm), true);
                break;

              // ---- Generic runtime fallbacks -----------------------
              case IrOp::GenericBinary:
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                regs[instr.dst] = env.runtime.applyBinary(
                    static_cast<BinaryOp>(instr.imm), regs[instr.a],
                    regs[instr.b]);
                break;
              case IrOp::GenericUnary:
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                regs[instr.dst] = env.runtime.applyUnary(
                    static_cast<UnaryOp>(instr.imm), regs[instr.a]);
                break;
              case IrOp::GenericGetProp: {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                regs[instr.dst] = env.runtime.getPropertyGeneric(
                    regs[instr.a], instr.imm, &addr);
                env.memAccess(addr, false);
                break;
              }
              case IrOp::GenericSetProp: {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                env.runtime.setPropertyGeneric(regs[instr.a], instr.imm,
                                               regs[instr.b], &addr);
                env.memAccess(addr, true);
                break;
              }
              case IrOp::GenericGetIndex: {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                regs[instr.dst] = env.runtime.getIndexGeneric(
                    regs[instr.a], regs[instr.b], &addr);
                env.memAccess(addr, false);
                break;
              }
              case IrOp::GenericSetIndex: {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                env.runtime.setIndexGeneric(regs[instr.a],
                                            regs[instr.b],
                                            regs[instr.c], &addr);
                env.memAccess(addr, true);
                break;
              }
              case IrOp::NewArray: {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value arr = env.heap.allocArray(instr.imm);
                for (uint32_t i = 0; i < instr.imm; ++i) {
                    env.heap.setElementFast(arr.payload(), i,
                                            regs[instr.a + i]);
                }
                regs[instr.dst] = arr;
                break;
              }
              case IrOp::NewObject: {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value obj = env.heap.allocObject();
                // The descriptor lives in the bytecode function.
                const ObjectDesc &desc = fn.objectDescs[instr.imm];
                for (uint32_t i = 0; i < instr.b; ++i) {
                    env.heap.setProperty(obj.payload(),
                                         desc.nameIds[i],
                                         regs[instr.a + i]);
                }
                regs[instr.dst] = obj;
                break;
              }

              // ---- Calls ---------------------------------------------
              case IrOp::Call:
                regs[instr.dst] = env.dispatcher.call(
                    instr.imm, regs.data() + instr.a, instr.b);
                break;
              case IrOp::CallNative: {
                auto bid = static_cast<BuiltinId>(instr.imm);
                if (bid == BuiltinId::Print)
                    env.irrevocableEvent();
                env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
                regs[instr.dst] = env.builtins.call(
                    bid, regs.data() + instr.a, instr.b);
                break;
              }
              case IrOp::Intrinsic:
                regs[instr.dst] = env.builtins.call(
                    static_cast<BuiltinId>(instr.imm),
                    regs.data() + instr.a, instr.b);
                break;
              case IrOp::CallMethod: {
                env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
                uint32_t name_id = instr.imm / 16;
                uint32_t margs = instr.imm % 16;
                regs[instr.dst] = env.builtins.callMethod(
                    regs[instr.a], name_id, regs.data() + instr.b,
                    margs);
                break;
              }

              // ---- Control flow --------------------------------------
              case IrOp::Jump:
                block = instr.imm;
                idx = 0;
                continue;
              case IrOp::Branch: {
                bool taken = env.runtime.toBoolean(regs[instr.a]);
                block = taken ? instr.imm : instr.imm2;
                idx = 0;
                continue;
              }
              case IrOp::Return:
                NOMAP_ASSERT(!tx_owner);
                return regs[instr.a];
              case IrOp::ReturnUndef:
                NOMAP_ASSERT(!tx_owner);
                return Value::undefined();

              // ---- Transactions --------------------------------------
              case IrOp::TxBegin: {
                bool outermost = !env.htm.inTransaction();
                env.acct.chargeCycles(env.htm.begin());
                sync_tx_flag();
                if (outermost) {
                    tx_owner = true;
                    tx_snapshot.assign(
                        regs.begin(), regs.begin() + ir.bytecodeRegs);
                    tx_entry_pc = instr.smpPc;
                    tx_instr = 0;
                    tile_count = 0;
                    // An injected begin-abort (htm.abort*) fires now
                    // that owner state exists, so recovery follows
                    // the real abort path.
                    AbortCode injected =
                        env.htm.takePendingInjectedAbort();
                    if (injected != AbortCode::None) {
                        env.acct.chargeCycles(
                            env.htm.abort(injected));
                        return resume_baseline();
                    }
                }
                break;
              }
              case IrOp::TxEnd: {
                CommitResult r = env.htm.end();
                env.acct.chargeCycles(r.cycles);
                if (r.committed) {
                    if (!env.htm.inTransaction()) {
                        env.mem.commitSpeculative();
                        tx_owner = false;
                    }
                    sync_tx_flag();
                    break;
                }
                // SOF abort at commit (paper Figure 7).
                if (!tx_owner) {
                    sync_tx_flag();
                    throw TxAbortUnwind{r.abortCode};
                }
                return resume_baseline();
              }
              case IrOp::TxTile: {
                if (!tx_owner)
                    break; // Nested: tiling disabled.
                ++tile_count;
                if (tile_count % instr.imm != 0)
                    break;
                CommitResult r = env.htm.end();
                env.acct.chargeCycles(r.cycles);
                if (!r.committed)
                    return resume_baseline();
                env.mem.commitSpeculative();
                env.acct.chargeCycles(env.htm.begin());
                tx_snapshot.assign(regs.begin(),
                                   regs.begin() + ir.bytecodeRegs);
                tx_entry_pc = instr.smpPc;
                tx_instr = 0;
                {
                    AbortCode injected =
                        env.htm.takePendingInjectedAbort();
                    if (injected != AbortCode::None) {
                        env.acct.chargeCycles(
                            env.htm.abort(injected));
                        return resume_baseline();
                    }
                }
                break;
              }
            }
            ++idx;
        }
    } catch (TxAbortUnwind &unwind) {
        if (!tx_owner) {
            sync_tx_flag();
            throw; // Outer frame owns the transaction.
        }
        if (unwind.code == AbortCode::Capacity)
            ++capAborts;
        return resume_baseline();
    }
}

} // namespace nomap
