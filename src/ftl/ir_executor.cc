#include "ftl/ir_executor.h"

#include <cmath>

#include "support/logging.h"

/**
 * Dispatch strategy — same scheme as the bytecode executor. With
 * NOMAP_COMPUTED_GOTO each op body ends in an indirect jump through a
 * per-opcode label table (direct threading); without it the bodies
 * compile as a portable switch. VM_CASE opens an op body, `goto
 * vm_next` advances to the next instruction, `goto vm_next_newseg`
 * does the same but re-enters segment charging (transaction-boundary
 * ops), and Jump/Branch go to vm_seg_entry after retargeting.
 *
 * The loop walks the function's flat predecoded run stream (see
 * ExecInstr in ir/ir.h): one contiguous array of 32-byte records in
 * block order, branch targets pre-resolved to flat indices, the
 * batched charge plan folded into each record. Per-op bounds checks
 * are unnecessary — computeChargePlan validates once that every block
 * ends in a terminator and every branch target is in range, so `ip`
 * can only move between valid records.
 */
#if defined(NOMAP_COMPUTED_GOTO)
#define VM_CASE(name) lbl_##name:
#else
#define VM_CASE(name) case IrOp::name:
#endif

namespace nomap {

// trace.cc renders Deopt check kinds from a mirrored name table; pin
// the numeric layout so the two cannot drift apart.
static_assert(static_cast<uint8_t>(CheckKind::Bounds) == 0 &&
              static_cast<uint8_t>(CheckKind::Overflow) == 1 &&
              static_cast<uint8_t>(CheckKind::Type) == 2 &&
              static_cast<uint8_t>(CheckKind::Property) == 3 &&
              static_cast<uint8_t>(CheckKind::Other) == 4);

namespace {

/** Deterministic garbage produced by unguarded speculative ops. */
Value
garbageValue()
{
    return Value::int32(0);
}

/** Injection site of a check kind (check.bounds, check.type, ...). */
FaultSite
faultSiteOfCheck(CheckKind kind)
{
    switch (kind) {
      case CheckKind::Bounds: return FaultSite::CheckBounds;
      case CheckKind::Overflow: return FaultSite::CheckOverflow;
      case CheckKind::Type: return FaultSite::CheckType;
      case CheckKind::Property: return FaultSite::CheckProperty;
      case CheckKind::Other: return FaultSite::CheckOther;
      case CheckKind::NumKinds: break;
    }
    return FaultSite::CheckOther;
}

} // namespace

IrExecutor::IrExecutor(ExecEnv &env_, BytecodeExecutor &baseline_,
                       const EngineConfig &config_)
    : env(env_), baseline(baseline_), config(config_)
{
}

Value
IrExecutor::run(IrFunction &ir, BytecodeFunction &fn, const Value *args,
                uint32_t nargs)
{
    // Hand-built IR in tests never goes through compileFunction; build
    // its charge plan (and flat run stream) on first execution.
    if (!ir.chargePlanReady)
        computeChargePlan(ir);
    // Select the specialized loop once per run. env.inj is armed (or
    // not) for a whole engine run, and TraceBuffer::enabled() is
    // fixed at construction, so neither can change under a running
    // frame.
    unsigned feat = (env.perOpAccounting ? 0u : kFeatBatched) |
                    (env.inj ? kFeatInject : 0u) |
                    (env.trace && env.trace->enabled() ? kFeatTrace
                                                       : 0u);
    switch (feat) {
      case 0:
        return runImpl<0>(ir, fn, args, nargs);
      case kFeatBatched:
        return runImpl<kFeatBatched>(ir, fn, args, nargs);
      case kFeatInject:
        return runImpl<kFeatInject>(ir, fn, args, nargs);
      case kFeatBatched | kFeatInject:
        return runImpl<kFeatBatched | kFeatInject>(ir, fn, args,
                                                   nargs);
      case kFeatTrace:
        return runImpl<kFeatTrace>(ir, fn, args, nargs);
      case kFeatBatched | kFeatTrace:
        return runImpl<kFeatBatched | kFeatTrace>(ir, fn, args, nargs);
      case kFeatInject | kFeatTrace:
        return runImpl<kFeatInject | kFeatTrace>(ir, fn, args, nargs);
      default:
        return runImpl<kFeatBatched | kFeatInject | kFeatTrace>(
            ir, fn, args, nargs);
    }
}

template <unsigned kFeat>
Value
IrExecutor::runImpl(IrFunction &ir, BytecodeFunction &fn,
                    const Value *args, uint32_t nargs)
{
    constexpr bool kBatched = (kFeat & kFeatBatched) != 0;
    constexpr bool kInject = (kFeat & kFeatInject) != 0;
    constexpr bool kTrace = (kFeat & kFeatTrace) != 0;

    FrameLease frameLease(env, ir.numRegs);
    FlagLease flagLease(env, ir.numRegs);
    Value *const R = frameLease.regs().data();
    uint8_t *const OVF = flagLease.flags().data();
    for (uint32_t i = 0; i < fn.numParams && i < nargs; ++i)
        R[i] = args[i];
    const Value *const consts = ir.constants.data();

    const bool ftl = ir.tier == Tier::Ftl;
    // Frame prologue + argument marshalling.
    env.acct.chargeInstructions(ir.tier, 8, ir.txAware);

    // Transaction-owner state for this frame.
    bool tx_owner = false;
    std::vector<Value> tx_snapshot;
    uint32_t tx_entry_pc = 0;
    uint64_t tx_instr = 0;
    uint64_t tile_count = 0;
    // Transactional context when the current segment was charged — a
    // refund must come out of the same cycle bucket even if an abort
    // has flipped the context since.
    bool seg_charged_tm = false;

    const ExecInstr *const base = ir.flat.data();
    const ExecInstr *ip = base;

    auto sync_tx_flag = [&] {
        env.acct.setInTransaction(env.htm.inTransaction());
    };

    // Batched mode: take back the charged-but-unexecuted suffix of
    // the current segment (everything after the op at ip). Zero when
    // the op at ip ends its segment.
    [[maybe_unused]] auto refundAfterCurrent = [&] {
        uint64_t rest =
            static_cast<uint64_t>(ip->chargeFrom) - ip->ownScaled;
        if (rest) {
            env.acct.refundInstructions(ir.tier, rest, ir.txAware,
                                        seg_charged_tm);
        }
    };

    // After an abort (memory already rolled back), re-enter the
    // Baseline tier at the transaction's entry SMP (paper "Entry3").
    auto resume_baseline = [&]() -> Value {
        env.mem.discardSpeculative();
        tx_owner = false;
        sync_tx_flag();
        std::vector<Value> locals(
            tx_snapshot.begin(),
            tx_snapshot.begin() +
                std::min<size_t>(tx_snapshot.size(), ir.bytecodeRegs));
        return baseline.runFrom(fn, locals, tx_entry_pc);
    };

    try {
#if defined(NOMAP_COMPUTED_GOTO)
        static const void *const kDispatch[] = {
#define NOMAP_IR_OP_LABEL(name) &&lbl_##name,
            NOMAP_IR_OP_LIST(NOMAP_IR_OP_LABEL)
#undef NOMAP_IR_OP_LABEL
        };
        static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                      kNumIrOps);
#endif

    vm_seg_entry:
        // Entering a new charge segment: block entry, or the
        // instruction after a transaction-boundary op (whose
        // successors execute — and must be charged — under the new
        // transactional context).
        if constexpr (kBatched) {
            seg_charged_tm = env.acct.inTransaction();
            env.acct.chargeInstructions(ir.tier, ip->chargeFrom,
                                        ir.txAware);
        }

    vm_top:
        // Per-op mode pays each op's scaled cost here; batched mode
        // already paid it as part of the segment charge. The watchdog
        // counter advances per-op in both modes so its firing point
        // (and the engine.watchdog injection site below) never moves.
        if constexpr (!kBatched) {
            env.acct.chargeInstructions(ir.tier, ip->ownScaled,
                                        ir.txAware);
        }
        if (tx_owner) {
            tx_instr += ip->ownScaled;

            // Watchdog: a timer interrupt would abort a transaction
            // that runs unreasonably long (e.g. spinning on garbage
            // after speculative check removal). The engine.watchdog
            // site polls here too — once per in-transaction
            // instruction — so a FaultPlan can kill a transaction at
            // any point of its lifetime.
            bool kill = tx_instr > config.txWatchdogInstructions;
            if constexpr (kInject)
                kill = kill ||
                       env.inj->fire(FaultSite::EngineTxWatchdog);
            if (kill) {
                if constexpr (kBatched)
                    refundAfterCurrent();
                env.acct.chargeCycles(
                    env.htm.abort(AbortCode::Irrevocable));
                return resume_baseline();
            }
        }

        {
#if defined(NOMAP_COMPUTED_GOTO)
            goto *kDispatch[static_cast<size_t>(ip->op)];
#else
            switch (ip->op)
#endif
            {
              VM_CASE(Nop)
                goto vm_next;
              VM_CASE(Const)
                R[ip->dst] = consts[ip->imm];
                goto vm_next;
              VM_CASE(Move)
                R[ip->dst] = R[ip->a];
                OVF[ip->dst] = OVF[ip->a];
                goto vm_next;

              // ---- Integer arithmetic (sets the overflow flag) -----
              VM_CASE(AddInt)
              VM_CASE(SubInt)
              VM_CASE(MulInt) {
                Value va = R[ip->a];
                Value vb = R[ip->b];
                if (!va.isInt32() || !vb.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    OVF[ip->dst] = 0;
                    goto vm_next;
                }
                int64_t wide;
                int64_t x = va.asInt32();
                int64_t y = vb.asInt32();
                if (ip->op == IrOp::AddInt)
                    wide = x + y;
                else if (ip->op == IrOp::SubInt)
                    wide = x - y;
                else
                    wide = x * y;
                bool ovf = wide < INT32_MIN || wide > INT32_MAX;
                R[ip->dst] = Value::int32(static_cast<int32_t>(wide));
                OVF[ip->dst] = ovf;
                if (ovf && env.htm.inTransaction())
                    env.htm.noteArithmeticOverflow();
                goto vm_next;
              }
              VM_CASE(NegInt) {
                Value va = R[ip->a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                int32_t x = va.asInt32();
                bool ovf = (x == 0) || (x == INT32_MIN);
                R[ip->dst] =
                    Value::int32(ovf && x == INT32_MIN ? x : -x);
                OVF[ip->dst] = ovf;
                if (ovf && env.htm.inTransaction())
                    env.htm.noteArithmeticOverflow();
                goto vm_next;
              }

              // ---- Double arithmetic -------------------------------
              VM_CASE(AddDouble)
              VM_CASE(SubDouble)
              VM_CASE(MulDouble)
              VM_CASE(DivDouble)
              VM_CASE(ModDouble) {
                Value va = R[ip->a];
                Value vb = R[ip->b];
                if (!va.isNumber() || !vb.isNumber()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                double x = va.asNumber();
                double y = vb.asNumber();
                double r;
                switch (ip->op) {
                  case IrOp::AddDouble: r = x + y; break;
                  case IrOp::SubDouble: r = x - y; break;
                  case IrOp::MulDouble: r = x * y; break;
                  case IrOp::DivDouble: r = x / y; break;
                  default: r = std::fmod(x, y); break;
                }
                R[ip->dst] = Value::number(r);
                goto vm_next;
              }
              VM_CASE(NegDouble) {
                Value va = R[ip->a];
                if (!va.isNumber()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                R[ip->dst] = Value::boxDouble(-va.asNumber());
                goto vm_next;
              }

              // ---- Bitwise / shifts ---------------------------------
              VM_CASE(BitAndInt)
              VM_CASE(BitOrInt)
              VM_CASE(BitXorInt)
              VM_CASE(ShlInt)
              VM_CASE(ShrInt)
              VM_CASE(UShrInt) {
                Value va = R[ip->a];
                Value vb = R[ip->b];
                if (!va.isInt32() || !vb.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                int32_t x = va.asInt32();
                uint32_t sh = static_cast<uint32_t>(vb.asInt32()) & 31;
                switch (ip->op) {
                  case IrOp::BitAndInt:
                    R[ip->dst] = Value::int32(x & vb.asInt32());
                    break;
                  case IrOp::BitOrInt:
                    R[ip->dst] = Value::int32(x | vb.asInt32());
                    break;
                  case IrOp::BitXorInt:
                    R[ip->dst] = Value::int32(x ^ vb.asInt32());
                    break;
                  case IrOp::ShlInt:
                    R[ip->dst] = Value::int32(x << sh);
                    break;
                  case IrOp::ShrInt:
                    R[ip->dst] = Value::int32(x >> sh);
                    break;
                  default:
                    R[ip->dst] = Value::number(static_cast<double>(
                        static_cast<uint32_t>(x) >> sh));
                    break;
                }
                goto vm_next;
              }
              VM_CASE(BitNotInt) {
                Value va = R[ip->a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                R[ip->dst] = Value::int32(~va.asInt32());
                goto vm_next;
              }

              // ---- Comparisons -------------------------------------
              VM_CASE(CmpInt)
              VM_CASE(CmpDouble) {
                Value va = R[ip->a];
                Value vb = R[ip->b];
                if (!va.isNumber() || !vb.isNumber()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = Value::boolean(false);
                    goto vm_next;
                }
                double x = va.asNumber();
                double y = vb.asNumber();
                bool r;
                switch (static_cast<BinaryOp>(ip->imm)) {
                  case BinaryOp::Lt: r = x < y; break;
                  case BinaryOp::Le: r = x <= y; break;
                  case BinaryOp::Gt: r = x > y; break;
                  case BinaryOp::Ge: r = x >= y; break;
                  case BinaryOp::Eq:
                  case BinaryOp::StrictEq: r = x == y; break;
                  case BinaryOp::NotEq:
                  case BinaryOp::StrictNotEq: r = x != y; break;
                  default:
                    panic("bad compare subop");
                }
                R[ip->dst] = Value::boolean(r);
                goto vm_next;
              }
              VM_CASE(ToDouble)
                R[ip->dst] = Value::boxDouble(R[ip->a].asNumber());
                goto vm_next;
              VM_CASE(ToBoolean)
                R[ip->dst] =
                    Value::boolean(env.runtime.toBoolean(R[ip->a]));
                goto vm_next;
              VM_CASE(NotBool)
                R[ip->dst] = Value::boolean(!R[ip->a].asBoolean());
                goto vm_next;

              // ---- Checks -------------------------------------------
              VM_CASE(CheckInt32)
              VM_CASE(CheckNumber)
              VM_CASE(CheckShape)
              VM_CASE(CheckArray)
              VM_CASE(CheckIndexInt)
              VM_CASE(CheckBounds)
              VM_CASE(CheckBoundsRange)
              VM_CASE(CheckOverflow)
              VM_CASE(CheckNotHole) {
                if (ftl)
                    env.acct.recordCheck(checkKindOfUnchecked(ip->op));
                bool pass;
                Value va = R[ip->a];
                switch (ip->op) {
                  case IrOp::CheckInt32:
                  case IrOp::CheckIndexInt:
                    pass = va.isInt32();
                    break;
                  case IrOp::CheckNumber:
                    pass = va.isNumber();
                    break;
                  case IrOp::CheckShape:
                    pass = va.isObject() &&
                           env.heap.object(va.payload()).shape ==
                               ip->imm;
                    break;
                  case IrOp::CheckArray:
                    pass = va.isArray();
                    break;
                  case IrOp::CheckBounds: {
                    Value vi = R[ip->b];
                    pass = va.isArray() && vi.isInt32() &&
                           vi.asInt32() >= 0 &&
                           static_cast<uint32_t>(vi.asInt32()) <
                               env.heap.array(va.payload()).length();
                    break;
                  }
                  case IrOp::CheckBoundsRange: {
                    Value lo = R[ip->b];
                    Value hi = R[ip->c];
                    if (!lo.isInt32() || !hi.isInt32() ||
                        !va.isArray()) {
                        pass = false;
                    } else if (hi.asInt32() < lo.asInt32()) {
                        pass = true; // Zero-trip loop: vacuous.
                    } else {
                        pass = lo.asInt32() >= 0 &&
                               static_cast<uint32_t>(hi.asInt32()) <
                                   env.heap.array(va.payload())
                                       .length();
                        }
                    break;
                  }
                  case IrOp::CheckOverflow:
                    pass = !OVF[ip->a];
                    break;
                  case IrOp::CheckNotHole:
                    pass = !va.isUndefined();
                    break;
                  default:
                    pass = true;
                    break;
                }

                // Fault injection: force this check to fail. Every
                // armed check-site counts this occurrence (no
                // short-circuiting) so occurrence numbering never
                // depends on which other actions are armed. A forced
                // failure is only honored where the generic recovery
                // below can run: unconverted checks need an SMP to
                // OSR through; converted checks need a live
                // transaction to abort.
                if constexpr (kInject) {
                    if (pass) {
                        CheckKind kind = checkKindOfUnchecked(ip->op);
                        bool force =
                            env.inj->fire(faultSiteOfCheck(kind));
                        force |= env.inj->fire(FaultSite::CheckAny);
                        if (!ip->converted && ip->smpPc != kNoSmp) {
                            force |= env.inj->fire(FaultSite::FtlOsr,
                                                   ip->smpPc);
                        }
                        if (force &&
                            (ip->converted ? env.htm.inTransaction()
                                           : ip->smpPc != kNoSmp)) {
                            pass = false;
                        }
                    }
                }
                if (pass)
                    goto vm_next;

                if (!ip->converted) {
                    // OSR exit through the stack map: hand the
                    // baseline registers to the Baseline tier at the
                    // SMP's bytecode pc.
                    ++env.acct.stats().deopts;
                    NOMAP_ASSERT(ip->smpPc != kNoSmp);
                    if constexpr (kTrace) {
                        TraceEvent event;
                        event.vcycles = env.acct.virtualCycles();
                        event.type = TraceEventType::Deopt;
                        event.code = static_cast<uint8_t>(
                            checkKindOfUnchecked(ip->op));
                        event.funcId = ir.funcId;
                        event.pc = ip->smpPc;
                        env.trace->emit(event);
                    }
                    if constexpr (kBatched)
                        refundAfterCurrent();
                    std::vector<Value> locals(R, R + ir.bytecodeRegs);
                    return baseline.runFrom(fn, locals, ip->smpPc);
                }
                // Converted check: transactional abort.
                ++checkAborts;
                env.acct.chargeCycles(
                    env.htm.abort(AbortCode::ExplicitCheck));
                if (!tx_owner) {
                    // The transaction belongs to a caller; unwind.
                    // (Our own catch below refunds the segment suffix
                    // before rethrowing — no inline refund here.)
                    sync_tx_flag();
                    throw TxAbortUnwind{AbortCode::ExplicitCheck};
                }
                if constexpr (kBatched)
                    refundAfterCurrent();
                return resume_baseline();
              }

              // ---- Memory -------------------------------------------
              VM_CASE(GetSlot) {
                Value va = R[ip->a];
                if (!va.isObject()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                const JsObject &obj =
                    env.heap.object(va.payload());
                if (ip->imm >= obj.slots.size()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                R[ip->dst] = obj.slots[ip->imm];
                env.memAccess(obj.baseAddr + 8ull * ip->imm, false);
                goto vm_next;
              }
              VM_CASE(SetSlot) {
                Value va = R[ip->a];
                if (!va.isObject()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    goto vm_next; // Speculative store to nowhere.
                }
                const JsObject &obj =
                    env.heap.object(va.payload());
                if (ip->imm >= obj.slots.size()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    goto vm_next; // Speculative store to nowhere.
                }
                env.heap.setSlot(va.payload(), ip->imm, R[ip->b]);
                env.memAccess(obj.baseAddr + 8ull * ip->imm, true);
                goto vm_next;
              }
              VM_CASE(GetArrayLen) {
                Value va = R[ip->a];
                if (!va.isArray()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                const JsArray &arr = env.heap.array(va.payload());
                R[ip->dst] = Value::int32(
                    static_cast<int32_t>(arr.length()));
                env.memAccess(arr.baseAddr, false);
                goto vm_next;
              }
              VM_CASE(GetElem) {
                Value va = R[ip->a];
                Value vi = R[ip->b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    goto vm_next;
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    if (i >= 0) {
                        env.memAccess(
                            arr.baseAddr + 8ull *
                                static_cast<uint32_t>(i),
                            false);
                    }
                    goto vm_next;
                }
                R[ip->dst] = arr.storage[static_cast<size_t>(i)];
                env.memAccess(arr.baseAddr +
                                  8ull * static_cast<uint32_t>(i),
                              false);
                goto vm_next;
              }
              VM_CASE(SetElem) {
                Value va = R[ip->a];
                Value vi = R[ip->b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    goto vm_next;
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    if (i >= 0) {
                        Addr addr = arr.baseAddr +
                                    8ull * static_cast<uint32_t>(i);
                        if (!env.htm.recordWrite(addr))
                            throw TxAbortUnwind{AbortCode::Capacity};
                        env.memAccess(addr, true);
                    }
                    goto vm_next; // Speculative OOB store: dropped.
                }
                env.heap.setElementFast(va.payload(),
                                        static_cast<uint32_t>(i),
                                        R[ip->c]);
                env.memAccess(arr.baseAddr +
                                  8ull * static_cast<uint32_t>(i),
                              true);
                goto vm_next;
              }
              VM_CASE(LoadGlobal)
                R[ip->dst] = env.heap.getGlobal(ip->imm);
                env.memAccess(env.heap.globalAddr(ip->imm), false);
                goto vm_next;
              VM_CASE(StoreGlobal)
                env.heap.setGlobal(ip->imm, R[ip->a]);
                env.memAccess(env.heap.globalAddr(ip->imm), true);
                goto vm_next;

              // ---- Generic runtime fallbacks -----------------------
              VM_CASE(GenericBinary)
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                R[ip->dst] = env.runtime.applyBinary(
                    static_cast<BinaryOp>(ip->imm), R[ip->a],
                    R[ip->b]);
                goto vm_next;
              VM_CASE(GenericUnary)
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                R[ip->dst] = env.runtime.applyUnary(
                    static_cast<UnaryOp>(ip->imm), R[ip->a]);
                goto vm_next;
              VM_CASE(GenericGetProp) {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                R[ip->dst] = env.runtime.getPropertyGeneric(
                    R[ip->a], ip->imm, &addr);
                env.memAccess(addr, false);
                goto vm_next;
              }
              VM_CASE(GenericSetProp) {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                env.runtime.setPropertyGeneric(R[ip->a], ip->imm,
                                               R[ip->b], &addr);
                env.memAccess(addr, true);
                goto vm_next;
              }
              VM_CASE(GenericGetIndex) {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                R[ip->dst] = env.runtime.getIndexGeneric(
                    R[ip->a], R[ip->b], &addr);
                env.memAccess(addr, false);
                goto vm_next;
              }
              VM_CASE(GenericSetIndex) {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                env.runtime.setIndexGeneric(R[ip->a], R[ip->b],
                                            R[ip->c], &addr);
                env.memAccess(addr, true);
                goto vm_next;
              }
              VM_CASE(NewArray) {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value arr = env.heap.allocArray(ip->imm);
                for (uint32_t i = 0; i < ip->imm; ++i) {
                    env.heap.setElementFast(arr.payload(), i,
                                            R[ip->a + i]);
                }
                R[ip->dst] = arr;
                goto vm_next;
              }
              VM_CASE(NewObject) {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value obj = env.heap.allocObject();
                // The descriptor lives in the bytecode function.
                const ObjectDesc &desc = fn.objectDescs[ip->imm];
                for (uint32_t i = 0; i < ip->b; ++i) {
                    env.heap.setProperty(obj.payload(),
                                         desc.nameIds[i],
                                         R[ip->a + i]);
                }
                R[ip->dst] = obj;
                goto vm_next;
              }

              // ---- Calls --------------------------------------------
              VM_CASE(Call)
                R[ip->dst] =
                    env.dispatcher.call(ip->imm, R + ip->a, ip->b);
                goto vm_next;
              VM_CASE(CallNative) {
                auto bid = static_cast<BuiltinId>(ip->imm);
                if (bid == BuiltinId::Print)
                    env.irrevocableEvent();
                env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
                R[ip->dst] = env.builtins.call(bid, R + ip->a, ip->b);
                goto vm_next;
              }
              VM_CASE(Intrinsic)
                R[ip->dst] = env.builtins.call(
                    static_cast<BuiltinId>(ip->imm), R + ip->a, ip->b);
                goto vm_next;
              VM_CASE(CallMethod) {
                env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
                uint32_t name_id = ip->imm / 16;
                uint32_t margs = ip->imm % 16;
                R[ip->dst] = env.builtins.callMethod(
                    R[ip->a], name_id, R + ip->b, margs);
                goto vm_next;
              }

              // ---- Control flow ------------------------------------
              VM_CASE(Jump)
                ip = base + ip->imm;
                goto vm_seg_entry;
              VM_CASE(Branch) {
                bool taken = env.runtime.toBoolean(R[ip->a]);
                ip = base + (taken ? ip->imm : ip->imm2);
                goto vm_seg_entry;
              }
              VM_CASE(Return)
                NOMAP_ASSERT(!tx_owner);
                return R[ip->a];
              VM_CASE(ReturnUndef)
                NOMAP_ASSERT(!tx_owner);
                return Value::undefined();

              // ---- Transactions ------------------------------------
              VM_CASE(TxBegin) {
                bool outermost = !env.htm.inTransaction();
                // Attribute the transaction's trace/telemetry events
                // to this function + entry SMP before begin() emits
                // TxBegin. Unconditional: the adaptive controller
                // consumes the telemetry stream with tracing off.
                if (outermost)
                    env.htm.setTraceContext(ir.funcId, ip->smpPc);
                env.acct.chargeCycles(env.htm.begin());
                sync_tx_flag();
                if (outermost) {
                    tx_owner = true;
                    tx_snapshot.assign(R, R + ir.bytecodeRegs);
                    tx_entry_pc = ip->smpPc;
                    tx_instr = 0;
                    tile_count = 0;
                    // An injected begin-abort (htm.abort*) fires now
                    // that owner state exists, so recovery follows
                    // the real abort path.
                    AbortCode injected =
                        env.htm.takePendingInjectedAbort();
                    if (injected != AbortCode::None) {
                        if constexpr (kBatched)
                            refundAfterCurrent();
                        env.acct.chargeCycles(
                            env.htm.abort(injected));
                        return resume_baseline();
                    }
                }
                goto vm_next_newseg;
              }
              VM_CASE(TxEnd) {
                CommitResult r = env.htm.end();
                env.acct.chargeCycles(r.cycles);
                if (r.committed) {
                    if (!env.htm.inTransaction()) {
                        env.mem.commitSpeculative();
                        tx_owner = false;
                    }
                    sync_tx_flag();
                    goto vm_next_newseg;
                }
                // SOF abort at commit (paper Figure 7).
                if (!tx_owner) {
                    sync_tx_flag();
                    throw TxAbortUnwind{r.abortCode};
                }
                if constexpr (kBatched)
                    refundAfterCurrent();
                return resume_baseline();
              }
              VM_CASE(TxTile) {
                if (!tx_owner)
                    goto vm_next_newseg; // Nested: tiling disabled.
                ++tile_count;
                if (tile_count % ip->imm != 0)
                    goto vm_next_newseg;
                CommitResult r = env.htm.end();
                env.acct.chargeCycles(r.cycles);
                if (!r.committed) {
                    if constexpr (kBatched)
                        refundAfterCurrent();
                    return resume_baseline();
                }
                env.mem.commitSpeculative();
                env.htm.setTraceContext(ir.funcId, ip->smpPc);
                env.acct.chargeCycles(env.htm.begin());
                tx_snapshot.assign(R, R + ir.bytecodeRegs);
                tx_entry_pc = ip->smpPc;
                tx_instr = 0;
                {
                    AbortCode injected =
                        env.htm.takePendingInjectedAbort();
                    if (injected != AbortCode::None) {
                        if constexpr (kBatched)
                            refundAfterCurrent();
                        env.acct.chargeCycles(
                            env.htm.abort(injected));
                        return resume_baseline();
                    }
                }
                goto vm_next_newseg;
              }
            }
        }

    vm_next:
        ++ip;
        goto vm_top;

    vm_next_newseg:
        // The op just executed ended a charge segment (transaction
        // boundary): its successors run under the new transactional
        // context, so batched mode opens a fresh segment for them.
        ++ip;
        goto vm_seg_entry;
    } catch (TxAbortUnwind &unwind) {
        if constexpr (kBatched) {
            // The charged segment's ops after the faulting one never
            // executed — whether the throw came from this frame's own
            // converted check / capacity overflow or surfaced out of
            // a callee. (ExecutionCancelled is deliberately NOT
            // caught: cancellation voids the stats and the engine
            // must be reset, so there is nothing to refund.)
            refundAfterCurrent();
        }
        if (!tx_owner) {
            sync_tx_flag();
            throw; // Outer frame owns the transaction.
        }
        if (unwind.code == AbortCode::Capacity)
            ++capAborts;
        return resume_baseline();
    }
}

#undef VM_CASE

} // namespace nomap
