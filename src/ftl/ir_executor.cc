#include "ftl/ir_executor.h"

#include <cmath>

#include "support/logging.h"

/**
 * Dispatch strategy — same scheme as the bytecode executor. With
 * NOMAP_COMPUTED_GOTO each op body ends in an indirect jump through a
 * per-opcode label table (direct threading); without it the bodies
 * compile as a portable switch. VM_CASE opens an op body, `goto
 * vm_next` advances to the next instruction, `goto vm_next_newseg`
 * does the same but re-enters segment charging (transaction-boundary
 * ops), and Jump/Branch go to vm_seg_entry after retargeting.
 */
#if defined(NOMAP_COMPUTED_GOTO)
#define VM_CASE(name) lbl_##name:
#else
#define VM_CASE(name) case IrOp::name:
#endif

namespace nomap {

// trace.cc renders Deopt check kinds from a mirrored name table; pin
// the numeric layout so the two cannot drift apart.
static_assert(static_cast<uint8_t>(CheckKind::Bounds) == 0 &&
              static_cast<uint8_t>(CheckKind::Overflow) == 1 &&
              static_cast<uint8_t>(CheckKind::Type) == 2 &&
              static_cast<uint8_t>(CheckKind::Property) == 3 &&
              static_cast<uint8_t>(CheckKind::Other) == 4);

namespace {

/** Deterministic garbage produced by unguarded speculative ops. */
Value
garbageValue()
{
    return Value::int32(0);
}

/** Injection site of a check kind (check.bounds, check.type, ...). */
FaultSite
faultSiteOfCheck(CheckKind kind)
{
    switch (kind) {
      case CheckKind::Bounds: return FaultSite::CheckBounds;
      case CheckKind::Overflow: return FaultSite::CheckOverflow;
      case CheckKind::Type: return FaultSite::CheckType;
      case CheckKind::Property: return FaultSite::CheckProperty;
      case CheckKind::Other: return FaultSite::CheckOther;
    }
    return FaultSite::CheckOther;
}

} // namespace

IrExecutor::IrExecutor(ExecEnv &env_, BytecodeExecutor &baseline_,
                       const EngineConfig &config_)
    : env(env_), baseline(baseline_), config(config_)
{
}

Value
IrExecutor::run(IrFunction &ir, BytecodeFunction &fn, const Value *args,
                uint32_t nargs)
{
    // Hand-built IR in tests never goes through compileFunction; build
    // its charge plan on first execution.
    if (!ir.chargePlanReady)
        computeChargePlan(ir);
    return env.perOpAccounting ? runImpl<false>(ir, fn, args, nargs)
                               : runImpl<true>(ir, fn, args, nargs);
}

template <bool kBatched>
Value
IrExecutor::runImpl(IrFunction &ir, BytecodeFunction &fn,
                    const Value *args, uint32_t nargs)
{
    std::vector<Value> regs(ir.numRegs, Value::undefined());
    std::vector<uint8_t> overflow(ir.numRegs, 0);
    for (uint32_t i = 0; i < fn.numParams; ++i)
        regs[i] = i < nargs ? args[i] : Value::undefined();

    const bool ftl = ir.tier == Tier::Ftl;
    // Frame prologue + argument marshalling.
    env.acct.chargeInstructions(ir.tier, 8, ir.txAware);

    // Transaction-owner state for this frame.
    bool tx_owner = false;
    std::vector<Value> tx_snapshot;
    uint32_t tx_entry_pc = 0;
    uint64_t tx_instr = 0;
    uint64_t tile_count = 0;
    // Transactional context when the current segment was charged — a
    // refund must come out of the same cycle bucket even if an abort
    // has flipped the context since.
    bool seg_charged_tm = false;

    uint32_t block = 0;
    size_t idx = 0;
    IrBlock *blk = nullptr;
    const IrInstr *instr = nullptr;

    auto sync_tx_flag = [&] {
        env.acct.setInTransaction(env.htm.inTransaction());
    };

    // Batched mode: take back the charged-but-unexecuted suffix of
    // the current segment (everything after the op at idx). Zero when
    // the op at idx ends its segment.
    [[maybe_unused]] auto refundAfterCurrent = [&] {
        uint64_t rest = static_cast<uint64_t>(blk->chargeFrom[idx]) -
                        blk->ownScaled[idx];
        if (rest) {
            env.acct.refundInstructions(ir.tier, rest, ir.txAware,
                                        seg_charged_tm);
        }
    };

    // After an abort (memory already rolled back), re-enter the
    // Baseline tier at the transaction's entry SMP (paper "Entry3").
    auto resume_baseline = [&]() -> Value {
        env.mem.discardSpeculative();
        tx_owner = false;
        sync_tx_flag();
        std::vector<Value> locals(
            tx_snapshot.begin(),
            tx_snapshot.begin() +
                std::min<size_t>(tx_snapshot.size(), ir.bytecodeRegs));
        return baseline.runFrom(fn, locals, tx_entry_pc);
    };

    try {
#if defined(NOMAP_COMPUTED_GOTO)
        static const void *const kDispatch[] = {
#define NOMAP_IR_OP_LABEL(name) &&lbl_##name,
            NOMAP_IR_OP_LIST(NOMAP_IR_OP_LABEL)
#undef NOMAP_IR_OP_LABEL
        };
        static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                      kNumIrOps);
#endif

    vm_seg_entry:
        // Entering a new charge segment: block entry, or the
        // instruction after a transaction-boundary op (whose
        // successors execute — and must be charged — under the new
        // transactional context).
        if constexpr (kBatched) {
            NOMAP_ASSERT(block < ir.blocks.size());
            blk = &ir.blocks[block];
            NOMAP_ASSERT(idx < blk->chargeFrom.size());
            seg_charged_tm = env.acct.inTransaction();
            env.acct.chargeInstructions(ir.tier, blk->chargeFrom[idx],
                                        ir.txAware);
        }

    vm_top:
        NOMAP_ASSERT(block < ir.blocks.size());
        blk = &ir.blocks[block];
        NOMAP_ASSERT(idx < blk->instrs.size());
        instr = &blk->instrs[idx];
        // Per-op mode pays each op's scaled cost here; batched mode
        // already paid it as part of the segment charge. The watchdog
        // counter advances per-op in both modes so its firing point
        // (and the engine.watchdog injection site below) never moves.
        if constexpr (!kBatched) {
            env.acct.chargeInstructions(ir.tier, blk->ownScaled[idx],
                                        ir.txAware);
        }
        if (tx_owner)
            tx_instr += blk->ownScaled[idx];

        // Watchdog: a timer interrupt would abort a transaction
        // that runs unreasonably long (e.g. spinning on garbage
        // after speculative check removal). The engine.watchdog
        // site polls here too — once per in-transaction
        // instruction — so a FaultPlan can kill a transaction at
        // any point of its lifetime.
        if (tx_owner &&
            (tx_instr > config.txWatchdogInstructions ||
             (env.inj && env.inj->fire(FaultSite::EngineTxWatchdog)))) {
            if constexpr (kBatched)
                refundAfterCurrent();
            env.acct.chargeCycles(env.htm.abort(AbortCode::Irrevocable));
            return resume_baseline();
        }

        {
            bool in_tx = env.htm.inTransaction();

#if defined(NOMAP_COMPUTED_GOTO)
            goto *kDispatch[static_cast<size_t>(instr->op)];
#else
            switch (instr->op)
#endif
            {
              VM_CASE(Nop)
                goto vm_next;
              VM_CASE(Const)
                regs[instr->dst] = ir.constants[instr->imm];
                goto vm_next;
              VM_CASE(Move)
                regs[instr->dst] = regs[instr->a];
                overflow[instr->dst] = overflow[instr->a];
                goto vm_next;

              // ---- Integer arithmetic (sets the overflow flag) -----
              VM_CASE(AddInt)
              VM_CASE(SubInt)
              VM_CASE(MulInt) {
                Value va = regs[instr->a];
                Value vb = regs[instr->b];
                if (!va.isInt32() || !vb.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    overflow[instr->dst] = 0;
                    goto vm_next;
                }
                int64_t wide;
                int64_t x = va.asInt32();
                int64_t y = vb.asInt32();
                if (instr->op == IrOp::AddInt)
                    wide = x + y;
                else if (instr->op == IrOp::SubInt)
                    wide = x - y;
                else
                    wide = x * y;
                bool ovf = wide < INT32_MIN || wide > INT32_MAX;
                regs[instr->dst] =
                    Value::int32(static_cast<int32_t>(wide));
                overflow[instr->dst] = ovf;
                if (ovf && in_tx)
                    env.htm.noteArithmeticOverflow();
                goto vm_next;
              }
              VM_CASE(NegInt) {
                Value va = regs[instr->a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                int32_t x = va.asInt32();
                bool ovf = (x == 0) || (x == INT32_MIN);
                regs[instr->dst] =
                    Value::int32(ovf && x == INT32_MIN ? x : -x);
                overflow[instr->dst] = ovf;
                if (ovf && in_tx)
                    env.htm.noteArithmeticOverflow();
                goto vm_next;
              }

              // ---- Double arithmetic -------------------------------
              VM_CASE(AddDouble)
              VM_CASE(SubDouble)
              VM_CASE(MulDouble)
              VM_CASE(DivDouble)
              VM_CASE(ModDouble) {
                Value va = regs[instr->a];
                Value vb = regs[instr->b];
                if (!va.isNumber() || !vb.isNumber()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                double x = va.asNumber();
                double y = vb.asNumber();
                double r;
                switch (instr->op) {
                  case IrOp::AddDouble: r = x + y; break;
                  case IrOp::SubDouble: r = x - y; break;
                  case IrOp::MulDouble: r = x * y; break;
                  case IrOp::DivDouble: r = x / y; break;
                  default: r = std::fmod(x, y); break;
                }
                regs[instr->dst] = Value::number(r);
                goto vm_next;
              }
              VM_CASE(NegDouble) {
                Value va = regs[instr->a];
                if (!va.isNumber()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                regs[instr->dst] = Value::boxDouble(-va.asNumber());
                goto vm_next;
              }

              // ---- Bitwise / shifts ---------------------------------
              VM_CASE(BitAndInt)
              VM_CASE(BitOrInt)
              VM_CASE(BitXorInt)
              VM_CASE(ShlInt)
              VM_CASE(ShrInt)
              VM_CASE(UShrInt) {
                Value va = regs[instr->a];
                Value vb = regs[instr->b];
                if (!va.isInt32() || !vb.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                int32_t x = va.asInt32();
                uint32_t sh = static_cast<uint32_t>(vb.asInt32()) & 31;
                switch (instr->op) {
                  case IrOp::BitAndInt:
                    regs[instr->dst] = Value::int32(x & vb.asInt32());
                    break;
                  case IrOp::BitOrInt:
                    regs[instr->dst] = Value::int32(x | vb.asInt32());
                    break;
                  case IrOp::BitXorInt:
                    regs[instr->dst] = Value::int32(x ^ vb.asInt32());
                    break;
                  case IrOp::ShlInt:
                    regs[instr->dst] = Value::int32(x << sh);
                    break;
                  case IrOp::ShrInt:
                    regs[instr->dst] = Value::int32(x >> sh);
                    break;
                  default:
                    regs[instr->dst] = Value::number(
                        static_cast<double>(
                            static_cast<uint32_t>(x) >> sh));
                    break;
                }
                goto vm_next;
              }
              VM_CASE(BitNotInt) {
                Value va = regs[instr->a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                regs[instr->dst] = Value::int32(~va.asInt32());
                goto vm_next;
              }

              // ---- Comparisons -------------------------------------
              VM_CASE(CmpInt)
              VM_CASE(CmpDouble) {
                Value va = regs[instr->a];
                Value vb = regs[instr->b];
                if (!va.isNumber() || !vb.isNumber()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = Value::boolean(false);
                    goto vm_next;
                }
                double x = va.asNumber();
                double y = vb.asNumber();
                bool r;
                switch (static_cast<BinaryOp>(instr->imm)) {
                  case BinaryOp::Lt: r = x < y; break;
                  case BinaryOp::Le: r = x <= y; break;
                  case BinaryOp::Gt: r = x > y; break;
                  case BinaryOp::Ge: r = x >= y; break;
                  case BinaryOp::Eq:
                  case BinaryOp::StrictEq: r = x == y; break;
                  case BinaryOp::NotEq:
                  case BinaryOp::StrictNotEq: r = x != y; break;
                  default:
                    panic("bad compare subop");
                }
                regs[instr->dst] = Value::boolean(r);
                goto vm_next;
              }
              VM_CASE(ToDouble)
                regs[instr->dst] =
                    Value::boxDouble(regs[instr->a].asNumber());
                goto vm_next;
              VM_CASE(ToBoolean)
                regs[instr->dst] = Value::boolean(
                    env.runtime.toBoolean(regs[instr->a]));
                goto vm_next;
              VM_CASE(NotBool)
                regs[instr->dst] =
                    Value::boolean(!regs[instr->a].asBoolean());
                goto vm_next;

              // ---- Checks -------------------------------------------
              VM_CASE(CheckInt32)
              VM_CASE(CheckNumber)
              VM_CASE(CheckShape)
              VM_CASE(CheckArray)
              VM_CASE(CheckIndexInt)
              VM_CASE(CheckBounds)
              VM_CASE(CheckBoundsRange)
              VM_CASE(CheckOverflow)
              VM_CASE(CheckNotHole) {
                if (ftl)
                    env.acct.recordCheck(checkKindOf(instr->op));
                bool pass;
                Value va = regs[instr->a];
                switch (instr->op) {
                  case IrOp::CheckInt32:
                  case IrOp::CheckIndexInt:
                    pass = va.isInt32();
                    break;
                  case IrOp::CheckNumber:
                    pass = va.isNumber();
                    break;
                  case IrOp::CheckShape:
                    pass = va.isObject() &&
                           env.heap.object(va.payload()).shape ==
                               instr->imm;
                    break;
                  case IrOp::CheckArray:
                    pass = va.isArray();
                    break;
                  case IrOp::CheckBounds: {
                    Value vi = regs[instr->b];
                    pass = va.isArray() && vi.isInt32() &&
                           vi.asInt32() >= 0 &&
                           static_cast<uint32_t>(vi.asInt32()) <
                               env.heap.array(va.payload()).length();
                    break;
                  }
                  case IrOp::CheckBoundsRange: {
                    Value lo = regs[instr->b];
                    Value hi = regs[instr->c];
                    if (!lo.isInt32() || !hi.isInt32() ||
                        !va.isArray()) {
                        pass = false;
                    } else if (hi.asInt32() < lo.asInt32()) {
                        pass = true; // Zero-trip loop: vacuous.
                    } else {
                        pass = lo.asInt32() >= 0 &&
                               static_cast<uint32_t>(hi.asInt32()) <
                                   env.heap.array(va.payload())
                                       .length();
                        }
                    break;
                  }
                  case IrOp::CheckOverflow:
                    pass = !overflow[instr->a];
                    break;
                  case IrOp::CheckNotHole:
                    pass = !va.isUndefined();
                    break;
                  default:
                    pass = true;
                    break;
                }

                // Fault injection: force this check to fail. Every
                // armed check-site counts this occurrence (no
                // short-circuiting) so occurrence numbering never
                // depends on which other actions are armed. A forced
                // failure is only honored where the generic recovery
                // below can run: unconverted checks need an SMP to
                // OSR through; converted checks need a live
                // transaction to abort.
                if (pass && env.inj) {
                    CheckKind kind = checkKindOf(instr->op);
                    bool force =
                        env.inj->fire(faultSiteOfCheck(kind));
                    force |= env.inj->fire(FaultSite::CheckAny);
                    if (!instr->converted && instr->smpPc != kNoSmp) {
                        force |= env.inj->fire(FaultSite::FtlOsr,
                                               instr->smpPc);
                    }
                    if (force &&
                        (instr->converted ? env.htm.inTransaction()
                                          : instr->smpPc != kNoSmp)) {
                        pass = false;
                    }
                }
                if (pass)
                    goto vm_next;

                if (!instr->converted) {
                    // OSR exit through the stack map: hand the
                    // baseline registers to the Baseline tier at the
                    // SMP's bytecode pc.
                    ++env.acct.stats().deopts;
                    NOMAP_ASSERT(instr->smpPc != kNoSmp);
                    if (env.trace && env.trace->enabled()) {
                        TraceEvent event;
                        event.vcycles = env.acct.virtualCycles();
                        event.type = TraceEventType::Deopt;
                        event.code = static_cast<uint8_t>(
                            checkKindOf(instr->op));
                        event.funcId = ir.funcId;
                        event.pc = instr->smpPc;
                        env.trace->emit(event);
                    }
                    if constexpr (kBatched)
                        refundAfterCurrent();
                    std::vector<Value> locals(
                        regs.begin(), regs.begin() + ir.bytecodeRegs);
                    return baseline.runFrom(fn, locals, instr->smpPc);
                }
                // Converted check: transactional abort.
                ++checkAborts;
                env.acct.chargeCycles(
                    env.htm.abort(AbortCode::ExplicitCheck));
                if (!tx_owner) {
                    // The transaction belongs to a caller; unwind.
                    // (Our own catch below refunds the segment suffix
                    // before rethrowing — no inline refund here.)
                    sync_tx_flag();
                    throw TxAbortUnwind{AbortCode::ExplicitCheck};
                }
                if constexpr (kBatched)
                    refundAfterCurrent();
                return resume_baseline();
              }

              // ---- Memory -------------------------------------------
              VM_CASE(GetSlot) {
                Value va = regs[instr->a];
                if (!va.isObject() ||
                    instr->imm >=
                        env.heap.object(va.payload()).slots.size()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                regs[instr->dst] =
                    env.heap.getSlot(va.payload(), instr->imm);
                env.memAccess(
                    env.heap.slotAddr(va.payload(), instr->imm),
                    false);
                goto vm_next;
              }
              VM_CASE(SetSlot) {
                Value va = regs[instr->a];
                if (!va.isObject() ||
                    instr->imm >=
                        env.heap.object(va.payload()).slots.size()) {
                    NOMAP_ASSERT(in_tx);
                    goto vm_next; // Speculative store to nowhere.
                }
                env.heap.setSlot(va.payload(), instr->imm,
                                 regs[instr->b]);
                env.memAccess(
                    env.heap.slotAddr(va.payload(), instr->imm), true);
                goto vm_next;
              }
              VM_CASE(GetArrayLen) {
                Value va = regs[instr->a];
                if (!va.isArray()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                regs[instr->dst] = Value::int32(static_cast<int32_t>(
                    env.heap.array(va.payload()).length()));
                env.memAccess(env.heap.array(va.payload()).baseAddr,
                              false);
                goto vm_next;
              }
              VM_CASE(GetElem) {
                Value va = regs[instr->a];
                Value vi = regs[instr->b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    goto vm_next;
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(in_tx);
                    regs[instr->dst] = garbageValue();
                    if (i >= 0) {
                        env.memAccess(
                            arr.baseAddr + 8ull *
                                static_cast<uint32_t>(i),
                            false);
                    }
                    goto vm_next;
                }
                regs[instr->dst] =
                    arr.storage[static_cast<size_t>(i)];
                env.memAccess(env.heap.elementAddr(
                                  va.payload(),
                                  static_cast<uint32_t>(i)),
                              false);
                goto vm_next;
              }
              VM_CASE(SetElem) {
                Value va = regs[instr->a];
                Value vi = regs[instr->b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(in_tx);
                    goto vm_next;
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(in_tx);
                    if (i >= 0) {
                        Addr addr = arr.baseAddr +
                                    8ull * static_cast<uint32_t>(i);
                        if (!env.htm.recordWrite(addr))
                            throw TxAbortUnwind{AbortCode::Capacity};
                        env.memAccess(addr, true);
                    }
                    goto vm_next; // Speculative OOB store: dropped.
                }
                env.heap.setElementFast(va.payload(),
                                        static_cast<uint32_t>(i),
                                        regs[instr->c]);
                env.memAccess(env.heap.elementAddr(
                                  va.payload(),
                                  static_cast<uint32_t>(i)),
                              true);
                goto vm_next;
              }
              VM_CASE(LoadGlobal)
                regs[instr->dst] = env.heap.getGlobal(instr->imm);
                env.memAccess(env.heap.globalAddr(instr->imm), false);
                goto vm_next;
              VM_CASE(StoreGlobal)
                env.heap.setGlobal(instr->imm, regs[instr->a]);
                env.memAccess(env.heap.globalAddr(instr->imm), true);
                goto vm_next;

              // ---- Generic runtime fallbacks -----------------------
              VM_CASE(GenericBinary)
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                regs[instr->dst] = env.runtime.applyBinary(
                    static_cast<BinaryOp>(instr->imm), regs[instr->a],
                    regs[instr->b]);
                goto vm_next;
              VM_CASE(GenericUnary)
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                regs[instr->dst] = env.runtime.applyUnary(
                    static_cast<UnaryOp>(instr->imm), regs[instr->a]);
                goto vm_next;
              VM_CASE(GenericGetProp) {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                regs[instr->dst] = env.runtime.getPropertyGeneric(
                    regs[instr->a], instr->imm, &addr);
                env.memAccess(addr, false);
                goto vm_next;
              }
              VM_CASE(GenericSetProp) {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                env.runtime.setPropertyGeneric(regs[instr->a],
                                               instr->imm,
                                               regs[instr->b], &addr);
                env.memAccess(addr, true);
                goto vm_next;
              }
              VM_CASE(GenericGetIndex) {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                regs[instr->dst] = env.runtime.getIndexGeneric(
                    regs[instr->a], regs[instr->b], &addr);
                env.memAccess(addr, false);
                goto vm_next;
              }
              VM_CASE(GenericSetIndex) {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                env.runtime.setIndexGeneric(regs[instr->a],
                                            regs[instr->b],
                                            regs[instr->c], &addr);
                env.memAccess(addr, true);
                goto vm_next;
              }
              VM_CASE(NewArray) {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value arr = env.heap.allocArray(instr->imm);
                for (uint32_t i = 0; i < instr->imm; ++i) {
                    env.heap.setElementFast(arr.payload(), i,
                                            regs[instr->a + i]);
                }
                regs[instr->dst] = arr;
                goto vm_next;
              }
              VM_CASE(NewObject) {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value obj = env.heap.allocObject();
                // The descriptor lives in the bytecode function.
                const ObjectDesc &desc = fn.objectDescs[instr->imm];
                for (uint32_t i = 0; i < instr->b; ++i) {
                    env.heap.setProperty(obj.payload(),
                                         desc.nameIds[i],
                                         regs[instr->a + i]);
                }
                regs[instr->dst] = obj;
                goto vm_next;
              }

              // ---- Calls --------------------------------------------
              VM_CASE(Call)
                regs[instr->dst] = env.dispatcher.call(
                    instr->imm, regs.data() + instr->a, instr->b);
                goto vm_next;
              VM_CASE(CallNative) {
                auto bid = static_cast<BuiltinId>(instr->imm);
                if (bid == BuiltinId::Print)
                    env.irrevocableEvent();
                env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
                regs[instr->dst] = env.builtins.call(
                    bid, regs.data() + instr->a, instr->b);
                goto vm_next;
              }
              VM_CASE(Intrinsic)
                regs[instr->dst] = env.builtins.call(
                    static_cast<BuiltinId>(instr->imm),
                    regs.data() + instr->a, instr->b);
                goto vm_next;
              VM_CASE(CallMethod) {
                env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
                uint32_t name_id = instr->imm / 16;
                uint32_t margs = instr->imm % 16;
                regs[instr->dst] = env.builtins.callMethod(
                    regs[instr->a], name_id, regs.data() + instr->b,
                    margs);
                goto vm_next;
              }

              // ---- Control flow ------------------------------------
              VM_CASE(Jump)
                block = instr->imm;
                idx = 0;
                goto vm_seg_entry;
              VM_CASE(Branch) {
                bool taken = env.runtime.toBoolean(regs[instr->a]);
                block = taken ? instr->imm : instr->imm2;
                idx = 0;
                goto vm_seg_entry;
              }
              VM_CASE(Return)
                NOMAP_ASSERT(!tx_owner);
                return regs[instr->a];
              VM_CASE(ReturnUndef)
                NOMAP_ASSERT(!tx_owner);
                return Value::undefined();

              // ---- Transactions ------------------------------------
              VM_CASE(TxBegin) {
                bool outermost = !env.htm.inTransaction();
                // Attribute the transaction's trace events to this
                // function + entry SMP before begin() emits TxBegin.
                if (outermost && env.trace && env.trace->enabled())
                    env.htm.setTraceContext(ir.funcId, instr->smpPc);
                env.acct.chargeCycles(env.htm.begin());
                sync_tx_flag();
                if (outermost) {
                    tx_owner = true;
                    tx_snapshot.assign(
                        regs.begin(), regs.begin() + ir.bytecodeRegs);
                    tx_entry_pc = instr->smpPc;
                    tx_instr = 0;
                    tile_count = 0;
                    // An injected begin-abort (htm.abort*) fires now
                    // that owner state exists, so recovery follows
                    // the real abort path.
                    AbortCode injected =
                        env.htm.takePendingInjectedAbort();
                    if (injected != AbortCode::None) {
                        if constexpr (kBatched)
                            refundAfterCurrent();
                        env.acct.chargeCycles(
                            env.htm.abort(injected));
                        return resume_baseline();
                    }
                }
                goto vm_next_newseg;
              }
              VM_CASE(TxEnd) {
                CommitResult r = env.htm.end();
                env.acct.chargeCycles(r.cycles);
                if (r.committed) {
                    if (!env.htm.inTransaction()) {
                        env.mem.commitSpeculative();
                        tx_owner = false;
                    }
                    sync_tx_flag();
                    goto vm_next_newseg;
                }
                // SOF abort at commit (paper Figure 7).
                if (!tx_owner) {
                    sync_tx_flag();
                    throw TxAbortUnwind{r.abortCode};
                }
                if constexpr (kBatched)
                    refundAfterCurrent();
                return resume_baseline();
              }
              VM_CASE(TxTile) {
                if (!tx_owner)
                    goto vm_next_newseg; // Nested: tiling disabled.
                ++tile_count;
                if (tile_count % instr->imm != 0)
                    goto vm_next_newseg;
                CommitResult r = env.htm.end();
                env.acct.chargeCycles(r.cycles);
                if (!r.committed) {
                    if constexpr (kBatched)
                        refundAfterCurrent();
                    return resume_baseline();
                }
                env.mem.commitSpeculative();
                if (env.trace && env.trace->enabled())
                    env.htm.setTraceContext(ir.funcId, instr->smpPc);
                env.acct.chargeCycles(env.htm.begin());
                tx_snapshot.assign(regs.begin(),
                                   regs.begin() + ir.bytecodeRegs);
                tx_entry_pc = instr->smpPc;
                tx_instr = 0;
                {
                    AbortCode injected =
                        env.htm.takePendingInjectedAbort();
                    if (injected != AbortCode::None) {
                        if constexpr (kBatched)
                            refundAfterCurrent();
                        env.acct.chargeCycles(
                            env.htm.abort(injected));
                        return resume_baseline();
                    }
                }
                goto vm_next_newseg;
              }
            }
        }

    vm_next:
        ++idx;
        goto vm_top;

    vm_next_newseg:
        // The op just executed ended a charge segment (transaction
        // boundary): its successors run under the new transactional
        // context, so batched mode opens a fresh segment for them.
        ++idx;
        goto vm_seg_entry;
    } catch (TxAbortUnwind &unwind) {
        if constexpr (kBatched) {
            // The charged segment's ops after the faulting one never
            // executed — whether the throw came from this frame's own
            // converted check / capacity overflow or surfaced out of
            // a callee. (ExecutionCancelled is deliberately NOT
            // caught: cancellation voids the stats and the engine
            // must be reset, so there is nothing to refund.)
            if (blk)
                refundAfterCurrent();
        }
        if (!tx_owner) {
            sync_tx_flag();
            throw; // Outer frame owns the transaction.
        }
        if (unwind.code == AbortCode::Capacity)
            ++capAborts;
        return resume_baseline();
    }
}

#undef VM_CASE

} // namespace nomap
