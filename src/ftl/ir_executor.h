#ifndef NOMAP_FTL_IR_EXECUTOR_H
#define NOMAP_FTL_IR_EXECUTOR_H

/**
 * @file
 * Executor for DFG/FTL IR.
 *
 * This stands in for the machine code LLVM would emit: it runs the
 * optimized IR while the cost model counts the x86-64-equivalent
 * dynamic instructions each IR op would have compiled to. Everything
 * observable — check executions by category, deoptimizations through
 * stack maps, transactions with true rollback and Baseline re-entry,
 * cache and HTM footprint traffic — happens for real.
 *
 * Speculative-execution rule: inside a transaction, a type-mismatched
 * fast op (possible after NoMap's speculative hoisting or check
 * combining) produces a deterministic garbage value, exactly like
 * hardware executing past a removed check; the transaction's
 * remaining/sunk checks abort before such garbage can commit. Outside
 * a transaction every fast op is fully guarded by construction and a
 * mismatch is a compiler bug (simulator panic).
 *
 * This executor is the *reference semantics* for the region template
 * tier (src/jit/), which re-implements every op body as a bound
 * continuation template and is pinned bit-identical by
 * tests/test_jit.cc — a behavioural change here (charge order, check
 * sequencing, trace points, injection sites) must be mirrored there,
 * and the differential will fail until it is.
 */

#include "engine/config.h"
#include "interp/bytecode_executor.h"
#include "ir/ir.h"

namespace nomap {

/** Executes one IR function invocation (including nested tiers). */
class IrExecutor
{
  public:
    IrExecutor(ExecEnv &env, BytecodeExecutor &baseline,
               const EngineConfig &config);

    /**
     * Run @p ir. @p fn is the bytecode (deopt target / profiles).
     * May recursively dispatch calls through env.dispatcher.
     */
    Value run(IrFunction &ir, BytecodeFunction &fn, const Value *args,
              uint32_t nargs);

    /** Consecutive capacity aborts observed (engine escalates scope). */
    uint32_t consecutiveCapacityAborts() const { return capAborts; }
    /** Consecutive explicit-check aborts (engine detransactionalizes). */
    uint32_t consecutiveCheckAborts() const { return checkAborts; }
    void resetAbortFeedback() { capAborts = 0; checkAborts = 0; }

  private:
    /**
     * Feature mask bits for runImpl. Each combination compiles a
     * separate copy of the dispatch loop, selected once per run, so a
     * disabled feature costs nothing on the hot path — not even a
     * predicted branch.
     */
    static constexpr unsigned kFeatBatched = 1u; ///< Batched accounting.
    static constexpr unsigned kFeatInject = 2u;  ///< Fault plan armed.
    static constexpr unsigned kFeatTrace = 4u;   ///< Trace sink live.

    /**
     * The dispatch loop, walking the function's flat predecoded run
     * stream. kFeat & kFeatBatched selects the accounting strategy:
     * set charges each charge segment's static cost once on segment
     * entry (refunding the unexecuted suffix on deopt/abort/watchdog
     * exits), clear charges every op individually. kFeatInject
     * compiles in the fault-injection polls (env.inj is non-null for
     * the whole run or not at all); kFeatTrace the trace-event emits
     * (TraceBuffer::enabled() is fixed at construction). Every
     * variant must produce bit-identical results, ExecutionStats, and
     * traces; the differential accounting/trace/chaos tests enforce
     * it.
     */
    template <unsigned kFeat>
    Value runImpl(IrFunction &ir, BytecodeFunction &fn,
                  const Value *args, uint32_t nargs);

    ExecEnv &env;
    BytecodeExecutor &baseline;
    const EngineConfig &config;
    uint32_t capAborts = 0;
    uint32_t checkAborts = 0;
};

} // namespace nomap

#endif // NOMAP_FTL_IR_EXECUTOR_H
