#include "htm/capacity_model.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "support/logging.h"

namespace nomap {

namespace {

/**
 * The set-associative geometry the manager historically owned
 * directly. Behavior (insert outcomes, stats, squeeze) is
 * byte-identical to the pre-abstraction TransactionManager.
 */
class WaysAssocModel final : public CapacityModel
{
  public:
    WaysAssocModel(uint32_t size_bytes, uint32_t ways)
        : nominalSize(size_bytes), nominalWays(ways),
          tracker(size_bytes, ways)
    {
    }

    bool insert(Addr addr) override { return tracker.insert(addr); }
    void clear() override { tracker.clear(); }
    uint32_t lineCount() const override { return tracker.lineCount(); }

    uint64_t
    footprintBytes() const override
    {
        return tracker.footprintBytes();
    }

    uint32_t maxWaysUsed() const override
    {
        return tracker.maxWaysUsed();
    }

    uint32_t numWays() const override { return tracker.numWays(); }

    uint64_t
    capacityBytes() const override
    {
        return static_cast<uint64_t>(nominalSize) / nominalWays *
               tracker.numWays();
    }

    void
    squeezeWays(uint32_t ways) override
    {
        // Compare against the *current* associativity, not the
        // original geometry, so squeezes are monotone: squeeze(2)
        // then squeeze(4) leaves the set at 2 ways instead of
        // re-growing it.
        if (ways == 0 || ways >= tracker.numWays())
            return;
        // Keep the set count constant: a real associativity squeeze
        // leaves line indexing untouched and shrinks each set.
        // Deriving the size from the original geometry keeps sets ==
        // size/(ways * line) invariant across repeated squeezes.
        tracker =
            FootprintTracker(nominalSize / nominalWays * ways, ways);
    }

    CapacityModelKind kind() const override
    {
        return CapacityModelKind::WaysAssoc;
    }

  private:
    uint32_t nominalSize;
    uint32_t nominalWays;
    FootprintTracker tracker;
};

/**
 * FORTH-style dedicated write buffer: @p entries distinct lines,
 * fully associative, overflow on the next distinct line. A quarter of
 * the cache-backed capacity in lines — small enough that capacity
 * aborts arrive well before the backing cache would have filled,
 * which is the defining property of limited-set designs.
 */
class LimitedSetModel final : public CapacityModel
{
  public:
    LimitedSetModel(uint32_t capacity_bytes, uint32_t ways)
        : nominalEntries(
              std::max<uint32_t>(1, capacity_bytes / kLineSize / 4)),
          curEntries(std::max<uint32_t>(1,
                                        capacity_bytes / kLineSize / 4)),
          nominalWays(ways), curWays(ways)
    {
        lines.reserve(curEntries);
    }

    bool
    insert(Addr addr) override
    {
        Addr line = addr / kLineSize;
        if (std::find(lines.begin(), lines.end(), line) != lines.end())
            return true;
        if (lines.size() >= curEntries)
            return false;
        lines.push_back(line);
        highWater = std::max<uint32_t>(
            highWater, static_cast<uint32_t>(lines.size()));
        return true;
    }

    void clear() override { lines.clear(); }

    uint32_t
    lineCount() const override
    {
        return static_cast<uint32_t>(lines.size());
    }

    uint64_t
    footprintBytes() const override
    {
        return static_cast<uint64_t>(lines.size()) * kLineSize;
    }

    /** Fully associative: every line occupies the single set. */
    uint32_t
    maxWaysUsed() const override
    {
        return static_cast<uint32_t>(lines.size());
    }

    uint32_t numWays() const override { return curWays; }

    uint64_t
    capacityBytes() const override
    {
        return static_cast<uint64_t>(curEntries) * kLineSize;
    }

    void
    squeezeWays(uint32_t ways) override
    {
        // Same monotone contract as the associative model, with the
        // entry count standing in for total capacity: scale it by
        // ways/nominal-ways of nominal.
        if (ways == 0 || ways >= curWays)
            return;
        curWays = ways;
        curEntries = std::max<uint32_t>(
            1, nominalEntries / nominalWays * ways);
        if (lines.size() > curEntries)
            lines.resize(curEntries);
    }

    CapacityModelKind kind() const override
    {
        return CapacityModelKind::LimitedSet;
    }

  private:
    uint32_t nominalEntries;
    uint32_t curEntries;
    uint32_t nominalWays;
    uint32_t curWays;
    uint32_t highWater = 0;
    std::vector<Addr> lines;
};

/** SplitMix64 — a deterministic, platform-independent line hash. */
uint64_t
mixLine(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Bloom-filter read signature: k=2 hashes into a fixed bit array.
 * Never overflows — signature-based read sets trade capacity aborts
 * for false conflicts, and a single-threaded VM has no conflicts — so
 * insert() always succeeds. The exact distinct-line count is kept
 * separately for the footprint statistics.
 */
class BloomSignatureModel final : public CapacityModel
{
  public:
    explicit BloomSignatureModel(uint32_t ways)
        : nominalWays(ways), bits(kBits, false)
    {
    }

    bool
    insert(Addr addr) override
    {
        Addr line = addr / kLineSize;
        uint64_t h = mixLine(line);
        bits[h & (kBits - 1)] = true;
        bits[(h >> 32) & (kBits - 1)] = true;
        seen.insert(line);
        return true;
    }

    void
    clear() override
    {
        std::fill(bits.begin(), bits.end(), false);
        seen.clear();
    }

    uint32_t
    lineCount() const override
    {
        return static_cast<uint32_t>(seen.size());
    }

    uint64_t
    footprintBytes() const override
    {
        return static_cast<uint64_t>(seen.size()) * kLineSize;
    }

    uint32_t maxWaysUsed() const override { return 0; }
    uint32_t numWays() const override { return nominalWays; }

    /** Unbounded in lines; report the signature's own storage. */
    uint64_t
    capacityBytes() const override
    {
        return static_cast<uint64_t>(kBits) / 8;
    }

    void squeezeWays(uint32_t) override {}

    CapacityModelKind kind() const override
    {
        return CapacityModelKind::LimitedSet;
    }

  private:
    static constexpr uint32_t kBits = 8192; // Power of two.
    uint32_t nominalWays;
    std::vector<bool> bits;
    std::unordered_set<Addr> seen;
};

} // namespace

const char *
capacityModelKindName(CapacityModelKind kind)
{
    switch (kind) {
      case CapacityModelKind::WaysAssoc: return "ways-assoc";
      case CapacityModelKind::LimitedSet: return "limited-set";
    }
    return "?";
}

std::unique_ptr<CapacityModel>
makeWriteCapacityModel(CapacityModelKind kind,
                       uint32_t write_capacity_bytes, uint32_t ways)
{
    switch (kind) {
      case CapacityModelKind::WaysAssoc:
        return std::make_unique<WaysAssocModel>(write_capacity_bytes,
                                                ways);
      case CapacityModelKind::LimitedSet:
        return std::make_unique<LimitedSetModel>(write_capacity_bytes,
                                                 ways);
    }
    panic("bad capacity model kind");
}

std::unique_ptr<CapacityModel>
makeReadCapacityModel(CapacityModelKind kind,
                      uint32_t read_capacity_bytes, uint32_t ways)
{
    switch (kind) {
      case CapacityModelKind::WaysAssoc:
        return std::make_unique<WaysAssocModel>(read_capacity_bytes,
                                                ways);
      case CapacityModelKind::LimitedSet:
        return std::make_unique<BloomSignatureModel>(ways);
    }
    panic("bad capacity model kind");
}

} // namespace nomap
