#ifndef NOMAP_HTM_CAPACITY_MODEL_H
#define NOMAP_HTM_CAPACITY_MODEL_H

/**
 * @file
 * Swappable HTM capacity geometries.
 *
 * The paper's HTM bounds transactional footprints by cache geometry
 * (ROT writes -> 256 KB 8-way L2, RTM writes -> 32 KB 8-way L1D), but
 * real HTM designs differ: the FORTH limited read/write-set report
 * describes cores whose speculative write set is a small dedicated
 * fully-associative buffer and whose read set is a bloom-filter
 * signature that never overflows (it only false-conflicts, which a
 * single-threaded VM never sees). A CapacityModel abstracts "what
 * fits": the TransactionManager routes recordWrite/recordRead through
 * one, and the planner asks the same object for its byte capacity, so
 * the plan and the hardware can never disagree about geometry.
 *
 * Two implementations:
 *
 *  - **WaysAssocModel** — the original set-associative cache
 *    geometry, byte-for-byte the historical behavior (it wraps the
 *    same FootprintTracker the manager used to own). The default;
 *    everything downstream is bit-identical to before the
 *    abstraction existed.
 *
 *  - **LimitedSetModel** — a FORTH-style fixed-entry buffer: up to N
 *    distinct lines, fully associative, overflow on the N+1-th line
 *    regardless of addresses. Much smaller than the cache-backed
 *    model (write capacity 64 KB under ROT sizing, 16 KB under RTM
 *    sizing).
 *
 *  - **BloomSignatureModel** — the read-set companion of
 *    LimitedSetModel: a k-hash bit-array signature that records lines
 *    but never overflows, matching signature-based read tracking.
 *
 * Squeeze semantics (the htm.ways value-site) are uniform across
 * models: squeezing to W < current ways shrinks total capacity to
 * W/original-ways of nominal, monotonically (a later, larger W never
 * re-grows the set). For the ways-associative model that is a literal
 * associativity squeeze with the set count constant; the limited-set
 * model scales its entry count by the same ratio against a reference
 * associativity of 8.
 */

#include <cstdint>
#include <memory>

#include "memsim/footprint.h"

namespace nomap {

/** Which capacity geometry a TransactionManager models. */
enum class CapacityModelKind : uint8_t {
    WaysAssoc,  ///< Set-associative cache geometry (the default).
    LimitedSet, ///< FORTH-style fixed-entry write buffer +
                ///< bloom-signature read set.
};

/** Printable model-kind name ("ways-assoc" / "limited-set"). */
const char *capacityModelKindName(CapacityModelKind kind);

/**
 * One speculative footprint set (write or read) with a capacity
 * bound. Implementations must be deterministic: insert outcomes and
 * every statistic depend only on the sequence of lines inserted.
 */
class CapacityModel
{
  public:
    virtual ~CapacityModel() = default;

    /**
     * Record @p addr's line.
     * @return false on capacity overflow (the transaction must
     *         abort); the model's contents are unspecified after an
     *         overflow until clear().
     */
    virtual bool insert(Addr addr) = 0;

    /** Forget everything (commit or abort). */
    virtual void clear() = 0;

    /** Distinct lines currently tracked. */
    virtual uint32_t lineCount() const = 0;

    /** Footprint in bytes (lines x 64). */
    virtual uint64_t footprintBytes() const = 0;

    /**
     * Largest per-set occupancy any transaction needed (Table IV's
     * "ways" column). Fully-associative models report their line
     * high-water mark — every line shares the single set.
     */
    virtual uint32_t maxWaysUsed() const = 0;

    /** Current associativity (reference associativity if unset). */
    virtual uint32_t numWays() const = 0;

    /** Total capacity in bytes under the current (squeezed) shape. */
    virtual uint64_t capacityBytes() const = 0;

    /** Monotone capacity squeeze; see the file comment. */
    virtual void squeezeWays(uint32_t ways) = 0;

    virtual CapacityModelKind kind() const = 0;
};

/**
 * Build the write-set model for @p kind under @p write_capacity_bytes
 * / @p ways nominal geometry (the cache level that backs writes).
 */
std::unique_ptr<CapacityModel>
makeWriteCapacityModel(CapacityModelKind kind,
                       uint32_t write_capacity_bytes, uint32_t ways);

/**
 * Build the read-set model for @p kind (ways-assoc kinds track reads
 * in the same geometry as the backing cache; limited-set kinds use a
 * bloom signature that never overflows).
 */
std::unique_ptr<CapacityModel>
makeReadCapacityModel(CapacityModelKind kind,
                      uint32_t read_capacity_bytes, uint32_t ways);

} // namespace nomap

#endif // NOMAP_HTM_CAPACITY_MODEL_H
