#include "htm/region.h"

#include "support/logging.h"

namespace nomap {

namespace {

// Same geometry constants as transaction.cc: ROT bounds writes by L2,
// RTM by L1D.
constexpr uint32_t kL1Size = 32 * 1024;
constexpr uint32_t kL1Ways = 8;
constexpr uint32_t kL2Size = 256 * 1024;
constexpr uint32_t kL2Ways = 8;

} // namespace

RegionFootprint::RegionFootprint(HtmMode mode, CapacityModelKind kind)
    : writeSet(makeWriteCapacityModel(
          kind, mode == HtmMode::Rot ? kL2Size : kL1Size,
          mode == HtmMode::Rot ? kL2Ways : kL1Ways))
{
}

void
RegionFootprint::clear()
{
    readLinesSet.clear();
    writeLinesSet.clear();
    writeSet->clear();
    capacityExceeded = false;
}

uint64_t
ConflictTable::beginRegion()
{
    activeStarts.insert(serial);
    return serial;
}

void
ConflictTable::endRegion(uint64_t start_serial)
{
    auto it = activeStarts.find(start_serial);
    NOMAP_ASSERT(it != activeStarts.end());
    activeStarts.erase(it);
    prune();
}

RegionConflict
ConflictTable::check(const RegionFootprint &fp,
                     uint64_t start_serial) const
{
    RegionConflict out;
    for (const Record &rec : records) {
        if (rec.serial <= start_serial)
            continue;
        // Writes-vs-writes first, then reads-vs-writes; the
        // subscribed fallback-lock line sits in the read set, so a
        // concurrent fallback run is caught here like any data race.
        for (Addr line : fp.writeLines()) {
            if (rec.writeLines.count(line)) {
                out.conflict = true;
                out.line = line;
                out.withFallback = rec.fallback;
                return out;
            }
        }
        for (Addr line : fp.readLines()) {
            if (rec.writeLines.count(line)) {
                out.conflict = true;
                out.line = line;
                out.withFallback = rec.fallback;
                return out;
            }
        }
    }
    return out;
}

uint64_t
ConflictTable::commit(const std::unordered_set<Addr> &write_lines,
                      bool fallback)
{
    Record rec;
    rec.serial = ++serial;
    rec.fallback = fallback;
    rec.writeLines = write_lines;
    if (fallback)
        rec.writeLines.insert(lineBase(kFallbackLockAddr));
    records.push_back(std::move(rec));
    prune();
    return serial;
}

void
ConflictTable::prune()
{
    // A record is dead once every in-flight region began at or after
    // its serial (nobody's probe window reaches back that far).
    uint64_t min_start =
        activeStarts.empty() ? serial : *activeStarts.begin();
    while (!records.empty() && records.front().serial <= min_start)
        records.pop_front();
}

} // namespace nomap
