#ifndef NOMAP_HTM_REGION_H
#define NOMAP_HTM_REGION_H

/**
 * @file
 * Region-level transactional primitives for shared-heap execution.
 *
 * A *region* is one complete guest program run executing against a
 * heap shared by several engine threads (stm/shared_heap.h). Each
 * region runs as one simulated HTM transaction: its cache-line
 * footprint is collected while it executes, and at commit time the
 * footprint is checked for overlap against every region that
 * committed since this one logically began. Overlap means the
 * transactions would have conflicted on real hardware, so the later
 * committer aborts, rolls its heap effects back, and retries — up to
 * EngineConfig::htmRetryLimit times, after which it takes the
 * software fallback path.
 *
 * The fallback follows Brown's "Template for Implementing Fast
 * Lock-free Trees Using HTM": every HTM region *subscribes* the
 * fallback-lock word into its read set at begin, and a fallback run
 * publishes a write to that word when it commits. Any HTM region that
 * was logically concurrent with a fallback run therefore conflicts on
 * the lock line and aborts, which is exactly the mutual exclusion the
 * template requires — expressed through the same line-overlap
 * conflict detection as ordinary data conflicts.
 *
 * These classes are not internally synchronized: SharedHeapSession
 * calls them under its domain mutex. They live in src/htm/ (not
 * src/stm/) because the capacity geometry and line granularity they
 * reason about belong to the HTM model, and because the VM heap — a
 * layer below stm — records region write footprints directly.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <unordered_set>

#include "htm/capacity_model.h"
#include "htm/transaction.h"
#include "memsim/addr.h"

namespace nomap {

/**
 * Abstract address of the fallback-lock word. Sits below the heap
 * bump allocator's first address (0x10000, vm/heap.cc), so it can
 * never collide with guest data, and is nonzero, so it is never
 * mistaken for "no address".
 */
constexpr Addr kFallbackLockAddr = 0x1000;

/**
 * The cache-line footprint of one region attempt: the set of lines it
 * read and wrote, plus a CapacityModel bounding the write set by the
 * same geometry the per-engine HTM manager uses (ROT: 256 KB 8-way;
 * RTM: 32 KB 8-way). Capacity overflow is latched, not thrown — the
 * session checks exceeded() at commit time, keeping region aborts off
 * the executor's unwind paths entirely.
 */
class RegionFootprint
{
  public:
    /** @param mode Geometry source (matches the engine's HTM mode).
     *  @param kind Capacity-model flavor (EngineConfig::capacityModel). */
    RegionFootprint(HtmMode mode, CapacityModelKind kind);

    /** Record a read of @p addr's line (0 = no memory touched). */
    void
    noteRead(Addr addr)
    {
        if (addr == 0)
            return;
        readLinesSet.insert(lineBase(addr));
    }

    /** Record a write of @p addr's line; latches overflow. */
    void
    noteWrite(Addr addr)
    {
        if (addr == 0)
            return;
        Addr line = lineBase(addr);
        if (writeLinesSet.insert(line).second) {
            if (!writeSet->insert(line))
                capacityExceeded = true;
        }
    }

    /** Did the write footprint overflow the HTM geometry? */
    bool exceeded() const { return capacityExceeded; }

    /** Write footprint in bytes (distinct lines x 64). */
    uint64_t
    writeFootprintBytes() const
    {
        return static_cast<uint64_t>(writeLinesSet.size()) * kLineSize;
    }

    const std::unordered_set<Addr> &readLines() const
    {
        return readLinesSet;
    }
    const std::unordered_set<Addr> &writeLines() const
    {
        return writeLinesSet;
    }

    /** Forget everything (between attempts). */
    void clear();

  private:
    std::unordered_set<Addr> readLinesSet;
    std::unordered_set<Addr> writeLinesSet;
    std::unique_ptr<CapacityModel> writeSet;
    bool capacityExceeded = false;
};

/** Outcome of a commit-time conflict probe. */
struct RegionConflict {
    bool conflict = false;
    /** One conflicting line (diagnostics; unordered-set iteration
     *  order, so only the boolean is deterministic). */
    Addr line = 0;
    /** True when the overlap was with a fallback run's lock word. */
    bool withFallback = false;
};

/**
 * The committed-write history that makes logically-concurrent
 * transactions visible to each other. Execution under the session's
 * domain mutex is physically serial, so "concurrent" means: region B
 * began before region A committed. B remembers the commit serial at
 * its begin; at B's commit, every record with a later serial is a
 * transaction B raced with, and any line overlap aborts B.
 */
class ConflictTable
{
  public:
    /** Serial of the most recent commit (0 = none yet). */
    uint64_t currentSerial() const { return serial; }

    /**
     * A region logically begins: remember its start serial so records
     * it may need to probe are retained. Returns the start serial.
     */
    uint64_t beginRegion();

    /** The region with @p start_serial finished (committed *or*
     *  aborted for good); drop records nobody can probe anymore. */
    void endRegion(uint64_t start_serial);

    /**
     * Commit-time probe: does @p fp overlap any write set committed
     * after @p start_serial? Reads conflict with writes; writes
     * conflict with writes (two serializable reads never conflict).
     */
    RegionConflict check(const RegionFootprint &fp,
                         uint64_t start_serial) const;

    /**
     * Publish a committed region's write lines. Fallback runs pass
     * fallback=true; their record additionally carries the
     * fallback-lock line, so every subscribed HTM region that was
     * logically concurrent aborts on it.
     * @return The new commit serial.
     */
    uint64_t commit(const std::unordered_set<Addr> &write_lines,
                    bool fallback);

  private:
    struct Record {
        uint64_t serial = 0;
        bool fallback = false;
        std::unordered_set<Addr> writeLines;
    };

    void prune();

    uint64_t serial = 0;
    std::deque<Record> records;
    /** Start serials of in-flight regions (multiset: K threads may
     *  begin at the same serial). */
    std::multiset<uint64_t> activeStarts;
};

} // namespace nomap

#endif // NOMAP_HTM_REGION_H
