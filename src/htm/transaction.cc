#include "htm/transaction.h"

#include <algorithm>

#include "inject/fault_plan.h"
#include "support/logging.h"

namespace nomap {

namespace {

// ROT bounds writes by L2 geometry; RTM bounds writes by L1D geometry.
constexpr uint32_t kL1Size = 32 * 1024;
constexpr uint32_t kL1Ways = 8;
constexpr uint32_t kL2Size = 256 * 1024;
constexpr uint32_t kL2Ways = 8;

// trace.cc renders abort codes from a mirrored name table; pin the
// numeric layout so the two cannot drift apart.
static_assert(static_cast<uint8_t>(AbortCode::None) == 0 &&
              static_cast<uint8_t>(AbortCode::ExplicitCheck) == 1 &&
              static_cast<uint8_t>(AbortCode::Capacity) == 2 &&
              static_cast<uint8_t>(AbortCode::StickyOverflow) == 3 &&
              static_cast<uint8_t>(AbortCode::Irrevocable) == 4);

} // namespace

TransactionManager::TransactionManager(HtmMode mode,
                                       CapacityModelKind capacity_kind)
    : htmMode(mode), capacityKind(capacity_kind),
      writeSet(makeWriteCapacityModel(
          capacity_kind, mode == HtmMode::Rot ? kL2Size : kL1Size,
          mode == HtmMode::Rot ? kL2Ways : kL1Ways)),
      readSet(makeReadCapacityModel(capacity_kind, kL2Size, kL2Ways))
{
}

uint32_t
TransactionManager::begin()
{
    ++depth;
    if (depth > 1)
        return 0; // Flattened nesting: inner begins are free.

    sofFlag = false;
    writeSet->clear();
    readSet->clear();
    if (rollback)
        rollback->txCheckpoint();
    ++statsData.begins;
    if (inj) {
        pendingInjected = AbortCode::None;
        // Poll every site unconditionally — armed-but-unmatched plans
        // must see identical occurrence numbering whether or not some
        // other site fired first — but the *first* match in the fixed
        // polling order (explicit, capacity, irrevocable) picks the
        // code. A later site firing on the same begin is consumed
        // without overriding the earlier one's code.
        bool fire_explicit = inj->fire(FaultSite::HtmAbortExplicit);
        bool fire_capacity = inj->fire(FaultSite::HtmAbortCapacity);
        bool fire_irrevocable = inj->fire(FaultSite::HtmAbortIrrevocable);
        if (fire_explicit)
            pendingInjected = AbortCode::ExplicitCheck;
        else if (fire_capacity)
            pendingInjected = AbortCode::Capacity;
        else if (fire_irrevocable)
            pendingInjected = AbortCode::Irrevocable;
        if (inj->fire(FaultSite::HtmSofLatch))
            sofFlag = true;
    }
    emitTxEvent(TraceEventType::TxBegin, AbortCode::None, 0, 0);
    return htmMode == HtmMode::Rot ? kRotBeginCycles : kRtmBeginCycles;
}

CommitResult
TransactionManager::end()
{
    NOMAP_ASSERT(depth > 0);
    CommitResult result;
    if (depth > 1) {
        --depth;
        result.committed = true;
        result.cycles = 0;
        return result;
    }

    // Outermost XEnd: the hardware checks the SOF first.
    if (sofFlag) {
        result.committed = false;
        result.abortCode = AbortCode::StickyOverflow;
        result.cycles = abort(AbortCode::StickyOverflow);
        return result;
    }

    uint64_t wf = writeSet->footprintBytes();
    statsData.totalWriteFootprintBytes += wf;
    statsData.maxWriteFootprintBytes =
        std::max(statsData.maxWriteFootprintBytes, wf);
    statsData.maxWriteWaysUsed =
        std::max(statsData.maxWriteWaysUsed, writeSet->maxWaysUsed());
    statsData.totalReadFootprintBytes += readSet->footprintBytes();
    emitTxEvent(TraceEventType::TxCommit, AbortCode::None, wf,
                writeSet->maxWaysUsed());

    depth = 0;
    if (rollback)
        rollback->txDiscardLog();
    writeSet->clear();
    readSet->clear();
    ++statsData.commits;

    result.committed = true;
    result.cycles =
        htmMode == HtmMode::Rot ? kRotCommitCycles : kRtmCommitCycles;
    return result;
}

uint32_t
TransactionManager::abort(AbortCode code)
{
    NOMAP_ASSERT(depth > 0);
    NOMAP_ASSERT(code != AbortCode::None);
    // Capture the footprint *before* rollback clears it: aborted
    // transactions — above all capacity aborts, by definition the
    // largest — must contribute to the footprint maxima, or Table IV
    // reports the maximum of the survivors only.
    uint64_t wf = writeSet->footprintBytes();
    statsData.abortedWriteFootprintBytes += wf;
    statsData.maxWriteFootprintBytes =
        std::max(statsData.maxWriteFootprintBytes, wf);
    statsData.maxWriteWaysUsed =
        std::max(statsData.maxWriteWaysUsed, writeSet->maxWaysUsed());
    emitTxEvent(TraceEventType::TxAbort, code, wf,
                writeSet->maxWaysUsed());
    if (rollback)
        rollback->txRollback();
    finishAbortBookkeeping(code);
    return kAbortCycles;
}

void
TransactionManager::emitTxEvent(TraceEventType type, AbortCode code,
                                uint64_t bytes, uint32_t ways) const
{
    bool traced = trace && trace->enabled();
    if (!traced && !telemetry)
        return;
    TraceEvent event;
    event.vcycles = traceClock ? traceClock->virtualCycles() : 0;
    event.type = type;
    event.code = static_cast<uint8_t>(code);
    event.funcId = traceFuncId;
    event.pc = traceEntryPc;
    event.bytes = bytes;
    event.ways = ways;
    if (traced)
        trace->emit(event);
    if (telemetry)
        telemetry->onTxEvent(event);
}

void
TransactionManager::finishAbortBookkeeping(AbortCode code)
{
    depth = 0;
    sofFlag = false;
    pendingInjected = AbortCode::None;
    writeSet->clear();
    readSet->clear();
    ++statsData.aborts;
    ++statsData.abortsByCode[static_cast<size_t>(code)];
}

void
TransactionManager::squeezeWriteWays(uint32_t ways)
{
    NOMAP_ASSERT(depth == 0);
    // Monotonicity (a later, larger value never re-grows the set)
    // and set-count preservation live inside the model.
    writeSet->squeezeWays(ways);
}

bool
TransactionManager::recordWrite(Addr addr)
{
    NOMAP_ASSERT(depth > 0);
    if (inj && inj->fire(FaultSite::HtmStore)) {
        abort(AbortCode::Capacity);
        return false;
    }
    if (writeSet->insert(addr))
        return true;
    abort(AbortCode::Capacity);
    return false;
}

bool
TransactionManager::recordRead(Addr addr)
{
    NOMAP_ASSERT(depth > 0);
    if (htmMode != HtmMode::Rtm)
        return true; // ROT does not track reads at all.
    if (readSet->insert(addr))
        return true;
    abort(AbortCode::Capacity);
    return false;
}

double
TransactionManager::readLatencyFactor() const
{
    return htmMode == HtmMode::Rtm ? 1.2 : 1.0;
}

const char *
abortCodeName(AbortCode code)
{
    switch (code) {
      case AbortCode::None: return "none";
      case AbortCode::ExplicitCheck: return "explicit-check";
      case AbortCode::Capacity: return "capacity";
      case AbortCode::StickyOverflow: return "sticky-overflow";
      case AbortCode::Irrevocable: return "irrevocable";
    }
    return "unknown";
}

} // namespace nomap
