#include "htm/transaction.h"

#include <algorithm>

#include "inject/fault_plan.h"
#include "support/logging.h"

namespace nomap {

namespace {

// ROT bounds writes by L2 geometry; RTM bounds writes by L1D geometry.
constexpr uint32_t kL1Size = 32 * 1024;
constexpr uint32_t kL1Ways = 8;
constexpr uint32_t kL2Size = 256 * 1024;
constexpr uint32_t kL2Ways = 8;

} // namespace

TransactionManager::TransactionManager(HtmMode mode)
    : htmMode(mode),
      writeSet(mode == HtmMode::Rot ? kL2Size : kL1Size,
               mode == HtmMode::Rot ? kL2Ways : kL1Ways),
      readSet(kL2Size, kL2Ways)
{
}

uint32_t
TransactionManager::begin()
{
    ++depth;
    if (depth > 1)
        return 0; // Flattened nesting: inner begins are free.

    sofFlag = false;
    writeSet.clear();
    readSet.clear();
    if (rollback)
        rollback->txCheckpoint();
    ++statsData.begins;
    if (inj) {
        pendingInjected = AbortCode::None;
        if (inj->fire(FaultSite::HtmAbortExplicit))
            pendingInjected = AbortCode::ExplicitCheck;
        if (inj->fire(FaultSite::HtmAbortCapacity))
            pendingInjected = AbortCode::Capacity;
        if (inj->fire(FaultSite::HtmAbortIrrevocable))
            pendingInjected = AbortCode::Irrevocable;
        if (inj->fire(FaultSite::HtmSofLatch))
            sofFlag = true;
    }
    return htmMode == HtmMode::Rot ? kRotBeginCycles : kRtmBeginCycles;
}

CommitResult
TransactionManager::end()
{
    NOMAP_ASSERT(depth > 0);
    CommitResult result;
    if (depth > 1) {
        --depth;
        result.committed = true;
        result.cycles = 0;
        return result;
    }

    // Outermost XEnd: the hardware checks the SOF first.
    if (sofFlag) {
        result.committed = false;
        result.abortCode = AbortCode::StickyOverflow;
        result.cycles = abort(AbortCode::StickyOverflow);
        return result;
    }

    uint64_t wf = writeSet.footprintBytes();
    statsData.totalWriteFootprintBytes += wf;
    statsData.maxWriteFootprintBytes =
        std::max(statsData.maxWriteFootprintBytes, wf);
    statsData.maxWriteWaysUsed =
        std::max(statsData.maxWriteWaysUsed, writeSet.maxWaysUsed());
    statsData.totalReadFootprintBytes += readSet.footprintBytes();

    depth = 0;
    if (rollback)
        rollback->txDiscardLog();
    writeSet.clear();
    readSet.clear();
    ++statsData.commits;

    result.committed = true;
    result.cycles =
        htmMode == HtmMode::Rot ? kRotCommitCycles : kRtmCommitCycles;
    return result;
}

uint32_t
TransactionManager::abort(AbortCode code)
{
    NOMAP_ASSERT(depth > 0);
    NOMAP_ASSERT(code != AbortCode::None);
    if (rollback)
        rollback->txRollback();
    finishAbortBookkeeping(code);
    return kAbortCycles;
}

void
TransactionManager::finishAbortBookkeeping(AbortCode code)
{
    depth = 0;
    sofFlag = false;
    pendingInjected = AbortCode::None;
    writeSet.clear();
    readSet.clear();
    ++statsData.aborts;
    ++statsData.abortsByCode[static_cast<size_t>(code)];
}

void
TransactionManager::squeezeWriteWays(uint32_t ways)
{
    NOMAP_ASSERT(depth == 0);
    uint32_t size = htmMode == HtmMode::Rot ? kL2Size : kL1Size;
    uint32_t orig_ways = htmMode == HtmMode::Rot ? kL2Ways : kL1Ways;
    if (ways == 0 || ways >= orig_ways)
        return;
    // Keep the set count constant: a real associativity squeeze
    // leaves line indexing untouched and shrinks each set.
    writeSet = FootprintTracker(size / orig_ways * ways, ways);
}

bool
TransactionManager::recordWrite(Addr addr)
{
    NOMAP_ASSERT(depth > 0);
    if (inj && inj->fire(FaultSite::HtmStore)) {
        abort(AbortCode::Capacity);
        return false;
    }
    if (writeSet.insert(addr))
        return true;
    abort(AbortCode::Capacity);
    return false;
}

bool
TransactionManager::recordRead(Addr addr)
{
    NOMAP_ASSERT(depth > 0);
    if (htmMode != HtmMode::Rtm)
        return true; // ROT does not track reads at all.
    if (readSet.insert(addr))
        return true;
    abort(AbortCode::Capacity);
    return false;
}

double
TransactionManager::readLatencyFactor() const
{
    return htmMode == HtmMode::Rtm ? 1.2 : 1.0;
}

const char *
abortCodeName(AbortCode code)
{
    switch (code) {
      case AbortCode::None: return "none";
      case AbortCode::ExplicitCheck: return "explicit-check";
      case AbortCode::Capacity: return "capacity";
      case AbortCode::StickyOverflow: return "sticky-overflow";
      case AbortCode::Irrevocable: return "irrevocable";
    }
    return "unknown";
}

} // namespace nomap
