#ifndef NOMAP_HTM_TRANSACTION_H
#define NOMAP_HTM_TRANSACTION_H

/**
 * @file
 * Hardware transactional memory simulator.
 *
 * Two HTM flavors are modeled, following the paper:
 *
 *  - **ROT** (IBM POWER8 Rollback-Only Transaction mode): only the
 *    *write* footprint is tracked, bounded by the 256 KB 8-way L2.
 *    XBegin costs a memory fence; XEnd flash-clears SW bits (5 cycles)
 *    and does not wait for the write buffer to drain. Reads are free.
 *
 *  - **RTM** (Intel TSX Restricted Transactional Memory): writes must
 *    fit the 32 KB 8-way L1D and reads the 256 KB 8-way L2; XEnd
 *    stalls >= 13 cycles for write-buffer drain, and transactional
 *    reads are ~20% slower (Ritson & Barnes measurements cited by the
 *    paper).
 *
 * Nesting is flattened: inner begin/end only adjust a depth counter,
 * and an abort anywhere unwinds the whole nest. The simulator also
 * implements the paper's Sticky Overflow Flag (SOF): integer overflow
 * inside a transaction latches the flag; the outermost XEnd checks it
 * and converts a latched overflow into an abort.
 *
 * Memory rollback itself is delegated to a RollbackClient (the VM
 * heap keeps a logical undo log), keeping this library independent of
 * the VM's data representation.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "htm/capacity_model.h"
#include "memsim/footprint.h"
#include "trace/trace.h"

namespace nomap {

class FaultInjector;

/** Why a transaction aborted. */
enum class AbortCode : uint8_t {
    None,
    ExplicitCheck,   ///< A formerly SMP-guarding check failed.
    Capacity,        ///< Footprint exceeded cache geometry.
    StickyOverflow,  ///< SOF latched; detected at XEnd.
    Irrevocable,     ///< I/O, exception, or signal inside the nest.
};

/** Which HTM flavor a TransactionManager models. */
enum class HtmMode : uint8_t {
    Rot,  ///< Lightweight rollback-only mode (paper's target).
    Rtm,  ///< Heavyweight Intel-style mode.
};

/** Per-manager aggregate statistics (drives Table IV). */
struct HtmStats {
    uint64_t begins = 0;           ///< Outermost transaction begins.
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t abortsByCode[5] = {0, 0, 0, 0, 0};
    /** Sum over committed transactions of write footprint bytes. */
    uint64_t totalWriteFootprintBytes = 0;
    /** Sum over *aborted* transactions of write footprint bytes, as
     *  captured just before rollback. Kept separate from the
     *  committed sum so avgWriteFootprintBytes() stays a
     *  per-committed-transaction average. */
    uint64_t abortedWriteFootprintBytes = 0;
    /** Largest footprint of any transaction, committed *or* aborted —
     *  capacity-aborted transactions are precisely the largest ones,
     *  so excluding them would report the maximum of the survivors. */
    uint64_t maxWriteFootprintBytes = 0;
    /** Largest associativity any set needed across all transactions,
     *  committed or aborted. */
    uint32_t maxWriteWaysUsed = 0;
    uint64_t totalReadFootprintBytes = 0;

    double
    avgWriteFootprintBytes() const
    {
        return commits ? static_cast<double>(totalWriteFootprintBytes) /
                             static_cast<double>(commits)
                       : 0.0;
    }
};

/**
 * Interface the memory owner implements so aborts can restore state.
 */
class RollbackClient
{
  public:
    virtual ~RollbackClient() = default;

    /** Called at the outermost XBegin: start logging writes. */
    virtual void txCheckpoint() = 0;

    /** Called on abort: undo every write since txCheckpoint(). */
    virtual void txRollback() = 0;

    /** Called on commit: discard the undo log. */
    virtual void txDiscardLog() = 0;
};

/** Result of an XEnd. */
struct CommitResult {
    bool committed = false;
    AbortCode abortCode = AbortCode::None;
    /** Cycles charged for the commit (or abort handling). */
    uint32_t cycles = 0;
};

/**
 * The HTM state machine for a single hardware thread (JavaScript is
 * single-threaded, so no conflict detection is modeled).
 */
class TransactionManager
{
  public:
    explicit TransactionManager(
        HtmMode mode = HtmMode::Rot,
        CapacityModelKind capacity_kind = CapacityModelKind::WaysAssoc);

    HtmMode mode() const { return htmMode; }

    /** Capacity geometry this manager models. */
    CapacityModelKind capacityModelKind() const { return capacityKind; }

    /** Attach the memory owner that knows how to undo writes. */
    void setRollbackClient(RollbackClient *client) { rollback = client; }

    /**
     * Arm/disarm deterministic fault injection (see
     * src/inject/fault_plan.h). The htm.abort* sites fire at the
     * outermost begin() and stash an abort code the executor consumes
     * via takePendingInjectedAbort() once its transaction-owner state
     * is established; htm.sof latches the SOF; htm.store aborts on a
     * chosen transactional write. Pass nullptr to disarm.
     */
    void setFaultInjector(FaultInjector *injector) { inj = injector; }

    /**
     * Abort code requested by an injected begin-site, cleared on
     * read. The executor that issued the begin must consult this
     * immediately and abort the transaction itself so its rollback /
     * baseline-resume machinery runs exactly as for a real abort.
     */
    AbortCode
    takePendingInjectedAbort()
    {
        AbortCode code = pendingInjected;
        pendingInjected = AbortCode::None;
        return code;
    }

    /**
     * Attach a trace sink + deterministic clock. The manager emits
     * TxBegin / TxCommit / TxAbort events (abort events carry the
     * pre-rollback footprint). Pass nullptr to detach.
     */
    void
    setTrace(TraceBuffer *buffer, const TraceClock *clock)
    {
        trace = buffer;
        traceClock = clock;
    }

    /**
     * Attach a telemetry sink that receives every TxBegin / TxCommit
     * / TxAbort event, independently of the trace buffer (and with
     * tracing disabled entirely). The adaptive controller listens
     * here. Pass nullptr to detach. Events carry the same payload the
     * tracer sees, stamped from the same clock (0 without one).
     */
    void setTelemetry(TxTelemetrySink *sink) { telemetry = sink; }

    /**
     * Tell the tracer which code the *next* transaction belongs to
     * (function id + entry SMP pc). Called by the executor right
     * before the outermost begin(); sticky until the next call, so
     * retries of the same transaction attribute to the same site.
     */
    void
    setTraceContext(uint32_t func_id, uint32_t entry_pc)
    {
        traceFuncId = func_id;
        traceEntryPc = entry_pc;
    }

    /**
     * Shrink the write-set associativity to @p ways, keeping the set
     * count constant (so total capacity shrinks proportionally) —
     * the htm.ways value-site. No-op outside [1, current ways), so
     * repeated squeezes are monotone: a later, larger value can never
     * re-grow the write set. Must be called between transactions.
     */
    void squeezeWriteWays(uint32_t ways);

    /** Current write-set associativity (after any squeeze). */
    uint32_t writeWays() const { return writeSet->numWays(); }

    /**
     * Total write capacity in bytes under the current model and
     * squeeze state — the oracle the planner consults so plan and
     * hardware agree on one geometry.
     */
    uint64_t writeCapacityBytes() const
    {
        return writeSet->capacityBytes();
    }

    /** True while inside a (possibly nested) transaction. */
    bool inTransaction() const { return depth > 0; }

    /**
     * XBegin. Outermost begin clears the SOF, checkpoints memory, and
     * charges the fence cost.
     * @return Cycles charged.
     */
    uint32_t begin();

    /**
     * XEnd. Inner ends are free; the outermost end checks the SOF,
     * publishes footprint stats, and either commits or aborts.
     */
    CommitResult end();

    /**
     * Explicit abort (failed check or irrevocable event). Rolls back
     * memory through the client, discards speculative cache state,
     * and unwinds the whole nest.
     * @return Cycles charged for abort handling.
     */
    uint32_t abort(AbortCode code);

    /**
     * Record a transactional store to @p addr.
     * @return false if this store overflowed the write footprint; the
     *         manager has already aborted the transaction in that
     *         case and the caller must unwind.
     */
    bool recordWrite(Addr addr);

    /**
     * Record a transactional load (tracked only under RTM).
     * @return false on read-set overflow (transaction aborted).
     */
    bool recordRead(Addr addr);

    /** An integer operation overflowed: latch the SOF. */
    void noteArithmeticOverflow() { sofFlag = true; }

    /** True if the SOF is currently latched. */
    bool stickyOverflow() const { return sofFlag; }

    /** Extra latency multiplier for transactional loads (RTM: 1.2). */
    double readLatencyFactor() const;

    /** Write footprint of the current transaction, in bytes. */
    uint64_t currentWriteFootprintBytes() const
    {
        return writeSet->footprintBytes();
    }

    const HtmStats &stats() const { return statsData; }
    void resetStats() { statsData = HtmStats(); }

    /** Cost constants (cycles), exposed for the timing model/tests. */
    static constexpr uint32_t kRotBeginCycles = 20;  ///< mfence-like.
    static constexpr uint32_t kRotCommitCycles = 5;  ///< SW flash-clear.
    static constexpr uint32_t kRtmBeginCycles = 20;
    static constexpr uint32_t kRtmCommitCycles = 13; ///< Drain stall.
    static constexpr uint32_t kAbortCycles = 150;    ///< Rollback cost.

  private:
    void finishAbortBookkeeping(AbortCode code);
    void emitTxEvent(TraceEventType type, AbortCode code, uint64_t bytes,
                     uint32_t ways) const;

    HtmMode htmMode;
    CapacityModelKind capacityKind;
    RollbackClient *rollback = nullptr;
    FaultInjector *inj = nullptr;
    TraceBuffer *trace = nullptr;
    const TraceClock *traceClock = nullptr;
    TxTelemetrySink *telemetry = nullptr;
    uint32_t traceFuncId = 0;
    uint32_t traceEntryPc = 0;
    AbortCode pendingInjected = AbortCode::None;
    uint32_t depth = 0;
    bool sofFlag = false;

    std::unique_ptr<CapacityModel> writeSet;
    std::unique_ptr<CapacityModel> readSet;

    HtmStats statsData;
};

/** Human-readable abort-code name. */
const char *abortCodeName(AbortCode code);

/**
 * Thrown when a transaction aborts while execution is nested inside
 * callees (capacity overflow in a runtime helper, irrevocable event,
 * SOF at XEnd). The abort itself — memory rollback, cache discard,
 * statistics — has already happened by the time this is thrown; the
 * FTL frame that opened the transaction catches it and transfers
 * execution to the Baseline tier at the transaction's entry SMP.
 */
struct TxAbortUnwind {
    AbortCode code = AbortCode::None;
};

} // namespace nomap

#endif // NOMAP_HTM_TRANSACTION_H
