#include "inject/fault_plan.h"

#include <cstdlib>

#include "support/logging.h"

namespace nomap {

namespace {

struct SiteNameEntry {
    FaultSite site;
    const char *name;
};

// Order matters for parsing: longer names that share a prefix with a
// shorter one ("htm.abort.capacity" vs "htm.abort") are disambiguated
// by the exact match below, not by prefix scanning.
constexpr SiteNameEntry kSiteNames[] = {
    {FaultSite::HtmAbortExplicit, "htm.abort"},
    {FaultSite::HtmAbortCapacity, "htm.abort.capacity"},
    {FaultSite::HtmAbortIrrevocable, "htm.abort.irrevocable"},
    {FaultSite::HtmStore, "htm.store"},
    {FaultSite::HtmSofLatch, "htm.sof"},
    {FaultSite::HtmWaysSqueeze, "htm.ways"},
    {FaultSite::CheckBounds, "check.bounds"},
    {FaultSite::CheckOverflow, "check.overflow"},
    {FaultSite::CheckType, "check.type"},
    {FaultSite::CheckProperty, "check.property"},
    {FaultSite::CheckOther, "check.other"},
    {FaultSite::CheckAny, "check.any"},
    {FaultSite::FtlOsr, "ftl.osr"},
    {FaultSite::EngineCompileFail, "engine.compile"},
    {FaultSite::EngineTxWatchdog, "engine.watchdog"},
    {FaultSite::ServiceQueueFull, "service.queuefull"},
    {FaultSite::ServiceCancel, "service.cancel"},
    {FaultSite::ServiceRetry, "service.retry"},
    {FaultSite::ServiceShardFull, "service.shardfull"},
    {FaultSite::NetAccept, "net.accept"},
    {FaultSite::NetRead, "net.read"},
    {FaultSite::NetWrite, "net.write"},
    {FaultSite::NetFrameDefer, "net.frame"},
    {FaultSite::AdaptiveDecision, "adaptive.decision"},
    {FaultSite::AdaptiveBlacklist, "adaptive.blacklist"},
    {FaultSite::StmFallback, "stm.fallback"},
};

/** Does a site consume the ':arg' filter? Only ftl.osr passes a key
 *  to FaultInjector::fire; an arg anywhere else can never match. */
bool
siteTakesArg(FaultSite site)
{
    return site == FaultSite::FtlOsr;
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/** Parse a full decimal uint64; rejects empty/partial/overflow. */
bool
parseUint(const std::string &s, uint64_t *out)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    for (const SiteNameEntry &entry : kSiteNames) {
        if (entry.site == site)
            return entry.name;
    }
    return "?";
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        std::string spec = trim(
            text.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos));
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (spec.empty()) {
            if (comma == std::string::npos && plan.list.empty() &&
                pos > text.size())
                break; // Wholly empty input: empty plan.
            fatal("fault plan: empty spec in \"%s\"", text.c_str());
        }

        size_t at = spec.find('@');
        if (at == std::string::npos) {
            fatal("fault plan: spec \"%s\" lacks '@count'",
                  spec.c_str());
        }
        std::string name = spec.substr(0, at);
        std::string rest = spec.substr(at + 1);

        FaultAction action;
        bool known = false;
        for (const SiteNameEntry &entry : kSiteNames) {
            if (name == entry.name) {
                action.site = entry.site;
                known = true;
                break;
            }
        }
        if (!known) {
            fatal("fault plan: unknown site \"%s\" (see "
                  "src/inject/fault_plan.h for the site table)",
                  name.c_str());
        }

        size_t colon = rest.find(':');
        std::string count_str =
            colon == std::string::npos ? rest : rest.substr(0, colon);
        if (!parseUint(count_str, &action.count) || action.count == 0) {
            fatal("fault plan: spec \"%s\" needs a positive decimal "
                  "count after '@'",
                  spec.c_str());
        }
        if (colon != std::string::npos) {
            if (!siteTakesArg(action.site)) {
                fatal("fault plan: site \"%s\" takes no ':arg' filter "
                      "(the spec \"%s\" would arm but never fire)",
                      name.c_str(), spec.c_str());
            }
            if (!parseUint(rest.substr(colon + 1), &action.arg)) {
                fatal("fault plan: spec \"%s\" has a malformed ':arg'",
                      spec.c_str());
            }
            action.hasArg = true;
        }
        plan.list.push_back(action);
        if (comma == std::string::npos)
            break;
    }
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::string out;
    for (const FaultAction &action : list) {
        if (!out.empty())
            out += ',';
        out += faultSiteName(action.site);
        out += '@';
        out += std::to_string(action.count);
        if (action.hasArg) {
            out += ':';
            out += std::to_string(action.arg);
        }
    }
    return out;
}

std::optional<FaultPlan>
FaultPlan::fromEnv()
{
    const char *text = std::getenv("NOMAP_FAULT_PLAN");
    if (!text || !*text)
        return std::nullopt;
    return parse(text);
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : planData(plan)
{
    for (const FaultAction &action : planData.actions()) {
        auto slot = std::make_unique<ArmedAction>();
        slot->action = action;
        armed.push_back(std::move(slot));
    }
}

bool
FaultInjector::fire(FaultSite site, uint64_t key)
{
    siteCounts[static_cast<size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
    bool fired = false;
    for (const auto &slot : armed) {
        const FaultAction &action = slot->action;
        if (action.site != site)
            continue;
        if (action.site == FaultSite::HtmWaysSqueeze)
            continue; // Value-site: queried, never fired.
        if (action.hasArg && action.arg != key)
            continue;
        uint64_t ordinal =
            slot->matched.fetch_add(1, std::memory_order_relaxed) + 1;
        if (ordinal == action.count)
            fired = true;
    }
    return fired;
}

uint64_t
FaultInjector::occurrences(FaultSite site) const
{
    return siteCounts[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
}

uint64_t
FaultInjector::valueOf(FaultSite site, uint64_t fallback) const
{
    for (const auto &slot : armed) {
        if (slot->action.site == site)
            return slot->action.count;
    }
    return fallback;
}

} // namespace nomap
