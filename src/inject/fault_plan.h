#ifndef NOMAP_INJECT_FAULT_PLAN_H
#define NOMAP_INJECT_FAULT_PLAN_H

/**
 * @file
 * Deterministic fault injection: scriptable failure plans with named
 * injection sites threaded through the whole stack.
 *
 * A **FaultPlan** is a one-line, serializable recipe of failures to
 * inject into an execution: "abort the 3rd transaction", "fail the
 * 17th bounds check", "reject the 2nd enqueue as queue-full". Every
 * layer that can fail exposes a named **FaultSite**; an armed
 * **FaultInjector** counts dynamic occurrences of each site and fires
 * exactly when an action's trigger count is reached. Because the VM is
 * fully deterministic, the same plan on the same program reproduces
 * the same failure, every time, on every machine:
 *
 *     NOMAP_FAULT_PLAN="htm.abort@3,check.bounds@17" ctest ...
 *
 * Grammar (canonical form; parse → toString round-trips exactly):
 *
 *     plan   := spec (',' spec)*
 *     spec   := site '@' count (':' arg)?
 *     site   := lowercase dotted name from the table below
 *     count  := decimal trigger occurrence (1-based), or a value for
 *               value-sites (htm.ways)
 *     arg    := decimal site-specific filter (ftl.osr: the SMP's
 *               bytecode pc)
 *
 * Sites:
 *
 *     htm.abort@N              explicit-check abort at the N-th
 *                              outermost XBegin
 *     htm.abort.capacity@N     capacity abort at the N-th XBegin
 *     htm.abort.irrevocable@N  irrevocable abort at the N-th XBegin
 *     htm.store@K              capacity abort at the K-th
 *                              transactional store
 *     htm.sof@N                latch the Sticky Overflow Flag in the
 *                              N-th transaction (aborts at XEnd)
 *     htm.ways@W               value-site: squeeze the write-set
 *                              associativity to W ways (sets constant,
 *                              capacity shrinks proportionally)
 *     check.bounds@M           force the M-th dynamic check of that
 *     check.overflow@M         kind to fail (unconverted checks OSR
 *     check.type@M             to Baseline; converted checks abort
 *     check.property@M         the transaction)
 *     check.other@M
 *     check.any@M              force the M-th check of any kind
 *     ftl.osr@M[:pc]           force OSR at the M-th SMP-carrying
 *                              check (optionally only at bytecode pc)
 *     engine.compile@N         fail the N-th DFG/FTL (re)compile;
 *                              the function stays at its current code
 *     engine.watchdog@C        fire the transaction watchdog at the
 *                              C-th in-transaction instruction poll
 *     service.queuefull@N      reject the N-th enqueue as QueueFull
 *     service.cancel@P         throw ExecutionCancelled at the P-th
 *                              chargeCycles cancellation poll
 *     service.retry@N          fail the N-th service execution
 *                              attempt with a transient error
 *     service.shardfull@N      shed the N-th sharded-service
 *                              admission as if the shard queue were
 *                              over the shed threshold
 *     net.accept@N             close the N-th accepted connection
 *                              immediately (models accept()/fd
 *                              failure; clients must reconnect)
 *     net.read@N               clamp the N-th socket read to one byte
 *                              (short read: frames arrive in pieces)
 *     net.write@N              clamp the N-th socket write to one
 *                              byte (short write: responses dribble)
 *     net.frame@N              defer processing of the N-th decoded
 *                              request frame by one poll cycle
 *                              (models a slow client's request
 *                              straggling in)
 *     adaptive.decision@N      veto the N-th adaptive plan-revision
 *                              application (the controller rolls its
 *                              assumed state back and re-decides)
 *     adaptive.blacklist@N     at the N-th adaptive revision
 *                              application, force the function
 *                              untransactional (pinned level 3)
 *                              instead of the decided revision
 *     stm.fallback@N           doom every HTM attempt of the N-th
 *                              shared-heap region, driving it through
 *                              the full retry ladder onto the
 *                              software fallback path
 *
 * Only `ftl.osr` takes a ':arg' filter; a ':arg' on any other site is
 * rejected at parse time. (Before this check, a plan like
 * "net.accept@1:7" armed silently and never fired, because no other
 * call site passes a key to FaultInjector::fire.)
 *
 * Triggers are one-shot: each action fires at most once per injector.
 * Disarmed sites cost a single branch on a nullable pointer; an armed
 * plan whose actions never match changes no externally visible
 * counters (instructions, checks, cycles) — only the injector's own
 * occurrence counts advance.
 *
 * Counters are relaxed atomics so a shared injector (the service's)
 * stays ThreadSanitizer-clean; exact-count triggers across threads
 * remain exact because fetch_add hands out each ordinal once.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nomap {

/** Every named place a fault can be injected. */
enum class FaultSite : uint8_t {
    HtmAbortExplicit,    ///< htm.abort
    HtmAbortCapacity,    ///< htm.abort.capacity
    HtmAbortIrrevocable, ///< htm.abort.irrevocable
    HtmStore,            ///< htm.store
    HtmSofLatch,         ///< htm.sof
    HtmWaysSqueeze,      ///< htm.ways (value-site)
    CheckBounds,         ///< check.bounds
    CheckOverflow,       ///< check.overflow
    CheckType,           ///< check.type
    CheckProperty,       ///< check.property
    CheckOther,          ///< check.other
    CheckAny,            ///< check.any
    FtlOsr,              ///< ftl.osr
    EngineCompileFail,   ///< engine.compile
    EngineTxWatchdog,    ///< engine.watchdog
    ServiceQueueFull,    ///< service.queuefull
    ServiceCancel,       ///< service.cancel
    ServiceRetry,        ///< service.retry
    ServiceShardFull,    ///< service.shardfull
    NetAccept,           ///< net.accept
    NetRead,             ///< net.read
    NetWrite,            ///< net.write
    NetFrameDefer,       ///< net.frame
    AdaptiveDecision,    ///< adaptive.decision
    AdaptiveBlacklist,   ///< adaptive.blacklist
    StmFallback,         ///< stm.fallback
};

constexpr size_t kNumFaultSites =
    static_cast<size_t>(FaultSite::StmFallback) + 1;

/** Canonical grammar name of a site ("htm.abort", "check.bounds"...). */
const char *faultSiteName(FaultSite site);

/** One "site@count[:arg]" entry of a plan. */
struct FaultAction {
    FaultSite site = FaultSite::HtmAbortExplicit;
    /** 1-based trigger occurrence (or the value for value-sites). */
    uint64_t count = 0;
    /** Optional site-specific filter (ftl.osr: SMP bytecode pc). */
    uint64_t arg = 0;
    bool hasArg = false;
};

/**
 * An immutable, serializable list of fault actions. Plans are plain
 * data: arm one on an Engine/ExecutionService to get a live
 * FaultInjector with fresh counters.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse the one-line grammar above. Spaces around specs are
     * tolerated; toString() always emits the canonical spaceless
     * form. Throws FatalError on malformed input (unknown site,
     * missing/invalid count, trailing junk).
     */
    static FaultPlan parse(const std::string &text);

    /** Canonical serialization; parse(toString()) round-trips. */
    std::string toString() const;

    /**
     * Plan from the NOMAP_FAULT_PLAN environment variable, if set and
     * non-empty. Re-reads the environment on every call (no caching)
     * so tests can set the variable between engine constructions.
     */
    static std::optional<FaultPlan> fromEnv();

    const std::vector<FaultAction> &actions() const { return list; }
    bool empty() const { return list.empty(); }

  private:
    std::vector<FaultAction> list;
};

/**
 * Live occurrence counters for one armed plan. One injector per
 * Engine (rebuilt on reset()/re-arm, so counters always start fresh)
 * plus one owned by the ExecutionService for service-level sites.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /**
     * Count one dynamic occurrence of @p site and report whether an
     * armed action fires here. Actions with an arg filter only count
     * occurrences whose @p key matches. Each action fires exactly
     * once (when its matching-occurrence ordinal equals its count).
     */
    bool fire(FaultSite site, uint64_t key = 0);

    /** Total occurrences of @p site seen so far (all keys). */
    uint64_t occurrences(FaultSite site) const;

    /** Value of a value-site action (htm.ways), or @p fallback. */
    uint64_t valueOf(FaultSite site, uint64_t fallback) const;

    const FaultPlan &plan() const { return planData; }

  private:
    struct ArmedAction {
        FaultAction action;
        std::atomic<uint64_t> matched{0};
    };

    FaultPlan planData;
    std::vector<std::unique_ptr<ArmedAction>> armed;
    std::array<std::atomic<uint64_t>, kNumFaultSites> siteCounts{};
};

} // namespace nomap

#endif // NOMAP_INJECT_FAULT_PLAN_H
