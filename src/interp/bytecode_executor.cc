#include "interp/bytecode_executor.h"

#include "support/logging.h"

/**
 * Dispatch strategy. With NOMAP_COMPUTED_GOTO (set by CMake when the
 * compiler supports GNU labels-as-values) each op body ends in an
 * indirect jump through a per-opcode label table — the classic
 * direct-threaded interpreter, which gives the branch predictor one
 * indirect-branch site per opcode instead of a single shared one.
 * Without it, the same bodies compile as a portable switch.
 *
 * Both variants share one skeleton: VM_CASE opens an op body,
 * `goto vm_next` advances to the next pc, and jump ops go straight to
 * vm_top after retargeting pc (vm_next also clears the back-edge
 * flag, so jumps must bypass it — exactly the seed loop's continue).
 *
 * Quickening. Warm code is rewritten in place (op field only; pc,
 * operands, and code length never change) to pre-resolved forms:
 *
 *   Binary Add/Sub  -> QAddII/QSubII     after an int32 fast-path hit
 *   GetProp         -> QGetPropMono      after a Baseline IC hit
 *   cmp ; JumpIf    -> QCmpBranch ; JumpIf          (static, 1st run)
 *   LoadConst ; cmp ; JumpIf
 *                   -> QConstCmpBranch ; QCmpBranch ; JumpIf
 *
 * The superinstruction sits at the pc of the first fused op and
 * executes the whole sequence in one dispatch; the tail ops remain in
 * place, so a jump into the middle of a fused sequence lands on plain
 * executable code and every pc-indexed side table stays valid. Each
 * fused body advances `pc` (and clears the back-edge flag) between
 * phases and replays the generic charge-call sequence exactly — the
 * number and order of Accounting calls is observable through the
 * cancellation-poll counter and fault injection, so it must match the
 * unfused execution call for call. The quickened bodies are compiled
 * into every variant (they are semantically complete, including slow
 * fallbacks to the generic bodies); only the *rewriting* is gated on
 * kFeatQuicken, so a non-quickening engine simply never encounters
 * them.
 */
#if defined(NOMAP_COMPUTED_GOTO)
#define VM_CASE(name) lbl_##name:
#else
#define VM_CASE(name) case Opcode::name:
#endif

namespace nomap {

namespace {

/** A Binary op whose result both branches on and compares int32s. */
bool
isCompareBinary(const BytecodeInstr &instr)
{
    if (instr.op != Opcode::Binary)
        return false;
    switch (static_cast<BinaryOp>(instr.imm)) {
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::NotEq:
      case BinaryOp::StrictEq:
      case BinaryOp::StrictNotEq:
        return true;
      default:
        return false;
    }
}

bool
isJumpIf(const BytecodeInstr &instr)
{
    return instr.op == Opcode::JumpIfTrue ||
           instr.op == Opcode::JumpIfFalse;
}

/**
 * Inline evaluation of a compare on two int32s. Exact: every generic
 * compare reduces to a numeric comparison when both operands are
 * int32 (Lt..Ge via toNumber, Eq/StrictEq via asNumber), and int32 ->
 * double conversion is lossless.
 */
bool
evalIntCompare(BinaryOp op, int32_t a, int32_t b)
{
    switch (op) {
      case BinaryOp::Lt: return a < b;
      case BinaryOp::Le: return a <= b;
      case BinaryOp::Gt: return a > b;
      case BinaryOp::Ge: return a >= b;
      case BinaryOp::Eq:
      case BinaryOp::StrictEq: return a == b;
      case BinaryOp::NotEq:
      case BinaryOp::StrictNotEq: return a != b;
      default:
        panic("evalIntCompare: not a compare op");
    }
}

} // namespace

BytecodeExecutor::BytecodeExecutor(ExecEnv &env_, Tier tier_)
    : env(env_), tier(tier_)
{
    NOMAP_ASSERT(tier == Tier::Interpreter || tier == Tier::Baseline);
}

Value
BytecodeExecutor::run(BytecodeFunction &fn, const Value *args,
                      uint32_t nargs)
{
    FrameLease frame(env, fn.numRegs);
    std::vector<Value> &regs = frame.regs();
    for (uint32_t i = 0; i < fn.numParams; ++i)
        regs[i] = i < nargs ? args[i] : Value::undefined();
    return execute(fn, regs, 0);
}

Value
BytecodeExecutor::runFrom(BytecodeFunction &fn,
                          const std::vector<Value> &locals, uint32_t pc)
{
    FrameLease frame(env, fn.numRegs);
    std::vector<Value> &regs = frame.regs();
    for (size_t i = 0; i < locals.size() && i < regs.size(); ++i)
        regs[i] = locals[i];
    return execute(fn, regs, pc);
}

void
BytecodeExecutor::profileBinary(ArithProfile &prof, Value lhs, Value rhs,
                                Value result)
{
    prof.lhsMask |= valueKindMask(lhs.kind());
    prof.rhsMask |= valueKindMask(rhs.kind());
    prof.resultMask |= valueKindMask(result.kind());
    // Int operands producing a non-int number indicate overflow or a
    // fractional result; the IR builder uses this to decide between
    // int32 speculation (with overflow check) and double math.
    if (lhs.isInt32() && rhs.isInt32() && result.isBoxedDouble())
        prof.sawIntOverflow = true;
}

void
BytecodeExecutor::quickenStatic(BytecodeFunction &fn)
{
    fn.quickened = true;
    size_t n = fn.code.size();
    for (size_t pc = 0; pc + 1 < n; ++pc) {
        BytecodeInstr &i0 = fn.code[pc];
        const BytecodeInstr &i1 = fn.code[pc + 1];
        if (isCompareBinary(i0) && isJumpIf(i1) && i1.b == i0.a) {
            i0.op = Opcode::QCmpBranch;
            continue;
        }
        // The triple head is only installed when the pair behind it
        // fuses too (the next loop iteration rewrites it), so the
        // QConstCmpBranch body can unconditionally chain into the
        // QCmpBranch body.
        if (i0.op == Opcode::LoadConst && pc + 2 < n &&
            isCompareBinary(i1) && (i1.b == i0.a || i1.c == i0.a) &&
            isJumpIf(fn.code[pc + 2]) && fn.code[pc + 2].b == i1.a) {
            i0.op = Opcode::QConstCmpBranch;
        }
    }
}

Value
BytecodeExecutor::execute(BytecodeFunction &fn, std::vector<Value> &regs,
                          uint32_t pc)
{
    // Hand-built functions in tests never go through the compiler;
    // build their charge plan on first execution.
    if (fn.runLen.size() != fn.code.size())
        fn.computeChargePlan();
    // Select the loop variant once per call; inside the loop every
    // feature decision is a compile-time constant.
    if (env.quickening) {
        if (!fn.quickened)
            quickenStatic(fn);
        return env.perOpAccounting
                   ? executeImpl<kFeatQuicken>(fn, regs, pc)
                   : executeImpl<kFeatQuicken | kFeatBatched>(fn, regs,
                                                              pc);
    }
    return env.perOpAccounting
               ? executeImpl<0>(fn, regs, pc)
               : executeImpl<kFeatBatched>(fn, regs, pc);
}

template <unsigned kFeat>
Value
BytecodeExecutor::executeImpl(BytecodeFunction &fn,
                              std::vector<Value> &regs, uint32_t pc)
{
    constexpr bool kBatched = (kFeat & kFeatBatched) != 0;
    constexpr bool kQuicken = (kFeat & kFeatQuicken) != 0;

    const bool interp = tier == Tier::Interpreter;
    const uint32_t base = interp ? CostModel::kInterpDispatch
                                 : CostModel::kBaselineOp;
    FunctionProfile &prof = fn.profile;
    // Hot pointers hoisted out of the loop. The code array never
    // resizes during execution (quickening rewrites the op field in
    // place), and frames never resize, so these stay valid across
    // calls dispatched from op bodies.
    BytecodeInstr *const code = fn.code.data();
    const Value *const constants = fn.constants.data();
    Value *const R = regs.data();
    bool came_from_back_edge = false;
    // Transactional context when the current run was charged — a
    // refund must come out of the same cycle bucket even if an abort
    // has flipped the context since.
    bool run_charged_tm = false;

    auto charge = [&](uint32_t amount) {
        env.acct.chargeInstructions(tier, amount);
    };
    // Batched mode: one charge covers the whole straight-line run
    // starting at `at` (base cost per op plus the static conditional
    // -branch extras; see BytecodeFunction::computeChargePlan).
    auto chargeRunFrom = [&](uint32_t at) {
        NOMAP_ASSERT(at < fn.runLen.size());
        run_charged_tm = env.acct.inTransaction();
        env.acct.chargeInstructions(
            tier, static_cast<uint64_t>(base) * fn.runLen[at] +
                      fn.runExtra[at]);
    };

    const BytecodeInstr *instr = nullptr;

    try {
        if constexpr (kBatched)
            chargeRunFrom(pc);

#if defined(NOMAP_COMPUTED_GOTO)
        static const void *const kDispatch[] = {
#define NOMAP_BYTECODE_OP_LABEL(name) &&lbl_##name,
            NOMAP_BYTECODE_OP_LIST(NOMAP_BYTECODE_OP_LABEL)
#undef NOMAP_BYTECODE_OP_LABEL
        };
        static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                      kNumOpcodes);
#endif

    vm_top:
        // No bounds check here: computeChargePlan validated once that
        // every jump target is in range and the function cannot fall
        // off the end of its code.
        instr = &code[pc];
        // Per-op mode pays the tier base cost here, every op; batched
        // mode already paid it as part of the run charge.
        if constexpr (!kBatched)
            charge(base);

#if defined(NOMAP_COMPUTED_GOTO)
        goto *kDispatch[static_cast<size_t>(instr->op)];
#else
        switch (instr->op)
#endif
        {
          VM_CASE(LoadConst)
            R[instr->a] = constants[instr->imm];
            goto vm_next;

          VM_CASE(Move)
            R[instr->a] = R[instr->b];
            goto vm_next;

          VM_CASE(LoadGlobal)
            R[instr->a] = env.heap.getGlobal(instr->imm);
            env.memAccess(env.heap.globalAddr(instr->imm), false);
            goto vm_next;

          VM_CASE(StoreGlobal)
            env.heap.setGlobal(instr->imm, R[instr->b]);
            env.memAccess(env.heap.globalAddr(instr->imm), true);
            goto vm_next;

          VM_CASE(Binary)
          binary_generic: {
            Value lhs = R[instr->b];
            Value rhs = R[instr->c];
            auto op = static_cast<BinaryOp>(instr->imm);
            Value result;
            if (!interp && lhs.isInt32() && rhs.isInt32() &&
                (op == BinaryOp::Add || op == BinaryOp::Sub)) {
                // Baseline fast path: inline int32 add/sub with an
                // overflow bail to the generic helper.
                int64_t wide = op == BinaryOp::Add
                                   ? static_cast<int64_t>(lhs.asInt32()) +
                                         rhs.asInt32()
                                   : static_cast<int64_t>(lhs.asInt32()) -
                                         rhs.asInt32();
                if (wide >= INT32_MIN && wide <= INT32_MAX) {
                    result = Value::int32(static_cast<int32_t>(wide));
                    charge(2);
                    if constexpr (kQuicken) {
                        code[pc].op = op == BinaryOp::Add
                                          ? Opcode::QAddII
                                          : Opcode::QSubII;
                    }
                } else {
                    result = env.runtime.applyBinary(op, lhs, rhs);
                    env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                }
            } else {
                result = env.runtime.applyBinary(op, lhs, rhs);
                env.acct.chargeRuntime(interp
                                           ? CostModel::kRuntimeGenericOp
                                           : CostModel::kBaselineArith);
            }
            profileBinary(prof.arith[pc], lhs, rhs, result);
            R[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(QAddII) {
            // Binary Add that has gone int32 at least once: decode
            // straight to the int32 path, fall back to the full
            // generic body (with identical charging) on a miss.
            Value lhs = R[instr->b];
            Value rhs = R[instr->c];
            if (!interp && lhs.isInt32() && rhs.isInt32()) {
                int64_t wide =
                    static_cast<int64_t>(lhs.asInt32()) + rhs.asInt32();
                if (wide >= INT32_MIN && wide <= INT32_MAX) {
                    Value result =
                        Value::int32(static_cast<int32_t>(wide));
                    charge(2);
                    profileBinary(prof.arith[pc], lhs, rhs, result);
                    R[instr->a] = result;
                    goto vm_next;
                }
            }
            goto binary_generic;
          }

          VM_CASE(QSubII) {
            Value lhs = R[instr->b];
            Value rhs = R[instr->c];
            if (!interp && lhs.isInt32() && rhs.isInt32()) {
                int64_t wide =
                    static_cast<int64_t>(lhs.asInt32()) - rhs.asInt32();
                if (wide >= INT32_MIN && wide <= INT32_MAX) {
                    Value result =
                        Value::int32(static_cast<int32_t>(wide));
                    charge(2);
                    profileBinary(prof.arith[pc], lhs, rhs, result);
                    R[instr->a] = result;
                    goto vm_next;
                }
            }
            goto binary_generic;
          }

          VM_CASE(QConstCmpBranch)
            // LoadConst phase of the fused const+cmp+branch triple,
            // then chain into the pair superinstruction that the
            // static pass installed at pc+1. Mirrors vm_next between
            // the phases: advance pc, clear the back-edge flag, and
            // (per-op mode) pay the next op's base cost.
            R[instr->a] = constants[instr->imm];
            came_from_back_edge = false;
            ++pc;
            instr = &code[pc];
            if constexpr (!kBatched)
                charge(base);
            goto qcmp_branch_body;

          VM_CASE(QCmpBranch)
          qcmp_branch_body: {
            // Compare phase: the original Binary compare at this pc.
            // Identical computation, charges, and profile update;
            // int32 operands additionally skip the runtime dispatch.
            Value lhs = R[instr->b];
            Value rhs = R[instr->c];
            auto op = static_cast<BinaryOp>(instr->imm);
            Value result;
            bool truthy;
            if (lhs.isInt32() && rhs.isInt32()) {
                truthy =
                    evalIntCompare(op, lhs.asInt32(), rhs.asInt32());
                result = Value::boolean(truthy);
            } else {
                result = env.runtime.applyBinary(op, lhs, rhs);
                truthy = env.runtime.toBoolean(result);
            }
            env.acct.chargeRuntime(interp ? CostModel::kRuntimeGenericOp
                                          : CostModel::kBaselineArith);
            profileBinary(prof.arith[pc], lhs, rhs, result);
            R[instr->a] = result;

            // Branch phase: the JumpIf op still in place at pc+1.
            came_from_back_edge = false;
            ++pc;
            instr = &code[pc];
            if constexpr (!kBatched) {
                charge(base);
                charge(2);
            }
            if ((instr->op == Opcode::JumpIfTrue) == truthy) {
                if (instr->imm <= pc) {
                    came_from_back_edge = true;
                    ++prof.backEdgeCount;
                }
                pc = instr->imm;
                if constexpr (kBatched)
                    chargeRunFrom(pc);
                goto vm_top;
            }
            if constexpr (kBatched)
                chargeRunFrom(pc + 1);
            goto vm_next;
          }

          VM_CASE(Unary) {
            Value src = R[instr->b];
            Value result = env.runtime.applyUnary(
                static_cast<UnaryOp>(instr->imm), src);
            ArithProfile &ap = prof.arith[pc];
            ap.lhsMask |= valueKindMask(src.kind());
            ap.resultMask |= valueKindMask(result.kind());
            R[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(GetProp)
          getprop_generic: {
            Value base_v = R[instr->b];
            PropertyProfile &pp = prof.property[pc];
            pp.baseMask |= valueKindMask(base_v.kind());
            Addr addr = 0;
            Value result;
            if (!interp && base_v.isObject()) {
                // Baseline inline cache.
                const JsObject &obj = env.heap.object(base_v.payload());
                if (pp.shape == obj.shape && pp.slot >= 0) {
                    result = env.heap.getSlot(
                        base_v.payload(),
                        static_cast<uint32_t>(pp.slot));
                    addr = env.heap.slotAddr(
                        base_v.payload(),
                        static_cast<uint32_t>(pp.slot));
                    charge(CostModel::kBaselineIcHit);
                    if constexpr (kQuicken)
                        code[pc].op = Opcode::QGetPropMono;
                } else {
                    result = env.runtime.getPropertyGeneric(
                        base_v, instr->imm, &addr);
                    env.acct.chargeRuntime(CostModel::kBaselineIcMiss);
                    int32_t slot = env.heap.shapeTable().lookup(
                        obj.shape, instr->imm);
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    pp.shape = obj.shape;
                    pp.slot = slot;
                }
            } else {
                result = env.runtime.getPropertyGeneric(base_v,
                                                        instr->imm,
                                                        &addr);
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                if (base_v.isObject()) {
                    const JsObject &obj =
                        env.heap.object(base_v.payload());
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    pp.shape = obj.shape;
                    pp.slot = env.heap.shapeTable().lookup(obj.shape,
                                                           instr->imm);
                }
            }
            env.memAccess(addr, false);
            R[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(QGetPropMono) {
            // GetProp that has hit its monomorphic IC: decode straight
            // to the slot load, fall back to the generic body (which
            // re-profiles and repairs the IC) on any mismatch.
            Value base_v = R[instr->b];
            if (!interp && base_v.isObject()) {
                PropertyProfile &pp = prof.property[pc];
                const JsObject &obj = env.heap.object(base_v.payload());
                if (pp.shape == obj.shape && pp.slot >= 0) {
                    pp.baseMask |= valueKindMask(base_v.kind());
                    uint32_t slot = static_cast<uint32_t>(pp.slot);
                    Value result =
                        env.heap.getSlot(base_v.payload(), slot);
                    charge(CostModel::kBaselineIcHit);
                    env.memAccess(
                        env.heap.slotAddr(base_v.payload(), slot),
                        false);
                    R[instr->a] = result;
                    goto vm_next;
                }
            }
            goto getprop_generic;
          }

          VM_CASE(SetProp) {
            Value base_v = R[instr->b];
            PropertyProfile &pp = prof.property[pc];
            pp.baseMask |= valueKindMask(base_v.kind());
            Addr addr = 0;
            if (base_v.isObject()) {
                const JsObject &obj = env.heap.object(base_v.payload());
                if (!interp && pp.shape == obj.shape && pp.slot >= 0) {
                    env.heap.setSlot(base_v.payload(),
                                     static_cast<uint32_t>(pp.slot),
                                     R[instr->c]);
                    addr = env.heap.slotAddr(
                        base_v.payload(),
                        static_cast<uint32_t>(pp.slot));
                    charge(CostModel::kBaselineIcHit);
                } else {
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    env.runtime.setPropertyGeneric(base_v, instr->imm,
                                                   R[instr->c],
                                                   &addr);
                    env.acct.chargeRuntime(
                        interp ? CostModel::kRuntimePropAccess
                               : CostModel::kBaselineIcMiss);
                    const JsObject &after =
                        env.heap.object(base_v.payload());
                    pp.shape = after.shape;
                    pp.slot = env.heap.shapeTable().lookup(after.shape,
                                                           instr->imm);
                }
            } else {
                env.runtime.setPropertyGeneric(base_v, instr->imm,
                                               R[instr->c], &addr);
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
            }
            env.memAccess(addr, true);
            goto vm_next;
          }

          VM_CASE(GetIndex) {
            Value base_v = R[instr->b];
            Value index = R[instr->c];
            IndexProfile &ip = prof.index[pc];
            ip.baseMask |= valueKindMask(base_v.kind());
            ip.indexMask |= valueKindMask(index.kind());
            Addr addr = 0;
            Value result =
                env.runtime.getIndexGeneric(base_v, index, &addr);
            if (base_v.isArray() && index.isInt32()) {
                int32_t i = index.asInt32();
                uint32_t len =
                    env.heap.array(base_v.payload()).length();
                if (i < 0 || static_cast<uint32_t>(i) >= len)
                    ip.sawOutOfBounds = true;
                else if (result.isUndefined())
                    ip.sawHole = true;
            }
            ip.elemMask |= valueKindMask(result.kind());
            env.acct.chargeRuntime(interp
                                       ? CostModel::kRuntimeIndexAccess
                                       : CostModel::kBaselineIndex);
            env.memAccess(addr, false);
            R[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(SetIndex) {
            Value base_v = R[instr->a];
            Value index = R[instr->b];
            IndexProfile &ip = prof.index[pc];
            ip.baseMask |= valueKindMask(base_v.kind());
            ip.indexMask |= valueKindMask(index.kind());
            if (base_v.isArray() && index.isInt32()) {
                int32_t i = index.asInt32();
                uint32_t len =
                    env.heap.array(base_v.payload()).length();
                if (i < 0 || static_cast<uint32_t>(i) >= len)
                    ip.sawOutOfBounds = true;
            }
            Addr addr = 0;
            env.runtime.setIndexGeneric(base_v, index, R[instr->c],
                                        &addr);
            env.acct.chargeRuntime(interp
                                       ? CostModel::kRuntimeIndexAccess
                                       : CostModel::kBaselineIndex);
            env.memAccess(addr, true);
            goto vm_next;
          }

          VM_CASE(NewArray) {
            Value arr = env.heap.allocArray(instr->c);
            for (uint16_t i = 0; i < instr->c; ++i) {
                env.heap.setElementFast(arr.payload(), i,
                                        R[instr->b + i]);
            }
            env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
            R[instr->a] = arr;
            goto vm_next;
          }

          VM_CASE(NewObject) {
            Value obj = env.heap.allocObject();
            const ObjectDesc &desc = fn.objectDescs[instr->imm];
            for (uint16_t i = 0; i < instr->c; ++i) {
                env.heap.setProperty(obj.payload(), desc.nameIds[i],
                                     R[instr->b + i]);
            }
            env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
            R[instr->a] = obj;
            goto vm_next;
          }

          VM_CASE(Call) {
            env.acct.chargeRuntime(interp ? CostModel::kRuntimeGenericOp
                                          : CostModel::kBaselineCall);
            R[instr->a] = env.dispatcher.call(
                instr->imm, R + instr->b, instr->c);
            goto vm_next;
          }

          VM_CASE(CallNative) {
            auto bid = static_cast<BuiltinId>(instr->imm);
            if (bid == BuiltinId::Print)
                env.irrevocableEvent();
            env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
            R[instr->a] = env.builtins.call(
                bid, R + instr->b, instr->c);
            goto vm_next;
          }

          VM_CASE(CallMethod) {
            uint32_t name_id = instr->imm / 16;
            uint32_t nargs = instr->imm % 16;
            env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
            R[instr->a] = env.builtins.callMethod(
                R[instr->b], name_id, R + instr->c, nargs);
            goto vm_next;
          }

          VM_CASE(Jump)
            if (instr->imm <= pc) {
                came_from_back_edge = true;
                ++prof.backEdgeCount;
            }
            pc = instr->imm;
            if constexpr (kBatched)
                chargeRunFrom(pc);
            goto vm_top;

          VM_CASE(JumpIfTrue)
          VM_CASE(JumpIfFalse) {
            bool truthy = env.runtime.toBoolean(R[instr->b]);
            bool taken = (instr->op == Opcode::JumpIfTrue) == truthy;
            // The conditional-branch extra is static, so batched mode
            // folded it into the run charge (runExtra).
            if constexpr (!kBatched)
                charge(2);
            if (taken) {
                if (instr->imm <= pc) {
                    came_from_back_edge = true;
                    ++prof.backEdgeCount;
                }
                pc = instr->imm;
                if constexpr (kBatched)
                    chargeRunFrom(pc);
                goto vm_top;
            }
            // A conditional jump terminates its run either way: the
            // fall-through path starts a fresh one.
            if constexpr (kBatched)
                chargeRunFrom(pc + 1);
            goto vm_next;
          }

          VM_CASE(Return)
            return R[instr->b];

          VM_CASE(ReturnUndef)
            return Value::undefined();

          VM_CASE(LoopHeader) {
            LoopProfile &lp = prof.loops[instr->imm];
            if (!came_from_back_edge)
                ++lp.entries;
            ++lp.totalIterations;
            goto vm_next;
          }
        }

    vm_next:
        came_from_back_edge = false;
        ++pc;
        goto vm_top;
    } catch (ExecutionCancelled &) {
        // Cancellation voids the stats (the engine must be reset), and
        // the charge that threw was never applied — nothing to refund.
        throw;
    } catch (...) {
        if constexpr (kBatched) {
            // Mid-run exit (transactional abort unwinding through this
            // frame, or an abort thrown by a memory access): the ops
            // after pc in the charged run never executed. Per-op mode
            // stopped charging at pc, so take the suffix back. Fused
            // bodies advance pc between their phases, so pc is the op
            // that was executing in generic terms either way.
            if (!isRunTerminator(fn.code[pc].op) &&
                pc + 1 < fn.code.size()) {
                env.acct.refundInstructions(
                    tier,
                    static_cast<uint64_t>(base) * fn.runLen[pc + 1] +
                        fn.runExtra[pc + 1],
                    false, run_charged_tm);
            }
        }
        throw;
    }
}

#undef VM_CASE

} // namespace nomap
