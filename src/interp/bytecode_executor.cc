#include "interp/bytecode_executor.h"

#include "support/logging.h"

namespace nomap {

BytecodeExecutor::BytecodeExecutor(ExecEnv &env_, Tier tier_)
    : env(env_), tier(tier_)
{
    NOMAP_ASSERT(tier == Tier::Interpreter || tier == Tier::Baseline);
}

Value
BytecodeExecutor::run(BytecodeFunction &fn, const Value *args,
                      uint32_t nargs)
{
    std::vector<Value> regs(fn.numRegs, Value::undefined());
    for (uint32_t i = 0; i < fn.numParams; ++i)
        regs[i] = i < nargs ? args[i] : Value::undefined();
    return execute(fn, regs, 0);
}

Value
BytecodeExecutor::runFrom(BytecodeFunction &fn,
                          const std::vector<Value> &locals, uint32_t pc)
{
    std::vector<Value> regs(fn.numRegs, Value::undefined());
    for (size_t i = 0; i < locals.size() && i < regs.size(); ++i)
        regs[i] = locals[i];
    return execute(fn, regs, pc);
}

void
BytecodeExecutor::profileBinary(ArithProfile &prof, Value lhs, Value rhs,
                                Value result)
{
    prof.lhsMask |= valueKindMask(lhs.kind());
    prof.rhsMask |= valueKindMask(rhs.kind());
    prof.resultMask |= valueKindMask(result.kind());
    // Int operands producing a non-int number indicate overflow or a
    // fractional result; the IR builder uses this to decide between
    // int32 speculation (with overflow check) and double math.
    if (lhs.isInt32() && rhs.isInt32() && result.isBoxedDouble())
        prof.sawIntOverflow = true;
}

Value
BytecodeExecutor::execute(BytecodeFunction &fn, std::vector<Value> &regs,
                          uint32_t pc)
{
    const bool interp = tier == Tier::Interpreter;
    FunctionProfile &prof = fn.profile;
    bool came_from_back_edge = false;

    auto charge = [&](uint32_t amount) {
        env.acct.chargeInstructions(tier, amount);
    };

    for (;;) {
        NOMAP_ASSERT(pc < fn.code.size());
        const BytecodeInstr &instr = fn.code[pc];
        // Every op pays the tier's base cost; specific ops add more.
        charge(interp ? CostModel::kInterpDispatch
                      : CostModel::kBaselineOp);

        switch (instr.op) {
          case Opcode::LoadConst:
            regs[instr.a] = fn.constants[instr.imm];
            break;

          case Opcode::Move:
            regs[instr.a] = regs[instr.b];
            break;

          case Opcode::LoadGlobal:
            regs[instr.a] = env.heap.getGlobal(instr.imm);
            env.memAccess(env.heap.globalAddr(instr.imm), false);
            break;

          case Opcode::StoreGlobal:
            env.heap.setGlobal(instr.imm, regs[instr.b]);
            env.memAccess(env.heap.globalAddr(instr.imm), true);
            break;

          case Opcode::Binary: {
            Value lhs = regs[instr.b];
            Value rhs = regs[instr.c];
            auto op = static_cast<BinaryOp>(instr.imm);
            Value result;
            if (!interp && lhs.isInt32() && rhs.isInt32() &&
                (op == BinaryOp::Add || op == BinaryOp::Sub)) {
                // Baseline fast path: inline int32 add/sub with an
                // overflow bail to the generic helper.
                int64_t wide = op == BinaryOp::Add
                                   ? static_cast<int64_t>(lhs.asInt32()) +
                                         rhs.asInt32()
                                   : static_cast<int64_t>(lhs.asInt32()) -
                                         rhs.asInt32();
                if (wide >= INT32_MIN && wide <= INT32_MAX) {
                    result = Value::int32(static_cast<int32_t>(wide));
                    charge(2);
                } else {
                    result = env.runtime.applyBinary(op, lhs, rhs);
                    env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                }
            } else {
                result = env.runtime.applyBinary(op, lhs, rhs);
                env.acct.chargeRuntime(interp
                                           ? CostModel::kRuntimeGenericOp
                                           : CostModel::kBaselineArith);
            }
            profileBinary(prof.arith[pc], lhs, rhs, result);
            regs[instr.a] = result;
            break;
          }

          case Opcode::Unary: {
            Value src = regs[instr.b];
            Value result = env.runtime.applyUnary(
                static_cast<UnaryOp>(instr.imm), src);
            ArithProfile &ap = prof.arith[pc];
            ap.lhsMask |= valueKindMask(src.kind());
            ap.resultMask |= valueKindMask(result.kind());
            regs[instr.a] = result;
            break;
          }

          case Opcode::GetProp: {
            Value base = regs[instr.b];
            PropertyProfile &pp = prof.property[pc];
            pp.baseMask |= valueKindMask(base.kind());
            Addr addr = 0;
            Value result;
            if (!interp && base.isObject()) {
                // Baseline inline cache.
                const JsObject &obj = env.heap.object(base.payload());
                if (pp.shape == obj.shape && pp.slot >= 0) {
                    result = env.heap.getSlot(
                        base.payload(), static_cast<uint32_t>(pp.slot));
                    addr = env.heap.slotAddr(
                        base.payload(), static_cast<uint32_t>(pp.slot));
                    charge(CostModel::kBaselineIcHit);
                } else {
                    result = env.runtime.getPropertyGeneric(
                        base, instr.imm, &addr);
                    env.acct.chargeRuntime(CostModel::kBaselineIcMiss);
                    int32_t slot = env.heap.shapeTable().lookup(
                        obj.shape, instr.imm);
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    pp.shape = obj.shape;
                    pp.slot = slot;
                }
            } else {
                result = env.runtime.getPropertyGeneric(base, instr.imm,
                                                        &addr);
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                if (base.isObject()) {
                    const JsObject &obj =
                        env.heap.object(base.payload());
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    pp.shape = obj.shape;
                    pp.slot = env.heap.shapeTable().lookup(obj.shape,
                                                           instr.imm);
                }
            }
            env.memAccess(addr, false);
            regs[instr.a] = result;
            break;
          }

          case Opcode::SetProp: {
            Value base = regs[instr.b];
            PropertyProfile &pp = prof.property[pc];
            pp.baseMask |= valueKindMask(base.kind());
            Addr addr = 0;
            if (base.isObject()) {
                const JsObject &obj = env.heap.object(base.payload());
                if (!interp && pp.shape == obj.shape && pp.slot >= 0) {
                    env.heap.setSlot(base.payload(),
                                     static_cast<uint32_t>(pp.slot),
                                     regs[instr.c]);
                    addr = env.heap.slotAddr(
                        base.payload(), static_cast<uint32_t>(pp.slot));
                    charge(CostModel::kBaselineIcHit);
                } else {
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    env.runtime.setPropertyGeneric(base, instr.imm,
                                                   regs[instr.c], &addr);
                    env.acct.chargeRuntime(
                        interp ? CostModel::kRuntimePropAccess
                               : CostModel::kBaselineIcMiss);
                    const JsObject &after =
                        env.heap.object(base.payload());
                    pp.shape = after.shape;
                    pp.slot = env.heap.shapeTable().lookup(after.shape,
                                                           instr.imm);
                }
            } else {
                env.runtime.setPropertyGeneric(base, instr.imm,
                                               regs[instr.c], &addr);
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
            }
            env.memAccess(addr, true);
            break;
          }

          case Opcode::GetIndex: {
            Value base = regs[instr.b];
            Value index = regs[instr.c];
            IndexProfile &ip = prof.index[pc];
            ip.baseMask |= valueKindMask(base.kind());
            ip.indexMask |= valueKindMask(index.kind());
            Addr addr = 0;
            Value result =
                env.runtime.getIndexGeneric(base, index, &addr);
            if (base.isArray() && index.isInt32()) {
                int32_t i = index.asInt32();
                uint32_t len = env.heap.array(base.payload()).length();
                if (i < 0 || static_cast<uint32_t>(i) >= len)
                    ip.sawOutOfBounds = true;
                else if (result.isUndefined())
                    ip.sawHole = true;
            }
            ip.elemMask |= valueKindMask(result.kind());
            env.acct.chargeRuntime(interp
                                       ? CostModel::kRuntimeIndexAccess
                                       : CostModel::kBaselineIndex);
            env.memAccess(addr, false);
            regs[instr.a] = result;
            break;
          }

          case Opcode::SetIndex: {
            Value base = regs[instr.a];
            Value index = regs[instr.b];
            IndexProfile &ip = prof.index[pc];
            ip.baseMask |= valueKindMask(base.kind());
            ip.indexMask |= valueKindMask(index.kind());
            if (base.isArray() && index.isInt32()) {
                int32_t i = index.asInt32();
                uint32_t len = env.heap.array(base.payload()).length();
                if (i < 0 || static_cast<uint32_t>(i) >= len)
                    ip.sawOutOfBounds = true;
            }
            Addr addr = 0;
            env.runtime.setIndexGeneric(base, index, regs[instr.c],
                                        &addr);
            env.acct.chargeRuntime(interp
                                       ? CostModel::kRuntimeIndexAccess
                                       : CostModel::kBaselineIndex);
            env.memAccess(addr, true);
            break;
          }

          case Opcode::NewArray: {
            Value arr = env.heap.allocArray(instr.c);
            for (uint16_t i = 0; i < instr.c; ++i) {
                env.heap.setElementFast(arr.payload(), i,
                                        regs[instr.b + i]);
            }
            env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
            regs[instr.a] = arr;
            break;
          }

          case Opcode::NewObject: {
            Value obj = env.heap.allocObject();
            const ObjectDesc &desc = fn.objectDescs[instr.imm];
            for (uint16_t i = 0; i < instr.c; ++i) {
                env.heap.setProperty(obj.payload(), desc.nameIds[i],
                                     regs[instr.b + i]);
            }
            env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
            regs[instr.a] = obj;
            break;
          }

          case Opcode::Call: {
            env.acct.chargeRuntime(interp ? CostModel::kRuntimeGenericOp
                                          : CostModel::kBaselineCall);
            regs[instr.a] = env.dispatcher.call(
                instr.imm, regs.data() + instr.b, instr.c);
            break;
          }

          case Opcode::CallNative: {
            auto bid = static_cast<BuiltinId>(instr.imm);
            if (bid == BuiltinId::Print)
                env.irrevocableEvent();
            env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
            regs[instr.a] = env.builtins.call(
                bid, regs.data() + instr.b, instr.c);
            break;
          }

          case Opcode::CallMethod: {
            uint32_t name_id = instr.imm / 16;
            uint32_t nargs = instr.imm % 16;
            env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
            regs[instr.a] = env.builtins.callMethod(
                regs[instr.b], name_id, regs.data() + instr.c, nargs);
            break;
          }

          case Opcode::Jump:
            if (instr.imm <= pc) {
                came_from_back_edge = true;
                ++prof.backEdgeCount;
            }
            pc = instr.imm;
            continue;

          case Opcode::JumpIfTrue:
          case Opcode::JumpIfFalse: {
            bool truthy = env.runtime.toBoolean(regs[instr.b]);
            bool taken = (instr.op == Opcode::JumpIfTrue) == truthy;
            charge(2);
            if (taken) {
                if (instr.imm <= pc) {
                    came_from_back_edge = true;
                    ++prof.backEdgeCount;
                }
                pc = instr.imm;
                continue;
            }
            break;
          }

          case Opcode::Return:
            return regs[instr.b];

          case Opcode::ReturnUndef:
            return Value::undefined();

          case Opcode::LoopHeader: {
            LoopProfile &lp = prof.loops[instr.imm];
            if (!came_from_back_edge)
                ++lp.entries;
            ++lp.totalIterations;
            break;
          }
        }
        came_from_back_edge = false;
        ++pc;
    }
}

} // namespace nomap
