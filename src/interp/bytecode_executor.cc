#include "interp/bytecode_executor.h"

#include "support/logging.h"

/**
 * Dispatch strategy. With NOMAP_COMPUTED_GOTO (set by CMake when the
 * compiler supports GNU labels-as-values) each op body ends in an
 * indirect jump through a per-opcode label table — the classic
 * direct-threaded interpreter, which gives the branch predictor one
 * indirect-branch site per opcode instead of a single shared one.
 * Without it, the same bodies compile as a portable switch.
 *
 * Both variants share one skeleton: VM_CASE opens an op body,
 * `goto vm_next` advances to the next pc, and jump ops go straight to
 * vm_top after retargeting pc (vm_next also clears the back-edge
 * flag, so jumps must bypass it — exactly the seed loop's continue).
 */
#if defined(NOMAP_COMPUTED_GOTO)
#define VM_CASE(name) lbl_##name:
#else
#define VM_CASE(name) case Opcode::name:
#endif

namespace nomap {

BytecodeExecutor::BytecodeExecutor(ExecEnv &env_, Tier tier_)
    : env(env_), tier(tier_)
{
    NOMAP_ASSERT(tier == Tier::Interpreter || tier == Tier::Baseline);
}

Value
BytecodeExecutor::run(BytecodeFunction &fn, const Value *args,
                      uint32_t nargs)
{
    std::vector<Value> regs(fn.numRegs, Value::undefined());
    for (uint32_t i = 0; i < fn.numParams; ++i)
        regs[i] = i < nargs ? args[i] : Value::undefined();
    return execute(fn, regs, 0);
}

Value
BytecodeExecutor::runFrom(BytecodeFunction &fn,
                          const std::vector<Value> &locals, uint32_t pc)
{
    std::vector<Value> regs(fn.numRegs, Value::undefined());
    for (size_t i = 0; i < locals.size() && i < regs.size(); ++i)
        regs[i] = locals[i];
    return execute(fn, regs, pc);
}

void
BytecodeExecutor::profileBinary(ArithProfile &prof, Value lhs, Value rhs,
                                Value result)
{
    prof.lhsMask |= valueKindMask(lhs.kind());
    prof.rhsMask |= valueKindMask(rhs.kind());
    prof.resultMask |= valueKindMask(result.kind());
    // Int operands producing a non-int number indicate overflow or a
    // fractional result; the IR builder uses this to decide between
    // int32 speculation (with overflow check) and double math.
    if (lhs.isInt32() && rhs.isInt32() && result.isBoxedDouble())
        prof.sawIntOverflow = true;
}

Value
BytecodeExecutor::execute(BytecodeFunction &fn, std::vector<Value> &regs,
                          uint32_t pc)
{
    // Hand-built functions in tests never go through the compiler;
    // build their charge plan on first execution.
    if (fn.runLen.size() != fn.code.size())
        fn.computeChargePlan();
    return env.perOpAccounting ? executeImpl<false>(fn, regs, pc)
                               : executeImpl<true>(fn, regs, pc);
}

template <bool kBatched>
Value
BytecodeExecutor::executeImpl(BytecodeFunction &fn,
                              std::vector<Value> &regs, uint32_t pc)
{
    const bool interp = tier == Tier::Interpreter;
    const uint32_t base = interp ? CostModel::kInterpDispatch
                                 : CostModel::kBaselineOp;
    FunctionProfile &prof = fn.profile;
    bool came_from_back_edge = false;
    // Transactional context when the current run was charged — a
    // refund must come out of the same cycle bucket even if an abort
    // has flipped the context since.
    bool run_charged_tm = false;

    auto charge = [&](uint32_t amount) {
        env.acct.chargeInstructions(tier, amount);
    };
    // Batched mode: one charge covers the whole straight-line run
    // starting at `at` (base cost per op plus the static conditional
    // -branch extras; see BytecodeFunction::computeChargePlan).
    auto chargeRunFrom = [&](uint32_t at) {
        NOMAP_ASSERT(at < fn.runLen.size());
        run_charged_tm = env.acct.inTransaction();
        env.acct.chargeInstructions(
            tier, static_cast<uint64_t>(base) * fn.runLen[at] +
                      fn.runExtra[at]);
    };

    const BytecodeInstr *instr = nullptr;

    try {
        if constexpr (kBatched)
            chargeRunFrom(pc);

#if defined(NOMAP_COMPUTED_GOTO)
        static const void *const kDispatch[] = {
#define NOMAP_BYTECODE_OP_LABEL(name) &&lbl_##name,
            NOMAP_BYTECODE_OP_LIST(NOMAP_BYTECODE_OP_LABEL)
#undef NOMAP_BYTECODE_OP_LABEL
        };
        static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                      kNumOpcodes);
#endif

    vm_top:
        NOMAP_ASSERT(pc < fn.code.size());
        instr = &fn.code[pc];
        // Per-op mode pays the tier base cost here, every op; batched
        // mode already paid it as part of the run charge.
        if constexpr (!kBatched)
            charge(base);

#if defined(NOMAP_COMPUTED_GOTO)
        goto *kDispatch[static_cast<size_t>(instr->op)];
#else
        switch (instr->op)
#endif
        {
          VM_CASE(LoadConst)
            regs[instr->a] = fn.constants[instr->imm];
            goto vm_next;

          VM_CASE(Move)
            regs[instr->a] = regs[instr->b];
            goto vm_next;

          VM_CASE(LoadGlobal)
            regs[instr->a] = env.heap.getGlobal(instr->imm);
            env.memAccess(env.heap.globalAddr(instr->imm), false);
            goto vm_next;

          VM_CASE(StoreGlobal)
            env.heap.setGlobal(instr->imm, regs[instr->b]);
            env.memAccess(env.heap.globalAddr(instr->imm), true);
            goto vm_next;

          VM_CASE(Binary) {
            Value lhs = regs[instr->b];
            Value rhs = regs[instr->c];
            auto op = static_cast<BinaryOp>(instr->imm);
            Value result;
            if (!interp && lhs.isInt32() && rhs.isInt32() &&
                (op == BinaryOp::Add || op == BinaryOp::Sub)) {
                // Baseline fast path: inline int32 add/sub with an
                // overflow bail to the generic helper.
                int64_t wide = op == BinaryOp::Add
                                   ? static_cast<int64_t>(lhs.asInt32()) +
                                         rhs.asInt32()
                                   : static_cast<int64_t>(lhs.asInt32()) -
                                         rhs.asInt32();
                if (wide >= INT32_MIN && wide <= INT32_MAX) {
                    result = Value::int32(static_cast<int32_t>(wide));
                    charge(2);
                } else {
                    result = env.runtime.applyBinary(op, lhs, rhs);
                    env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                }
            } else {
                result = env.runtime.applyBinary(op, lhs, rhs);
                env.acct.chargeRuntime(interp
                                           ? CostModel::kRuntimeGenericOp
                                           : CostModel::kBaselineArith);
            }
            profileBinary(prof.arith[pc], lhs, rhs, result);
            regs[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(Unary) {
            Value src = regs[instr->b];
            Value result = env.runtime.applyUnary(
                static_cast<UnaryOp>(instr->imm), src);
            ArithProfile &ap = prof.arith[pc];
            ap.lhsMask |= valueKindMask(src.kind());
            ap.resultMask |= valueKindMask(result.kind());
            regs[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(GetProp) {
            Value base_v = regs[instr->b];
            PropertyProfile &pp = prof.property[pc];
            pp.baseMask |= valueKindMask(base_v.kind());
            Addr addr = 0;
            Value result;
            if (!interp && base_v.isObject()) {
                // Baseline inline cache.
                const JsObject &obj = env.heap.object(base_v.payload());
                if (pp.shape == obj.shape && pp.slot >= 0) {
                    result = env.heap.getSlot(
                        base_v.payload(),
                        static_cast<uint32_t>(pp.slot));
                    addr = env.heap.slotAddr(
                        base_v.payload(),
                        static_cast<uint32_t>(pp.slot));
                    charge(CostModel::kBaselineIcHit);
                } else {
                    result = env.runtime.getPropertyGeneric(
                        base_v, instr->imm, &addr);
                    env.acct.chargeRuntime(CostModel::kBaselineIcMiss);
                    int32_t slot = env.heap.shapeTable().lookup(
                        obj.shape, instr->imm);
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    pp.shape = obj.shape;
                    pp.slot = slot;
                }
            } else {
                result = env.runtime.getPropertyGeneric(base_v,
                                                        instr->imm,
                                                        &addr);
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                if (base_v.isObject()) {
                    const JsObject &obj =
                        env.heap.object(base_v.payload());
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    pp.shape = obj.shape;
                    pp.slot = env.heap.shapeTable().lookup(obj.shape,
                                                           instr->imm);
                }
            }
            env.memAccess(addr, false);
            regs[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(SetProp) {
            Value base_v = regs[instr->b];
            PropertyProfile &pp = prof.property[pc];
            pp.baseMask |= valueKindMask(base_v.kind());
            Addr addr = 0;
            if (base_v.isObject()) {
                const JsObject &obj = env.heap.object(base_v.payload());
                if (!interp && pp.shape == obj.shape && pp.slot >= 0) {
                    env.heap.setSlot(base_v.payload(),
                                     static_cast<uint32_t>(pp.slot),
                                     regs[instr->c]);
                    addr = env.heap.slotAddr(
                        base_v.payload(),
                        static_cast<uint32_t>(pp.slot));
                    charge(CostModel::kBaselineIcHit);
                } else {
                    if (pp.shape != kInvalidShape &&
                        pp.shape != obj.shape) {
                        pp.polymorphic = true;
                    }
                    env.runtime.setPropertyGeneric(base_v, instr->imm,
                                                   regs[instr->c],
                                                   &addr);
                    env.acct.chargeRuntime(
                        interp ? CostModel::kRuntimePropAccess
                               : CostModel::kBaselineIcMiss);
                    const JsObject &after =
                        env.heap.object(base_v.payload());
                    pp.shape = after.shape;
                    pp.slot = env.heap.shapeTable().lookup(after.shape,
                                                           instr->imm);
                }
            } else {
                env.runtime.setPropertyGeneric(base_v, instr->imm,
                                               regs[instr->c], &addr);
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
            }
            env.memAccess(addr, true);
            goto vm_next;
          }

          VM_CASE(GetIndex) {
            Value base_v = regs[instr->b];
            Value index = regs[instr->c];
            IndexProfile &ip = prof.index[pc];
            ip.baseMask |= valueKindMask(base_v.kind());
            ip.indexMask |= valueKindMask(index.kind());
            Addr addr = 0;
            Value result =
                env.runtime.getIndexGeneric(base_v, index, &addr);
            if (base_v.isArray() && index.isInt32()) {
                int32_t i = index.asInt32();
                uint32_t len =
                    env.heap.array(base_v.payload()).length();
                if (i < 0 || static_cast<uint32_t>(i) >= len)
                    ip.sawOutOfBounds = true;
                else if (result.isUndefined())
                    ip.sawHole = true;
            }
            ip.elemMask |= valueKindMask(result.kind());
            env.acct.chargeRuntime(interp
                                       ? CostModel::kRuntimeIndexAccess
                                       : CostModel::kBaselineIndex);
            env.memAccess(addr, false);
            regs[instr->a] = result;
            goto vm_next;
          }

          VM_CASE(SetIndex) {
            Value base_v = regs[instr->a];
            Value index = regs[instr->b];
            IndexProfile &ip = prof.index[pc];
            ip.baseMask |= valueKindMask(base_v.kind());
            ip.indexMask |= valueKindMask(index.kind());
            if (base_v.isArray() && index.isInt32()) {
                int32_t i = index.asInt32();
                uint32_t len =
                    env.heap.array(base_v.payload()).length();
                if (i < 0 || static_cast<uint32_t>(i) >= len)
                    ip.sawOutOfBounds = true;
            }
            Addr addr = 0;
            env.runtime.setIndexGeneric(base_v, index, regs[instr->c],
                                        &addr);
            env.acct.chargeRuntime(interp
                                       ? CostModel::kRuntimeIndexAccess
                                       : CostModel::kBaselineIndex);
            env.memAccess(addr, true);
            goto vm_next;
          }

          VM_CASE(NewArray) {
            Value arr = env.heap.allocArray(instr->c);
            for (uint16_t i = 0; i < instr->c; ++i) {
                env.heap.setElementFast(arr.payload(), i,
                                        regs[instr->b + i]);
            }
            env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
            regs[instr->a] = arr;
            goto vm_next;
          }

          VM_CASE(NewObject) {
            Value obj = env.heap.allocObject();
            const ObjectDesc &desc = fn.objectDescs[instr->imm];
            for (uint16_t i = 0; i < instr->c; ++i) {
                env.heap.setProperty(obj.payload(), desc.nameIds[i],
                                     regs[instr->b + i]);
            }
            env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
            regs[instr->a] = obj;
            goto vm_next;
          }

          VM_CASE(Call) {
            env.acct.chargeRuntime(interp ? CostModel::kRuntimeGenericOp
                                          : CostModel::kBaselineCall);
            regs[instr->a] = env.dispatcher.call(
                instr->imm, regs.data() + instr->b, instr->c);
            goto vm_next;
          }

          VM_CASE(CallNative) {
            auto bid = static_cast<BuiltinId>(instr->imm);
            if (bid == BuiltinId::Print)
                env.irrevocableEvent();
            env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
            regs[instr->a] = env.builtins.call(
                bid, regs.data() + instr->b, instr->c);
            goto vm_next;
          }

          VM_CASE(CallMethod) {
            uint32_t name_id = instr->imm / 16;
            uint32_t nargs = instr->imm % 16;
            env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
            regs[instr->a] = env.builtins.callMethod(
                regs[instr->b], name_id, regs.data() + instr->c, nargs);
            goto vm_next;
          }

          VM_CASE(Jump)
            if (instr->imm <= pc) {
                came_from_back_edge = true;
                ++prof.backEdgeCount;
            }
            pc = instr->imm;
            if constexpr (kBatched)
                chargeRunFrom(pc);
            goto vm_top;

          VM_CASE(JumpIfTrue)
          VM_CASE(JumpIfFalse) {
            bool truthy = env.runtime.toBoolean(regs[instr->b]);
            bool taken = (instr->op == Opcode::JumpIfTrue) == truthy;
            // The conditional-branch extra is static, so batched mode
            // folded it into the run charge (runExtra).
            if constexpr (!kBatched)
                charge(2);
            if (taken) {
                if (instr->imm <= pc) {
                    came_from_back_edge = true;
                    ++prof.backEdgeCount;
                }
                pc = instr->imm;
                if constexpr (kBatched)
                    chargeRunFrom(pc);
                goto vm_top;
            }
            // A conditional jump terminates its run either way: the
            // fall-through path starts a fresh one.
            if constexpr (kBatched)
                chargeRunFrom(pc + 1);
            goto vm_next;
          }

          VM_CASE(Return)
            return regs[instr->b];

          VM_CASE(ReturnUndef)
            return Value::undefined();

          VM_CASE(LoopHeader) {
            LoopProfile &lp = prof.loops[instr->imm];
            if (!came_from_back_edge)
                ++lp.entries;
            ++lp.totalIterations;
            goto vm_next;
          }
        }

    vm_next:
        came_from_back_edge = false;
        ++pc;
        goto vm_top;
    } catch (ExecutionCancelled &) {
        // Cancellation voids the stats (the engine must be reset), and
        // the charge that threw was never applied — nothing to refund.
        throw;
    } catch (...) {
        if constexpr (kBatched) {
            // Mid-run exit (transactional abort unwinding through this
            // frame, or an abort thrown by a memory access): the ops
            // after pc in the charged run never executed. Per-op mode
            // stopped charging at pc, so take the suffix back.
            if (!isRunTerminator(fn.code[pc].op) &&
                pc + 1 < fn.code.size()) {
                env.acct.refundInstructions(
                    tier,
                    static_cast<uint64_t>(base) * fn.runLen[pc + 1] +
                        fn.runExtra[pc + 1],
                    false, run_charged_tm);
            }
        }
        throw;
    }
}

#undef VM_CASE

} // namespace nomap
