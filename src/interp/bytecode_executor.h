#ifndef NOMAP_INTERP_BYTECODE_EXECUTOR_H
#define NOMAP_INTERP_BYTECODE_EXECUTOR_H

/**
 * @file
 * Tier 0 (Interpreter) and Tier 1 (Baseline) executor.
 *
 * Both tiers execute the same register bytecode; they differ in the
 * per-operation instruction cost (the interpreter pays dispatch and
 * boxing overhead on every op) and in property access: the Baseline
 * tier uses monomorphic inline caches seeded by the shared profile,
 * the Interpreter always takes the generic runtime path.
 *
 * Both tiers collect type feedback into FunctionProfile — that
 * feedback is what the DFG/FTL IR builder speculates on (and what
 * each FTL check guards).
 *
 * The executor also serves as the OSR-exit landing pad: runFrom()
 * resumes execution at an arbitrary bytecode pc with a materialized
 * register file, which is exactly what a deoptimizing SMP (or an
 * aborting NoMap transaction) transfers to.
 */

#include <vector>

#include "bytecode/compiler.h"
#include "interp/exec_env.h"

namespace nomap {

/** Executes bytecode in Interpreter or Baseline mode. */
class BytecodeExecutor
{
  public:
    BytecodeExecutor(ExecEnv &env, Tier tier);

    /** Normal call entry. */
    Value run(BytecodeFunction &fn, const Value *args, uint32_t nargs);

    /**
     * OSR entry: resume at @p pc with the given locals (registers
     * [0, numLocals) of the frame; temporaries start undefined).
     */
    Value runFrom(BytecodeFunction &fn, const std::vector<Value> &locals,
                  uint32_t pc);

  private:
    Value execute(BytecodeFunction &fn, std::vector<Value> &regs,
                  uint32_t pc);

    /**
     * The dispatch loop. kBatched selects the accounting strategy:
     * true charges each straight-line run's static cost once on run
     * entry (refunding the unexecuted suffix on an early exit), false
     * charges every op individually. Both must produce bit-identical
     * ExecutionStats; the differential accounting test enforces it.
     */
    template <bool kBatched>
    Value executeImpl(BytecodeFunction &fn, std::vector<Value> &regs,
                      uint32_t pc);

    void profileBinary(ArithProfile &prof, Value lhs, Value rhs,
                       Value result);

    ExecEnv &env;
    Tier tier;
};

} // namespace nomap

#endif // NOMAP_INTERP_BYTECODE_EXECUTOR_H
