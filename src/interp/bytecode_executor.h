#ifndef NOMAP_INTERP_BYTECODE_EXECUTOR_H
#define NOMAP_INTERP_BYTECODE_EXECUTOR_H

/**
 * @file
 * Tier 0 (Interpreter) and Tier 1 (Baseline) executor.
 *
 * Both tiers execute the same register bytecode; they differ in the
 * per-operation instruction cost (the interpreter pays dispatch and
 * boxing overhead on every op) and in property access: the Baseline
 * tier uses monomorphic inline caches seeded by the shared profile,
 * the Interpreter always takes the generic runtime path.
 *
 * Both tiers collect type feedback into FunctionProfile — that
 * feedback is what the DFG/FTL IR builder speculates on (and what
 * each FTL check guards).
 *
 * The executor also serves as the OSR-exit landing pad: runFrom()
 * resumes execution at an arbitrary bytecode pc with a materialized
 * register file, which is exactly what a deoptimizing SMP (or an
 * aborting NoMap transaction) transfers to.
 *
 * The dispatch loop is multi-versioned over a compile-time feature
 * mask (see kFeat* below) selected once per call, so the common
 * configuration — batched accounting, quickening on — runs a loop
 * with zero feature checks compiled into it.
 */

#include <vector>

#include "bytecode/compiler.h"
#include "interp/exec_env.h"

namespace nomap {

/** Executes bytecode in Interpreter or Baseline mode. */
class BytecodeExecutor
{
  public:
    BytecodeExecutor(ExecEnv &env, Tier tier);

    /** Normal call entry. */
    Value run(BytecodeFunction &fn, const Value *args, uint32_t nargs);

    /**
     * OSR entry: resume at @p pc with the given locals (registers
     * [0, numLocals) of the frame; temporaries start undefined).
     */
    Value runFrom(BytecodeFunction &fn, const std::vector<Value> &locals,
                  uint32_t pc);

  private:
    /**
     * Feature mask bits for executeImpl. Each combination compiles a
     * separate copy of the dispatch loop, so a disabled feature costs
     * nothing — not even a predicted branch.
     */
    static constexpr unsigned kFeatBatched = 1u; ///< Batched accounting.
    static constexpr unsigned kFeatQuicken = 2u; ///< Rewrite warm ops.

    Value execute(BytecodeFunction &fn, std::vector<Value> &regs,
                  uint32_t pc);

    /**
     * The dispatch loop. kFeat & kFeatBatched selects the accounting
     * strategy: set charges each straight-line run's static cost once
     * on run entry (refunding the unexecuted suffix on an early exit),
     * clear charges every op individually. kFeat & kFeatQuicken
     * enables in-place rewriting of generic ops to their quickened
     * forms as feedback warms up. Every variant must produce
     * bit-identical results, ExecutionStats, and traces; the
     * differential accounting and quickening tests enforce it.
     */
    template <unsigned kFeat>
    Value executeImpl(BytecodeFunction &fn, std::vector<Value> &regs,
                      uint32_t pc);

    /**
     * One-shot superinstruction fusion over a function's code:
     * rewrites compare+branch pairs to QCmpBranch and
     * const+compare+branch triples to QConstCmpBranch, in place. All
     * constituent ops keep their pc and operands, so jump targets,
     * profiles, and charge plans are untouched.
     */
    static void quickenStatic(BytecodeFunction &fn);

    void profileBinary(ArithProfile &prof, Value lhs, Value rhs,
                       Value result);

    ExecEnv &env;
    Tier tier;
};

} // namespace nomap

#endif // NOMAP_INTERP_BYTECODE_EXECUTOR_H
