#ifndef NOMAP_INTERP_EXEC_ENV_H
#define NOMAP_INTERP_EXEC_ENV_H

/**
 * @file
 * Shared execution environment threaded through all tier executors.
 *
 * Bundles the VM state (heap, runtime, builtins), the hardware models
 * (HTM manager, cache hierarchy), the accounting context, and the
 * call dispatcher that routes calls to the tier chosen by the engine's
 * tiering policy. Every executor shares one ExecEnv per engine —
 * interpreter/Baseline, the FTL IrExecutor, and the region template
 * tier (src/jit/JitExecutor) — which is what makes their guest
 * observables comparable bit for bit in the differential tests.
 */

#include <vector>

#include "engine/accounting.h"
#include "htm/transaction.h"
#include "memsim/hierarchy.h"
#include "vm/builtins.h"
#include "vm/heap.h"
#include "vm/runtime.h"

namespace nomap {

struct CompiledProgram;

/**
 * Routes function calls through the engine so each call runs in the
 * callee's current best tier (and counts toward its hotness).
 */
class CallDispatcher
{
  public:
    virtual ~CallDispatcher() = default;

    /** Invoke function @p func_id with @p nargs arguments. */
    virtual Value call(uint32_t func_id, const Value *args,
                       uint32_t nargs) = 0;
};

/** Everything an executor needs, by reference. */
struct ExecEnv {
    Heap &heap;
    Runtime &runtime;
    Builtins &builtins;
    TransactionManager &htm;
    MemHierarchy &mem;
    Accounting &acct;
    CallDispatcher &dispatcher;
    /** Set by the engine once the program is compiled. */
    CompiledProgram *program = nullptr;
    /** Armed fault injector, or nullptr (the common case). */
    FaultInjector *inj = nullptr;
    /** Trace sink, or nullptr when tracing is disabled. */
    TraceBuffer *trace = nullptr;
    /** Per-operation (reference) instead of batched accounting. */
    bool perOpAccounting = false;
    /** Rewrite warm bytecode to quickened forms (EngineConfig). */
    bool quickening = true;
    /**
     * Recycled register-file storage for FrameLease: guest calls are
     * frequent and frames come in a handful of sizes, so executors
     * reuse vectors instead of paying a heap allocation per call.
     * Purely host-side — guest-visible behaviour is unchanged.
     */
    std::vector<std::vector<Value>> framePool{};
    /** Recycled overflow-flag storage (FlagLease; see framePool). */
    std::vector<std::vector<uint8_t>> flagPool{};

    /**
     * Model one data-memory access: cache timing, SW pinning for
     * transactional stores, and RTM read-set tracking / read latency
     * penalty. Write-set tracking happens centrally in the Heap.
     *
     * @param addr Byte address (0 = no memory touched; ignored).
     * @param is_write True for stores.
     */
    void
    memAccess(Addr addr, bool is_write)
    {
        if (addr == 0)
            return;
        // Shared-heap regions collect their read footprint here: this
        // is the one point every modeled data access funnels through.
        // (Writes also funnel through Heap::recordTxWrite, which
        // catches builtin mutations that bypass memAccess.) Outside a
        // session this is a single predictable branch.
        if (heap.sessionActive())
            heap.noteSessionAccess(addr, is_write);
        bool in_tx = htm.inTransaction();
        uint32_t lat = mem.access(addr, is_write, is_write && in_tx);
        if (in_tx) {
            if (!is_write) {
                if (!htm.recordRead(addr))
                    throw TxAbortUnwind{AbortCode::Capacity};
                acct.chargeCycles((htm.readLatencyFactor() - 1.0) *
                                  static_cast<double>(lat));
            }
        }
        acct.chargeMemLatency(lat, mem.latency().l1Hit);
    }

    /**
     * Guard an irrevocable action (I/O). Inside a transaction this
     * aborts and unwinds to the transaction owner, which re-executes
     * non-transactionally in the Baseline tier.
     */
    void
    irrevocableEvent()
    {
        if (htm.inTransaction()) {
            acct.chargeCycles(htm.abort(AbortCode::Irrevocable));
            throw TxAbortUnwind{AbortCode::Irrevocable};
        }
    }
};

/**
 * RAII lease of a register file from ExecEnv::framePool. Acquires a
 * recycled vector (or a fresh one), sizes it to @p n slots of
 * undefined, and returns it to the pool on scope exit — including
 * exceptional unwinds, so aborts and deopts recycle frames too.
 */
class FrameLease
{
  public:
    FrameLease(ExecEnv &env, size_t n) : envRef(env)
    {
        if (!env.framePool.empty()) {
            frame = std::move(env.framePool.back());
            env.framePool.pop_back();
        }
        frame.assign(n, Value::undefined());
    }

    ~FrameLease() { envRef.framePool.push_back(std::move(frame)); }

    FrameLease(const FrameLease &) = delete;
    FrameLease &operator=(const FrameLease &) = delete;

    std::vector<Value> &regs() { return frame; }

  private:
    ExecEnv &envRef;
    std::vector<Value> frame;
};

/**
 * FrameLease's sibling for the IR executor's overflow-flag array:
 * leases a zero-filled byte vector from ExecEnv::flagPool and returns
 * it on scope exit.
 */
class FlagLease
{
  public:
    FlagLease(ExecEnv &env, size_t n) : envRef(env)
    {
        if (!env.flagPool.empty()) {
            store = std::move(env.flagPool.back());
            env.flagPool.pop_back();
        }
        store.assign(n, 0);
    }

    ~FlagLease() { envRef.flagPool.push_back(std::move(store)); }

    FlagLease(const FlagLease &) = delete;
    FlagLease &operator=(const FlagLease &) = delete;

    std::vector<uint8_t> &flags() { return store; }

  private:
    ExecEnv &envRef;
    std::vector<uint8_t> store;
};

} // namespace nomap

#endif // NOMAP_INTERP_EXEC_ENV_H
