#include "ir/builder.h"

#include <unordered_map>

#include "vm/builtins.h"

#include "support/logging.h"

namespace nomap {

namespace {

constexpr uint16_t kNumericMask = kMaskInt32 | kMaskDouble;

/** Incremental builder state. */
class IrBuilder
{
  public:
    IrBuilder(const BytecodeFunction &fn_, Heap &heap_, Tier tier_)
        : fn(fn_), heap(heap_), tier(tier_),
          lengthNameId(heap_.stringTable().intern("length"))
    {
    }

    IrFunction
    build()
    {
        out.funcId = fn.funcId;
        out.tier = tier;
        out.bytecodeRegs = fn.numRegs;
        out.numRegs = fn.numRegs;
        out.constants = fn.constants;

        findLeaders();
        createBlocks();
        translateAll();
        linkPreds();
        out.verify();
        return std::move(out);
    }

  private:
    // ---- CFG construction -------------------------------------------------
    void
    findLeaders()
    {
        isLeader.assign(fn.code.size(), false);
        isLeader[0] = true;
        for (size_t pc = 0; pc < fn.code.size(); ++pc) {
            const BytecodeInstr &instr = fn.code[pc];
            // Decode through genericOpcodeOf: a warm function may have
            // been quickened by the bytecode executor before tiering
            // up, and fusion keeps every constituent op in place with
            // operands intact, so the generic mapping recovers the
            // original instruction stream exactly.
            switch (genericOpcodeOf(instr.op)) {
              case Opcode::Jump:
                isLeader[instr.imm] = true;
                if (pc + 1 < fn.code.size())
                    isLeader[pc + 1] = true;
                break;
              case Opcode::JumpIfTrue:
              case Opcode::JumpIfFalse:
                isLeader[instr.imm] = true;
                if (pc + 1 < fn.code.size())
                    isLeader[pc + 1] = true;
                break;
              case Opcode::Return:
              case Opcode::ReturnUndef:
                if (pc + 1 < fn.code.size())
                    isLeader[pc + 1] = true;
                break;
              case Opcode::LoopHeader:
                isLeader[pc] = true;
                break;
              default:
                break;
            }
        }
    }

    void
    createBlocks()
    {
        blockOfPc.assign(fn.code.size(), 0);
        uint32_t current = 0;
        for (size_t pc = 0; pc < fn.code.size(); ++pc) {
            if (isLeader[pc]) {
                current = static_cast<uint32_t>(out.blocks.size());
                out.blocks.emplace_back();
                out.blocks.back().firstPc = static_cast<uint32_t>(pc);
                if (fn.code[pc].op == Opcode::LoopHeader) {
                    out.blocks.back().loopId =
                        static_cast<int32_t>(fn.code[pc].imm);
                }
            }
            blockOfPc[pc] = current;
        }
    }

    void
    linkPreds()
    {
        for (size_t bi = 0; bi < out.blocks.size(); ++bi) {
            for (uint32_t succ : out.blocks[bi].succs) {
                out.blocks[succ].preds.push_back(
                    static_cast<uint32_t>(bi));
            }
        }
    }

    // ---- Emission helpers ---------------------------------------------------
    IrInstr &
    emit(IrOp op, uint16_t dst = 0, uint16_t a = 0, uint16_t b = 0,
         uint16_t c = 0, uint32_t imm = 0)
    {
        IrInstr instr;
        instr.op = op;
        instr.dst = dst;
        instr.a = a;
        instr.b = b;
        instr.c = c;
        instr.imm = imm;
        curBlock->instrs.push_back(instr);
        return curBlock->instrs.back();
    }

    IrInstr &
    emitCheck(IrOp op, uint16_t a, uint32_t pc, uint16_t b = 0,
              uint32_t imm = 0)
    {
        IrInstr &instr = emit(op, 0, a, b, 0, imm);
        instr.smpPc = pc;
        return instr;
    }

    void
    terminate()
    {
        if (!curBlock->instrs.empty()) {
            IrOp last = curBlock->instrs.back().op;
            if (last == IrOp::Jump || last == IrOp::Branch ||
                last == IrOp::Return || last == IrOp::ReturnUndef) {
                return;
            }
        }
        // Fall through to the next block.
        uint32_t next = curBlockIdx + 1;
        NOMAP_ASSERT(next < out.blocks.size());
        IrInstr &jump = emit(IrOp::Jump);
        jump.imm = next;
        curBlock->succs.push_back(next);
    }

    // ---- Speculation decisions ------------------------------------------
    /**
     * Emit the checked int32 unboxing of @p reg unless it is already
     * proven int32 within this bytecode op sequence.
     */
    void
    speculateInt32(uint16_t reg, uint32_t pc)
    {
        emitCheck(IrOp::CheckInt32, reg, pc);
    }

    void
    speculateNumber(uint16_t reg, uint32_t pc)
    {
        emitCheck(IrOp::CheckNumber, reg, pc);
    }

    // ---- Translation -----------------------------------------------------
    void
    translateAll()
    {
        for (size_t pc = 0; pc < fn.code.size(); ++pc) {
            if (isLeader[pc]) {
                curBlockIdx = blockOfPc[pc];
                curBlock = &out.blocks[curBlockIdx];
            }
            translate(static_cast<uint32_t>(pc));
            // Block ends when the next pc is a leader.
            if (pc + 1 >= fn.code.size() || isLeader[pc + 1])
                terminate();
        }
    }

    void
    translate(uint32_t pc)
    {
        // Copy so quickened ops can be decoded as their generic form
        // (operands are untouched by quickening; only `op` differs).
        BytecodeInstr bc = fn.code[pc];
        bc.op = genericOpcodeOf(bc.op);
        switch (bc.op) {
          case Opcode::LoadConst:
            emit(IrOp::Const, bc.a, 0, 0, 0, bc.imm);
            break;
          case Opcode::Move:
            emit(IrOp::Move, bc.a, bc.b);
            break;
          case Opcode::LoadGlobal:
            emit(IrOp::LoadGlobal, bc.a, 0, 0, 0, bc.imm);
            break;
          case Opcode::StoreGlobal:
            emit(IrOp::StoreGlobal, 0, bc.b, 0, 0, bc.imm);
            break;
          case Opcode::Binary:
            translateBinary(pc, bc);
            break;
          case Opcode::Unary:
            translateUnary(pc, bc);
            break;
          case Opcode::GetProp:
            translateGetProp(pc, bc);
            break;
          case Opcode::SetProp:
            translateSetProp(pc, bc);
            break;
          case Opcode::GetIndex:
            translateGetIndex(pc, bc);
            break;
          case Opcode::SetIndex:
            translateSetIndex(pc, bc);
            break;
          case Opcode::NewArray:
            emit(IrOp::NewArray, bc.a, bc.b, 0, 0, bc.c);
            break;
          case Opcode::NewObject:
            emit(IrOp::NewObject, bc.a, bc.b, bc.c, 0, bc.imm);
            break;
          case Opcode::Call:
            emit(IrOp::Call, bc.a, bc.b, bc.c, 0, bc.imm);
            break;
          case Opcode::CallNative: {
            // Math builtins inline into FTL code (LLVM would lower
            // them to sqrtsd & friends); the rest stay runtime calls.
            auto bid = static_cast<BuiltinId>(bc.imm);
            bool inlinable =
                bid >= BuiltinId::MathAbs && bid <= BuiltinId::MathRound;
            emit(inlinable ? IrOp::Intrinsic : IrOp::CallNative, bc.a,
                 bc.b, bc.c, 0, bc.imm);
            break;
          }
          case Opcode::CallMethod:
            emit(IrOp::CallMethod, bc.a, bc.b, bc.c, 0, bc.imm);
            break;
          case Opcode::Jump: {
            IrInstr &jump = emit(IrOp::Jump);
            jump.imm = blockOfPc[bc.imm];
            curBlock->succs.push_back(jump.imm);
            break;
          }
          case Opcode::JumpIfTrue:
          case Opcode::JumpIfFalse: {
            uint32_t taken = blockOfPc[bc.imm];
            uint32_t fall = blockOfPc[pc + 1];
            IrInstr &branch = emit(IrOp::Branch, 0, bc.b);
            if (bc.op == Opcode::JumpIfTrue) {
                branch.imm = taken;
                branch.imm2 = fall;
            } else {
                branch.imm = fall;
                branch.imm2 = taken;
            }
            curBlock->succs.push_back(branch.imm);
            curBlock->succs.push_back(branch.imm2);
            break;
          }
          case Opcode::Return:
            emit(IrOp::Return, 0, bc.b);
            break;
          case Opcode::ReturnUndef:
            emit(IrOp::ReturnUndef);
            break;
          case Opcode::LoopHeader:
            // Structural marker only (block.loopId already set).
            break;
          case Opcode::QAddII:
          case Opcode::QSubII:
          case Opcode::QGetPropMono:
          case Opcode::QCmpBranch:
          case Opcode::QConstCmpBranch:
            // Unreachable: genericOpcodeOf above mapped these away.
            panic("quickened opcode survived genericOpcodeOf");
        }
    }

    static bool
    isCompare(BinaryOp op)
    {
        switch (op) {
          case BinaryOp::Lt:
          case BinaryOp::Le:
          case BinaryOp::Gt:
          case BinaryOp::Ge:
          case BinaryOp::Eq:
          case BinaryOp::NotEq:
          case BinaryOp::StrictEq:
          case BinaryOp::StrictNotEq:
            return true;
          default:
            return false;
        }
    }

    void
    translateBinary(uint32_t pc, const BytecodeInstr &bc)
    {
        auto op = static_cast<BinaryOp>(bc.imm);
        const ArithProfile &ap = fn.profile.arith[pc];
        bool lhs_int = ap.lhsOnly(kMaskInt32);
        bool rhs_int = ap.rhsOnly(kMaskInt32);
        bool lhs_num = ap.lhsOnly(kNumericMask);
        bool rhs_num = ap.rhsOnly(kNumericMask);

        if (isCompare(op)) {
            if (lhs_int && rhs_int) {
                speculateInt32(bc.b, pc);
                speculateInt32(bc.c, pc);
                emit(IrOp::CmpInt, bc.a, bc.b, bc.c, 0, bc.imm);
            } else if (lhs_num && rhs_num) {
                speculateNumber(bc.b, pc);
                speculateNumber(bc.c, pc);
                emit(IrOp::CmpDouble, bc.a, bc.b, bc.c, 0, bc.imm);
            } else {
                emit(IrOp::GenericBinary, bc.a, bc.b, bc.c, 0, bc.imm);
            }
            return;
        }

        switch (op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
          case BinaryOp::Mul: {
            IrOp int_op = op == BinaryOp::Add   ? IrOp::AddInt
                          : op == BinaryOp::Sub ? IrOp::SubInt
                                                : IrOp::MulInt;
            IrOp dbl_op = op == BinaryOp::Add   ? IrOp::AddDouble
                          : op == BinaryOp::Sub ? IrOp::SubDouble
                                                : IrOp::MulDouble;
            if (lhs_int && rhs_int && !ap.sawIntOverflow) {
                // Int32 speculation: the fast path the paper's
                // overflow checks guard.
                speculateInt32(bc.b, pc);
                speculateInt32(bc.c, pc);
                emit(int_op, bc.a, bc.b, bc.c);
                emitCheck(IrOp::CheckOverflow, bc.a, pc);
            } else if (lhs_num && rhs_num) {
                speculateNumber(bc.b, pc);
                speculateNumber(bc.c, pc);
                emit(dbl_op, bc.a, bc.b, bc.c);
            } else {
                emit(IrOp::GenericBinary, bc.a, bc.b, bc.c, 0, bc.imm);
            }
            break;
          }
          case BinaryOp::Div:
          case BinaryOp::Mod: {
            // Like JSC, integer division is not speculated: results
            // are fractional too often. Use double math when numeric.
            if (lhs_num && rhs_num) {
                speculateNumber(bc.b, pc);
                speculateNumber(bc.c, pc);
                emit(op == BinaryOp::Div ? IrOp::DivDouble
                                         : IrOp::ModDouble,
                     bc.a, bc.b, bc.c);
            } else {
                emit(IrOp::GenericBinary, bc.a, bc.b, bc.c, 0, bc.imm);
            }
            break;
          }
          case BinaryOp::BitAnd:
          case BinaryOp::BitOr:
          case BinaryOp::BitXor:
          case BinaryOp::Shl:
          case BinaryOp::Shr:
          case BinaryOp::UShr: {
            if (lhs_int && rhs_int) {
                speculateInt32(bc.b, pc);
                speculateInt32(bc.c, pc);
                IrOp bit_op;
                switch (op) {
                  case BinaryOp::BitAnd: bit_op = IrOp::BitAndInt; break;
                  case BinaryOp::BitOr: bit_op = IrOp::BitOrInt; break;
                  case BinaryOp::BitXor: bit_op = IrOp::BitXorInt; break;
                  case BinaryOp::Shl: bit_op = IrOp::ShlInt; break;
                  case BinaryOp::Shr: bit_op = IrOp::ShrInt; break;
                  default: bit_op = IrOp::UShrInt; break;
                }
                emit(bit_op, bc.a, bc.b, bc.c);
            } else {
                emit(IrOp::GenericBinary, bc.a, bc.b, bc.c, 0, bc.imm);
            }
            break;
          }
          default:
            emit(IrOp::GenericBinary, bc.a, bc.b, bc.c, 0, bc.imm);
            break;
        }
    }

    void
    translateUnary(uint32_t pc, const BytecodeInstr &bc)
    {
        auto op = static_cast<UnaryOp>(bc.imm);
        const ArithProfile &ap = fn.profile.arith[pc];
        bool src_int = ap.lhsOnly(kMaskInt32);
        bool src_num = ap.lhsOnly(kNumericMask);

        switch (op) {
          case UnaryOp::Neg:
            if (src_int && !ap.sawIntOverflow) {
                speculateInt32(bc.b, pc);
                emit(IrOp::NegInt, bc.a, bc.b);
                emitCheck(IrOp::CheckOverflow, bc.a, pc);
            } else if (src_num) {
                speculateNumber(bc.b, pc);
                emit(IrOp::NegDouble, bc.a, bc.b);
            } else {
                emit(IrOp::GenericUnary, bc.a, bc.b, 0, 0, bc.imm);
            }
            break;
          case UnaryOp::Plus:
            if (src_num) {
                speculateNumber(bc.b, pc);
                emit(IrOp::Move, bc.a, bc.b);
            } else {
                emit(IrOp::GenericUnary, bc.a, bc.b, 0, 0, bc.imm);
            }
            break;
          case UnaryOp::Not: {
            uint16_t tmp = out.allocTemp();
            emit(IrOp::ToBoolean, tmp, bc.b);
            emit(IrOp::NotBool, bc.a, tmp);
            break;
          }
          case UnaryOp::BitNot:
            if (src_int) {
                speculateInt32(bc.b, pc);
                emit(IrOp::BitNotInt, bc.a, bc.b);
            } else {
                emit(IrOp::GenericUnary, bc.a, bc.b, 0, 0, bc.imm);
            }
            break;
          case UnaryOp::Typeof:
            emit(IrOp::GenericUnary, bc.a, bc.b, 0, 0, bc.imm);
            break;
        }
    }

    void
    translateGetProp(uint32_t pc, const BytecodeInstr &bc)
    {
        const PropertyProfile &pp = fn.profile.property[pc];
        if (pp.baseMask == kMaskArray && bc.imm == lengthNameId) {
            emitCheck(IrOp::CheckArray, bc.b, pc);
            emit(IrOp::GetArrayLen, bc.a, bc.b);
            return;
        }
        if (pp.monomorphicObject()) {
            emitCheck(IrOp::CheckShape, bc.b, pc, 0, pp.shape);
            emit(IrOp::GetSlot, bc.a, bc.b, 0, 0,
                 static_cast<uint32_t>(pp.slot));
            return;
        }
        emit(IrOp::GenericGetProp, bc.a, bc.b, 0, 0, bc.imm);
    }

    void
    translateSetProp(uint32_t pc, const BytecodeInstr &bc)
    {
        const PropertyProfile &pp = fn.profile.property[pc];
        if (pp.monomorphicObject()) {
            emitCheck(IrOp::CheckShape, bc.b, pc, 0, pp.shape);
            emit(IrOp::SetSlot, 0, bc.b, bc.c, 0,
                 static_cast<uint32_t>(pp.slot));
            return;
        }
        emit(IrOp::GenericSetProp, 0, bc.b, bc.c, 0, bc.imm);
    }

    void
    translateGetIndex(uint32_t pc, const BytecodeInstr &bc)
    {
        const IndexProfile &ip = fn.profile.index[pc];
        bool idx_int = ip.indexMask != 0 &&
                       (ip.indexMask & ~kMaskInt32) == 0;
        if (ip.baseMask == kMaskArray && idx_int && !ip.sawOutOfBounds) {
            emitCheck(IrOp::CheckArray, bc.b, pc);
            // The bounds check subsumes the index-int check (JSC's
            // IntegerCheckCombining folds them the same way).
            emitCheck(IrOp::CheckBounds, bc.b, pc, bc.c);
            emit(IrOp::GetElem, bc.a, bc.b, bc.c);
            // Contiguous arrays may contain holes; a hole must deopt
            // so the Baseline tier can return `undefined` with full
            // semantics (paper: the most common "Other" check).
            emitCheck(IrOp::CheckNotHole, bc.a, pc);
            return;
        }
        emit(IrOp::GenericGetIndex, bc.a, bc.b, bc.c);
    }

    void
    translateSetIndex(uint32_t pc, const BytecodeInstr &bc)
    {
        const IndexProfile &ip = fn.profile.index[pc];
        bool idx_int = ip.indexMask != 0 &&
                       (ip.indexMask & ~kMaskInt32) == 0;
        if (ip.baseMask == kMaskArray && idx_int && !ip.sawOutOfBounds) {
            emitCheck(IrOp::CheckArray, bc.a, pc);
            emitCheck(IrOp::CheckBounds, bc.a, pc, bc.b);
            emit(IrOp::SetElem, 0, bc.a, bc.b, bc.c);
            return;
        }
        emit(IrOp::GenericSetIndex, 0, bc.a, bc.b, bc.c);
    }

    const BytecodeFunction &fn;
    Heap &heap;
    Tier tier;
    uint32_t lengthNameId;

    IrFunction out;
    std::vector<bool> isLeader;
    std::vector<uint32_t> blockOfPc;
    IrBlock *curBlock = nullptr;
    uint32_t curBlockIdx = 0;
};

} // namespace

IrFunction
buildIr(const BytecodeFunction &fn, Heap &heap, Tier tier)
{
    NOMAP_ASSERT(tier == Tier::Dfg || tier == Tier::Ftl);
    IrBuilder builder(fn, heap, tier);
    return builder.build();
}

} // namespace nomap
