#ifndef NOMAP_IR_BUILDER_H
#define NOMAP_IR_BUILDER_H

/**
 * @file
 * Bytecode + type feedback -> typed IR.
 *
 * The builder performs the speculation step of a real DFG/FTL
 * pipeline: wherever the profile shows a stable shape/type it emits
 * the fast typed operation guarded by exactly the checks that protect
 * the speculation, each check carrying a Stack Map Point back to the
 * bytecode pc it would deoptimize to. Where the profile is
 * polymorphic or has seen corner cases (out-of-bounds writes,
 * non-numeric operands), it conservatively emits generic runtime
 * operations, which are unoptimizable but check-free.
 */

#include "bytecode/bytecode.h"
#include "ir/ir.h"
#include "vm/heap.h"

namespace nomap {

/**
 * Build IR for @p fn at tier @p tier (Dfg or Ftl).
 *
 * @param fn      The function's bytecode + collected profile.
 * @param heap    For the string table ("length" detection).
 */
IrFunction buildIr(const BytecodeFunction &fn, Heap &heap, Tier tier);

} // namespace nomap

#endif // NOMAP_IR_BUILDER_H
