#include "ir/ir.h"

#include <cmath>
#include <sstream>

#include "support/logging.h"

namespace nomap {

CheckKind
checkKindOf(IrOp op)
{
    if (!isCheckOp(op))
        panic("checkKindOf on non-check op");
    return checkKindOfUnchecked(op);
}

bool
readsMemory(IrOp op)
{
    switch (op) {
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::GetElem:
      case IrOp::LoadGlobal:
        return true;
      default:
        return isOpaqueCall(op);
    }
}

bool
writesMemory(IrOp op)
{
    switch (op) {
      case IrOp::SetSlot:
      case IrOp::SetElem:
      case IrOp::StoreGlobal:
        return true;
      default:
        return isOpaqueCall(op);
    }
}

bool
isOpaqueCall(IrOp op)
{
    switch (op) {
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericSetProp:
      case IrOp::GenericGetIndex:
      case IrOp::GenericSetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::CallMethod:
        return true;
      default:
        return false;
    }
}

bool
isPureValueOp(IrOp op)
{
    switch (op) {
      case IrOp::Const:
      case IrOp::Move:
      case IrOp::AddInt:
      case IrOp::SubInt:
      case IrOp::MulInt:
      case IrOp::NegInt:
      case IrOp::AddDouble:
      case IrOp::SubDouble:
      case IrOp::MulDouble:
      case IrOp::DivDouble:
      case IrOp::ModDouble:
      case IrOp::NegDouble:
      case IrOp::BitAndInt:
      case IrOp::BitOrInt:
      case IrOp::BitXorInt:
      case IrOp::ShlInt:
      case IrOp::ShrInt:
      case IrOp::UShrInt:
      case IrOp::BitNotInt:
      case IrOp::CmpInt:
      case IrOp::CmpDouble:
      case IrOp::ToDouble:
      case IrOp::ToBoolean:
      case IrOp::NotBool:
        return true;
      default:
        return false;
    }
}

bool
definesDst(IrOp op)
{
    if (isPureValueOp(op))
        return true;
    switch (op) {
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::GetElem:
      case IrOp::LoadGlobal:
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericGetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::Intrinsic:
      case IrOp::CallMethod:
        return true;
      default:
        return false;
    }
}

const char *
irOpName(IrOp op)
{
    static const char *const kNames[] = {
#define NOMAP_IR_OP_NAME(name) #name,
        NOMAP_IR_OP_LIST(NOMAP_IR_OP_NAME)
#undef NOMAP_IR_OP_NAME
    };
    static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumIrOps);
    size_t i = static_cast<size_t>(op);
    return i < kNumIrOps ? kNames[i] : "?";
}

/** x86-64-equivalent instruction count for one IR op. */
uint32_t
irBaseCost(IrOp op)
{
    switch (op) {
      case IrOp::Nop: return 0;
      case IrOp::Const: return CostModel::kFtlConst;
      case IrOp::Move: return CostModel::kFtlMove;
      case IrOp::AddInt:
      case IrOp::SubInt:
      case IrOp::MulInt:
      case IrOp::NegInt:
      case IrOp::BitAndInt:
      case IrOp::BitOrInt:
      case IrOp::BitXorInt:
      case IrOp::ShlInt:
      case IrOp::ShrInt:
      case IrOp::UShrInt:
      case IrOp::BitNotInt:
        return CostModel::kFtlArith;
      case IrOp::AddDouble:
      case IrOp::SubDouble:
      case IrOp::MulDouble:
      case IrOp::DivDouble:
      case IrOp::ModDouble:
      case IrOp::NegDouble:
        return CostModel::kFtlDoubleArith;
      case IrOp::CmpInt:
      case IrOp::CmpDouble:
      case IrOp::ToDouble:
      case IrOp::ToBoolean:
      case IrOp::NotBool:
        return 1;
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckShape:
      case IrOp::CheckArray:
      case IrOp::CheckIndexInt:
      case IrOp::CheckBounds:
      case IrOp::CheckNotHole:
        return CostModel::kFtlCheck;
      case IrOp::CheckBoundsRange:
        return CostModel::kFtlCheck + 1;
      case IrOp::CheckOverflow:
        return CostModel::kFtlOverflowCheck;
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::LoadGlobal:
        return CostModel::kFtlLoad;
      case IrOp::SetSlot:
      case IrOp::StoreGlobal:
        return CostModel::kFtlStore;
      case IrOp::GetElem:
        return CostModel::kFtlLoad + 2 * CostModel::kFtlElemAddr;
      case IrOp::SetElem:
        return CostModel::kFtlStore + 2 * CostModel::kFtlElemAddr;
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericSetProp:
      case IrOp::GenericGetIndex:
      case IrOp::GenericSetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::CallMethod:
        return CostModel::kFtlCallOverhead;
      case IrOp::Intrinsic:
        return 8; // sqrtsd-class inlined sequence.
      case IrOp::Jump:
      case IrOp::Return:
      case IrOp::ReturnUndef:
        return 1;
      case IrOp::Branch:
        return 2;
      case IrOp::TxBegin: return CostModel::kFtlTxBegin;
      case IrOp::TxEnd: return CostModel::kFtlTxEnd;
      case IrOp::TxTile: return 2;
    }
    return 1;
}

void
computeChargePlan(IrFunction &fn)
{
    // The DFG executor scales every op's cost individually (lround
    // per op, then sum), so the plan must bake the scaling in per op
    // to stay bit-identical with per-op accounting.
    bool dfg = fn.tier == Tier::Dfg;
    for (IrBlock &block : fn.blocks) {
        size_t n = block.instrs.size();
        block.ownScaled.assign(n, 0);
        block.chargeFrom.assign(n, 0);
        for (size_t i = n; i-- > 0;) {
            const IrInstr &instr = block.instrs[i];
            uint32_t cost = irBaseCost(instr.op);
            uint32_t scaled =
                dfg ? static_cast<uint32_t>(
                          std::lround(cost * CostModel::kDfgFactor))
                    : cost;
            block.ownScaled[i] = scaled;
            // A tx-boundary op ends its charge segment: whatever
            // follows executes under a different transaction state
            // and must be charged separately (the Tm/NonTm cycle
            // split depends on inTransaction at charge time).
            bool segEnd = isTxBoundaryOp(instr.op) || i + 1 == n;
            block.chargeFrom[i] =
                scaled + (segEnd ? 0 : block.chargeFrom[i + 1]);
        }
    }

    // One-time structural validation, so the executor hot loop can
    // dispatch without per-op bounds checks: every block is non-empty
    // and ends in a terminator (control cannot walk off a block), and
    // every branch target names an existing block.
    size_t nblocks = fn.blocks.size();
    NOMAP_ASSERT(nblocks > 0);
    for (const IrBlock &block : fn.blocks) {
        NOMAP_ASSERT(!block.instrs.empty());
        IrOp last = block.instrs.back().op;
        NOMAP_ASSERT(last == IrOp::Jump || last == IrOp::Branch ||
                     last == IrOp::Return ||
                     last == IrOp::ReturnUndef);
    }

    // Flat predecode: concatenate the blocks into one contiguous
    // stream, fold each instruction's charge-plan entries into its
    // record, and rewrite Jump/Branch targets to flat indices.
    fn.flatStart.assign(nblocks, 0);
    size_t total = 0;
    for (size_t bi = 0; bi < nblocks; ++bi) {
        fn.flatStart[bi] = static_cast<uint32_t>(total);
        total += fn.blocks[bi].instrs.size();
    }
    fn.flat.clear();
    fn.flat.reserve(total);
    for (const IrBlock &block : fn.blocks) {
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            const IrInstr &instr = block.instrs[i];
            ExecInstr e;
            e.op = instr.op;
            e.converted = instr.converted;
            e.dst = instr.dst;
            e.a = instr.a;
            e.b = instr.b;
            e.c = instr.c;
            e.imm = instr.imm;
            e.imm2 = instr.imm2;
            e.smpPc = instr.smpPc;
            e.ownScaled = block.ownScaled[i];
            e.chargeFrom = block.chargeFrom[i];
            if (instr.op == IrOp::Jump) {
                NOMAP_ASSERT(instr.imm < nblocks);
                e.imm = fn.flatStart[instr.imm];
            } else if (instr.op == IrOp::Branch) {
                NOMAP_ASSERT(instr.imm < nblocks &&
                             instr.imm2 < nblocks);
                e.imm = fn.flatStart[instr.imm];
                e.imm2 = fn.flatStart[instr.imm2];
            }
            fn.flat.push_back(e);
        }
    }
    fn.chargePlanReady = true;
}

std::string
IrFunction::print() const
{
    std::ostringstream out;
    out << "ir function #" << funcId << " tier=" << tierName(tier)
        << " regs=" << numRegs << " (bytecode " << bytecodeRegs << ")"
        << (txAware ? " tx-aware" : "") << "\n";
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        const IrBlock &block = blocks[bi];
        out << " block " << bi;
        if (block.loopId >= 0)
            out << " (loop " << block.loopId << ")";
        out << " -> [";
        for (size_t s = 0; s < block.succs.size(); ++s) {
            if (s)
                out << ", ";
            out << block.succs[s];
        }
        out << "]\n";
        for (const IrInstr &instr : block.instrs) {
            out << "   " << irOpName(instr.op);
            if (definesDst(instr.op))
                out << " r" << instr.dst << " <-";
            out << " a=r" << instr.a << " b=r" << instr.b << " c=r"
                << instr.c << " imm=" << instr.imm;
            if (instr.imm2)
                out << " imm2=" << instr.imm2;
            if (instr.smpPc != kNoSmp) {
                out << (instr.converted ? " abort" : " smp@")
                    << instr.smpPc;
            }
            out << "\n";
        }
    }
    return out.str();
}

void
IrFunction::verify() const
{
    NOMAP_ASSERT(!blocks.empty());
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        const IrBlock &block = blocks[bi];
        NOMAP_ASSERT(!block.instrs.empty());
        const IrInstr &last = block.instrs.back();
        switch (last.op) {
          case IrOp::Jump:
            NOMAP_ASSERT(block.succs.size() == 1);
            NOMAP_ASSERT(last.imm == block.succs[0]);
            break;
          case IrOp::Branch:
            NOMAP_ASSERT(block.succs.size() == 2);
            NOMAP_ASSERT(last.imm == block.succs[0]);
            NOMAP_ASSERT(last.imm2 == block.succs[1]);
            break;
          case IrOp::Return:
          case IrOp::ReturnUndef:
            NOMAP_ASSERT(block.succs.empty());
            break;
          default:
            panic("block %zu not terminated (%s)", bi,
                  irOpName(last.op));
        }
        for (uint32_t succ : block.succs)
            NOMAP_ASSERT(succ < blocks.size());
        for (const IrInstr &instr : block.instrs) {
            if (definesDst(instr.op))
                NOMAP_ASSERT(instr.dst < numRegs);
        }
        // Terminators only at the end.
        for (size_t i = 0; i + 1 < block.instrs.size(); ++i) {
            IrOp op = block.instrs[i].op;
            NOMAP_ASSERT(op != IrOp::Jump && op != IrOp::Branch &&
                         op != IrOp::Return && op != IrOp::ReturnUndef);
        }
    }
    // preds consistent with succs.
    std::vector<std::vector<uint32_t>> expected(blocks.size());
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        for (uint32_t succ : blocks[bi].succs)
            expected[succ].push_back(static_cast<uint32_t>(bi));
    }
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        NOMAP_ASSERT(expected[bi].size() == blocks[bi].preds.size());
    }
}

} // namespace nomap
