#include "ir/ir.h"

#include <sstream>

#include "support/logging.h"

namespace nomap {

bool
isCheckOp(IrOp op)
{
    switch (op) {
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckShape:
      case IrOp::CheckArray:
      case IrOp::CheckIndexInt:
      case IrOp::CheckBounds:
      case IrOp::CheckBoundsRange:
      case IrOp::CheckOverflow:
      case IrOp::CheckNotHole:
        return true;
      default:
        return false;
    }
}

CheckKind
checkKindOf(IrOp op)
{
    switch (op) {
      case IrOp::CheckBounds:
      case IrOp::CheckBoundsRange:
        return CheckKind::Bounds;
      case IrOp::CheckOverflow:
        return CheckKind::Overflow;
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckArray:
        return CheckKind::Type;
      case IrOp::CheckShape:
        return CheckKind::Property;
      case IrOp::CheckIndexInt:
      case IrOp::CheckNotHole:
        return CheckKind::Other;
      default:
        panic("checkKindOf on non-check op");
    }
}

bool
readsMemory(IrOp op)
{
    switch (op) {
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::GetElem:
      case IrOp::LoadGlobal:
        return true;
      default:
        return isOpaqueCall(op);
    }
}

bool
writesMemory(IrOp op)
{
    switch (op) {
      case IrOp::SetSlot:
      case IrOp::SetElem:
      case IrOp::StoreGlobal:
        return true;
      default:
        return isOpaqueCall(op);
    }
}

bool
isOpaqueCall(IrOp op)
{
    switch (op) {
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericSetProp:
      case IrOp::GenericGetIndex:
      case IrOp::GenericSetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::CallMethod:
        return true;
      default:
        return false;
    }
}

bool
isPureValueOp(IrOp op)
{
    switch (op) {
      case IrOp::Const:
      case IrOp::Move:
      case IrOp::AddInt:
      case IrOp::SubInt:
      case IrOp::MulInt:
      case IrOp::NegInt:
      case IrOp::AddDouble:
      case IrOp::SubDouble:
      case IrOp::MulDouble:
      case IrOp::DivDouble:
      case IrOp::ModDouble:
      case IrOp::NegDouble:
      case IrOp::BitAndInt:
      case IrOp::BitOrInt:
      case IrOp::BitXorInt:
      case IrOp::ShlInt:
      case IrOp::ShrInt:
      case IrOp::UShrInt:
      case IrOp::BitNotInt:
      case IrOp::CmpInt:
      case IrOp::CmpDouble:
      case IrOp::ToDouble:
      case IrOp::ToBoolean:
      case IrOp::NotBool:
        return true;
      default:
        return false;
    }
}

bool
definesDst(IrOp op)
{
    if (isPureValueOp(op))
        return true;
    switch (op) {
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::GetElem:
      case IrOp::LoadGlobal:
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericGetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::Intrinsic:
      case IrOp::CallMethod:
        return true;
      default:
        return false;
    }
}

const char *
irOpName(IrOp op)
{
    switch (op) {
      case IrOp::Nop: return "Nop";
      case IrOp::Const: return "Const";
      case IrOp::Move: return "Move";
      case IrOp::AddInt: return "AddInt";
      case IrOp::SubInt: return "SubInt";
      case IrOp::MulInt: return "MulInt";
      case IrOp::NegInt: return "NegInt";
      case IrOp::AddDouble: return "AddDouble";
      case IrOp::SubDouble: return "SubDouble";
      case IrOp::MulDouble: return "MulDouble";
      case IrOp::DivDouble: return "DivDouble";
      case IrOp::ModDouble: return "ModDouble";
      case IrOp::NegDouble: return "NegDouble";
      case IrOp::BitAndInt: return "BitAndInt";
      case IrOp::BitOrInt: return "BitOrInt";
      case IrOp::BitXorInt: return "BitXorInt";
      case IrOp::ShlInt: return "ShlInt";
      case IrOp::ShrInt: return "ShrInt";
      case IrOp::UShrInt: return "UShrInt";
      case IrOp::BitNotInt: return "BitNotInt";
      case IrOp::CmpInt: return "CmpInt";
      case IrOp::CmpDouble: return "CmpDouble";
      case IrOp::ToDouble: return "ToDouble";
      case IrOp::ToBoolean: return "ToBoolean";
      case IrOp::NotBool: return "NotBool";
      case IrOp::CheckInt32: return "CheckInt32";
      case IrOp::CheckNumber: return "CheckNumber";
      case IrOp::CheckShape: return "CheckShape";
      case IrOp::CheckArray: return "CheckArray";
      case IrOp::CheckIndexInt: return "CheckIndexInt";
      case IrOp::CheckBounds: return "CheckBounds";
      case IrOp::CheckBoundsRange: return "CheckBoundsRange";
      case IrOp::CheckOverflow: return "CheckOverflow";
      case IrOp::CheckNotHole: return "CheckNotHole";
      case IrOp::GetSlot: return "GetSlot";
      case IrOp::SetSlot: return "SetSlot";
      case IrOp::GetArrayLen: return "GetArrayLen";
      case IrOp::GetElem: return "GetElem";
      case IrOp::SetElem: return "SetElem";
      case IrOp::LoadGlobal: return "LoadGlobal";
      case IrOp::StoreGlobal: return "StoreGlobal";
      case IrOp::GenericBinary: return "GenericBinary";
      case IrOp::GenericUnary: return "GenericUnary";
      case IrOp::GenericGetProp: return "GenericGetProp";
      case IrOp::GenericSetProp: return "GenericSetProp";
      case IrOp::GenericGetIndex: return "GenericGetIndex";
      case IrOp::GenericSetIndex: return "GenericSetIndex";
      case IrOp::NewArray: return "NewArray";
      case IrOp::NewObject: return "NewObject";
      case IrOp::Call: return "Call";
      case IrOp::CallNative: return "CallNative";
      case IrOp::Intrinsic: return "Intrinsic";
      case IrOp::CallMethod: return "CallMethod";
      case IrOp::Jump: return "Jump";
      case IrOp::Branch: return "Branch";
      case IrOp::Return: return "Return";
      case IrOp::ReturnUndef: return "ReturnUndef";
      case IrOp::TxBegin: return "TxBegin";
      case IrOp::TxEnd: return "TxEnd";
      case IrOp::TxTile: return "TxTile";
    }
    return "?";
}

std::string
IrFunction::print() const
{
    std::ostringstream out;
    out << "ir function #" << funcId << " tier=" << tierName(tier)
        << " regs=" << numRegs << " (bytecode " << bytecodeRegs << ")"
        << (txAware ? " tx-aware" : "") << "\n";
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        const IrBlock &block = blocks[bi];
        out << " block " << bi;
        if (block.loopId >= 0)
            out << " (loop " << block.loopId << ")";
        out << " -> [";
        for (size_t s = 0; s < block.succs.size(); ++s) {
            if (s)
                out << ", ";
            out << block.succs[s];
        }
        out << "]\n";
        for (const IrInstr &instr : block.instrs) {
            out << "   " << irOpName(instr.op);
            if (definesDst(instr.op))
                out << " r" << instr.dst << " <-";
            out << " a=r" << instr.a << " b=r" << instr.b << " c=r"
                << instr.c << " imm=" << instr.imm;
            if (instr.imm2)
                out << " imm2=" << instr.imm2;
            if (instr.smpPc != kNoSmp) {
                out << (instr.converted ? " abort" : " smp@")
                    << instr.smpPc;
            }
            out << "\n";
        }
    }
    return out.str();
}

void
IrFunction::verify() const
{
    NOMAP_ASSERT(!blocks.empty());
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        const IrBlock &block = blocks[bi];
        NOMAP_ASSERT(!block.instrs.empty());
        const IrInstr &last = block.instrs.back();
        switch (last.op) {
          case IrOp::Jump:
            NOMAP_ASSERT(block.succs.size() == 1);
            NOMAP_ASSERT(last.imm == block.succs[0]);
            break;
          case IrOp::Branch:
            NOMAP_ASSERT(block.succs.size() == 2);
            NOMAP_ASSERT(last.imm == block.succs[0]);
            NOMAP_ASSERT(last.imm2 == block.succs[1]);
            break;
          case IrOp::Return:
          case IrOp::ReturnUndef:
            NOMAP_ASSERT(block.succs.empty());
            break;
          default:
            panic("block %zu not terminated (%s)", bi,
                  irOpName(last.op));
        }
        for (uint32_t succ : block.succs)
            NOMAP_ASSERT(succ < blocks.size());
        for (const IrInstr &instr : block.instrs) {
            if (definesDst(instr.op))
                NOMAP_ASSERT(instr.dst < numRegs);
        }
        // Terminators only at the end.
        for (size_t i = 0; i + 1 < block.instrs.size(); ++i) {
            IrOp op = block.instrs[i].op;
            NOMAP_ASSERT(op != IrOp::Jump && op != IrOp::Branch &&
                         op != IrOp::Return && op != IrOp::ReturnUndef);
        }
    }
    // preds consistent with succs.
    std::vector<std::vector<uint32_t>> expected(blocks.size());
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        for (uint32_t succ : blocks[bi].succs)
            expected[succ].push_back(static_cast<uint32_t>(bi));
    }
    for (size_t bi = 0; bi < blocks.size(); ++bi) {
        NOMAP_ASSERT(expected[bi].size() == blocks[bi].preds.size());
    }
}

} // namespace nomap
