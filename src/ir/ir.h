#ifndef NOMAP_IR_IR_H
#define NOMAP_IR_IR_H

/**
 * @file
 * The typed intermediate representation shared by the DFG and FTL
 * tiers.
 *
 * The IR is a CFG of basic blocks over *virtual registers*. Registers
 * [0, bytecodeRegs) mirror the Baseline frame one-to-one — that
 * identity mapping IS the OSR stack map: a deoptimizing check simply
 * hands registers [0, bytecodeRegs) plus its bytecode pc to the
 * Baseline executor. Registers >= bytecodeRegs are compiler
 * temporaries created by optimization passes (e.g. promoted
 * accumulators) and never appear in stack maps.
 *
 * Checks are first-class instructions. Each check carries:
 *  - its paper Figure-3 category (Bounds/Overflow/Type/Property/Other),
 *  - `smpPc`, the bytecode pc its Stack Map Point transfers to, and
 *  - `converted`, set by NoMap when the SMP has been replaced by a
 *    transactional abort.
 *
 * In Base/DFG compilation, an un-converted check behaves like LLVM's
 * patchpoint/stackmap intrinsics behave in real FTL: an opaque call
 * that (a) keeps every baseline register alive and (b) clobbers
 * memory-availability facts. Both properties are what cripples
 * optimization around SMPs — and both vanish when NoMap converts the
 * SMP to an abort. The passes in src/passes query these properties
 * through the helpers at the bottom of this header.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/stats.h"
#include "js/ast.h"
#include "vm/value.h"

namespace nomap {

/**
 * X-macro list of IR operations, in opcode-value order. The enum, the
 * name table, the static cost table, and the direct-threaded dispatch
 * table in the executor are generated from this one list so they can
 * never fall out of sync.
 */
#define NOMAP_IR_OP_LIST(V)                                             \
    V(Nop)                                                              \
    /* ---- Pure value ops -------------------------------------- */    \
    V(Const)           /* dst <- constants[imm] */                      \
    V(Move)            /* dst <- ra */                                  \
    V(AddInt)          /* dst <- ra + rb (sets overflow flag) */        \
    V(SubInt)          /* dst <- ra - rb (overflow flag) */             \
    V(MulInt)          /* dst <- ra * rb (overflow flag) */             \
    V(NegInt)          /* dst <- -ra (ovf on 0 and INT32_MIN) */        \
    V(AddDouble)                                                        \
    V(SubDouble)                                                        \
    V(MulDouble)                                                        \
    V(DivDouble)                                                        \
    V(ModDouble)                                                        \
    V(NegDouble)                                                        \
    V(BitAndInt)                                                        \
    V(BitOrInt)                                                         \
    V(BitXorInt)                                                        \
    V(ShlInt)                                                           \
    V(ShrInt)                                                           \
    V(UShrInt)                                                          \
    V(BitNotInt)                                                        \
    V(CmpInt)          /* dst <- ra (BinaryOp)imm rb, int ops */        \
    V(CmpDouble)       /* dst <- ra (BinaryOp)imm rb, numeric */        \
    V(ToDouble)        /* dst <- (double)ra */                          \
    V(ToBoolean)       /* dst <- truthiness(ra) */                      \
    V(NotBool)         /* dst <- !ra (ra is boolean) */                 \
    /* ---- Checks (SMP-guarded speculation guards) ------------- */    \
    V(CheckInt32)      /* ra is an int32            [Type] */           \
    V(CheckNumber)     /* ra is a number            [Type] */           \
    V(CheckShape)      /* ra is object w/ shape imm [Property] */       \
    V(CheckArray)      /* ra is an array            [Type] */           \
    V(CheckIndexInt)   /* ra is an int32 index      [Other] */          \
    V(CheckBounds)     /* rb in [0, len(ra))        [Bounds] */         \
    V(CheckBoundsRange) /* rb..rc in [0, len(ra))   [Bounds] */         \
    V(CheckOverflow)   /* ovf flag of reg ra clear  [Overflow] */       \
    V(CheckNotHole)    /* ra is not undefined       [Other] */          \
    /* ---- Memory ---------------------------------------------- */    \
    V(GetSlot)         /* dst <- object(ra).slots[imm] */               \
    V(SetSlot)         /* object(ra).slots[imm] <- rb */                \
    V(GetArrayLen)     /* dst <- array(ra).length */                    \
    V(GetElem)         /* dst <- array(ra)[rb] */                       \
    V(SetElem)         /* array(ra)[rb] <- rc */                        \
    V(LoadGlobal)      /* dst <- globals[imm] */                        \
    V(StoreGlobal)     /* globals[imm] <- ra */                         \
    /* ---- Generic runtime fallbacks --------------------------- */    \
    V(GenericBinary)   /* dst <- runtime binop (imm=BinaryOp) */        \
    V(GenericUnary)    /* dst <- runtime unop (imm=UnaryOp) */          \
    V(GenericGetProp)  /* dst <- ra.prop[imm] */                        \
    V(GenericSetProp)  /* ra.prop[imm] <- rb */                         \
    V(GenericGetIndex) /* dst <- ra[rb] */                              \
    V(GenericSetIndex) /* ra[rb] <- rc */                               \
    V(NewArray)        /* dst <- [regs ra .. ra+imm-1] */               \
    V(NewObject)       /* dst <- {desc imm, values ra..ra+rb-1} */      \
    /* ---- Calls ----------------------------------------------- */    \
    V(Call)            /* dst <- functions[imm](ra .. ra+rb-1) */       \
    V(CallNative)      /* dst <- builtin[imm](...) (runtime) */         \
    V(Intrinsic)       /* dst <- builtin[imm](...) (inlined) */         \
    V(CallMethod)      /* dst <- ra.m[imm>>4](rb..rb+(imm&15)-1) */     \
    /* ---- Control flow ---------------------------------------- */    \
    V(Jump)            /* goto block imm */                             \
    V(Branch)          /* if truthy(ra) goto imm else imm2 */           \
    V(Return)          /* return ra */                                  \
    V(ReturnUndef)                                                      \
    /* ---- Transactions (NoMap) -------------------------------- */    \
    V(TxBegin)         /* Open tx; smpPc = Baseline re-entry pc */      \
    V(TxEnd)           /* Commit (checks SOF under full NoMap) */       \
    V(TxTile)          /* Commit + reopen every imm iterations */

/** IR operations (see NOMAP_IR_OP_LIST for semantics). */
enum class IrOp : uint8_t {
#define NOMAP_IR_OP_ENUM(name) name,
    NOMAP_IR_OP_LIST(NOMAP_IR_OP_ENUM)
#undef NOMAP_IR_OP_ENUM
};

/** Number of IR operations (dispatch-table size). */
constexpr size_t kNumIrOps = static_cast<size_t>(IrOp::TxTile) + 1;

/** Sentinel for "no SMP attached". */
constexpr uint32_t kNoSmp = 0xffffffffu;

/** One IR instruction. */
struct IrInstr {
    IrOp op = IrOp::Nop;
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
    uint32_t imm = 0;
    uint32_t imm2 = 0;
    /** Bytecode pc of the SMP this check deopts to (kNoSmp if none). */
    uint32_t smpPc = kNoSmp;
    /** NoMap converted this check's SMP into a transactional abort. */
    bool converted = false;

    bool isCheck() const;
};

/** A basic block. */
struct IrBlock {
    std::vector<IrInstr> instrs;
    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;
    /** Loop id when this block is a bytecode LoopHeader (-1 if not). */
    int32_t loopId = -1;
    /** First bytecode pc this block was built from. */
    uint32_t firstPc = 0;

    /**
     * Static charge plan for batched accounting, one entry per
     * instruction (empty until computeChargePlan runs): ownScaled[i]
     * is instruction i's tier-scaled static cost; chargeFrom[i] is the
     * summed cost of [i .. end of i's charge segment], where segments
     * end at transaction-boundary ops (whose successor cost must be
     * charged under the new transaction state) and at block ends.
     */
    std::vector<uint32_t> ownScaled;
    std::vector<uint32_t> chargeFrom;
};

/**
 * One predecoded instruction of the flat run format the executor
 * dispatches over (see IrFunction::flat). A copy of the IrInstr
 * fields plus the instruction's charge-plan entries, packed so the
 * hot loop touches exactly one 32-byte record per op with no
 * per-block indirection. Jump/Branch targets are rewritten from
 * block ids to flat indices at predecode time.
 */
struct ExecInstr {
    IrOp op = IrOp::Nop;
    /** NoMap converted this check's SMP into a transactional abort. */
    bool converted = false;
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
    /** Jump/Branch: flat index of the target block's first entry. */
    uint32_t imm = 0;
    uint32_t imm2 = 0;
    /** Bytecode pc of the SMP this check deopts to (kNoSmp if none). */
    uint32_t smpPc = kNoSmp;
    /** This op's tier-scaled static cost (IrBlock::ownScaled). */
    uint32_t ownScaled = 0;
    /** Cost of [this .. charge-segment end] (IrBlock::chargeFrom). */
    uint32_t chargeFrom = 0;
};

/**
 * One transaction region created by the NoMap planner: TxBegin sits
 * at the end of @p beginBlock (the loop preheader), TxEnd at the top
 * of each block in @p endBlocks (dedicated loop-exit blocks).
 */
struct TxRegion {
    uint32_t loopHeader = 0;
    uint32_t beginBlock = 0;
    std::vector<uint32_t> blocks;    ///< Loop blocks inside the region.
    std::vector<uint32_t> endBlocks; ///< Blocks holding the TxEnd.
};

/** A compiled IR function. */
struct IrFunction {
    uint32_t funcId = 0;
    Tier tier = Tier::Ftl;
    /** Registers mirroring the bytecode frame (the stack-map prefix). */
    uint16_t bytecodeRegs = 0;
    /** Total virtual registers including pass-created temporaries. */
    uint16_t numRegs = 0;
    /** True when NoMap instrumented this function with transactions. */
    bool txAware = false;
    /** Set once computeChargePlan has filled every block's plan. */
    bool chargePlanReady = false;

    std::vector<IrBlock> blocks;
    std::vector<Value> constants;
    /** Transaction regions (filled by the NoMap planner). */
    std::vector<TxRegion> txRegions;

    /**
     * Flat run format: every block's instructions predecoded into one
     * contiguous array in block order, with branch targets rewritten
     * to flat indices and the charge plan folded into each record.
     * Built by computeChargePlan alongside the per-block plan; the
     * executor walks this instead of the block structure, and the
     * region template tier (src/jit/jit_chain.h) lowers it further
     * into bound continuation-template chains. Both consumers rely on
     * the plan's structural invariant that every Jump/Branch target
     * begins a charge segment (audited by
     * AccountingChargePlan.FlatJumpTargetsBeginSegments).
     */
    std::vector<ExecInstr> flat;
    /** flatStart[b] = flat index of block b's first instruction. */
    std::vector<uint32_t> flatStart;

    /** Allocate a fresh pass temporary register. */
    uint16_t
    allocTemp()
    {
        return numRegs++;
    }

    uint32_t
    addConstant(Value v)
    {
        for (size_t i = 0; i < constants.size(); ++i) {
            if (constants[i] == v)
                return static_cast<uint32_t>(i);
        }
        constants.push_back(v);
        return static_cast<uint32_t>(constants.size() - 1);
    }

    /** Human-readable dump (tests, debugging). */
    std::string print() const;

    /** Structural sanity checks; panics on corruption. */
    void verify() const;
};

// ---- Classification helpers used by passes and executors ---------------
// Inline: the executor hot loop classifies every executed check op.

/** True for the Check* family. */
inline bool
isCheckOp(IrOp op)
{
    switch (op) {
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckShape:
      case IrOp::CheckArray:
      case IrOp::CheckIndexInt:
      case IrOp::CheckBounds:
      case IrOp::CheckBoundsRange:
      case IrOp::CheckOverflow:
      case IrOp::CheckNotHole:
        return true;
      default:
        return false;
    }
}

/** Figure-3 category of a check op (asserts on non-check ops). */
CheckKind checkKindOf(IrOp op);

/**
 * checkKindOf without the non-check assert, for call sites that have
 * already established the op is a check.
 */
inline CheckKind
checkKindOfUnchecked(IrOp op)
{
    switch (op) {
      case IrOp::CheckBounds:
      case IrOp::CheckBoundsRange:
        return CheckKind::Bounds;
      case IrOp::CheckOverflow:
        return CheckKind::Overflow;
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckArray:
        return CheckKind::Type;
      case IrOp::CheckShape:
        return CheckKind::Property;
      default:
        return CheckKind::Other;
    }
}

/** True if the op reads heap/global memory. */
bool readsMemory(IrOp op);

/** True if the op writes heap/global memory. */
bool writesMemory(IrOp op);

/** True for calls and generic ops that may touch arbitrary state. */
bool isOpaqueCall(IrOp op);

/** True for pure, speculation-free value computations. */
bool isPureValueOp(IrOp op);

/** True if the instruction defines `dst`. */
bool definesDst(IrOp op);

/** Printable op name. */
const char *irOpName(IrOp op);

/** True for transaction-boundary ops (TxBegin/TxEnd/TxTile). */
inline bool
isTxBoundaryOp(IrOp op)
{
    return op == IrOp::TxBegin || op == IrOp::TxEnd ||
           op == IrOp::TxTile;
}

/** Static per-op instruction cost before tier scaling. */
uint32_t irBaseCost(IrOp op);

/**
 * (Re)compute every block's ownScaled/chargeFrom from the instruction
 * stream and the function's tier (DFG scales each op's cost by
 * kDfgFactor before summing, exactly as the executor's per-op mode
 * does), then build the flat predecoded run stream from it. Also
 * performs the one-time structural validation (non-empty terminated
 * blocks, in-range branch targets) that lets the executor hot loop
 * dispatch without per-op bounds checks. The compiler calls this
 * after the pass pipeline; the executor calls it lazily for
 * hand-built functions in tests.
 */
void computeChargePlan(IrFunction &fn);

inline bool
IrInstr::isCheck() const
{
    return isCheckOp(op);
}

} // namespace nomap

#endif // NOMAP_IR_IR_H
