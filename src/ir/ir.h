#ifndef NOMAP_IR_IR_H
#define NOMAP_IR_IR_H

/**
 * @file
 * The typed intermediate representation shared by the DFG and FTL
 * tiers.
 *
 * The IR is a CFG of basic blocks over *virtual registers*. Registers
 * [0, bytecodeRegs) mirror the Baseline frame one-to-one — that
 * identity mapping IS the OSR stack map: a deoptimizing check simply
 * hands registers [0, bytecodeRegs) plus its bytecode pc to the
 * Baseline executor. Registers >= bytecodeRegs are compiler
 * temporaries created by optimization passes (e.g. promoted
 * accumulators) and never appear in stack maps.
 *
 * Checks are first-class instructions. Each check carries:
 *  - its paper Figure-3 category (Bounds/Overflow/Type/Property/Other),
 *  - `smpPc`, the bytecode pc its Stack Map Point transfers to, and
 *  - `converted`, set by NoMap when the SMP has been replaced by a
 *    transactional abort.
 *
 * In Base/DFG compilation, an un-converted check behaves like LLVM's
 * patchpoint/stackmap intrinsics behave in real FTL: an opaque call
 * that (a) keeps every baseline register alive and (b) clobbers
 * memory-availability facts. Both properties are what cripples
 * optimization around SMPs — and both vanish when NoMap converts the
 * SMP to an abort. The passes in src/passes query these properties
 * through the helpers at the bottom of this header.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/stats.h"
#include "js/ast.h"
#include "vm/value.h"

namespace nomap {

/** IR operations. */
enum class IrOp : uint8_t {
    Nop,

    // ---- Pure value ops -------------------------------------------------
    Const,        ///< dst <- constants[imm]
    Move,         ///< dst <- ra
    AddInt,       ///< dst <- ra + rb (sets overflow flag of dst)
    SubInt,       ///< dst <- ra - rb (overflow flag)
    MulInt,       ///< dst <- ra * rb (overflow flag)
    NegInt,       ///< dst <- -ra (overflow on 0 and INT32_MIN)
    AddDouble, SubDouble, MulDouble, DivDouble, ModDouble,
    NegDouble,
    BitAndInt, BitOrInt, BitXorInt, ShlInt, ShrInt, UShrInt,
    BitNotInt,
    CmpInt,       ///< dst <- ra (BinaryOp)imm rb, int operands
    CmpDouble,    ///< dst <- ra (BinaryOp)imm rb, numeric operands
    ToDouble,     ///< dst <- (double)ra
    ToBoolean,    ///< dst <- truthiness(ra)
    NotBool,      ///< dst <- !ra (ra is boolean)

    // ---- Checks (SMP-guarded speculation guards) ---------------------
    CheckInt32,       ///< ra is an int32            [Type]
    CheckNumber,      ///< ra is a number            [Type]
    CheckShape,       ///< ra is object w/ shape imm [Property]
    CheckArray,       ///< ra is an array            [Type]
    CheckIndexInt,    ///< ra is an int32 index      [Other]
    CheckBounds,      ///< rb in [0, len(ra))        [Bounds]
    CheckBoundsRange, ///< rb..rc in [0, len(ra)) (combined) [Bounds]
    CheckOverflow,    ///< overflow flag of reg ra clear [Overflow]
    CheckNotHole,     ///< ra is not undefined       [Other]

    // ---- Memory ---------------------------------------------------------
    GetSlot,      ///< dst <- object(ra).slots[imm]
    SetSlot,      ///< object(ra).slots[imm] <- rb
    GetArrayLen,  ///< dst <- array(ra).length
    GetElem,      ///< dst <- array(ra)[rb]
    SetElem,      ///< array(ra)[rb] <- rc
    LoadGlobal,   ///< dst <- globals[imm]
    StoreGlobal,  ///< globals[imm] <- ra

    // ---- Generic runtime fallbacks ------------------------------------
    GenericBinary,   ///< dst <- runtime binop (imm=BinaryOp)
    GenericUnary,    ///< dst <- runtime unop (imm=UnaryOp)
    GenericGetProp,  ///< dst <- ra.prop[imm]
    GenericSetProp,  ///< ra.prop[imm] <- rb
    GenericGetIndex, ///< dst <- ra[rb]
    GenericSetIndex, ///< ra[rb] <- rc
    NewArray,        ///< dst <- [regs ra .. ra+imm-1]
    NewObject,       ///< dst <- {desc imm, values ra .. ra+rb-1}

    // ---- Calls ------------------------------------------------------------
    Call,        ///< dst <- functions[imm](ra .. ra+rb-1)
    CallNative,  ///< dst <- builtin[imm](ra .. ra+rb-1) (runtime)
    Intrinsic,   ///< dst <- builtin[imm](ra .. ra+rb-1) (inlined)
    CallMethod,  ///< dst <- ra.m[imm>>4](rb .. rb+(imm&15)-1)

    // ---- Control flow ---------------------------------------------------
    Jump,        ///< goto block imm
    Branch,      ///< if truthy(ra) goto imm else imm2
    Return,      ///< return ra
    ReturnUndef,

    // ---- Transactions (NoMap) ------------------------------------------
    TxBegin,     ///< Open transaction; smpPc = Baseline re-entry pc.
    TxEnd,       ///< Commit (checks SOF under full NoMap).
    TxTile,      ///< Commit + reopen every imm iterations (tiling).
};

/** Sentinel for "no SMP attached". */
constexpr uint32_t kNoSmp = 0xffffffffu;

/** One IR instruction. */
struct IrInstr {
    IrOp op = IrOp::Nop;
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
    uint32_t imm = 0;
    uint32_t imm2 = 0;
    /** Bytecode pc of the SMP this check deopts to (kNoSmp if none). */
    uint32_t smpPc = kNoSmp;
    /** NoMap converted this check's SMP into a transactional abort. */
    bool converted = false;

    bool isCheck() const;
};

/** A basic block. */
struct IrBlock {
    std::vector<IrInstr> instrs;
    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;
    /** Loop id when this block is a bytecode LoopHeader (-1 if not). */
    int32_t loopId = -1;
    /** First bytecode pc this block was built from. */
    uint32_t firstPc = 0;
};

/**
 * One transaction region created by the NoMap planner: TxBegin sits
 * at the end of @p beginBlock (the loop preheader), TxEnd at the top
 * of each block in @p endBlocks (dedicated loop-exit blocks).
 */
struct TxRegion {
    uint32_t loopHeader = 0;
    uint32_t beginBlock = 0;
    std::vector<uint32_t> blocks;    ///< Loop blocks inside the region.
    std::vector<uint32_t> endBlocks; ///< Blocks holding the TxEnd.
};

/** A compiled IR function. */
struct IrFunction {
    uint32_t funcId = 0;
    Tier tier = Tier::Ftl;
    /** Registers mirroring the bytecode frame (the stack-map prefix). */
    uint16_t bytecodeRegs = 0;
    /** Total virtual registers including pass-created temporaries. */
    uint16_t numRegs = 0;
    /** True when NoMap instrumented this function with transactions. */
    bool txAware = false;

    std::vector<IrBlock> blocks;
    std::vector<Value> constants;
    /** Transaction regions (filled by the NoMap planner). */
    std::vector<TxRegion> txRegions;

    /** Allocate a fresh pass temporary register. */
    uint16_t
    allocTemp()
    {
        return numRegs++;
    }

    uint32_t
    addConstant(Value v)
    {
        for (size_t i = 0; i < constants.size(); ++i) {
            if (constants[i] == v)
                return static_cast<uint32_t>(i);
        }
        constants.push_back(v);
        return static_cast<uint32_t>(constants.size() - 1);
    }

    /** Human-readable dump (tests, debugging). */
    std::string print() const;

    /** Structural sanity checks; panics on corruption. */
    void verify() const;
};

// ---- Classification helpers used by passes and executors ---------------

/** True for the Check* family. */
bool isCheckOp(IrOp op);

/** Figure-3 category of a check op. */
CheckKind checkKindOf(IrOp op);

/** True if the op reads heap/global memory. */
bool readsMemory(IrOp op);

/** True if the op writes heap/global memory. */
bool writesMemory(IrOp op);

/** True for calls and generic ops that may touch arbitrary state. */
bool isOpaqueCall(IrOp op);

/** True for pure, speculation-free value computations. */
bool isPureValueOp(IrOp op);

/** True if the instruction defines `dst`. */
bool definesDst(IrOp op);

/** Printable op name. */
const char *irOpName(IrOp op);

inline bool
IrInstr::isCheck() const
{
    return isCheckOp(op);
}

} // namespace nomap

#endif // NOMAP_IR_IR_H
