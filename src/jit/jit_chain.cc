#include "jit/jit_chain.h"

#include "support/logging.h"

namespace nomap {

const char *
jitSpecName(JitSpec spec)
{
    switch (spec) {
#define NOMAP_JIT_SPEC_NAME(name)                                       \
      case JitSpec::name:                                               \
        return #name;
        NOMAP_JIT_SPEC_LIST(NOMAP_JIT_SPEC_NAME)
#undef NOMAP_JIT_SPEC_NAME
    }
    return "?";
}

namespace {

/** Compare subop -> specialized compare template (CmpOther: panic). */
JitSpec
cmpSpecOf(uint32_t imm)
{
    switch (static_cast<BinaryOp>(imm)) {
      case BinaryOp::Lt: return JitSpec::CmpLt;
      case BinaryOp::Le: return JitSpec::CmpLe;
      case BinaryOp::Gt: return JitSpec::CmpGt;
      case BinaryOp::Ge: return JitSpec::CmpGe;
      case BinaryOp::Eq:
      case BinaryOp::StrictEq: return JitSpec::CmpEq;
      case BinaryOp::NotEq:
      case BinaryOp::StrictNotEq: return JitSpec::CmpNe;
      default: return JitSpec::CmpOther;
    }
}

/** Fused compare+branch template of a specialized compare. */
JitSpec
cmpBranchSpecOf(JitSpec cmp)
{
    switch (cmp) {
      case JitSpec::CmpLt: return JitSpec::CmpBranchLt;
      case JitSpec::CmpLe: return JitSpec::CmpBranchLe;
      case JitSpec::CmpGt: return JitSpec::CmpBranchGt;
      case JitSpec::CmpGe: return JitSpec::CmpBranchGe;
      case JitSpec::CmpEq: return JitSpec::CmpBranchEq;
      default: return JitSpec::CmpBranchNe;
    }
}

/** Unfused template of one op (shape-specialized where grouped). */
JitSpec
baseSpecOf(const ExecInstr &e)
{
    switch (e.op) {
      case IrOp::Nop: return JitSpec::Nop;
      case IrOp::Const: return JitSpec::Const;
      case IrOp::Move: return JitSpec::Move;
      case IrOp::AddInt: return JitSpec::AddInt;
      case IrOp::SubInt: return JitSpec::SubInt;
      case IrOp::MulInt: return JitSpec::MulInt;
      case IrOp::NegInt: return JitSpec::NegInt;
      case IrOp::AddDouble: return JitSpec::AddDouble;
      case IrOp::SubDouble: return JitSpec::SubDouble;
      case IrOp::MulDouble: return JitSpec::MulDouble;
      case IrOp::DivDouble: return JitSpec::DivDouble;
      case IrOp::ModDouble: return JitSpec::ModDouble;
      case IrOp::NegDouble: return JitSpec::NegDouble;
      case IrOp::BitAndInt: return JitSpec::BitAndInt;
      case IrOp::BitOrInt: return JitSpec::BitOrInt;
      case IrOp::BitXorInt: return JitSpec::BitXorInt;
      case IrOp::ShlInt: return JitSpec::ShlInt;
      case IrOp::ShrInt: return JitSpec::ShrInt;
      case IrOp::UShrInt: return JitSpec::UShrInt;
      case IrOp::BitNotInt: return JitSpec::BitNotInt;
      case IrOp::CmpInt:
      case IrOp::CmpDouble: return cmpSpecOf(e.imm);
      case IrOp::ToDouble: return JitSpec::ToDouble;
      case IrOp::ToBoolean: return JitSpec::ToBoolean;
      case IrOp::NotBool: return JitSpec::NotBool;
      case IrOp::CheckInt32: return JitSpec::CheckInt32;
      case IrOp::CheckNumber: return JitSpec::CheckNumber;
      case IrOp::CheckShape: return JitSpec::CheckShape;
      case IrOp::CheckArray: return JitSpec::CheckArray;
      case IrOp::CheckIndexInt: return JitSpec::CheckIndexInt;
      case IrOp::CheckBounds: return JitSpec::CheckBounds;
      case IrOp::CheckBoundsRange: return JitSpec::CheckBoundsRange;
      case IrOp::CheckOverflow: return JitSpec::CheckOverflow;
      case IrOp::CheckNotHole: return JitSpec::CheckNotHole;
      case IrOp::GetSlot: return JitSpec::GetSlot;
      case IrOp::SetSlot: return JitSpec::SetSlot;
      case IrOp::GetArrayLen: return JitSpec::GetArrayLen;
      case IrOp::GetElem: return JitSpec::GetElem;
      case IrOp::SetElem: return JitSpec::SetElem;
      case IrOp::LoadGlobal: return JitSpec::LoadGlobal;
      case IrOp::StoreGlobal: return JitSpec::StoreGlobal;
      case IrOp::GenericBinary: return JitSpec::GenericBinary;
      case IrOp::GenericUnary: return JitSpec::GenericUnary;
      case IrOp::GenericGetProp: return JitSpec::GenericGetProp;
      case IrOp::GenericSetProp: return JitSpec::GenericSetProp;
      case IrOp::GenericGetIndex: return JitSpec::GenericGetIndex;
      case IrOp::GenericSetIndex: return JitSpec::GenericSetIndex;
      case IrOp::NewArray: return JitSpec::NewArray;
      case IrOp::NewObject: return JitSpec::NewObject;
      case IrOp::Call: return JitSpec::Call;
      case IrOp::CallNative: return JitSpec::CallNative;
      case IrOp::Intrinsic: return JitSpec::Intrinsic;
      case IrOp::CallMethod: return JitSpec::CallMethod;
      case IrOp::Jump: return JitSpec::Jump;
      case IrOp::Branch: return JitSpec::Branch;
      case IrOp::Return: return JitSpec::Return;
      case IrOp::ReturnUndef: return JitSpec::ReturnUndef;
      case IrOp::TxBegin: return JitSpec::TxBegin;
      case IrOp::TxEnd: return JitSpec::TxEnd;
      case IrOp::TxTile: return JitSpec::TxTile;
    }
    panic("jit: unmapped IR op");
}

/** Fused int-arith+overflow-check template of an int-arith spec. */
JitSpec
arithChkOvfSpecOf(IrOp op)
{
    switch (op) {
      case IrOp::AddInt: return JitSpec::AddIntChkOvf;
      case IrOp::SubInt: return JitSpec::SubIntChkOvf;
      default: return JitSpec::MulIntChkOvf;
    }
}

} // namespace

std::unique_ptr<JitChain>
buildJitChain(IrFunction &ir)
{
    // Hand-built IR in tests never goes through compileFunction;
    // build its charge plan (and flat run stream) first, exactly as
    // the FTL executor would on first run.
    if (!ir.chargePlanReady)
        computeChargePlan(ir);

    auto chain = std::make_unique<JitChain>();
    const std::vector<ExecInstr> &flat = ir.flat;
    const size_t n = flat.size();

    for (const ExecInstr &e : flat)
        chain->aware = chain->aware || isTxBoundaryOp(e.op);

    // A record is a jump target when any Jump/Branch retargets to it;
    // fusion must not swallow such a record into its predecessor's
    // template, since control flow can enter at it directly.
    std::vector<bool> isTarget(n, false);
    for (const ExecInstr &e : flat) {
        if (e.op == IrOp::Jump) {
            isTarget[e.imm] = true;
        } else if (e.op == IrOp::Branch) {
            isTarget[e.imm] = true;
            isTarget[e.imm2] = true;
        }
    }

    chain->records.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const ExecInstr &e = flat[i];
        JitInstr &r = chain->records[i];
        r.spec = baseSpecOf(e);
        r.op = e.op;
        r.converted = e.converted;
        r.dst = e.dst;
        r.a = e.a;
        r.b = e.b;
        r.c = e.c;
        r.imm = e.imm;
        r.imm2 = e.imm2;
        r.smpPc = e.smpPc;
        r.ownScaled = e.ownScaled;
        r.chargeFrom = e.chargeFrom;

        // Superinstruction fusion: pair this record with its
        // successor when the pair's combined template preserves the
        // exact per-op charge/check/injection sequence. Disabled in
        // tx-aware chains (the fused body would skip the per-op
        // tx-owner watchdog poll between the two components), and
        // when the successor is a jump target (it must stay
        // independently enterable — it keeps its standalone template
        // either way; fused fallthrough simply never reaches it).
        if (chain->aware || i + 1 >= n || isTarget[i + 1])
            continue;
        const ExecInstr &next = flat[i + 1];
        bool cmp = (e.op == IrOp::CmpInt || e.op == IrOp::CmpDouble) &&
                   r.spec != JitSpec::CmpOther;
        if (cmp && next.op == IrOp::Branch && next.a == e.dst) {
            r.spec = cmpBranchSpecOf(r.spec);
        } else if ((e.op == IrOp::AddInt || e.op == IrOp::SubInt ||
                    e.op == IrOp::MulInt) &&
                   next.op == IrOp::CheckOverflow && next.a == e.dst) {
            r.spec = arithChkOvfSpecOf(e.op);
        }
    }

    return chain;
}

} // namespace nomap
