#ifndef NOMAP_JIT_JIT_CHAIN_H
#define NOMAP_JIT_JIT_CHAIN_H

/**
 * @file
 * The compiled-region representation of the template-JIT tier.
 *
 * A JitChain is the "region code" the template compiler emits for one
 * FTL function: the flat predecoded ExecInstr stream (ir/ir.h)
 * re-packed into JitInstr records, each carrying
 *
 *  - a *template binding*: the address of the build-time-compiled
 *    handler specialized for this record's (opcode, operand-shape)
 *    pair (`fn`, a computed-goto label captured from the executor),
 *    so dispatch is one indirect jump through the record itself — no
 *    opcode table lookup, no operand-shape tests at run time; and
 *  - the record's *literal pool entry*: the operand registers,
 *    immediates, SMP and charge-plan fields copied verbatim from the
 *    ExecInstr, so the handler reads its operands from the record it
 *    dispatched through.
 *
 * Shape specialization happens at bind time (buildJitChain):
 * grouped FTL bodies are split per opcode (AddInt/SubInt/MulInt each
 * get their own template), compare ops are split per BinaryOp subop
 * (the subop test disappears from the hot path), and — in regions
 * that contain no transaction-boundary ops — adjacent records are
 * fused into superinstruction templates (compare+branch,
 * int-arith+overflow-check) that execute both records in one handler
 * with the exact same observable charge/check/injection sequence as
 * the FTL executor running them separately.
 *
 * Region boundaries are inherited wholesale from the flat stream:
 * records keep their flat indices (Jump/Branch targets remain valid),
 * charge segments keep their edges, and every deopt/OSR/abort exit
 * uses the same machinery as the FTL executor. The chain is a pure
 * host-side acceleration structure — nothing guest-visible lives
 * here.
 */

#include <memory>
#include <vector>

#include "ir/ir.h"

namespace nomap {

/**
 * X-macro list of handler templates (the specs), one per
 * (opcode, operand-shape) pair. Order defines the JitSpec enum and
 * the label-capture table in the executor; keep the two lists (here
 * and jit_executor.cc's JIT_CASE bodies) in sync — a static_assert on
 * the table size enforces it.
 *
 * Cmp* specs bake the BinaryOp subop; CmpOther preserves the FTL
 * executor's "bad compare subop" panic for out-of-range immediates.
 * The CmpBranch and ArithChkOvf entries are the fused
 * superinstruction templates (bound only in non-tx-aware chains; the
 * second record of a fused pair keeps its standalone binding so jump
 * targets may still land on it).
 */
#define NOMAP_JIT_SPEC_LIST(V)                                          \
    V(Nop)                                                              \
    V(Const)                                                            \
    V(Move)                                                             \
    V(AddInt)                                                           \
    V(SubInt)                                                           \
    V(MulInt)                                                           \
    V(NegInt)                                                           \
    V(AddDouble)                                                        \
    V(SubDouble)                                                        \
    V(MulDouble)                                                        \
    V(DivDouble)                                                        \
    V(ModDouble)                                                        \
    V(NegDouble)                                                        \
    V(BitAndInt)                                                        \
    V(BitOrInt)                                                         \
    V(BitXorInt)                                                        \
    V(ShlInt)                                                           \
    V(ShrInt)                                                           \
    V(UShrInt)                                                          \
    V(BitNotInt)                                                        \
    V(CmpLt)                                                            \
    V(CmpLe)                                                            \
    V(CmpGt)                                                            \
    V(CmpGe)                                                            \
    V(CmpEq)                                                            \
    V(CmpNe)                                                            \
    V(CmpOther)                                                         \
    V(ToDouble)                                                         \
    V(ToBoolean)                                                        \
    V(NotBool)                                                          \
    V(CheckInt32)                                                       \
    V(CheckNumber)                                                      \
    V(CheckShape)                                                       \
    V(CheckArray)                                                       \
    V(CheckIndexInt)                                                    \
    V(CheckBounds)                                                      \
    V(CheckBoundsRange)                                                 \
    V(CheckOverflow)                                                    \
    V(CheckNotHole)                                                     \
    V(GetSlot)                                                          \
    V(SetSlot)                                                          \
    V(GetArrayLen)                                                      \
    V(GetElem)                                                          \
    V(SetElem)                                                          \
    V(LoadGlobal)                                                       \
    V(StoreGlobal)                                                      \
    V(GenericBinary)                                                    \
    V(GenericUnary)                                                     \
    V(GenericGetProp)                                                   \
    V(GenericSetProp)                                                   \
    V(GenericGetIndex)                                                  \
    V(GenericSetIndex)                                                  \
    V(NewArray)                                                         \
    V(NewObject)                                                        \
    V(Call)                                                             \
    V(CallNative)                                                       \
    V(Intrinsic)                                                        \
    V(CallMethod)                                                       \
    V(Jump)                                                             \
    V(Branch)                                                           \
    V(Return)                                                           \
    V(ReturnUndef)                                                      \
    V(TxBegin)                                                          \
    V(TxEnd)                                                            \
    V(TxTile)                                                           \
    /* ---- Fused superinstruction templates -------------------- */    \
    V(CmpBranchLt)                                                      \
    V(CmpBranchLe)                                                      \
    V(CmpBranchGt)                                                      \
    V(CmpBranchGe)                                                      \
    V(CmpBranchEq)                                                      \
    V(CmpBranchNe)                                                      \
    V(AddIntChkOvf)                                                     \
    V(SubIntChkOvf)                                                     \
    V(MulIntChkOvf)

/** Handler-template ids (see NOMAP_JIT_SPEC_LIST). */
enum class JitSpec : uint16_t {
#define NOMAP_JIT_SPEC_ENUM(name) name,
    NOMAP_JIT_SPEC_LIST(NOMAP_JIT_SPEC_ENUM)
#undef NOMAP_JIT_SPEC_ENUM
};

/** Number of handler templates (label-table size). */
constexpr size_t kNumJitSpecs =
    static_cast<size_t>(JitSpec::MulIntChkOvf) + 1;

/** Printable spec name (tests, debugging). */
const char *jitSpecName(JitSpec spec);

/**
 * One linked region record: the bound template continuation plus this
 * record's literal-pool slice. Field meanings match ExecInstr
 * (ir/ir.h); `fn` is filled by JitExecutor when the chain is bound
 * against a feature mask (computed-goto builds only — the portable
 * fallback dispatches on `spec`).
 */
struct JitInstr {
    /** Bound handler-template address (label of the live variant). */
    const void *fn = nullptr;
    /** Handler template this record dispatches to. */
    JitSpec spec = JitSpec::Nop;
    /** Original op (kept for introspection/validation, not dispatch). */
    IrOp op = IrOp::Nop;
    /** NoMap converted this check's SMP into a transactional abort. */
    bool converted = false;
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
    /** Jump/Branch: flat index of the target record. */
    uint32_t imm = 0;
    uint32_t imm2 = 0;
    /** Bytecode pc of the SMP this check deopts to (kNoSmp if none). */
    uint32_t smpPc = kNoSmp;
    /** This op's tier-scaled static cost. */
    uint32_t ownScaled = 0;
    /** Cost of [this .. charge-segment end]. */
    uint32_t chargeFrom = 0;
};

/** Sentinel: chain not yet bound against any feature mask. */
constexpr unsigned kJitUnbound = ~0u;

/**
 * One compiled region chain (per FTL-compiled function). Records are
 * index-aligned with IrFunction::flat, so flat branch targets carry
 * over unchanged and the chain's entry is the same segment edge the
 * FTL executor enters at. Invalidate (rebuild) whenever the function
 * is recompiled — records alias nothing, but charge-plan fields must
 * track the live IR.
 */
struct JitChain {
    std::vector<JitInstr> records;
    /**
     * True when the region contains transaction-boundary ops: the
     * executor runs the tx-owner/watchdog-aware variant and the
     * binder disables superinstruction fusion (a fused body would
     * skip the per-op watchdog poll between its two components).
     */
    bool aware = false;
    /** Feature mask `fn` is currently bound for (kJitUnbound: none). */
    unsigned boundFeat = kJitUnbound;
};

/**
 * Compile @p ir's flat stream into a region chain: assign one
 * specialized template per record, fuse superinstruction pairs where
 * legal, and copy the literal pool. Computes the charge plan first if
 * the function never went through compileFunction (hand-built IR in
 * tests). The chain holds no pointers into @p ir.
 */
std::unique_ptr<JitChain> buildJitChain(IrFunction &ir);

} // namespace nomap

#endif // NOMAP_JIT_JIT_CHAIN_H
