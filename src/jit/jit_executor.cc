#include "jit/jit_executor.h"

#include <cmath>

#include "support/logging.h"

/**
 * Template dispatch — the continuation-chain evolution of the FTL
 * executor's direct threading (ftl/ir_executor.cc, which this file
 * mirrors body for body; any observable divergence is a bug caught by
 * tests/test_jit.cc).
 *
 * With NOMAP_COMPUTED_GOTO every template body ends in JIT_NEXT():
 * advance ip, run the per-op accounting/watchdog preamble, then jump
 * straight through the next record's bound label (`goto *ip->fn`).
 * The indirect branch is *replicated into every template* instead of
 * funneling through one shared dispatch site, and the target comes
 * out of the record itself — no dispatch-table load, no opcode
 * decode. Without computed goto the templates compile as a portable
 * switch over JitSpec and JIT_NEXT() loops back to the switch head.
 *
 * Control-flow templates (Jump/Branch/fused compare+branch) and
 * transaction boundaries re-enter at jit_seg_entry, which opens a new
 * batched charge segment exactly like the FTL executor's
 * vm_seg_entry.
 */
#if defined(NOMAP_COMPUTED_GOTO)
#define JIT_CASE(name) lbl_##name:
#define JIT_NEXT()                                                      \
    do {                                                                \
        ++ip;                                                           \
        JIT_PEROP();                                                    \
        goto *ip->fn;                                                   \
    } while (0)
#else
#define JIT_CASE(name) case JitSpec::name:
#define JIT_NEXT()                                                      \
    do {                                                                \
        ++ip;                                                           \
        goto jit_top;                                                   \
    } while (0)
#endif

/** The op just executed ends its charge segment (tx boundary). */
#define JIT_NEXT_NEWSEG()                                               \
    do {                                                                \
        ++ip;                                                           \
        goto jit_seg_entry;                                             \
    } while (0)

/**
 * Per-op preamble, identical to the FTL executor's vm_top: per-op
 * charge in the reference accounting mode, and — in tx-aware chains
 * only — the tx-owner instruction counter, watchdog, and
 * engine.watchdog injection poll. Non-aware chains compile to
 * nothing here (this frame can never own a transaction), which is
 * what makes their continuation chain branch-free between templates.
 */
#define JIT_PEROP()                                                     \
    do {                                                                \
        if constexpr (!kBatched) {                                      \
            env.acct.chargeInstructions(ir.tier, ip->ownScaled,         \
                                        ir.txAware);                    \
        }                                                               \
        if constexpr (kAware) {                                         \
            if (tx_owner) {                                             \
                tx_instr += ip->ownScaled;                              \
                bool kill =                                             \
                    tx_instr > config.txWatchdogInstructions;           \
                if constexpr (kInject) {                                \
                    kill = kill ||                                      \
                           env.inj->fire(                               \
                               FaultSite::EngineTxWatchdog);            \
                }                                                       \
                if (kill) {                                             \
                    if constexpr (kBatched)                             \
                        refundAfterCurrent();                           \
                    env.acct.chargeCycles(                              \
                        env.htm.abort(AbortCode::Irrevocable));         \
                    return resume_baseline();                           \
                }                                                       \
            }                                                           \
        }                                                               \
    } while (0)

/**
 * Advance into the second record of a fused superinstruction: the
 * per-op charge still happens per component (the charge-call sequence
 * — and its cancellation polls — must match FTL executing the two
 * records separately). No watchdog: fused templates are bound only in
 * non-aware chains.
 */
#define JIT_FUSED_ADVANCE()                                             \
    do {                                                                \
        ++ip;                                                           \
        if constexpr (!kBatched) {                                      \
            env.acct.chargeInstructions(ir.tier, ip->ownScaled,         \
                                        ir.txAware);                    \
        }                                                               \
    } while (0)

/**
 * Shared tail of every check template, mirroring the FTL executor's
 * injection/deopt/converted-abort sequence exactly (same injection
 * sites fired in the same order, same deopt counter/trace event, same
 * refund and Baseline re-entry). @p kindConst / @p siteConst are the
 * template's baked CheckKind and injection site; `pass` must be in
 * scope.
 */
#define JIT_CHECK_TAIL(kindConst, siteConst)                            \
    do {                                                                \
        if constexpr (kInject) {                                        \
            if (pass) {                                                 \
                bool force = env.inj->fire(siteConst);                  \
                force |= env.inj->fire(FaultSite::CheckAny);            \
                if (!ip->converted && ip->smpPc != kNoSmp) {            \
                    force |= env.inj->fire(FaultSite::FtlOsr,           \
                                           ip->smpPc);                  \
                }                                                       \
                if (force &&                                            \
                    (ip->converted ? env.htm.inTransaction()            \
                                   : ip->smpPc != kNoSmp)) {            \
                    pass = false;                                       \
                }                                                       \
            }                                                           \
        }                                                               \
        if (pass)                                                       \
            JIT_NEXT();                                                 \
        if (!ip->converted) {                                           \
            ++env.acct.stats().deopts;                                  \
            NOMAP_ASSERT(ip->smpPc != kNoSmp);                          \
            if constexpr (kTrace) {                                     \
                TraceEvent event;                                       \
                event.vcycles = env.acct.virtualCycles();               \
                event.type = TraceEventType::Deopt;                     \
                event.code = static_cast<uint8_t>(kindConst);           \
                event.funcId = ir.funcId;                               \
                event.pc = ip->smpPc;                                   \
                env.trace->emit(event);                                 \
            }                                                           \
            if constexpr (kBatched)                                     \
                refundAfterCurrent();                                   \
            std::vector<Value> locals(R, R + ir.bytecodeRegs);          \
            return baseline.runFrom(fn, locals, ip->smpPc);             \
        }                                                               \
        env.acct.chargeCycles(                                          \
            env.htm.abort(AbortCode::ExplicitCheck));                   \
        if (!tx_owner) {                                                \
            sync_tx_flag();                                             \
            throw TxAbortUnwind{AbortCode::ExplicitCheck};              \
        }                                                               \
        if constexpr (kBatched)                                         \
            refundAfterCurrent();                                       \
        return resume_baseline();                                       \
    } while (0)

// Shape-specialized body stamps. Each expands the shared guarded
// structure of its FTL counterpart with the operator baked in; the
// result lands in R[ip->dst] and (for int arithmetic) OVF[ip->dst].
#define JIT_INT_ARITH(wide_expr)                                        \
    Value va = R[ip->a];                                                \
    Value vb = R[ip->b];                                                \
    if (!va.isInt32() || !vb.isInt32()) {                               \
        NOMAP_ASSERT(env.htm.inTransaction());                          \
        R[ip->dst] = garbageValue();                                    \
        OVF[ip->dst] = 0;                                               \
    } else {                                                            \
        int64_t wide = (wide_expr);                                     \
        bool ovf = wide < INT32_MIN || wide > INT32_MAX;                \
        R[ip->dst] = Value::int32(static_cast<int32_t>(wide));          \
        OVF[ip->dst] = ovf;                                             \
        if (ovf && env.htm.inTransaction())                             \
            env.htm.noteArithmeticOverflow();                           \
    }

#define JIT_DOUBLE_ARITH(result_expr)                                   \
    Value va = R[ip->a];                                                \
    Value vb = R[ip->b];                                                \
    if (!va.isNumber() || !vb.isNumber()) {                             \
        NOMAP_ASSERT(env.htm.inTransaction());                          \
        R[ip->dst] = garbageValue();                                    \
    } else {                                                            \
        double x = va.asNumber();                                       \
        double y = vb.asNumber();                                       \
        R[ip->dst] = Value::number(result_expr);                        \
    }

#define JIT_BITWISE(result_expr)                                        \
    Value va = R[ip->a];                                                \
    Value vb = R[ip->b];                                                \
    if (!va.isInt32() || !vb.isInt32()) {                               \
        NOMAP_ASSERT(env.htm.inTransaction());                          \
        R[ip->dst] = garbageValue();                                    \
    } else {                                                            \
        int32_t x = va.asInt32();                                       \
        [[maybe_unused]] uint32_t sh =                                  \
            static_cast<uint32_t>(vb.asInt32()) & 31;                   \
        R[ip->dst] = (result_expr);                                     \
    }

#define JIT_CMP(cmp_expr)                                               \
    Value va = R[ip->a];                                                \
    Value vb = R[ip->b];                                                \
    if (!va.isNumber() || !vb.isNumber()) {                             \
        NOMAP_ASSERT(env.htm.inTransaction());                          \
        R[ip->dst] = Value::boolean(false);                             \
    } else {                                                            \
        double x = va.asNumber();                                       \
        double y = vb.asNumber();                                       \
        R[ip->dst] = Value::boolean(cmp_expr);                          \
    }

/**
 * Fused compare+branch: the compare result still lands in
 * R[cmp.dst] (the register is part of the baseline mirror a later
 * deopt may hand over), then the Branch record executes in the same
 * template. The FTL Branch body's toBoolean() of the freshly stored
 * boolean is the boolean itself, so the branch takes `taken`
 * directly. Garbage path (non-numeric operands inside a transaction)
 * stores false and falls through, exactly like Cmp-then-Branch.
 */
#define JIT_CMP_BRANCH(cmp_expr)                                        \
    do {                                                                \
        Value va = R[ip->a];                                            \
        Value vb = R[ip->b];                                            \
        bool taken;                                                     \
        if (!va.isNumber() || !vb.isNumber()) {                         \
            NOMAP_ASSERT(env.htm.inTransaction());                      \
            R[ip->dst] = Value::boolean(false);                         \
            taken = false;                                              \
        } else {                                                        \
            double x = va.asNumber();                                   \
            double y = vb.asNumber();                                   \
            taken = (cmp_expr);                                         \
            R[ip->dst] = Value::boolean(taken);                         \
        }                                                               \
        JIT_FUSED_ADVANCE();                                            \
        ip = base + (taken ? ip->imm : ip->imm2);                       \
        goto jit_seg_entry;                                             \
    } while (0)

/** Fused int-arith + CheckOverflow on the arith's destination. */
#define JIT_ARITH_CHK_OVF(wide_expr)                                    \
    do {                                                                \
        JIT_INT_ARITH(wide_expr)                                        \
        JIT_FUSED_ADVANCE();                                            \
        if (ftl)                                                        \
            env.acct.recordCheck(CheckKind::Overflow);                  \
        bool pass = !OVF[ip->a];                                        \
        JIT_CHECK_TAIL(CheckKind::Overflow,                             \
                       FaultSite::CheckOverflow);                       \
    } while (0)

namespace nomap {

namespace {

/** Deterministic garbage produced by unguarded speculative ops. */
Value
garbageValue()
{
    return Value::int32(0);
}

} // namespace

JitExecutor::JitExecutor(ExecEnv &env_, BytecodeExecutor &baseline_,
                         const EngineConfig &config_)
    : env(env_), baseline(baseline_), config(config_)
{
}

template <unsigned kFeat, bool kAware>
const JitExecutor::LabelTable &
JitExecutor::labels()
{
    // Label addresses are plain code addresses of this translation
    // unit, identical across executor instances, so one process-wide
    // capture per variant suffices (thread-safe magic static).
    static const LabelTable table = [] {
        LabelTable t{};
        runImpl<kFeat, kAware>(nullptr, nullptr, nullptr, nullptr,
                               nullptr, 0, t.data());
        return t;
    }();
    return table;
}

void
JitExecutor::bind(JitChain &chain, unsigned feat)
{
#if defined(NOMAP_COMPUTED_GOTO)
    const LabelTable *table = nullptr;
    switch ((chain.aware ? 8u : 0u) | feat) {
#define NOMAP_JIT_BIND_CASE(f, a)                                       \
      case (((a) ? 8u : 0u) | (f)):                                     \
        table = &labels<(f), (a)>();                                    \
        break;
        NOMAP_JIT_BIND_CASE(0u, false)
        NOMAP_JIT_BIND_CASE(1u, false)
        NOMAP_JIT_BIND_CASE(2u, false)
        NOMAP_JIT_BIND_CASE(3u, false)
        NOMAP_JIT_BIND_CASE(4u, false)
        NOMAP_JIT_BIND_CASE(5u, false)
        NOMAP_JIT_BIND_CASE(6u, false)
        NOMAP_JIT_BIND_CASE(7u, false)
        NOMAP_JIT_BIND_CASE(0u, true)
        NOMAP_JIT_BIND_CASE(1u, true)
        NOMAP_JIT_BIND_CASE(2u, true)
        NOMAP_JIT_BIND_CASE(3u, true)
        NOMAP_JIT_BIND_CASE(4u, true)
        NOMAP_JIT_BIND_CASE(5u, true)
        NOMAP_JIT_BIND_CASE(6u, true)
        NOMAP_JIT_BIND_CASE(7u, true)
#undef NOMAP_JIT_BIND_CASE
      default:
        panic("jit: bad feature mask");
    }
    for (JitInstr &r : chain.records)
        r.fn = (*table)[static_cast<size_t>(r.spec)];
#endif
    chain.boundFeat = feat;
}

Value
JitExecutor::run(JitChain &chain, IrFunction &ir, BytecodeFunction &fn,
                 const Value *args, uint32_t nargs)
{
    // Same once-per-run feature selection as IrExecutor::run —
    // rebinding only ever happens when armFaultPlan / accounting mode
    // changed between runs, never under a live frame.
    unsigned feat = (env.perOpAccounting ? 0u : kFeatBatched) |
                    (env.inj ? kFeatInject : 0u) |
                    (env.trace && env.trace->enabled() ? kFeatTrace
                                                       : 0u);
    if (chain.boundFeat != feat)
        bind(chain, feat);

    switch ((chain.aware ? 8u : 0u) | feat) {
#define NOMAP_JIT_RUN_CASE(f, a)                                        \
      case (((a) ? 8u : 0u) | (f)):                                     \
        return runImpl<(f), (a)>(this, &chain, &ir, &fn, args, nargs,   \
                                 nullptr);
        NOMAP_JIT_RUN_CASE(0u, false)
        NOMAP_JIT_RUN_CASE(1u, false)
        NOMAP_JIT_RUN_CASE(2u, false)
        NOMAP_JIT_RUN_CASE(3u, false)
        NOMAP_JIT_RUN_CASE(4u, false)
        NOMAP_JIT_RUN_CASE(5u, false)
        NOMAP_JIT_RUN_CASE(6u, false)
        NOMAP_JIT_RUN_CASE(7u, false)
        NOMAP_JIT_RUN_CASE(0u, true)
        NOMAP_JIT_RUN_CASE(1u, true)
        NOMAP_JIT_RUN_CASE(2u, true)
        NOMAP_JIT_RUN_CASE(3u, true)
        NOMAP_JIT_RUN_CASE(4u, true)
        NOMAP_JIT_RUN_CASE(5u, true)
        NOMAP_JIT_RUN_CASE(6u, true)
        NOMAP_JIT_RUN_CASE(7u, true)
#undef NOMAP_JIT_RUN_CASE
    }
    panic("jit: bad feature mask");
}

template <unsigned kFeat, bool kAware>
Value
JitExecutor::runImpl(JitExecutor *self, JitChain *chain,
                     IrFunction *irp, BytecodeFunction *fnp,
                     const Value *args, uint32_t nargs,
                     const void **capture)
{
    constexpr bool kBatched = (kFeat & kFeatBatched) != 0;
    constexpr bool kInject = (kFeat & kFeatInject) != 0;
    constexpr bool kTrace = (kFeat & kFeatTrace) != 0;

    // Label capture: store every template's address and leave before
    // touching any run operand (they are null in this mode). GCC's
    // -Wdangling-pointer misreads &&label as a local's address; label
    // addresses are code addresses, valid for the process lifetime.
    if (capture) {
#if defined(NOMAP_COMPUTED_GOTO)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdangling-pointer"
#define NOMAP_JIT_CAPTURE(name)                                         \
        capture[static_cast<size_t>(JitSpec::name)] = &&lbl_##name;
        NOMAP_JIT_SPEC_LIST(NOMAP_JIT_CAPTURE)
#undef NOMAP_JIT_CAPTURE
#pragma GCC diagnostic pop
#endif
        return Value::undefined();
    }

    ExecEnv &env = self->env;
    BytecodeExecutor &baseline = self->baseline;
    [[maybe_unused]] const EngineConfig &config = self->config;
    IrFunction &ir = *irp;
    BytecodeFunction &fn = *fnp;

    FrameLease frameLease(env, ir.numRegs);
    FlagLease flagLease(env, ir.numRegs);
    Value *const R = frameLease.regs().data();
    uint8_t *const OVF = flagLease.flags().data();
    for (uint32_t i = 0; i < fn.numParams && i < nargs; ++i)
        R[i] = args[i];
    const Value *const consts = ir.constants.data();

    const bool ftl = ir.tier == Tier::Ftl;
    // Frame prologue + argument marshalling.
    env.acct.chargeInstructions(ir.tier, 8, ir.txAware);

    // Transaction-owner state for this frame (see ir_executor.cc; in
    // non-aware chains the owner flag is provably never set and the
    // per-op watchdog compiles out).
    bool tx_owner = false;
    std::vector<Value> tx_snapshot;
    uint32_t tx_entry_pc = 0;
    [[maybe_unused]] uint64_t tx_instr = 0;
    [[maybe_unused]] uint64_t tile_count = 0;
    // Transactional context when the current segment was charged — a
    // refund must come out of the same cycle bucket even if an abort
    // has flipped the context since.
    bool seg_charged_tm = false;

    const JitInstr *const base = chain->records.data();
    const JitInstr *ip = base;

    auto sync_tx_flag = [&] {
        env.acct.setInTransaction(env.htm.inTransaction());
    };

    // Batched mode: take back the charged-but-unexecuted suffix of
    // the current segment (everything after the op at ip).
    [[maybe_unused]] auto refundAfterCurrent = [&] {
        uint64_t rest =
            static_cast<uint64_t>(ip->chargeFrom) - ip->ownScaled;
        if (rest) {
            env.acct.refundInstructions(ir.tier, rest, ir.txAware,
                                        seg_charged_tm);
        }
    };

    // After an abort (memory already rolled back), re-enter the
    // Baseline tier at the transaction's entry SMP (paper "Entry3").
    auto resume_baseline = [&]() -> Value {
        env.mem.discardSpeculative();
        tx_owner = false;
        sync_tx_flag();
        std::vector<Value> locals(
            tx_snapshot.begin(),
            tx_snapshot.begin() +
                std::min<size_t>(tx_snapshot.size(), ir.bytecodeRegs));
        return baseline.runFrom(fn, locals, tx_entry_pc);
    };

    try {
    jit_seg_entry:
        // Entering a new charge segment: region entry, a branch
        // target, or the record after a transaction-boundary op.
        if constexpr (kBatched) {
            seg_charged_tm = env.acct.inTransaction();
            env.acct.chargeInstructions(ir.tier, ip->chargeFrom,
                                        ir.txAware);
        }

#if !defined(NOMAP_COMPUTED_GOTO)
    jit_top:
#endif
        JIT_PEROP();

        {
#if defined(NOMAP_COMPUTED_GOTO)
            goto *ip->fn;
#else
            switch (ip->spec)
#endif
            {
              JIT_CASE(Nop)
                JIT_NEXT();
              JIT_CASE(Const)
                R[ip->dst] = consts[ip->imm];
                JIT_NEXT();
              JIT_CASE(Move)
                R[ip->dst] = R[ip->a];
                OVF[ip->dst] = OVF[ip->a];
                JIT_NEXT();

              // ---- Integer arithmetic (sets the overflow flag) -----
              JIT_CASE(AddInt) {
                JIT_INT_ARITH(static_cast<int64_t>(va.asInt32()) +
                              vb.asInt32())
                JIT_NEXT();
              }
              JIT_CASE(SubInt) {
                JIT_INT_ARITH(static_cast<int64_t>(va.asInt32()) -
                              vb.asInt32())
                JIT_NEXT();
              }
              JIT_CASE(MulInt) {
                JIT_INT_ARITH(static_cast<int64_t>(va.asInt32()) *
                              vb.asInt32())
                JIT_NEXT();
              }
              JIT_CASE(NegInt) {
                Value va = R[ip->a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                int32_t x = va.asInt32();
                bool ovf = (x == 0) || (x == INT32_MIN);
                R[ip->dst] =
                    Value::int32(ovf && x == INT32_MIN ? x : -x);
                OVF[ip->dst] = ovf;
                if (ovf && env.htm.inTransaction())
                    env.htm.noteArithmeticOverflow();
                JIT_NEXT();
              }

              // ---- Double arithmetic -------------------------------
              JIT_CASE(AddDouble) {
                JIT_DOUBLE_ARITH(x + y)
                JIT_NEXT();
              }
              JIT_CASE(SubDouble) {
                JIT_DOUBLE_ARITH(x - y)
                JIT_NEXT();
              }
              JIT_CASE(MulDouble) {
                JIT_DOUBLE_ARITH(x * y)
                JIT_NEXT();
              }
              JIT_CASE(DivDouble) {
                JIT_DOUBLE_ARITH(x / y)
                JIT_NEXT();
              }
              JIT_CASE(ModDouble) {
                JIT_DOUBLE_ARITH(std::fmod(x, y))
                JIT_NEXT();
              }
              JIT_CASE(NegDouble) {
                Value va = R[ip->a];
                if (!va.isNumber()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                R[ip->dst] = Value::boxDouble(-va.asNumber());
                JIT_NEXT();
              }

              // ---- Bitwise / shifts --------------------------------
              JIT_CASE(BitAndInt) {
                JIT_BITWISE(Value::int32(x & vb.asInt32()))
                JIT_NEXT();
              }
              JIT_CASE(BitOrInt) {
                JIT_BITWISE(Value::int32(x | vb.asInt32()))
                JIT_NEXT();
              }
              JIT_CASE(BitXorInt) {
                JIT_BITWISE(Value::int32(x ^ vb.asInt32()))
                JIT_NEXT();
              }
              JIT_CASE(ShlInt) {
                JIT_BITWISE(Value::int32(x << sh))
                JIT_NEXT();
              }
              JIT_CASE(ShrInt) {
                JIT_BITWISE(Value::int32(x >> sh))
                JIT_NEXT();
              }
              JIT_CASE(UShrInt) {
                JIT_BITWISE(Value::number(static_cast<double>(
                    static_cast<uint32_t>(x) >> sh)))
                JIT_NEXT();
              }
              JIT_CASE(BitNotInt) {
                Value va = R[ip->a];
                if (!va.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                R[ip->dst] = Value::int32(~va.asInt32());
                JIT_NEXT();
              }

              // ---- Comparisons (subop baked per template) ----------
              JIT_CASE(CmpLt) {
                JIT_CMP(x < y)
                JIT_NEXT();
              }
              JIT_CASE(CmpLe) {
                JIT_CMP(x <= y)
                JIT_NEXT();
              }
              JIT_CASE(CmpGt) {
                JIT_CMP(x > y)
                JIT_NEXT();
              }
              JIT_CASE(CmpGe) {
                JIT_CMP(x >= y)
                JIT_NEXT();
              }
              JIT_CASE(CmpEq) {
                JIT_CMP(x == y)
                JIT_NEXT();
              }
              JIT_CASE(CmpNe) {
                JIT_CMP(x != y)
                JIT_NEXT();
              }
              JIT_CASE(CmpOther)
                panic("bad compare subop");

              JIT_CASE(ToDouble)
                R[ip->dst] = Value::boxDouble(R[ip->a].asNumber());
                JIT_NEXT();
              JIT_CASE(ToBoolean)
                R[ip->dst] =
                    Value::boolean(env.runtime.toBoolean(R[ip->a]));
                JIT_NEXT();
              JIT_CASE(NotBool)
                R[ip->dst] = Value::boolean(!R[ip->a].asBoolean());
                JIT_NEXT();

              // ---- Checks (kind and site baked per template) -------
              JIT_CASE(CheckInt32) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Type);
                bool pass = R[ip->a].isInt32();
                JIT_CHECK_TAIL(CheckKind::Type, FaultSite::CheckType);
              }
              JIT_CASE(CheckNumber) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Type);
                bool pass = R[ip->a].isNumber();
                JIT_CHECK_TAIL(CheckKind::Type, FaultSite::CheckType);
              }
              JIT_CASE(CheckShape) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Property);
                Value va = R[ip->a];
                bool pass = va.isObject() &&
                            env.heap.object(va.payload()).shape ==
                                ip->imm;
                JIT_CHECK_TAIL(CheckKind::Property,
                               FaultSite::CheckProperty);
              }
              JIT_CASE(CheckArray) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Type);
                bool pass = R[ip->a].isArray();
                JIT_CHECK_TAIL(CheckKind::Type, FaultSite::CheckType);
              }
              JIT_CASE(CheckIndexInt) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Other);
                bool pass = R[ip->a].isInt32();
                JIT_CHECK_TAIL(CheckKind::Other,
                               FaultSite::CheckOther);
              }
              JIT_CASE(CheckBounds) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Bounds);
                Value va = R[ip->a];
                Value vi = R[ip->b];
                bool pass = va.isArray() && vi.isInt32() &&
                            vi.asInt32() >= 0 &&
                            static_cast<uint32_t>(vi.asInt32()) <
                                env.heap.array(va.payload()).length();
                JIT_CHECK_TAIL(CheckKind::Bounds,
                               FaultSite::CheckBounds);
              }
              JIT_CASE(CheckBoundsRange) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Bounds);
                Value va = R[ip->a];
                Value lo = R[ip->b];
                Value hi = R[ip->c];
                bool pass;
                if (!lo.isInt32() || !hi.isInt32() || !va.isArray()) {
                    pass = false;
                } else if (hi.asInt32() < lo.asInt32()) {
                    pass = true; // Zero-trip loop: vacuous.
                } else {
                    pass = lo.asInt32() >= 0 &&
                           static_cast<uint32_t>(hi.asInt32()) <
                               env.heap.array(va.payload()).length();
                }
                JIT_CHECK_TAIL(CheckKind::Bounds,
                               FaultSite::CheckBounds);
              }
              JIT_CASE(CheckOverflow) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Overflow);
                bool pass = !OVF[ip->a];
                JIT_CHECK_TAIL(CheckKind::Overflow,
                               FaultSite::CheckOverflow);
              }
              JIT_CASE(CheckNotHole) {
                if (ftl)
                    env.acct.recordCheck(CheckKind::Other);
                bool pass = !R[ip->a].isUndefined();
                JIT_CHECK_TAIL(CheckKind::Other,
                               FaultSite::CheckOther);
              }

              // ---- Memory ------------------------------------------
              JIT_CASE(GetSlot) {
                Value va = R[ip->a];
                if (!va.isObject()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                const JsObject &obj = env.heap.object(va.payload());
                if (ip->imm >= obj.slots.size()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                R[ip->dst] = obj.slots[ip->imm];
                env.memAccess(obj.baseAddr + 8ull * ip->imm, false);
                JIT_NEXT();
              }
              JIT_CASE(SetSlot) {
                Value va = R[ip->a];
                if (!va.isObject()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    JIT_NEXT(); // Speculative store to nowhere.
                }
                const JsObject &obj = env.heap.object(va.payload());
                if (ip->imm >= obj.slots.size()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    JIT_NEXT(); // Speculative store to nowhere.
                }
                env.heap.setSlot(va.payload(), ip->imm, R[ip->b]);
                env.memAccess(obj.baseAddr + 8ull * ip->imm, true);
                JIT_NEXT();
              }
              JIT_CASE(GetArrayLen) {
                Value va = R[ip->a];
                if (!va.isArray()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                const JsArray &arr = env.heap.array(va.payload());
                R[ip->dst] = Value::int32(
                    static_cast<int32_t>(arr.length()));
                env.memAccess(arr.baseAddr, false);
                JIT_NEXT();
              }
              JIT_CASE(GetElem) {
                Value va = R[ip->a];
                Value vi = R[ip->b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    JIT_NEXT();
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    R[ip->dst] = garbageValue();
                    if (i >= 0) {
                        env.memAccess(
                            arr.baseAddr +
                                8ull * static_cast<uint32_t>(i),
                            false);
                    }
                    JIT_NEXT();
                }
                R[ip->dst] = arr.storage[static_cast<size_t>(i)];
                env.memAccess(arr.baseAddr +
                                  8ull * static_cast<uint32_t>(i),
                              false);
                JIT_NEXT();
              }
              JIT_CASE(SetElem) {
                Value va = R[ip->a];
                Value vi = R[ip->b];
                if (!va.isArray() || !vi.isInt32()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    JIT_NEXT();
                }
                const JsArray &arr = env.heap.array(va.payload());
                int32_t i = vi.asInt32();
                if (i < 0 ||
                    static_cast<uint32_t>(i) >= arr.length()) {
                    NOMAP_ASSERT(env.htm.inTransaction());
                    if (i >= 0) {
                        Addr addr = arr.baseAddr +
                                    8ull * static_cast<uint32_t>(i);
                        if (!env.htm.recordWrite(addr))
                            throw TxAbortUnwind{AbortCode::Capacity};
                        env.memAccess(addr, true);
                    }
                    JIT_NEXT(); // Speculative OOB store: dropped.
                }
                env.heap.setElementFast(va.payload(),
                                        static_cast<uint32_t>(i),
                                        R[ip->c]);
                env.memAccess(arr.baseAddr +
                                  8ull * static_cast<uint32_t>(i),
                              true);
                JIT_NEXT();
              }
              JIT_CASE(LoadGlobal)
                R[ip->dst] = env.heap.getGlobal(ip->imm);
                env.memAccess(env.heap.globalAddr(ip->imm), false);
                JIT_NEXT();
              JIT_CASE(StoreGlobal)
                env.heap.setGlobal(ip->imm, R[ip->a]);
                env.memAccess(env.heap.globalAddr(ip->imm), true);
                JIT_NEXT();

              // ---- Generic runtime fallbacks -----------------------
              JIT_CASE(GenericBinary)
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                R[ip->dst] = env.runtime.applyBinary(
                    static_cast<BinaryOp>(ip->imm), R[ip->a],
                    R[ip->b]);
                JIT_NEXT();
              JIT_CASE(GenericUnary)
                env.acct.chargeRuntime(CostModel::kRuntimeGenericOp);
                R[ip->dst] = env.runtime.applyUnary(
                    static_cast<UnaryOp>(ip->imm), R[ip->a]);
                JIT_NEXT();
              JIT_CASE(GenericGetProp) {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                R[ip->dst] = env.runtime.getPropertyGeneric(
                    R[ip->a], ip->imm, &addr);
                env.memAccess(addr, false);
                JIT_NEXT();
              }
              JIT_CASE(GenericSetProp) {
                env.acct.chargeRuntime(CostModel::kRuntimePropAccess);
                Addr addr = 0;
                env.runtime.setPropertyGeneric(R[ip->a], ip->imm,
                                               R[ip->b], &addr);
                env.memAccess(addr, true);
                JIT_NEXT();
              }
              JIT_CASE(GenericGetIndex) {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                R[ip->dst] = env.runtime.getIndexGeneric(
                    R[ip->a], R[ip->b], &addr);
                env.memAccess(addr, false);
                JIT_NEXT();
              }
              JIT_CASE(GenericSetIndex) {
                env.acct.chargeRuntime(CostModel::kRuntimeIndexAccess);
                Addr addr = 0;
                env.runtime.setIndexGeneric(R[ip->a], R[ip->b],
                                            R[ip->c], &addr);
                env.memAccess(addr, true);
                JIT_NEXT();
              }
              JIT_CASE(NewArray) {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value arr = env.heap.allocArray(ip->imm);
                for (uint32_t i = 0; i < ip->imm; ++i) {
                    env.heap.setElementFast(arr.payload(), i,
                                            R[ip->a + i]);
                }
                R[ip->dst] = arr;
                JIT_NEXT();
              }
              JIT_CASE(NewObject) {
                env.acct.chargeRuntime(CostModel::kRuntimeAllocation);
                Value obj = env.heap.allocObject();
                // The descriptor lives in the bytecode function.
                const ObjectDesc &desc = fn.objectDescs[ip->imm];
                for (uint32_t i = 0; i < ip->b; ++i) {
                    env.heap.setProperty(obj.payload(),
                                         desc.nameIds[i],
                                         R[ip->a + i]);
                }
                R[ip->dst] = obj;
                JIT_NEXT();
              }

              // ---- Calls -------------------------------------------
              JIT_CASE(Call)
                R[ip->dst] =
                    env.dispatcher.call(ip->imm, R + ip->a, ip->b);
                JIT_NEXT();
              JIT_CASE(CallNative) {
                auto bid = static_cast<BuiltinId>(ip->imm);
                if (bid == BuiltinId::Print)
                    env.irrevocableEvent();
                env.acct.chargeRuntime(CostModel::kRuntimeNativeCall);
                R[ip->dst] = env.builtins.call(bid, R + ip->a, ip->b);
                JIT_NEXT();
              }
              JIT_CASE(Intrinsic)
                R[ip->dst] = env.builtins.call(
                    static_cast<BuiltinId>(ip->imm), R + ip->a, ip->b);
                JIT_NEXT();
              JIT_CASE(CallMethod) {
                env.acct.chargeRuntime(CostModel::kRuntimeMethodCall);
                uint32_t name_id = ip->imm / 16;
                uint32_t margs = ip->imm % 16;
                R[ip->dst] = env.builtins.callMethod(
                    R[ip->a], name_id, R + ip->b, margs);
                JIT_NEXT();
              }

              // ---- Control flow ------------------------------------
              JIT_CASE(Jump)
                ip = base + ip->imm;
                goto jit_seg_entry;
              JIT_CASE(Branch) {
                bool taken = env.runtime.toBoolean(R[ip->a]);
                ip = base + (taken ? ip->imm : ip->imm2);
                goto jit_seg_entry;
              }
              JIT_CASE(Return)
                NOMAP_ASSERT(!tx_owner);
                return R[ip->a];
              JIT_CASE(ReturnUndef)
                NOMAP_ASSERT(!tx_owner);
                return Value::undefined();

              // ---- Transactions (aware chains only) ----------------
              JIT_CASE(TxBegin) {
                if constexpr (!kAware) {
                    panic("jit: tx template in non-aware chain");
                } else {
                    bool outermost = !env.htm.inTransaction();
                    if (outermost)
                        env.htm.setTraceContext(ir.funcId, ip->smpPc);
                    env.acct.chargeCycles(env.htm.begin());
                    sync_tx_flag();
                    if (outermost) {
                        tx_owner = true;
                        tx_snapshot.assign(R, R + ir.bytecodeRegs);
                        tx_entry_pc = ip->smpPc;
                        tx_instr = 0;
                        tile_count = 0;
                        AbortCode injected =
                            env.htm.takePendingInjectedAbort();
                        if (injected != AbortCode::None) {
                            if constexpr (kBatched)
                                refundAfterCurrent();
                            env.acct.chargeCycles(
                                env.htm.abort(injected));
                            return resume_baseline();
                        }
                    }
                    JIT_NEXT_NEWSEG();
                }
              }
              JIT_CASE(TxEnd) {
                if constexpr (!kAware) {
                    panic("jit: tx template in non-aware chain");
                } else {
                    CommitResult r = env.htm.end();
                    env.acct.chargeCycles(r.cycles);
                    if (r.committed) {
                        if (!env.htm.inTransaction()) {
                            env.mem.commitSpeculative();
                            tx_owner = false;
                        }
                        sync_tx_flag();
                        JIT_NEXT_NEWSEG();
                    }
                    // SOF abort at commit (paper Figure 7).
                    if (!tx_owner) {
                        sync_tx_flag();
                        throw TxAbortUnwind{r.abortCode};
                    }
                    if constexpr (kBatched)
                        refundAfterCurrent();
                    return resume_baseline();
                }
              }
              JIT_CASE(TxTile) {
                if constexpr (!kAware) {
                    panic("jit: tx template in non-aware chain");
                } else {
                    if (!tx_owner)
                        JIT_NEXT_NEWSEG(); // Nested: tiling disabled.
                    ++tile_count;
                    if (tile_count % ip->imm != 0)
                        JIT_NEXT_NEWSEG();
                    CommitResult r = env.htm.end();
                    env.acct.chargeCycles(r.cycles);
                    if (!r.committed) {
                        if constexpr (kBatched)
                            refundAfterCurrent();
                        return resume_baseline();
                    }
                    env.mem.commitSpeculative();
                    env.htm.setTraceContext(ir.funcId, ip->smpPc);
                    env.acct.chargeCycles(env.htm.begin());
                    tx_snapshot.assign(R, R + ir.bytecodeRegs);
                    tx_entry_pc = ip->smpPc;
                    tx_instr = 0;
                    {
                        AbortCode injected =
                            env.htm.takePendingInjectedAbort();
                        if (injected != AbortCode::None) {
                            if constexpr (kBatched)
                                refundAfterCurrent();
                            env.acct.chargeCycles(
                                env.htm.abort(injected));
                            return resume_baseline();
                        }
                    }
                    JIT_NEXT_NEWSEG();
                }
              }

              // ---- Fused superinstruction templates ----------------
              // Bound only in non-aware chains (buildJitChain): the
              // second component's per-op charge happens inside the
              // template, so the observable accounting sequence is
              // identical to FTL executing the two records back to
              // back.
              JIT_CASE(CmpBranchLt)
                JIT_CMP_BRANCH(x < y);
              JIT_CASE(CmpBranchLe)
                JIT_CMP_BRANCH(x <= y);
              JIT_CASE(CmpBranchGt)
                JIT_CMP_BRANCH(x > y);
              JIT_CASE(CmpBranchGe)
                JIT_CMP_BRANCH(x >= y);
              JIT_CASE(CmpBranchEq)
                JIT_CMP_BRANCH(x == y);
              JIT_CASE(CmpBranchNe)
                JIT_CMP_BRANCH(x != y);
              JIT_CASE(AddIntChkOvf)
                JIT_ARITH_CHK_OVF(static_cast<int64_t>(va.asInt32()) +
                                  vb.asInt32());
              JIT_CASE(SubIntChkOvf)
                JIT_ARITH_CHK_OVF(static_cast<int64_t>(va.asInt32()) -
                                  vb.asInt32());
              JIT_CASE(MulIntChkOvf)
                JIT_ARITH_CHK_OVF(static_cast<int64_t>(va.asInt32()) *
                                  vb.asInt32());
            }
        }
#if !defined(NOMAP_COMPUTED_GOTO)
        panic("jit: bad template spec");
#endif
    } catch (TxAbortUnwind &) {
        if constexpr (kBatched) {
            // The charged segment's ops after the faulting one never
            // executed — whether the throw came from this frame's own
            // converted check / capacity overflow or surfaced out of
            // a callee. (ExecutionCancelled is deliberately NOT
            // caught: cancellation voids the stats and the engine
            // must be reset, so there is nothing to refund.)
            refundAfterCurrent();
        }
        if (!tx_owner) {
            sync_tx_flag();
            throw; // Outer frame owns the transaction.
        }
        return resume_baseline();
    }
}

#undef JIT_CASE
#undef JIT_NEXT
#undef JIT_NEXT_NEWSEG
#undef JIT_PEROP
#undef JIT_FUSED_ADVANCE
#undef JIT_CHECK_TAIL
#undef JIT_INT_ARITH
#undef JIT_DOUBLE_ARITH
#undef JIT_BITWISE
#undef JIT_CMP
#undef JIT_CMP_BRANCH
#undef JIT_ARITH_CHK_OVF

} // namespace nomap
