#ifndef NOMAP_JIT_JIT_EXECUTOR_H
#define NOMAP_JIT_JIT_EXECUTOR_H

/**
 * @file
 * The region template-compilation tier (EngineConfig::jitTier).
 *
 * Executes a JitChain (jit_chain.h): each record carries the address
 * of a build-time-compiled handler template specialized for its
 * (opcode, operand-shape) pair, and each template ends by jumping
 * straight through the *next record's* bound address — so a hot
 * region runs as a chain of continuations with zero dispatch-table
 * lookups, zero opcode decode, and zero operand-shape tests, its
 * indirect branches replicated per template so the host BTB learns
 * the region's actual control flow (the vmgen/gforth replication
 * trick, applied to bound per-record continuations).
 *
 * Everything observable is shared with the FTL executor
 * (ftl/ir_executor.cc), whose runImpl this loop mirrors body for
 * body: the same ExecEnv, the same Accounting calls in the same
 * order (segment charges, per-op charges, runtime/check charges,
 * cancellation polls), the same fault-injection sites firing in the
 * same occurrence order, the same trace events, the same
 * deopt/OSR-into-Baseline and transactional abort/unwind paths. The
 * compiled tier is bit-identical to FTL in results, ExecutionStats,
 * and trace streams — enforced by tests/test_jit.cc — so it is a
 * pure host-speed tier, exactly like quickening and batching before
 * it.
 *
 * Without NOMAP_COMPUTED_GOTO the templates compile as a portable
 * switch over JitSpec and the per-record `fn` bindings go unused;
 * specialization (split bodies, fused superinstructions) still
 * applies.
 */

#include <array>

#include "engine/config.h"
#include "interp/bytecode_executor.h"
#include "jit/jit_chain.h"

namespace nomap {

/** Executes one compiled-region invocation (including nested tiers). */
class JitExecutor
{
  public:
    JitExecutor(ExecEnv &env, BytecodeExecutor &baseline,
                const EngineConfig &config);

    /**
     * Run @p chain (compiled from @p ir, which stays the source of
     * truth for tier/txAware/constants). @p fn is the bytecode
     * function (deopt target / profiles). Rebinds the chain's
     * template addresses if the engine's feature mask changed since
     * the last run. May recursively dispatch calls through
     * env.dispatcher.
     */
    Value run(JitChain &chain, IrFunction &ir, BytecodeFunction &fn,
              const Value *args, uint32_t nargs);

  private:
    // Feature mask bits, identical to IrExecutor's: each combination
    // is a separately compiled copy of the continuation templates,
    // selected (and bound into the chain) once per run.
    static constexpr unsigned kFeatBatched = 1u;
    static constexpr unsigned kFeatInject = 2u;
    static constexpr unsigned kFeatTrace = 4u;

    using LabelTable = std::array<const void *, kNumJitSpecs>;

    /**
     * The template bodies. Static (not a member) so the label-capture
     * call can run without an instance: when @p capture is non-null
     * the function stores every template's label address into it and
     * returns immediately — @p self and the run operands may be null.
     * kAware compiles the tx-owner/watchdog machinery; non-aware
     * chains (no transaction-boundary ops, so this frame can never
     * own a transaction) run the lean variant where the fused
     * superinstruction templates live.
     */
    template <unsigned kFeat, bool kAware>
    static Value runImpl(JitExecutor *self, JitChain *chain,
                         IrFunction *ir, BytecodeFunction *fn,
                         const Value *args, uint32_t nargs,
                         const void **capture);

    /** Memoized label table of one template variant. */
    template <unsigned kFeat, bool kAware>
    static const LabelTable &labels();

    /** Bind every record's `fn` for @p feat (and chain->aware). */
    static void bind(JitChain &chain, unsigned feat);

    ExecEnv &env;
    BytecodeExecutor &baseline;
    const EngineConfig &config;
};

} // namespace nomap

#endif // NOMAP_JIT_JIT_EXECUTOR_H
