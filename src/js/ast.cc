#include "js/ast.h"

#include <sstream>

#include "support/logging.h"

namespace nomap {

namespace {

const char *
binaryOpName(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Mod: return "%";
      case BinaryOp::BitAnd: return "&";
      case BinaryOp::BitOr: return "|";
      case BinaryOp::BitXor: return "^";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::UShr: return ">>>";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::NotEq: return "!=";
      case BinaryOp::StrictEq: return "===";
      case BinaryOp::StrictNotEq: return "!==";
    }
    return "?";
}

void
print(const Expr &expr, std::ostringstream &out)
{
    switch (expr.kind) {
      case ExprKind::NumberLit:
        out << static_cast<const NumberLitExpr &>(expr).value;
        break;
      case ExprKind::StringLit:
        out << '"' << static_cast<const StringLitExpr &>(expr).value
            << '"';
        break;
      case ExprKind::BoolLit:
        out << (static_cast<const BoolLitExpr &>(expr).value ? "true"
                                                             : "false");
        break;
      case ExprKind::NullLit:
        out << "null";
        break;
      case ExprKind::UndefinedLit:
        out << "undefined";
        break;
      case ExprKind::ArrayLit: {
        const auto &arr = static_cast<const ArrayLitExpr &>(expr);
        out << '[';
        for (size_t i = 0; i < arr.elements.size(); ++i) {
            if (i)
                out << ", ";
            print(*arr.elements[i], out);
        }
        out << ']';
        break;
      }
      case ExprKind::ObjectLit: {
        const auto &obj = static_cast<const ObjectLitExpr &>(expr);
        out << '{';
        for (size_t i = 0; i < obj.properties.size(); ++i) {
            if (i)
                out << ", ";
            out << obj.properties[i].first << ": ";
            print(*obj.properties[i].second, out);
        }
        out << '}';
        break;
      }
      case ExprKind::Ident:
        out << static_cast<const IdentExpr &>(expr).name;
        break;
      case ExprKind::Unary: {
        const auto &un = static_cast<const UnaryExpr &>(expr);
        switch (un.op) {
          case UnaryOp::Neg: out << "-"; break;
          case UnaryOp::Plus: out << "+"; break;
          case UnaryOp::Not: out << "!"; break;
          case UnaryOp::BitNot: out << "~"; break;
          case UnaryOp::Typeof: out << "typeof "; break;
        }
        out << '(';
        print(*un.operand, out);
        out << ')';
        break;
      }
      case ExprKind::Binary: {
        const auto &bin = static_cast<const BinaryExpr &>(expr);
        out << '(';
        print(*bin.lhs, out);
        out << ' ' << binaryOpName(bin.op) << ' ';
        print(*bin.rhs, out);
        out << ')';
        break;
      }
      case ExprKind::Logical: {
        const auto &log = static_cast<const LogicalExpr &>(expr);
        out << '(';
        print(*log.lhs, out);
        out << (log.op == LogicalOp::And ? " && " : " || ");
        print(*log.rhs, out);
        out << ')';
        break;
      }
      case ExprKind::Conditional: {
        const auto &c = static_cast<const ConditionalExpr &>(expr);
        out << '(';
        print(*c.cond, out);
        out << " ? ";
        print(*c.thenExpr, out);
        out << " : ";
        print(*c.elseExpr, out);
        out << ')';
        break;
      }
      case ExprKind::Assign: {
        const auto &a = static_cast<const AssignExpr &>(expr);
        print(*a.target, out);
        out << " = ";
        print(*a.value, out);
        break;
      }
      case ExprKind::CompoundAssign: {
        const auto &a = static_cast<const CompoundAssignExpr &>(expr);
        print(*a.target, out);
        out << ' ' << binaryOpName(a.op) << "= ";
        print(*a.value, out);
        break;
      }
      case ExprKind::PreIncDec: {
        const auto &p = static_cast<const PreIncDecExpr &>(expr);
        out << (p.isIncrement ? "++" : "--");
        print(*p.target, out);
        break;
      }
      case ExprKind::PostIncDec: {
        const auto &p = static_cast<const PostIncDecExpr &>(expr);
        print(*p.target, out);
        out << (p.isIncrement ? "++" : "--");
        break;
      }
      case ExprKind::Member: {
        const auto &m = static_cast<const MemberExpr &>(expr);
        print(*m.object, out);
        out << '.' << m.property;
        break;
      }
      case ExprKind::Index: {
        const auto &ix = static_cast<const IndexExpr &>(expr);
        print(*ix.object, out);
        out << '[';
        print(*ix.index, out);
        out << ']';
        break;
      }
      case ExprKind::Call: {
        const auto &call = static_cast<const CallExpr &>(expr);
        print(*call.callee, out);
        out << '(';
        for (size_t i = 0; i < call.args.size(); ++i) {
            if (i)
                out << ", ";
            print(*call.args[i], out);
        }
        out << ')';
        break;
      }
    }
}

} // namespace

std::string
exprToString(const Expr &expr)
{
    std::ostringstream out;
    print(expr, out);
    return out.str();
}

} // namespace nomap
