#ifndef NOMAP_JS_AST_H
#define NOMAP_JS_AST_H

/**
 * @file
 * Abstract syntax tree for the JavaScript subset.
 *
 * The subset is deliberately closure-free: all functions are declared
 * at the top level and identifiers resolve to parameters, function
 * locals, other functions, or globals. This keeps frame layout flat,
 * which is what lets the tiers share a simple register-file frame and
 * makes OSR stack maps exact.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nomap {

/** Discriminator for Expr subclasses. */
enum class ExprKind : uint8_t {
    NumberLit, StringLit, BoolLit, NullLit, UndefinedLit,
    ArrayLit, ObjectLit,
    Ident,
    Unary, Binary, Logical, Conditional,
    Assign, CompoundAssign, PreIncDec, PostIncDec,
    Member,     // obj.prop
    Index,      // obj[expr]
    Call,       // f(args) or obj.method(args)
};

/** Discriminator for Stmt subclasses. */
enum class StmtKind : uint8_t {
    Expression, VarDecl, Block, If, While, DoWhile, For,
    Return, Break, Continue, Empty, Switch,
};

/** Unary operators. */
enum class UnaryOp : uint8_t { Neg, Plus, Not, BitNot, Typeof };

/** Binary operators (arithmetic, bitwise, comparison). */
enum class BinaryOp : uint8_t {
    Add, Sub, Mul, Div, Mod,
    BitAnd, BitOr, BitXor, Shl, Shr, UShr,
    Lt, Le, Gt, Ge, Eq, NotEq, StrictEq, StrictNotEq,
};

/** Short-circuit operators. */
enum class LogicalOp : uint8_t { And, Or };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Base class for all expressions. */
struct Expr {
    explicit Expr(ExprKind k) : kind(k) {}
    virtual ~Expr() = default;

    ExprKind kind;
    uint32_t line = 0;
};

struct NumberLitExpr : Expr {
    explicit NumberLitExpr(double v)
        : Expr(ExprKind::NumberLit), value(v) {}
    double value;
};

struct StringLitExpr : Expr {
    explicit StringLitExpr(std::string v)
        : Expr(ExprKind::StringLit), value(std::move(v)) {}
    std::string value;
};

struct BoolLitExpr : Expr {
    explicit BoolLitExpr(bool v) : Expr(ExprKind::BoolLit), value(v) {}
    bool value;
};

struct NullLitExpr : Expr {
    NullLitExpr() : Expr(ExprKind::NullLit) {}
};

struct UndefinedLitExpr : Expr {
    UndefinedLitExpr() : Expr(ExprKind::UndefinedLit) {}
};

struct ArrayLitExpr : Expr {
    ArrayLitExpr() : Expr(ExprKind::ArrayLit) {}
    std::vector<ExprPtr> elements;
};

struct ObjectLitExpr : Expr {
    ObjectLitExpr() : Expr(ExprKind::ObjectLit) {}
    std::vector<std::pair<std::string, ExprPtr>> properties;
};

struct IdentExpr : Expr {
    explicit IdentExpr(std::string n)
        : Expr(ExprKind::Ident), name(std::move(n)) {}
    std::string name;
};

struct UnaryExpr : Expr {
    UnaryExpr(UnaryOp o, ExprPtr e)
        : Expr(ExprKind::Unary), op(o), operand(std::move(e)) {}
    UnaryOp op;
    ExprPtr operand;
};

struct BinaryExpr : Expr {
    BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
        : Expr(ExprKind::Binary), op(o),
          lhs(std::move(l)), rhs(std::move(r)) {}
    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct LogicalExpr : Expr {
    LogicalExpr(LogicalOp o, ExprPtr l, ExprPtr r)
        : Expr(ExprKind::Logical), op(o),
          lhs(std::move(l)), rhs(std::move(r)) {}
    LogicalOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct ConditionalExpr : Expr {
    ConditionalExpr(ExprPtr c, ExprPtr t, ExprPtr f)
        : Expr(ExprKind::Conditional), cond(std::move(c)),
          thenExpr(std::move(t)), elseExpr(std::move(f)) {}
    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;
};

/** target = value, where target is Ident, Member, or Index. */
struct AssignExpr : Expr {
    AssignExpr(ExprPtr t, ExprPtr v)
        : Expr(ExprKind::Assign), target(std::move(t)),
          value(std::move(v)) {}
    ExprPtr target;
    ExprPtr value;
};

/** target op= value. */
struct CompoundAssignExpr : Expr {
    CompoundAssignExpr(BinaryOp o, ExprPtr t, ExprPtr v)
        : Expr(ExprKind::CompoundAssign), op(o),
          target(std::move(t)), value(std::move(v)) {}
    BinaryOp op;
    ExprPtr target;
    ExprPtr value;
};

/** ++x / --x. */
struct PreIncDecExpr : Expr {
    PreIncDecExpr(bool inc, ExprPtr t)
        : Expr(ExprKind::PreIncDec), isIncrement(inc),
          target(std::move(t)) {}
    bool isIncrement;
    ExprPtr target;
};

/** x++ / x--. */
struct PostIncDecExpr : Expr {
    PostIncDecExpr(bool inc, ExprPtr t)
        : Expr(ExprKind::PostIncDec), isIncrement(inc),
          target(std::move(t)) {}
    bool isIncrement;
    ExprPtr target;
};

struct MemberExpr : Expr {
    MemberExpr(ExprPtr obj, std::string prop)
        : Expr(ExprKind::Member), object(std::move(obj)),
          property(std::move(prop)) {}
    ExprPtr object;
    std::string property;
};

struct IndexExpr : Expr {
    IndexExpr(ExprPtr obj, ExprPtr idx)
        : Expr(ExprKind::Index), object(std::move(obj)),
          index(std::move(idx)) {}
    ExprPtr object;
    ExprPtr index;
};

struct CallExpr : Expr {
    explicit CallExpr(ExprPtr c)
        : Expr(ExprKind::Call), callee(std::move(c)) {}
    ExprPtr callee; ///< Ident or Member (for builtins like Math.sqrt).
    std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Base class for all statements. */
struct Stmt {
    explicit Stmt(StmtKind k) : kind(k) {}
    virtual ~Stmt() = default;

    StmtKind kind;
    uint32_t line = 0;
};

struct ExpressionStmt : Stmt {
    explicit ExpressionStmt(ExprPtr e)
        : Stmt(StmtKind::Expression), expr(std::move(e)) {}
    ExprPtr expr;
};

struct VarDeclStmt : Stmt {
    VarDeclStmt() : Stmt(StmtKind::VarDecl) {}
    /** Each declarator: name and optional initializer. */
    std::vector<std::pair<std::string, ExprPtr>> decls;
};

struct BlockStmt : Stmt {
    BlockStmt() : Stmt(StmtKind::Block) {}
    std::vector<StmtPtr> body;
};

struct IfStmt : Stmt {
    IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
        : Stmt(StmtKind::If), cond(std::move(c)),
          thenStmt(std::move(t)), elseStmt(std::move(e)) {}
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
};

struct WhileStmt : Stmt {
    WhileStmt(ExprPtr c, StmtPtr b)
        : Stmt(StmtKind::While), cond(std::move(c)),
          body(std::move(b)) {}
    ExprPtr cond;
    StmtPtr body;
};

struct DoWhileStmt : Stmt {
    DoWhileStmt(StmtPtr b, ExprPtr c)
        : Stmt(StmtKind::DoWhile), body(std::move(b)),
          cond(std::move(c)) {}
    StmtPtr body;
    ExprPtr cond;
};

struct ForStmt : Stmt {
    ForStmt() : Stmt(StmtKind::For) {}
    StmtPtr init;   ///< VarDecl or Expression; may be null
    ExprPtr cond;   ///< may be null (infinite)
    ExprPtr update; ///< may be null
    StmtPtr body;
};

struct ReturnStmt : Stmt {
    explicit ReturnStmt(ExprPtr v)
        : Stmt(StmtKind::Return), value(std::move(v)) {}
    ExprPtr value; ///< may be null (returns undefined)
};

struct BreakStmt : Stmt {
    BreakStmt() : Stmt(StmtKind::Break) {}
};

struct ContinueStmt : Stmt {
    ContinueStmt() : Stmt(StmtKind::Continue) {}
};

struct EmptyStmt : Stmt {
    EmptyStmt() : Stmt(StmtKind::Empty) {}
};

/** One `case expr:` (or `default:` when test is null) clause. */
struct SwitchClause {
    ExprPtr test; ///< null for default.
    std::vector<StmtPtr> body;
};

/** switch with C-style fall-through; break exits the switch. */
struct SwitchStmt : Stmt {
    explicit SwitchStmt(ExprPtr d)
        : Stmt(StmtKind::Switch), discriminant(std::move(d)) {}
    ExprPtr discriminant;
    std::vector<SwitchClause> clauses;
};

/** A top-level function declaration. */
struct FunctionDecl {
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    uint32_t line = 0;
};

/** A whole parsed program: functions plus top-level statements. */
struct Program {
    std::vector<std::unique_ptr<FunctionDecl>> functions;
    std::vector<StmtPtr> topLevel;
};

/** Pretty-print an expression (used in tests and diagnostics). */
std::string exprToString(const Expr &expr);

} // namespace nomap

#endif // NOMAP_JS_AST_H
