#include "js/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/logging.h"

namespace nomap {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::EndOfFile: return "eof";
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Number: return "number";
      case TokenKind::String: return "string";
      case TokenKind::KwVar: return "var";
      case TokenKind::KwFunction: return "function";
      case TokenKind::KwReturn: return "return";
      case TokenKind::KwIf: return "if";
      case TokenKind::KwElse: return "else";
      case TokenKind::KwWhile: return "while";
      case TokenKind::KwDo: return "do";
      case TokenKind::KwFor: return "for";
      case TokenKind::KwBreak: return "break";
      case TokenKind::KwContinue: return "continue";
      case TokenKind::KwTrue: return "true";
      case TokenKind::KwFalse: return "false";
      case TokenKind::KwNull: return "null";
      case TokenKind::KwUndefined: return "undefined";
      case TokenKind::KwTypeof: return "typeof";
      case TokenKind::KwSwitch: return "switch";
      case TokenKind::KwCase: return "case";
      case TokenKind::KwDefault: return "default";
      case TokenKind::LParen: return "(";
      case TokenKind::RParen: return ")";
      case TokenKind::LBrace: return "{";
      case TokenKind::RBrace: return "}";
      case TokenKind::LBracket: return "[";
      case TokenKind::RBracket: return "]";
      case TokenKind::Semicolon: return ";";
      case TokenKind::Comma: return ",";
      case TokenKind::Dot: return ".";
      case TokenKind::Colon: return ":";
      case TokenKind::Question: return "?";
      case TokenKind::Assign: return "=";
      case TokenKind::PlusAssign: return "+=";
      case TokenKind::MinusAssign: return "-=";
      case TokenKind::StarAssign: return "*=";
      case TokenKind::SlashAssign: return "/=";
      case TokenKind::PercentAssign: return "%=";
      case TokenKind::AndAssign: return "&=";
      case TokenKind::OrAssign: return "|=";
      case TokenKind::XorAssign: return "^=";
      case TokenKind::ShlAssign: return "<<=";
      case TokenKind::ShrAssign: return ">>=";
      case TokenKind::UShrAssign: return ">>>=";
      case TokenKind::Plus: return "+";
      case TokenKind::Minus: return "-";
      case TokenKind::Star: return "*";
      case TokenKind::Slash: return "/";
      case TokenKind::Percent: return "%";
      case TokenKind::PlusPlus: return "++";
      case TokenKind::MinusMinus: return "--";
      case TokenKind::EqEq: return "==";
      case TokenKind::NotEq: return "!=";
      case TokenKind::EqEqEq: return "===";
      case TokenKind::NotEqEq: return "!==";
      case TokenKind::Lt: return "<";
      case TokenKind::Gt: return ">";
      case TokenKind::Le: return "<=";
      case TokenKind::Ge: return ">=";
      case TokenKind::AndAnd: return "&&";
      case TokenKind::OrOr: return "||";
      case TokenKind::Not: return "!";
      case TokenKind::BitAnd: return "&";
      case TokenKind::BitOr: return "|";
      case TokenKind::BitXor: return "^";
      case TokenKind::BitNot: return "~";
      case TokenKind::Shl: return "<<";
      case TokenKind::Shr: return ">>";
      case TokenKind::UShr: return ">>>";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind> &
keywordTable()
{
    static const std::unordered_map<std::string, TokenKind> table = {
        {"var", TokenKind::KwVar},
        {"function", TokenKind::KwFunction},
        {"return", TokenKind::KwReturn},
        {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},
        {"while", TokenKind::KwWhile},
        {"do", TokenKind::KwDo},
        {"for", TokenKind::KwFor},
        {"break", TokenKind::KwBreak},
        {"continue", TokenKind::KwContinue},
        {"true", TokenKind::KwTrue},
        {"false", TokenKind::KwFalse},
        {"null", TokenKind::KwNull},
        {"undefined", TokenKind::KwUndefined},
        {"typeof", TokenKind::KwTypeof},
        {"switch", TokenKind::KwSwitch},
        {"case", TokenKind::KwCase},
        {"default", TokenKind::KwDefault},
    };
    return table;
}

} // namespace

Lexer::Lexer(std::string source)
    : src(std::move(source))
{
}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> tokens;
    for (;;) {
        Token tok = next();
        bool done = tok.kind == TokenKind::EndOfFile;
        tokens.push_back(std::move(tok));
        if (done)
            break;
    }
    return tokens;
}

char
Lexer::peek(int ahead) const
{
    size_t idx = pos + static_cast<size_t>(ahead);
    return idx < src.size() ? src[idx] : '\0';
}

char
Lexer::advance()
{
    char c = src[pos++];
    if (c == '\n') {
        ++line;
        column = 1;
    } else {
        ++column;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

void
Lexer::skipWhitespaceAndComments()
{
    for (;;) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0')
                    fatal("unterminated block comment at line %u", line);
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token
Lexer::makeToken(TokenKind kind)
{
    Token tok;
    tok.kind = kind;
    tok.line = tokLine;
    tok.column = tokColumn;
    return tok;
}

Token
Lexer::lexNumber()
{
    size_t start = pos;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        while (std::isxdigit(static_cast<unsigned char>(peek())))
            advance();
        Token tok = makeToken(TokenKind::Number);
        tok.number = static_cast<double>(
            std::strtoull(src.c_str() + start + 2, nullptr, 16));
        return tok;
    }
    while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
            advance();
    }
    if (peek() == 'e' || peek() == 'E') {
        size_t mark = pos;
        advance();
        if (peek() == '+' || peek() == '-')
            advance();
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                advance();
        } else {
            pos = mark; // not an exponent after all
        }
    }
    Token tok = makeToken(TokenKind::Number);
    tok.number = std::strtod(src.c_str() + start, nullptr);
    return tok;
}

Token
Lexer::lexString(char quote)
{
    std::string value;
    while (peek() != quote) {
        char c = peek();
        if (c == '\0')
            fatal("unterminated string at line %u", tokLine);
        if (c == '\\') {
            advance();
            char esc = advance();
            switch (esc) {
              case 'n': value.push_back('\n'); break;
              case 't': value.push_back('\t'); break;
              case 'r': value.push_back('\r'); break;
              case '0': value.push_back('\0'); break;
              case '\\': value.push_back('\\'); break;
              case '\'': value.push_back('\''); break;
              case '"': value.push_back('"'); break;
              default:
                fatal("bad escape '\\%c' at line %u", esc, tokLine);
            }
        } else {
            value.push_back(advance());
        }
    }
    advance(); // closing quote
    Token tok = makeToken(TokenKind::String);
    tok.text = std::move(value);
    return tok;
}

Token
Lexer::lexIdentifierOrKeyword()
{
    size_t start = pos;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_' || peek() == '$') {
        advance();
    }
    std::string name = src.substr(start, pos - start);
    auto it = keywordTable().find(name);
    if (it != keywordTable().end())
        return makeToken(it->second);
    Token tok = makeToken(TokenKind::Identifier);
    tok.text = std::move(name);
    return tok;
}

Token
Lexer::next()
{
    skipWhitespaceAndComments();
    tokLine = line;
    tokColumn = column;
    char c = peek();
    if (c == '\0')
        return makeToken(TokenKind::EndOfFile);

    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$')
        return lexIdentifierOrKeyword();
    if (c == '"' || c == '\'') {
        advance();
        return lexString(c);
    }

    advance();
    switch (c) {
      case '(': return makeToken(TokenKind::LParen);
      case ')': return makeToken(TokenKind::RParen);
      case '{': return makeToken(TokenKind::LBrace);
      case '}': return makeToken(TokenKind::RBrace);
      case '[': return makeToken(TokenKind::LBracket);
      case ']': return makeToken(TokenKind::RBracket);
      case ';': return makeToken(TokenKind::Semicolon);
      case ',': return makeToken(TokenKind::Comma);
      case '.': return makeToken(TokenKind::Dot);
      case ':': return makeToken(TokenKind::Colon);
      case '?': return makeToken(TokenKind::Question);
      case '~': return makeToken(TokenKind::BitNot);
      case '+':
        if (match('+'))
            return makeToken(TokenKind::PlusPlus);
        if (match('='))
            return makeToken(TokenKind::PlusAssign);
        return makeToken(TokenKind::Plus);
      case '-':
        if (match('-'))
            return makeToken(TokenKind::MinusMinus);
        if (match('='))
            return makeToken(TokenKind::MinusAssign);
        return makeToken(TokenKind::Minus);
      case '*':
        if (match('='))
            return makeToken(TokenKind::StarAssign);
        return makeToken(TokenKind::Star);
      case '/':
        if (match('='))
            return makeToken(TokenKind::SlashAssign);
        return makeToken(TokenKind::Slash);
      case '%':
        if (match('='))
            return makeToken(TokenKind::PercentAssign);
        return makeToken(TokenKind::Percent);
      case '=':
        if (match('=')) {
            if (match('='))
                return makeToken(TokenKind::EqEqEq);
            return makeToken(TokenKind::EqEq);
        }
        return makeToken(TokenKind::Assign);
      case '!':
        if (match('=')) {
            if (match('='))
                return makeToken(TokenKind::NotEqEq);
            return makeToken(TokenKind::NotEq);
        }
        return makeToken(TokenKind::Not);
      case '<':
        if (match('<')) {
            if (match('='))
                return makeToken(TokenKind::ShlAssign);
            return makeToken(TokenKind::Shl);
        }
        if (match('='))
            return makeToken(TokenKind::Le);
        return makeToken(TokenKind::Lt);
      case '>':
        if (match('>')) {
            if (match('>')) {
                if (match('='))
                    return makeToken(TokenKind::UShrAssign);
                return makeToken(TokenKind::UShr);
            }
            if (match('='))
                return makeToken(TokenKind::ShrAssign);
            return makeToken(TokenKind::Shr);
        }
        if (match('='))
            return makeToken(TokenKind::Ge);
        return makeToken(TokenKind::Gt);
      case '&':
        if (match('&'))
            return makeToken(TokenKind::AndAnd);
        if (match('='))
            return makeToken(TokenKind::AndAssign);
        return makeToken(TokenKind::BitAnd);
      case '|':
        if (match('|'))
            return makeToken(TokenKind::OrOr);
        if (match('='))
            return makeToken(TokenKind::OrAssign);
        return makeToken(TokenKind::BitOr);
      case '^':
        if (match('='))
            return makeToken(TokenKind::XorAssign);
        return makeToken(TokenKind::BitXor);
      default:
        fatal("unexpected character '%c' at line %u", c, tokLine);
    }
}

} // namespace nomap
