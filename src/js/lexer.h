#ifndef NOMAP_JS_LEXER_H
#define NOMAP_JS_LEXER_H

/**
 * @file
 * Hand-written lexer for the JavaScript subset. Supports //- and
 * block comments, decimal and hex number literals, single- and
 * double-quoted strings with the common escapes.
 */

#include <string>
#include <vector>

#include "js/token.h"

namespace nomap {

/** Turns source text into a token vector (throws FatalError on bad input). */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Lex the whole input; the last token is always EndOfFile. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool match(char expected);
    void skipWhitespaceAndComments();
    Token makeToken(TokenKind kind);
    Token lexNumber();
    Token lexString(char quote);
    Token lexIdentifierOrKeyword();

    std::string src;
    size_t pos = 0;
    uint32_t line = 1;
    uint32_t column = 1;
    uint32_t tokLine = 1;
    uint32_t tokColumn = 1;
};

} // namespace nomap

#endif // NOMAP_JS_LEXER_H
