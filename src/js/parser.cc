#include "js/parser.h"

#include "js/lexer.h"
#include "support/logging.h"

namespace nomap {

Program
parseProgram(const std::string &source)
{
    Lexer lexer(source);
    Parser parser(lexer.lexAll());
    return parser.parse();
}

Parser::Parser(std::vector<Token> tokens)
    : toks(std::move(tokens))
{
    NOMAP_ASSERT(!toks.empty());
    NOMAP_ASSERT(toks.back().kind == TokenKind::EndOfFile);
}

const Token &
Parser::peek(int ahead) const
{
    size_t idx = pos + static_cast<size_t>(ahead);
    if (idx >= toks.size())
        idx = toks.size() - 1;
    return toks[idx];
}

const Token &
Parser::advance()
{
    const Token &tok = toks[pos];
    if (pos + 1 < toks.size())
        ++pos;
    return tok;
}

bool
Parser::check(TokenKind kind) const
{
    return peek().kind == kind;
}

bool
Parser::match(TokenKind kind)
{
    if (!check(kind))
        return false;
    advance();
    return true;
}

const Token &
Parser::expect(TokenKind kind, const char *context)
{
    if (!check(kind)) {
        fatal("line %u: expected '%s' %s, found '%s'", peek().line,
              tokenKindName(kind), context, tokenKindName(peek().kind));
    }
    return advance();
}

Program
Parser::parse()
{
    Program program;
    while (!check(TokenKind::EndOfFile)) {
        if (check(TokenKind::KwFunction)) {
            program.functions.push_back(parseFunction());
        } else {
            program.topLevel.push_back(parseStatement());
        }
    }
    return program;
}

std::unique_ptr<FunctionDecl>
Parser::parseFunction()
{
    auto fn = std::make_unique<FunctionDecl>();
    fn->line = peek().line;
    expect(TokenKind::KwFunction, "to start function");
    fn->name = expect(TokenKind::Identifier, "as function name").text;
    expect(TokenKind::LParen, "after function name");
    if (!check(TokenKind::RParen)) {
        do {
            fn->params.push_back(
                expect(TokenKind::Identifier, "as parameter").text);
        } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after parameters");
    expect(TokenKind::LBrace, "to open function body");
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile))
        fn->body.push_back(parseStatement());
    expect(TokenKind::RBrace, "to close function body");
    return fn;
}

StmtPtr
Parser::parseStatement()
{
    uint32_t line = peek().line;
    StmtPtr stmt;
    switch (peek().kind) {
      case TokenKind::LBrace:
        stmt = parseBlock();
        break;
      case TokenKind::KwVar:
        stmt = parseVarDecl();
        break;
      case TokenKind::KwIf:
        stmt = parseIf();
        break;
      case TokenKind::KwWhile:
        stmt = parseWhile();
        break;
      case TokenKind::KwDo:
        stmt = parseDoWhile();
        break;
      case TokenKind::KwFor:
        stmt = parseFor();
        break;
      case TokenKind::KwSwitch:
        stmt = parseSwitch();
        break;
      case TokenKind::KwReturn: {
        advance();
        ExprPtr value;
        if (!check(TokenKind::Semicolon))
            value = parseExpression();
        match(TokenKind::Semicolon);
        stmt = std::make_unique<ReturnStmt>(std::move(value));
        break;
      }
      case TokenKind::KwBreak:
        advance();
        match(TokenKind::Semicolon);
        stmt = std::make_unique<BreakStmt>();
        break;
      case TokenKind::KwContinue:
        advance();
        match(TokenKind::Semicolon);
        stmt = std::make_unique<ContinueStmt>();
        break;
      case TokenKind::Semicolon:
        advance();
        stmt = std::make_unique<EmptyStmt>();
        break;
      default: {
        ExprPtr expr = parseExpression();
        match(TokenKind::Semicolon);
        stmt = std::make_unique<ExpressionStmt>(std::move(expr));
        break;
      }
    }
    stmt->line = line;
    return stmt;
}

StmtPtr
Parser::parseBlock()
{
    expect(TokenKind::LBrace, "to open block");
    auto block = std::make_unique<BlockStmt>();
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile))
        block->body.push_back(parseStatement());
    expect(TokenKind::RBrace, "to close block");
    return block;
}

StmtPtr
Parser::parseVarDecl()
{
    expect(TokenKind::KwVar, "to start declaration");
    auto decl = std::make_unique<VarDeclStmt>();
    do {
        std::string name =
            expect(TokenKind::Identifier, "as variable name").text;
        ExprPtr init;
        if (match(TokenKind::Assign))
            init = parseAssignment();
        decl->decls.emplace_back(std::move(name), std::move(init));
    } while (match(TokenKind::Comma));
    match(TokenKind::Semicolon);
    return decl;
}

StmtPtr
Parser::parseIf()
{
    expect(TokenKind::KwIf, "to start if");
    expect(TokenKind::LParen, "after if");
    ExprPtr cond = parseExpression();
    expect(TokenKind::RParen, "after if condition");
    StmtPtr then_stmt = parseStatement();
    StmtPtr else_stmt;
    if (match(TokenKind::KwElse))
        else_stmt = parseStatement();
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_stmt),
                                    std::move(else_stmt));
}

StmtPtr
Parser::parseWhile()
{
    expect(TokenKind::KwWhile, "to start while");
    expect(TokenKind::LParen, "after while");
    ExprPtr cond = parseExpression();
    expect(TokenKind::RParen, "after while condition");
    StmtPtr body = parseStatement();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body));
}

StmtPtr
Parser::parseDoWhile()
{
    expect(TokenKind::KwDo, "to start do-while");
    StmtPtr body = parseStatement();
    expect(TokenKind::KwWhile, "after do body");
    expect(TokenKind::LParen, "after while");
    ExprPtr cond = parseExpression();
    expect(TokenKind::RParen, "after do-while condition");
    match(TokenKind::Semicolon);
    return std::make_unique<DoWhileStmt>(std::move(body), std::move(cond));
}

StmtPtr
Parser::parseFor()
{
    expect(TokenKind::KwFor, "to start for");
    expect(TokenKind::LParen, "after for");
    auto loop = std::make_unique<ForStmt>();
    if (check(TokenKind::KwVar)) {
        loop->init = parseVarDecl(); // consumes its own ';'
    } else if (!check(TokenKind::Semicolon)) {
        loop->init =
            std::make_unique<ExpressionStmt>(parseExpression());
        expect(TokenKind::Semicolon, "after for initializer");
    } else {
        advance(); // empty init
    }
    if (!check(TokenKind::Semicolon))
        loop->cond = parseExpression();
    expect(TokenKind::Semicolon, "after for condition");
    if (!check(TokenKind::RParen))
        loop->update = parseExpression();
    expect(TokenKind::RParen, "after for clauses");
    loop->body = parseStatement();
    return loop;
}

StmtPtr
Parser::parseSwitch()
{
    expect(TokenKind::KwSwitch, "to start switch");
    expect(TokenKind::LParen, "after switch");
    auto stmt = std::make_unique<SwitchStmt>(parseExpression());
    expect(TokenKind::RParen, "after switch discriminant");
    expect(TokenKind::LBrace, "to open switch body");
    bool saw_default = false;
    while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
        SwitchClause clause;
        if (match(TokenKind::KwCase)) {
            clause.test = parseExpression();
        } else {
            expect(TokenKind::KwDefault, "or 'case' in switch");
            if (saw_default)
                fatal("line %u: multiple default clauses", peek().line);
            saw_default = true;
        }
        expect(TokenKind::Colon, "after case label");
        while (!check(TokenKind::KwCase) &&
               !check(TokenKind::KwDefault) &&
               !check(TokenKind::RBrace) &&
               !check(TokenKind::EndOfFile)) {
            clause.body.push_back(parseStatement());
        }
        stmt->clauses.push_back(std::move(clause));
    }
    expect(TokenKind::RBrace, "to close switch body");
    return stmt;
}

ExprPtr
Parser::parseExpression()
{
    return parseAssignment();
}

namespace {

bool
isAssignTarget(const Expr &e)
{
    return e.kind == ExprKind::Ident || e.kind == ExprKind::Member ||
           e.kind == ExprKind::Index;
}

} // namespace

ExprPtr
Parser::parseAssignment()
{
    ExprPtr lhs = parseConditional();
    TokenKind k = peek().kind;
    BinaryOp op;
    bool compound = true;
    switch (k) {
      case TokenKind::Assign: compound = false; op = BinaryOp::Add; break;
      case TokenKind::PlusAssign: op = BinaryOp::Add; break;
      case TokenKind::MinusAssign: op = BinaryOp::Sub; break;
      case TokenKind::StarAssign: op = BinaryOp::Mul; break;
      case TokenKind::SlashAssign: op = BinaryOp::Div; break;
      case TokenKind::PercentAssign: op = BinaryOp::Mod; break;
      case TokenKind::AndAssign: op = BinaryOp::BitAnd; break;
      case TokenKind::OrAssign: op = BinaryOp::BitOr; break;
      case TokenKind::XorAssign: op = BinaryOp::BitXor; break;
      case TokenKind::ShlAssign: op = BinaryOp::Shl; break;
      case TokenKind::ShrAssign: op = BinaryOp::Shr; break;
      case TokenKind::UShrAssign: op = BinaryOp::UShr; break;
      default:
        return lhs;
    }
    uint32_t line = peek().line;
    advance();
    if (!isAssignTarget(*lhs))
        fatal("line %u: invalid assignment target", line);
    ExprPtr rhs = parseAssignment();
    ExprPtr result;
    if (compound) {
        result = std::make_unique<CompoundAssignExpr>(op, std::move(lhs),
                                                      std::move(rhs));
    } else {
        result = std::make_unique<AssignExpr>(std::move(lhs),
                                              std::move(rhs));
    }
    result->line = line;
    return result;
}

ExprPtr
Parser::parseConditional()
{
    ExprPtr cond = parseLogicalOr();
    if (!match(TokenKind::Question))
        return cond;
    ExprPtr then_expr = parseAssignment();
    expect(TokenKind::Colon, "in conditional expression");
    ExprPtr else_expr = parseAssignment();
    return std::make_unique<ConditionalExpr>(
        std::move(cond), std::move(then_expr), std::move(else_expr));
}

ExprPtr
Parser::parseLogicalOr()
{
    ExprPtr lhs = parseLogicalAnd();
    while (match(TokenKind::OrOr)) {
        ExprPtr rhs = parseLogicalAnd();
        lhs = std::make_unique<LogicalExpr>(LogicalOp::Or, std::move(lhs),
                                            std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseLogicalAnd()
{
    ExprPtr lhs = parseBitOr();
    while (match(TokenKind::AndAnd)) {
        ExprPtr rhs = parseBitOr();
        lhs = std::make_unique<LogicalExpr>(LogicalOp::And, std::move(lhs),
                                            std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseBitOr()
{
    ExprPtr lhs = parseBitXor();
    while (match(TokenKind::BitOr)) {
        ExprPtr rhs = parseBitXor();
        lhs = std::make_unique<BinaryExpr>(BinaryOp::BitOr, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseBitXor()
{
    ExprPtr lhs = parseBitAnd();
    while (match(TokenKind::BitXor)) {
        ExprPtr rhs = parseBitAnd();
        lhs = std::make_unique<BinaryExpr>(BinaryOp::BitXor, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseBitAnd()
{
    ExprPtr lhs = parseEquality();
    while (match(TokenKind::BitAnd)) {
        ExprPtr rhs = parseEquality();
        lhs = std::make_unique<BinaryExpr>(BinaryOp::BitAnd, std::move(lhs),
                                           std::move(rhs));
    }
    return lhs;
}

ExprPtr
Parser::parseEquality()
{
    ExprPtr lhs = parseRelational();
    for (;;) {
        BinaryOp op;
        if (match(TokenKind::EqEq))
            op = BinaryOp::Eq;
        else if (match(TokenKind::NotEq))
            op = BinaryOp::NotEq;
        else if (match(TokenKind::EqEqEq))
            op = BinaryOp::StrictEq;
        else if (match(TokenKind::NotEqEq))
            op = BinaryOp::StrictNotEq;
        else
            return lhs;
        ExprPtr rhs = parseRelational();
        lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                           std::move(rhs));
    }
}

ExprPtr
Parser::parseRelational()
{
    ExprPtr lhs = parseShift();
    for (;;) {
        BinaryOp op;
        if (match(TokenKind::Lt))
            op = BinaryOp::Lt;
        else if (match(TokenKind::Le))
            op = BinaryOp::Le;
        else if (match(TokenKind::Gt))
            op = BinaryOp::Gt;
        else if (match(TokenKind::Ge))
            op = BinaryOp::Ge;
        else
            return lhs;
        ExprPtr rhs = parseShift();
        lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                           std::move(rhs));
    }
}

ExprPtr
Parser::parseShift()
{
    ExprPtr lhs = parseAdditive();
    for (;;) {
        BinaryOp op;
        if (match(TokenKind::Shl))
            op = BinaryOp::Shl;
        else if (match(TokenKind::Shr))
            op = BinaryOp::Shr;
        else if (match(TokenKind::UShr))
            op = BinaryOp::UShr;
        else
            return lhs;
        ExprPtr rhs = parseAdditive();
        lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                           std::move(rhs));
    }
}

ExprPtr
Parser::parseAdditive()
{
    ExprPtr lhs = parseMultiplicative();
    for (;;) {
        BinaryOp op;
        if (match(TokenKind::Plus))
            op = BinaryOp::Add;
        else if (match(TokenKind::Minus))
            op = BinaryOp::Sub;
        else
            return lhs;
        ExprPtr rhs = parseMultiplicative();
        lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                           std::move(rhs));
    }
}

ExprPtr
Parser::parseMultiplicative()
{
    ExprPtr lhs = parseUnary();
    for (;;) {
        BinaryOp op;
        if (match(TokenKind::Star))
            op = BinaryOp::Mul;
        else if (match(TokenKind::Slash))
            op = BinaryOp::Div;
        else if (match(TokenKind::Percent))
            op = BinaryOp::Mod;
        else
            return lhs;
        ExprPtr rhs = parseUnary();
        lhs = std::make_unique<BinaryExpr>(op, std::move(lhs),
                                           std::move(rhs));
    }
}

ExprPtr
Parser::parseUnary()
{
    uint32_t line = peek().line;
    ExprPtr result;
    if (match(TokenKind::Minus)) {
        result = std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary());
    } else if (match(TokenKind::Plus)) {
        result = std::make_unique<UnaryExpr>(UnaryOp::Plus, parseUnary());
    } else if (match(TokenKind::Not)) {
        result = std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary());
    } else if (match(TokenKind::BitNot)) {
        result = std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary());
    } else if (match(TokenKind::KwTypeof)) {
        result = std::make_unique<UnaryExpr>(UnaryOp::Typeof, parseUnary());
    } else if (match(TokenKind::PlusPlus)) {
        ExprPtr target = parseUnary();
        if (!isAssignTarget(*target))
            fatal("line %u: invalid ++ target", line);
        result = std::make_unique<PreIncDecExpr>(true, std::move(target));
    } else if (match(TokenKind::MinusMinus)) {
        ExprPtr target = parseUnary();
        if (!isAssignTarget(*target))
            fatal("line %u: invalid -- target", line);
        result = std::make_unique<PreIncDecExpr>(false, std::move(target));
    } else {
        return parsePostfix();
    }
    result->line = line;
    return result;
}

ExprPtr
Parser::parsePostfix()
{
    ExprPtr expr = parsePrimary();
    for (;;) {
        uint32_t line = peek().line;
        if (match(TokenKind::Dot)) {
            std::string prop =
                expect(TokenKind::Identifier, "after '.'").text;
            expr = std::make_unique<MemberExpr>(std::move(expr),
                                                std::move(prop));
            expr->line = line;
        } else if (match(TokenKind::LBracket)) {
            ExprPtr index = parseExpression();
            expect(TokenKind::RBracket, "after index expression");
            expr = std::make_unique<IndexExpr>(std::move(expr),
                                               std::move(index));
            expr->line = line;
        } else if (match(TokenKind::LParen)) {
            auto call = std::make_unique<CallExpr>(std::move(expr));
            if (!check(TokenKind::RParen)) {
                do {
                    call->args.push_back(parseAssignment());
                } while (match(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "after call arguments");
            call->line = line;
            expr = std::move(call);
        } else if (match(TokenKind::PlusPlus)) {
            if (!isAssignTarget(*expr))
                fatal("line %u: invalid ++ target", line);
            expr = std::make_unique<PostIncDecExpr>(true, std::move(expr));
            expr->line = line;
        } else if (match(TokenKind::MinusMinus)) {
            if (!isAssignTarget(*expr))
                fatal("line %u: invalid -- target", line);
            expr = std::make_unique<PostIncDecExpr>(false, std::move(expr));
            expr->line = line;
        } else {
            return expr;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    uint32_t line = peek().line;
    ExprPtr expr;
    switch (peek().kind) {
      case TokenKind::Number: {
        expr = std::make_unique<NumberLitExpr>(advance().number);
        break;
      }
      case TokenKind::String: {
        expr = std::make_unique<StringLitExpr>(advance().text);
        break;
      }
      case TokenKind::KwTrue:
        advance();
        expr = std::make_unique<BoolLitExpr>(true);
        break;
      case TokenKind::KwFalse:
        advance();
        expr = std::make_unique<BoolLitExpr>(false);
        break;
      case TokenKind::KwNull:
        advance();
        expr = std::make_unique<NullLitExpr>();
        break;
      case TokenKind::KwUndefined:
        advance();
        expr = std::make_unique<UndefinedLitExpr>();
        break;
      case TokenKind::Identifier:
        expr = std::make_unique<IdentExpr>(advance().text);
        break;
      case TokenKind::LParen: {
        advance();
        expr = parseExpression();
        expect(TokenKind::RParen, "to close parenthesized expression");
        break;
      }
      case TokenKind::LBracket: {
        advance();
        auto arr = std::make_unique<ArrayLitExpr>();
        if (!check(TokenKind::RBracket)) {
            do {
                arr->elements.push_back(parseAssignment());
            } while (match(TokenKind::Comma));
        }
        expect(TokenKind::RBracket, "to close array literal");
        expr = std::move(arr);
        break;
      }
      case TokenKind::LBrace: {
        advance();
        auto obj = std::make_unique<ObjectLitExpr>();
        if (!check(TokenKind::RBrace)) {
            do {
                std::string key;
                if (check(TokenKind::Identifier))
                    key = advance().text;
                else if (check(TokenKind::String))
                    key = advance().text;
                else
                    fatal("line %u: expected property name", peek().line);
                expect(TokenKind::Colon, "after property name");
                obj->properties.emplace_back(std::move(key),
                                             parseAssignment());
            } while (match(TokenKind::Comma));
        }
        expect(TokenKind::RBrace, "to close object literal");
        expr = std::move(obj);
        break;
      }
      default:
        fatal("line %u: unexpected token '%s'", peek().line,
              tokenKindName(peek().kind));
    }
    expr->line = line;
    return expr;
}

} // namespace nomap
