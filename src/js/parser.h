#ifndef NOMAP_JS_PARSER_H
#define NOMAP_JS_PARSER_H

/**
 * @file
 * Recursive-descent parser for the JavaScript subset. Produces a
 * Program (top-level function declarations plus top-level statements).
 * Throws FatalError with line information on syntax errors.
 */

#include <string>
#include <vector>

#include "js/ast.h"
#include "js/token.h"

namespace nomap {

/** Parse full source text into a Program. */
Program parseProgram(const std::string &source);

/** Internal parser class, exposed for unit testing. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens);

    Program parse();

  private:
    const Token &peek(int ahead = 0) const;
    const Token &advance();
    bool check(TokenKind kind) const;
    bool match(TokenKind kind);
    const Token &expect(TokenKind kind, const char *context);

    std::unique_ptr<FunctionDecl> parseFunction();
    StmtPtr parseStatement();
    StmtPtr parseBlock();
    StmtPtr parseVarDecl();
    StmtPtr parseIf();
    StmtPtr parseWhile();
    StmtPtr parseDoWhile();
    StmtPtr parseFor();
    StmtPtr parseSwitch();

    ExprPtr parseExpression();
    ExprPtr parseAssignment();
    ExprPtr parseConditional();
    ExprPtr parseLogicalOr();
    ExprPtr parseLogicalAnd();
    ExprPtr parseBitOr();
    ExprPtr parseBitXor();
    ExprPtr parseBitAnd();
    ExprPtr parseEquality();
    ExprPtr parseRelational();
    ExprPtr parseShift();
    ExprPtr parseAdditive();
    ExprPtr parseMultiplicative();
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    std::vector<Token> toks;
    size_t pos = 0;
};

} // namespace nomap

#endif // NOMAP_JS_PARSER_H
