#ifndef NOMAP_JS_TOKEN_H
#define NOMAP_JS_TOKEN_H

/**
 * @file
 * Token definitions for the JavaScript-subset lexer.
 */

#include <cstdint>
#include <string>

namespace nomap {

/** Token kinds, including all operators the subset supports. */
enum class TokenKind : uint8_t {
    EndOfFile,
    Identifier,
    Number,
    String,

    // Keywords.
    KwVar, KwFunction, KwReturn, KwIf, KwElse, KwWhile, KwDo, KwFor,
    KwBreak, KwContinue, KwTrue, KwFalse, KwNull, KwUndefined, KwTypeof,
    KwSwitch, KwCase, KwDefault,

    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semicolon, Comma, Dot, Colon, Question,

    // Operators.
    Assign,            // =
    PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
    AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign, UShrAssign,
    Plus, Minus, Star, Slash, Percent,
    PlusPlus, MinusMinus,
    EqEq, NotEq, EqEqEq, NotEqEq,
    Lt, Gt, Le, Ge,
    AndAnd, OrOr, Not,
    BitAnd, BitOr, BitXor, BitNot,
    Shl, Shr, UShr,
};

/** One lexed token with source position for error messages. */
struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;     ///< Identifier name or string contents.
    double number = 0.0;  ///< Value for Number tokens.
    uint32_t line = 0;
    uint32_t column = 0;
};

/** Printable token-kind name (for diagnostics and tests). */
const char *tokenKindName(TokenKind kind);

} // namespace nomap

#endif // NOMAP_JS_TOKEN_H
