#ifndef NOMAP_MEMSIM_ADDR_H
#define NOMAP_MEMSIM_ADDR_H

/**
 * @file
 * Abstract physical addresses.
 *
 * The VM heap hands out abstract addresses from a bump allocator
 * (vm/heap.h). Those addresses exist purely so the cache and HTM
 * simulators can reason about spatial locality, line granularity, and
 * set-index conflicts, exactly as a Pin-based model of the paper's
 * Skylake machine would.
 */

#include <cstdint>

namespace nomap {

using Addr = uint64_t;

/** Cache line size used throughout the model (Skylake: 64 bytes). */
constexpr uint32_t kLineSize = 64;

/** Round an address down to its line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~static_cast<Addr>(kLineSize - 1);
}

} // namespace nomap

#endif // NOMAP_MEMSIM_ADDR_H
