#include "memsim/cache.h"

#include "support/logging.h"

namespace nomap {

Cache::Cache(uint32_t size_bytes, uint32_t ways_)
    : ways(ways_)
{
    NOMAP_ASSERT(ways > 0);
    NOMAP_ASSERT(size_bytes % (kLineSize * ways) == 0);
    uint32_t num_sets = size_bytes / (kLineSize * ways);
    NOMAP_ASSERT((num_sets & (num_sets - 1)) == 0);
    sets.resize(num_sets);
    for (auto &set : sets)
        set.lines.resize(ways);
}

uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<uint32_t>((addr / kLineSize) &
                                 (sets.size() - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / kLineSize) / sets.size();
}

void
Cache::trackSwHighWater(const Set &set)
{
    uint32_t sw_ways = 0;
    for (const Line &line : set.lines) {
        if (line.valid && line.sw)
            ++sw_ways;
    }
    if (sw_ways > statsData.maxSwWaysInSet)
        statsData.maxSwWaysInSet = sw_ways;
}

CacheResult
Cache::access(Addr addr, bool is_write, bool speculative)
{
    Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);
    ++lruClock;

    for (Line &line : set.lines) {
        if (line.valid && line.tag == tag) {
            line.lruStamp = lruClock;
            if (is_write && speculative)
                line.sw = true;
            ++statsData.hits;
            trackSwHighWater(set);
            return CacheResult::Hit;
        }
    }

    // Miss: pick a victim. Prefer an invalid way, then the LRU non-SW
    // line. If every way holds speculative state, installing the new
    // line would lose transactional writes.
    Line *victim = nullptr;
    for (Line &line : set.lines) {
        if (!line.valid) {
            victim = &line;
            break;
        }
    }
    if (!victim) {
        for (Line &line : set.lines) {
            if (line.sw)
                continue;
            if (!victim || line.lruStamp < victim->lruStamp)
                victim = &line;
        }
    }
    if (!victim) {
        ++statsData.misses;
        return CacheResult::SWConflict;
    }

    if (victim->valid)
        ++statsData.evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->sw = is_write && speculative;
    victim->lruStamp = lruClock;
    ++statsData.misses;
    trackSwHighWater(set);
    return CacheResult::Miss;
}

bool
Cache::contains(Addr addr) const
{
    const Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);
    for (const Line &line : set.lines) {
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::isSpeculative(Addr addr) const
{
    const Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);
    for (const Line &line : set.lines) {
        if (line.valid && line.tag == tag)
            return line.sw;
    }
    return false;
}

void
Cache::flashClearSw()
{
    for (Set &set : sets) {
        for (Line &line : set.lines)
            line.sw = false;
    }
}

void
Cache::invalidateSw()
{
    for (Set &set : sets) {
        for (Line &line : set.lines) {
            if (line.sw) {
                line.sw = false;
                line.valid = false;
            }
        }
    }
}

uint32_t
Cache::swLineCount() const
{
    uint32_t count = 0;
    for (const Set &set : sets) {
        for (const Line &line : set.lines) {
            if (line.valid && line.sw)
                ++count;
        }
    }
    return count;
}

void
Cache::invalidateAll()
{
    for (Set &set : sets) {
        for (Line &line : set.lines)
            line = Line();
    }
    lruClock = 0;
}

} // namespace nomap
