#include "memsim/cache.h"

#include "support/logging.h"

namespace nomap {

Cache::Cache(uint32_t size_bytes, uint32_t ways_)
    : ways(ways_)
{
    NOMAP_ASSERT(ways > 0);
    NOMAP_ASSERT(size_bytes % (kLineSize * ways) == 0);
    uint32_t num_sets = size_bytes / (kLineSize * ways);
    NOMAP_ASSERT((num_sets & (num_sets - 1)) == 0);
    setMask = num_sets - 1;
    while ((1u << setShift) < num_sets)
        ++setShift;
    lines.resize(static_cast<size_t>(num_sets) * ways);
    swCount.resize(num_sets, 0);
}

bool
Cache::contains(Addr addr) const
{
    const Line *set = &lines[static_cast<size_t>(setIndex(addr)) * ways];
    Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

bool
Cache::isSpeculative(Addr addr) const
{
    const Line *set = &lines[static_cast<size_t>(setIndex(addr)) * ways];
    Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return set[w].sw;
    }
    return false;
}

void
Cache::flashClearSw()
{
    for (uint32_t si : swSets) {
        Line *set = &lines[static_cast<size_t>(si) * ways];
        for (uint32_t w = 0; w < ways; ++w)
            set[w].sw = false;
        swCount[si] = 0;
    }
    swSets.clear();
    swTotal = 0;
}

void
Cache::invalidateSw()
{
    for (uint32_t si : swSets) {
        Line *set = &lines[static_cast<size_t>(si) * ways];
        for (uint32_t w = 0; w < ways; ++w) {
            if (set[w].sw) {
                set[w].sw = false;
                set[w].valid = false;
            }
        }
        swCount[si] = 0;
    }
    swSets.clear();
    swTotal = 0;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines)
        line = Line();
    for (uint32_t &c : swCount)
        c = 0;
    swSets.clear();
    swTotal = 0;
    lruClock = 0;
}

void
Cache::save(Snapshot &out) const
{
    out.lines = lines;
    out.mruIndex = mru ? mru - lines.data() : -1;
    out.mruSet = mruSet;
    out.swCount = swCount;
    out.swSets = swSets;
    out.swTotal = swTotal;
    out.lruClock = lruClock;
}

void
Cache::restore(const Snapshot &s)
{
    lines = s.lines;
    mru = s.mruIndex >= 0 ? lines.data() + s.mruIndex : nullptr;
    mruSet = s.mruSet;
    swCount = s.swCount;
    swSets = s.swSets;
    swTotal = s.swTotal;
    lruClock = s.lruClock;
}

} // namespace nomap
