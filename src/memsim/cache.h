#ifndef NOMAP_MEMSIM_CACHE_H
#define NOMAP_MEMSIM_CACHE_H

/**
 * @file
 * Set-associative cache model with LRU replacement and per-line
 * speculative-write (SW) bits.
 *
 * The SW bit marks lines written inside a hardware transaction. A
 * transactional commit flash-clears all SW bits (modeled elsewhere as a
 * fixed 5-cycle cost, following the paper's platform description). A
 * line whose SW bit is set must not be silently evicted: doing so would
 * lose speculative state, so the cache reports the condition to its
 * owner, which translates it into a transaction capacity abort.
 *
 * Host-performance notes (this model sits under every simulated load
 * and store): lines are stored in one flat array indexed by
 * set * ways, the per-set SW population is maintained incrementally
 * instead of recounted per access, and commit/abort walk only the
 * sets that actually hold SW lines rather than the whole cache.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "memsim/addr.h"

namespace nomap {

/** Outcome of a single cache access. */
enum class CacheResult : uint8_t {
    Hit,
    Miss,          ///< Miss; a victim (possibly invalid) was replaced.
    SWConflict,    ///< Miss, and every way of the set holds an SW line.
};

/** Aggregate counters for one cache. */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Largest number of SW lines simultaneously resident in one set. */
    uint32_t maxSwWaysInSet = 0;

    double
    missRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) / total : 0.0;
    }
};

/**
 * A single level of set-associative cache.
 *
 * Geometry is (size, ways, 64-byte lines). Replacement is true LRU per
 * set, with the twist that SW lines are never chosen as victims while a
 * non-SW candidate exists.
 */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity in bytes.
     * @param ways Associativity.
     */
    Cache(uint32_t size_bytes, uint32_t ways);

    /**
     * Access one line.
     *
     * @param addr Byte address (any offset within the line).
     * @param is_write True for stores.
     * @param speculative True when executing inside a transaction and
     *        the access is a store whose line must be pinned (SW).
     * @return Hit, Miss, or SWConflict when the line cannot be
     *         installed without evicting speculative state.
     *
     * Defined here so it inlines into MemHierarchy::access, which the
     * executors call for every simulated memory operation.
     */
    CacheResult
    access(Addr addr, bool is_write, bool speculative = false)
    {
        uint32_t si = setIndex(addr);
        Addr tag = tagOf(addr);

        // Consecutive accesses usually land on the line the previous
        // access touched (8 values share each 64-byte line), so a
        // one-entry MRU filter skips the associative scan most of the
        // time. The updates below are exactly the scan's hit path, so
        // the model is unchanged; an evicted, retagged, or invalidated
        // MRU line fails the valid/set/tag compare and falls through.
        Line *m = mru;
        if (m && m->valid && mruSet == si && m->tag == tag) {
            m->lruStamp = ++lruClock;
            if (is_write && speculative && !m->sw)
                markSw(*m, si);
            ++statsData.hits;
            if (swTotal != 0)
                trackSwHighWater(si);
            return CacheResult::Hit;
        }

        Line *set = &lines[static_cast<size_t>(si) * ways];
        ++lruClock;

        for (uint32_t w = 0; w < ways; ++w) {
            Line &line = set[w];
            if (line.valid && line.tag == tag) {
                line.lruStamp = lruClock;
                if (is_write && speculative && !line.sw)
                    markSw(line, si);
                ++statsData.hits;
                mru = &line;
                mruSet = si;
                // swTotal == 0 implies every swCount entry is 0, so
                // the high-water compare can't move — skip the
                // swCount[] load on the non-transactional fast path.
                if (swTotal != 0)
                    trackSwHighWater(si);
                return CacheResult::Hit;
            }
        }

        // Miss: pick a victim. Prefer an invalid way, then the LRU
        // non-SW line. If every way holds speculative state,
        // installing the new line would lose transactional writes.
        // (Invalid lines never carry an SW bit, so the chosen victim
        // is always non-SW.)
        Line *victim = nullptr;
        for (uint32_t w = 0; w < ways; ++w) {
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
        }
        if (!victim) {
            for (uint32_t w = 0; w < ways; ++w) {
                Line &line = set[w];
                if (line.sw)
                    continue;
                if (!victim || line.lruStamp < victim->lruStamp)
                    victim = &line;
            }
        }
        if (!victim) {
            ++statsData.misses;
            return CacheResult::SWConflict;
        }

        if (victim->valid)
            ++statsData.evictions;
        victim->valid = true;
        victim->tag = tag;
        victim->sw = false;
        if (is_write && speculative)
            markSw(*victim, si);
        victim->lruStamp = lruClock;
        mru = victim;
        mruSet = si;
        ++statsData.misses;
        if (swTotal != 0)
            trackSwHighWater(si);
        return CacheResult::Miss;
    }

    /** True if the line is currently resident. */
    bool contains(Addr addr) const;

    /** True if the line is resident with its SW bit set. */
    bool isSpeculative(Addr addr) const;

    /** Clear all SW bits (transaction commit). */
    void flashClearSw();

    /** Invalidate all SW lines (transaction abort discards them). */
    void invalidateSw();

    /** Number of lines currently holding speculative state. */
    uint32_t swLineCount() const { return swTotal; }

    /** Drop all lines and reset LRU state (stats are preserved). */
    void invalidateAll();

    const CacheStats &stats() const { return statsData; }
    void resetStats() { statsData = CacheStats(); }

    uint32_t numSets() const
    {
        return static_cast<uint32_t>(swCount.size());
    }
    uint32_t numWays() const { return ways; }

  private:
    struct Line {
        Addr tag = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
        bool sw = false;
    };

    uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<uint32_t>((addr / kLineSize) & setMask);
    }

    Addr
    tagOf(Addr addr) const
    {
        return (addr / kLineSize) >> setShift;
    }

    /** Set a line's SW bit and maintain the incremental population. */
    void
    markSw(Line &line, uint32_t si)
    {
        line.sw = true;
        if (swCount[si]++ == 0)
            swSets.push_back(si);
        ++swTotal;
    }

    void
    trackSwHighWater(uint32_t si)
    {
        if (swCount[si] > statsData.maxSwWaysInSet)
            statsData.maxSwWaysInSet = swCount[si];
    }

    uint32_t ways;
    uint32_t setMask = 0;   ///< numSets - 1 (numSets is a power of 2).
    uint32_t setShift = 0;  ///< log2(numSets), for tag extraction.
    std::vector<Line> lines;      ///< Flat: set * ways + way.
    Line *mru = nullptr;   ///< Last line hit/installed (never dangles:
                           ///< `lines` is sized once in the ctor).
    uint32_t mruSet = 0;   ///< Set index of @ref mru.
    std::vector<uint32_t> swCount; ///< SW lines per set.
    std::vector<uint32_t> swSets;  ///< Sets with swCount > 0 (unique).
    uint32_t swTotal = 0;
    uint64_t lruClock = 0;
    CacheStats statsData;

  public:
    /**
     * Full copy of the cache's line/LRU state (stats excluded). Treat
     * as opaque: shared-heap sessions save() at region begin and
     * restore() on a region abort, so a retry observes exactly the
     * cache contents the aborted attempt started from — cycle
     * accounting would otherwise diverge between attempts, breaking
     * the retries-are-invisible contract. save() into a long-lived
     * Snapshot reuses its buffers (no steady-state allocation).
     */
    struct Snapshot {
        std::vector<Line> lines;
        int64_t mruIndex = -1; ///< Offset of mru in lines; -1 = null.
        uint32_t mruSet = 0;
        std::vector<uint32_t> swCount;
        std::vector<uint32_t> swSets;
        uint32_t swTotal = 0;
        uint64_t lruClock = 0;
    };

    /** Copy line/LRU state into @p out (geometry must match). */
    void save(Snapshot &out) const;

    /** Restore line/LRU state captured by save(). */
    void restore(const Snapshot &s);
};

} // namespace nomap

#endif // NOMAP_MEMSIM_CACHE_H
