#ifndef NOMAP_MEMSIM_CACHE_H
#define NOMAP_MEMSIM_CACHE_H

/**
 * @file
 * Set-associative cache model with LRU replacement and per-line
 * speculative-write (SW) bits.
 *
 * The SW bit marks lines written inside a hardware transaction. A
 * transactional commit flash-clears all SW bits (modeled elsewhere as a
 * fixed 5-cycle cost, following the paper's platform description). A
 * line whose SW bit is set must not be silently evicted: doing so would
 * lose speculative state, so the cache reports the condition to its
 * owner, which translates it into a transaction capacity abort.
 */

#include <cstdint>
#include <vector>

#include "memsim/addr.h"

namespace nomap {

/** Outcome of a single cache access. */
enum class CacheResult : uint8_t {
    Hit,
    Miss,          ///< Miss; a victim (possibly invalid) was replaced.
    SWConflict,    ///< Miss, and every way of the set holds an SW line.
};

/** Aggregate counters for one cache. */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /** Largest number of SW lines simultaneously resident in one set. */
    uint32_t maxSwWaysInSet = 0;

    double
    missRate() const
    {
        uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) / total : 0.0;
    }
};

/**
 * A single level of set-associative cache.
 *
 * Geometry is (size, ways, 64-byte lines). Replacement is true LRU per
 * set, with the twist that SW lines are never chosen as victims while a
 * non-SW candidate exists.
 */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity in bytes.
     * @param ways Associativity.
     */
    Cache(uint32_t size_bytes, uint32_t ways);

    /**
     * Access one line.
     *
     * @param addr Byte address (any offset within the line).
     * @param is_write True for stores.
     * @param speculative True when executing inside a transaction and
     *        the access is a store whose line must be pinned (SW).
     * @return Hit, Miss, or SWConflict when the line cannot be
     *         installed without evicting speculative state.
     */
    CacheResult access(Addr addr, bool is_write, bool speculative = false);

    /** True if the line is currently resident. */
    bool contains(Addr addr) const;

    /** True if the line is resident with its SW bit set. */
    bool isSpeculative(Addr addr) const;

    /** Clear all SW bits (transaction commit). */
    void flashClearSw();

    /** Invalidate all SW lines (transaction abort discards them). */
    void invalidateSw();

    /** Number of lines currently holding speculative state. */
    uint32_t swLineCount() const;

    /** Drop all lines and reset LRU state (stats are preserved). */
    void invalidateAll();

    const CacheStats &stats() const { return statsData; }
    void resetStats() { statsData = CacheStats(); }

    uint32_t numSets() const { return static_cast<uint32_t>(sets.size()); }
    uint32_t numWays() const { return ways; }

  private:
    struct Line {
        Addr tag = 0;
        bool valid = false;
        bool sw = false;
        uint64_t lruStamp = 0;
    };

    struct Set {
        std::vector<Line> lines;
    };

    uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    void trackSwHighWater(const Set &set);

    uint32_t ways;
    std::vector<Set> sets;
    uint64_t lruClock = 0;
    CacheStats statsData;
};

} // namespace nomap

#endif // NOMAP_MEMSIM_CACHE_H
