#include "memsim/footprint.h"

#include <algorithm>

#include "support/logging.h"

namespace nomap {

FootprintTracker::FootprintTracker(uint32_t size_bytes, uint32_t ways_)
    : ways(ways_)
{
    NOMAP_ASSERT(ways > 0);
    NOMAP_ASSERT(size_bytes % (kLineSize * ways) == 0);
    numSets = size_bytes / (kLineSize * ways);
    NOMAP_ASSERT((numSets & (numSets - 1)) == 0);
    sets.resize(numSets);
}

uint32_t
FootprintTracker::setIndex(Addr addr) const
{
    return static_cast<uint32_t>((addr / kLineSize) & (numSets - 1));
}

bool
FootprintTracker::insert(Addr addr)
{
    Addr line = addr / kLineSize;
    auto &set = sets[setIndex(addr)];
    if (std::find(set.begin(), set.end(), line) != set.end())
        return true;
    if (set.size() >= ways)
        return false;
    set.push_back(line);
    ++totalLines;
    maxWays = std::max<uint32_t>(maxWays,
                                 static_cast<uint32_t>(set.size()));
    return true;
}

bool
FootprintTracker::contains(Addr addr) const
{
    Addr line = addr / kLineSize;
    const auto &set = sets[setIndex(addr)];
    return std::find(set.begin(), set.end(), line) != set.end();
}

void
FootprintTracker::clear()
{
    for (auto &set : sets)
        set.clear();
    totalLines = 0;
    maxWays = 0;
}

} // namespace nomap
