#ifndef NOMAP_MEMSIM_FOOTPRINT_H
#define NOMAP_MEMSIM_FOOTPRINT_H

/**
 * @file
 * Set-associative transactional footprint tracker.
 *
 * Hardware transactions bound their speculative state by cache
 * geometry, not by a simple byte budget: a transaction aborts the
 * moment one cache *set* runs out of ways for speculatively-held
 * lines, even if the total footprint is far below capacity. The
 * tracker mirrors the geometry of the cache level that holds the
 * corresponding footprint (ROT writes -> L2; RTM writes -> L1D, RTM
 * reads -> L2) and reports both overflow and the Table-IV statistics:
 * footprint bytes and the maximum associativity any set needed.
 */

#include <cstdint>
#include <vector>

#include "memsim/addr.h"

namespace nomap {

/**
 * Tracks the set of distinct cache lines touched by a transaction
 * against a fixed (sets x ways) geometry.
 */
class FootprintTracker
{
  public:
    /**
     * @param size_bytes Capacity of the backing cache level.
     * @param ways Associativity of the backing cache level.
     */
    FootprintTracker(uint32_t size_bytes, uint32_t ways);

    /**
     * Record that @p addr's line is part of the footprint.
     * @return false if the set holding the line is already full with
     *         other footprint lines (capacity/associativity overflow).
     */
    bool insert(Addr addr);

    /** True if the line is already tracked. */
    bool contains(Addr addr) const;

    /** Distinct lines tracked. */
    uint32_t lineCount() const { return totalLines; }

    /** Footprint in bytes (lines x 64). */
    uint64_t footprintBytes() const
    {
        return static_cast<uint64_t>(totalLines) * kLineSize;
    }

    /** Largest number of tracked lines in any single set. */
    uint32_t maxWaysUsed() const { return maxWays; }

    /** Forget everything (transaction commit or abort). */
    void clear();

    uint32_t numWays() const { return ways; }

  private:
    uint32_t setIndex(Addr addr) const;

    uint32_t ways;
    uint32_t numSets;
    /** Per-set list of line numbers (addr / kLineSize). */
    std::vector<std::vector<Addr>> sets;
    uint32_t totalLines = 0;
    uint32_t maxWays = 0;
};

} // namespace nomap

#endif // NOMAP_MEMSIM_FOOTPRINT_H
