#include "memsim/hierarchy.h"

namespace nomap {

MemHierarchy::MemHierarchy()
    : l1d(32 * 1024, 8),
      l2c(256 * 1024, 8)
{
}

void
MemHierarchy::commitSpeculative()
{
    l1d.flashClearSw();
    l2c.flashClearSw();
}

void
MemHierarchy::discardSpeculative()
{
    l1d.invalidateSw();
    l2c.invalidateSw();
}

void
MemHierarchy::resetStats()
{
    l1d.resetStats();
    l2c.resetStats();
}

} // namespace nomap
