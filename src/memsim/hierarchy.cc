#include "memsim/hierarchy.h"

namespace nomap {

MemHierarchy::MemHierarchy()
    : l1d(32 * 1024, 8),
      l2c(256 * 1024, 8)
{
}

uint32_t
MemHierarchy::access(Addr addr, bool is_write, bool speculative)
{
    CacheResult r1 = l1d.access(addr, is_write, speculative);
    if (r1 == CacheResult::Hit)
        return lat.l1Hit;

    CacheResult r2 = l2c.access(addr, is_write, speculative);
    if (r2 == CacheResult::Hit)
        return lat.l2Hit;
    return lat.memAccess;
}

void
MemHierarchy::commitSpeculative()
{
    l1d.flashClearSw();
    l2c.flashClearSw();
}

void
MemHierarchy::discardSpeculative()
{
    l1d.invalidateSw();
    l2c.invalidateSw();
}

void
MemHierarchy::resetStats()
{
    l1d.resetStats();
    l2c.resetStats();
}

} // namespace nomap
