#ifndef NOMAP_MEMSIM_HIERARCHY_H
#define NOMAP_MEMSIM_HIERARCHY_H

/**
 * @file
 * Two-level data cache hierarchy matching the paper's evaluation
 * machine (Intel Skylake i7): 32 KB 8-way L1D and 256 KB 8-way L2,
 * 64-byte lines. Produces per-access latency in cycles for the timing
 * model and hit/miss statistics for the transaction characterization.
 */

#include <cstdint>

#include "memsim/cache.h"

namespace nomap {

/** Latency parameters in CPU cycles. */
struct MemLatency {
    uint32_t l1Hit = 4;
    uint32_t l2Hit = 12;
    uint32_t memAccess = 100;
};

/**
 * L1D + L2 hierarchy. Misses in L1 allocate in both levels (inclusive
 * enough for this model's purposes).
 */
class MemHierarchy
{
  public:
    /** Skylake-like default geometry. */
    MemHierarchy();

    /**
     * Perform one data access.
     *
     * @param addr Byte address.
     * @param is_write True for stores.
     * @param speculative True for transactional stores whose lines
     *        must be pinned with SW bits.
     * @return Latency of the access in cycles.
     *
     * Defined here so the per-memory-op executor paths inline it.
     */
    uint32_t
    access(Addr addr, bool is_write, bool speculative = false)
    {
        if (l1d.access(addr, is_write, speculative) == CacheResult::Hit)
            return lat.l1Hit;
        if (l2c.access(addr, is_write, speculative) == CacheResult::Hit)
            return lat.l2Hit;
        return lat.memAccess;
    }

    /** Commit: flash-clear SW bits in both levels. */
    void commitSpeculative();

    /** Abort: discard speculative lines in both levels. */
    void discardSpeculative();

    Cache &l1() { return l1d; }
    Cache &l2() { return l2c; }
    const Cache &l1() const { return l1d; }
    const Cache &l2() const { return l2c; }

    const MemLatency &latency() const { return lat; }

    void resetStats();

    /** Both levels' line/LRU state (see Cache::Snapshot). */
    struct Snapshot {
        Cache::Snapshot l1;
        Cache::Snapshot l2;
    };

    /** Copy both levels' contents into @p out (buffers reused). */
    void
    save(Snapshot &out) const
    {
        l1d.save(out.l1);
        l2c.save(out.l2);
    }

    /** Restore both levels' contents captured by save(). */
    void
    restore(const Snapshot &s)
    {
        l1d.restore(s.l1);
        l2c.restore(s.l2);
    }

  private:
    Cache l1d;
    Cache l2c;
    MemLatency lat;
};

} // namespace nomap

#endif // NOMAP_MEMSIM_HIERARCHY_H
