#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.h"

namespace nomap {

NetClient::~NetClient()
{
    close();
}

void
NetClient::connect(const std::string &host, uint16_t port)
{
    close();
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket() failed: %s", std::strerror(errno));
    if (recvBufferBytes > 0) {
        // Must land before connect(): the window is negotiated during
        // the handshake.
        setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &recvBufferBytes,
                   sizeof(recvBufferBytes));
    }

    sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        fatal("bad address '%s'", host.c_str());
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int err = errno;
        close();
        fatal("connect to %s:%u failed: %s", host.c_str(),
              static_cast<unsigned>(port), std::strerror(err));
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    decoder = FrameDecoder();
}

void
NetClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
NetClient::sendRequest(const WireRequest &request)
{
    sendBytes(frameMessage(encodeRequestPayload(request)));
}

void
NetClient::sendBytes(const std::string &bytes)
{
    if (fd < 0)
        fatal("NetClient: send on a closed connection");
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            close();
            fatal("NetClient: send failed: %s", std::strerror(err));
        }
        sent += static_cast<size_t>(n);
    }
}

WireResponse
NetClient::recvResponse()
{
    if (fd < 0)
        fatal("NetClient: recv on a closed connection");
    for (;;) {
        std::string payload, error;
        FrameDecoder::Result result = decoder.next(&payload, &error);
        if (result == FrameDecoder::Result::Error) {
            close();
            fatal("NetClient: protocol error: %s", error.c_str());
        }
        if (result == FrameDecoder::Result::Frame) {
            WireResponse response;
            if (!decodeResponsePayload(payload, &response, &error)) {
                close();
                fatal("NetClient: bad response payload: %s",
                      error.c_str());
            }
            return response;
        }
        char buf[64 * 1024];
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            decoder.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        int err = n < 0 ? errno : 0;
        close();
        if (n == 0)
            fatal("NetClient: connection closed by server");
        fatal("NetClient: read failed: %s", std::strerror(err));
    }
}

WireResponse
NetClient::call(const WireRequest &request)
{
    sendRequest(request);
    return recvResponse();
}

} // namespace nomap
