#ifndef NOMAP_NET_CLIENT_H
#define NOMAP_NET_CLIENT_H

/**
 * @file
 * NetClient: a small blocking client for the NoMap wire protocol.
 *
 * One TCP connection, synchronous framing: sendRequest() writes one
 * framed request, recvResponse() blocks until one complete response
 * frame arrives. Pipelining works — send N requests, then receive N
 * responses; the server answers in completion order, matched by id.
 * Errors (connect failure, peer EOF mid-frame, protocol violations)
 * throw FatalError; this is the test/driver client, not a resilient
 * production SDK — the event-loop client lives in bench/soak.
 */

#include <cstdint>
#include <string>

#include "net/wire.h"

namespace nomap {

class NetClient
{
  public:
    NetClient() = default;
    ~NetClient();

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /** Connect to host:port (IPv4 dotted quad). Throws FatalError. */
    void connect(const std::string &host, uint16_t port);

    /**
     * SO_RCVBUF to request on the next connect (0 = kernel default).
     * A small receive window makes server-side write backpressure
     * (POLLOUT cycling) reproducible in tests.
     */
    void setReceiveBuffer(int bytes) { recvBufferBytes = bytes; }

    void close();

    bool connected() const { return fd >= 0; }

    /** Frame and send one request. Throws FatalError on I/O error. */
    void sendRequest(const WireRequest &request);

    /**
     * Send raw bytes verbatim — no framing. Lets tests drive the
     * server with truncated or hostile byte streams.
     */
    void sendBytes(const std::string &bytes);

    /**
     * Block until one complete response frame arrives and decode it.
     * Throws FatalError on EOF, I/O error, or protocol error.
     */
    WireResponse recvResponse();

    /** sendRequest + recvResponse. */
    WireResponse call(const WireRequest &request);

  private:
    int fd = -1;
    int recvBufferBytes = 0;
    FrameDecoder decoder;
};

} // namespace nomap

#endif // NOMAP_NET_CLIENT_H
