#include "net/poller.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>
#if NOMAP_EPOLL
#include <sys/epoll.h>
#endif

#include "support/logging.h"

namespace nomap {

#if NOMAP_EPOLL

namespace {

uint32_t
toEpoll(uint32_t interest)
{
    uint32_t events = 0;
    if (interest & kPollIn)
        events |= EPOLLIN;
    if (interest & kPollOut)
        events |= EPOLLOUT;
    return events;
}

} // namespace

Poller::Poller()
{
    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0)
        fatal("epoll_create1: %s", std::strerror(errno));
}

Poller::~Poller()
{
    if (epollFd >= 0)
        ::close(epollFd);
}

void
Poller::add(int fd, uint32_t mask)
{
    epoll_event ev{};
    ev.events = toEpoll(mask);
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0)
        fatal("epoll_ctl(ADD, %d): %s", fd, std::strerror(errno));
    interest[fd] = mask;
}

void
Poller::modify(int fd, uint32_t mask)
{
    auto it = interest.find(fd);
    if (it == interest.end())
        fatal("epoll backend: modify of unwatched fd %d", fd);
    epoll_event ev{};
    ev.events = toEpoll(mask);
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev) != 0) {
        // EBADF/ENOENT: the fd was closed (and possibly reused) out
        // from under us — the kernel already dropped it from the
        // epoll set, so just forget it. Anything else is a real bug.
        if (errno != EBADF && errno != ENOENT)
            fatal("epoll_ctl(MOD, %d): %s", fd, std::strerror(errno));
        interest.erase(it);
        return;
    }
    it->second = mask;
}

void
Poller::remove(int fd)
{
    auto it = interest.find(fd);
    if (it == interest.end())
        fatal("epoll backend: remove of unwatched fd %d", fd);
    // Tolerate an fd closed out from under us (see modify()).
    if (::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr) != 0 &&
        errno != EBADF && errno != ENOENT)
        fatal("epoll_ctl(DEL, %d): %s", fd, std::strerror(errno));
    interest.erase(it);
}

void
Poller::clear()
{
    for (const auto &entry : interest)
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, entry.first, nullptr);
    interest.clear();
}

size_t
Poller::wait(std::vector<Event> *out, int timeout_ms)
{
    out->clear();
    std::vector<epoll_event> ready(
        interest.empty() ? 1 : interest.size());
    int n = ::epoll_wait(epollFd, ready.data(),
                         static_cast<int>(ready.size()), timeout_ms);
    if (n < 0) {
        if (errno == EINTR)
            return 0;
        fatal("epoll_wait: %s", std::strerror(errno));
    }
    out->reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        Event event;
        event.fd = ready[static_cast<size_t>(i)].data.fd;
        uint32_t bits = ready[static_cast<size_t>(i)].events;
        if (bits & (EPOLLIN | EPOLLERR | EPOLLHUP))
            event.ready |= kPollIn;
        if (bits & EPOLLOUT)
            event.ready |= kPollOut;
        if (event.ready)
            out->push_back(event);
    }
    return out->size();
}

const char *
Poller::backendName()
{
    return "epoll";
}

#else // portable poll(2) backend

Poller::Poller() = default;

Poller::~Poller() = default;

void
Poller::add(int fd, uint32_t mask)
{
    interest[fd] = mask;
}

void
Poller::modify(int fd, uint32_t mask)
{
    auto it = interest.find(fd);
    if (it == interest.end())
        fatal("poll backend: modify of unwatched fd %d", fd);
    it->second = mask;
}

void
Poller::remove(int fd)
{
    if (interest.erase(fd) == 0)
        fatal("poll backend: remove of unwatched fd %d", fd);
}

void
Poller::clear()
{
    interest.clear();
}

size_t
Poller::wait(std::vector<Event> *out, int timeout_ms)
{
    out->clear();
    std::vector<pollfd> fds;
    fds.reserve(interest.size());
    for (const auto &entry : interest) {
        pollfd p{};
        p.fd = entry.first;
        if (entry.second & kPollIn)
            p.events |= POLLIN;
        if (entry.second & kPollOut)
            p.events |= POLLOUT;
        fds.push_back(p);
    }
    int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) {
        if (errno == EINTR)
            return 0;
        fatal("poll: %s", std::strerror(errno));
    }
    for (const pollfd &p : fds) {
        if (p.revents == 0)
            continue;
        Event event;
        event.fd = p.fd;
        if (p.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL))
            event.ready |= kPollIn;
        if (p.revents & POLLOUT)
            event.ready |= kPollOut;
        if (event.ready)
            out->push_back(event);
    }
    return out->size();
}

const char *
Poller::backendName()
{
    return "poll";
}

#endif

} // namespace nomap
