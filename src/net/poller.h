#ifndef NOMAP_NET_POLLER_H
#define NOMAP_NET_POLLER_H

/**
 * @file
 * Readiness multiplexing behind one small interface.
 *
 * The server and the soak client both run single-threaded event
 * loops over hundreds-to-thousands of nonblocking sockets; this class
 * hides which kernel facility watches them. Two backends, selected at
 * configure time by the CMake probe (same pattern as computed-goto
 * dispatch):
 *
 *  - **epoll** (NOMAP_EPOLL): O(ready) waits, the right choice for
 *    thousands of mostly-idle connections.
 *  - **portable poll(2)**: rebuilds the pollfd array per wait —
 *    O(watched) — but works on any POSIX system; forced with
 *    -DNOMAP_PORTABLE_POLL=ON so CI can keep it honest on Linux too.
 *
 * Semantics are the intersection of the two: level-triggered
 * readiness, one interest mask per fd, error/hangup folded into
 * readability (the subsequent read() observes EOF or the error, which
 * is the single code path the server wants).
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace nomap {

/** Interest/readiness bits (level-triggered). */
enum : uint32_t {
    kPollIn = 1u << 0,  ///< Readable (or EOF/error pending).
    kPollOut = 1u << 1, ///< Writable.
};

class Poller
{
  public:
    /** One ready fd from wait(). */
    struct Event {
        int fd = -1;
        uint32_t ready = 0; ///< kPollIn / kPollOut bits.
    };

    /** Throws FatalError if the backend cannot be set up. */
    Poller();
    ~Poller();

    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /** Watch @p fd for @p interest (kPollIn/kPollOut mask). */
    void add(int fd, uint32_t interest);

    /**
     * Replace the interest mask of a watched fd. Calling this on a
     * watched fd that was closed out from under the poller is safe
     * (teardown races): the entry is dropped instead of updated.
     * Modifying a never-watched fd is a caller bug and fatal.
     */
    void modify(int fd, uint32_t interest);

    /**
     * Stop watching @p fd. Normally precedes close() of the fd, but
     * tolerates the fd having been closed already (see modify()).
     * Removing a never-watched fd is a caller bug and fatal.
     */
    void remove(int fd);

    /**
     * Drop every watched fd (best effort — fds may already be
     * closed). Teardown helper.
     */
    void clear();

    /**
     * Block up to @p timeout_ms (-1 = indefinitely) for readiness.
     * Clears and fills @p out; returns the number of ready fds.
     * EINTR is absorbed (returns 0).
     */
    size_t wait(std::vector<Event> *out, int timeout_ms);

    size_t watchedCount() const { return interest.size(); }

    /** "epoll" or "poll" — which backend this build selected. */
    static const char *backendName();

  private:
    /** fd -> interest mask; source of truth for both backends. */
    std::map<int, uint32_t> interest;
#if NOMAP_EPOLL
    int epollFd = -1;
#endif
};

} // namespace nomap

#endif // NOMAP_NET_POLLER_H
