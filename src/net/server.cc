#include "net/server.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/counters.h"
#include "support/logging.h"

namespace nomap {

namespace {

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("fcntl(O_NONBLOCK) failed: %s", std::strerror(errno));
}

void
setCloexec(int fd)
{
    fcntl(fd, F_SETFD, FD_CLOEXEC);
}

} // namespace

NoMapServer::NoMapServer(ServerConfig config)
    : cfg(std::move(config))
{
    if (cfg.loops == 0)
        cfg.loops = 1;
    const FaultPlan *plan = cfg.faultPlan;
    if (!plan) {
        if (std::optional<FaultPlan> env = FaultPlan::fromEnv()) {
            envPlan = std::make_unique<FaultPlan>(std::move(*env));
            plan = envPlan.get();
        }
    }
    if (plan && !plan->empty())
        injector = std::make_unique<FaultInjector>(*plan);

    // One resolved plan drives the whole stack: the net.* sites here,
    // service.shardfull at the router, service.* inside each shard.
    ShardedServiceConfig serviceCfg = cfg.service;
    if (!serviceCfg.faultPlan)
        serviceCfg.faultPlan = plan;
    serviceCfg.loops = cfg.loops;
    sharded = std::make_unique<ShardedService>(std::move(serviceCfg));
}

NoMapServer::~NoMapServer()
{
    stop();
}

int
NoMapServer::makeListener(uint16_t port, bool wantReuseport,
                          bool *reuseportOk, bool mustSucceed)
{
    if (reuseportOk)
        *reuseportOk = false;
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (mustSucceed)
            fatal("socket() failed: %s", std::strerror(errno));
        return -1;
    }
    setCloexec(fd);
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (wantReuseport) {
        // Runtime probe: old kernels (or exotic platforms) reject it,
        // in which case the caller falls back to a single acceptor.
#ifdef SO_REUSEPORT
        if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one,
                       sizeof(one)) == 0 &&
            reuseportOk)
            *reuseportOk = true;
#endif
    }

    sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, cfg.bindHost.c_str(), &addr.sin_addr) != 1) {
        close(fd);
        if (mustSucceed)
            fatal("bad bind address '%s'", cfg.bindHost.c_str());
        return -1;
    }
    if (bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0 ||
        listen(fd, cfg.backlog) < 0) {
        int err = errno;
        close(fd);
        if (mustSucceed)
            fatal("bind/listen on %s:%u failed: %s", cfg.bindHost.c_str(),
                  static_cast<unsigned>(port), std::strerror(err));
        return -1;
    }
    socklen_t len = sizeof(addr);
    getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);
    setNonBlocking(fd);
    return fd;
}

void
NoMapServer::start()
{
    std::lock_guard<std::mutex> lock(loopsMutex);
    if (!loops.empty())
        return;

    size_t nloops = std::max<size_t>(1, cfg.loops);
    bool probeOk = false;
    int firstFd = makeListener(cfg.port, nloops > 1, &probeOk, true);

    // With SO_REUSEPORT every loop gets its own listener on the same
    // port and the kernel balances accepts. Bind the extra listeners
    // up front so a late failure can still fall back cleanly.
    std::vector<int> listeners;
    listeners.push_back(firstFd);
    reuseportMode = nloops > 1 && probeOk;
    if (reuseportMode) {
        for (size_t i = 1; i < nloops; ++i) {
            bool ok = false;
            int fd = makeListener(boundPort, true, &ok, false);
            if (fd < 0 || !ok) {
                if (fd >= 0)
                    close(fd);
                reuseportMode = false;
                break;
            }
            listeners.push_back(fd);
        }
        if (!reuseportMode) {
            // The first listener still has SO_REUSEPORT set; keeping
            // it would let another local process bind the same port
            // and steal connections while reuseportActive() reports
            // false. Recreate it plain on the now-known bound port
            // (must succeed: the port was just released by us, so a
            // failure here is a genuine race worth dying loudly on).
            for (int fd : listeners)
                close(fd);
            listeners.assign(1, makeListener(boundPort, false, nullptr,
                                             true));
        }
    }

    adoptNext = 0;
    for (size_t i = 0; i < nloops; ++i) {
        auto loop = std::make_unique<EventLoop>(
            *this, static_cast<uint32_t>(i + 1));
        if (i < listeners.size())
            loop->attachListener(listeners[i]);
        loops.push_back(std::move(loop));
    }
    for (auto &loop : loops)
        loop->start();
}

void
NoMapServer::stop()
{
    std::lock_guard<std::mutex> lock(loopsMutex);
    if (loops.empty())
        return;
    for (auto &loop : loops)
        loop->requestStop();
    for (auto &loop : loops)
        loop->join();

    // Drain the back-end *before* tearing down the completion plumbing:
    // worker callbacks append completions and poke the wake pipes until
    // every in-flight request has resolved.
    sharded->shutdown();

    for (auto &loop : loops)
        loop->teardown();
    // Final per-loop counters outlive the loops so a metrics dump
    // after stop() (the nomap_serve shutdown path) still reports
    // them.
    finalLoopCounters.clear();
    for (const auto &loop : loops)
        finalLoopCounters.push_back(loop->counters());
    loops.clear();
    reuseportMode = false;
}

NetConnectionCounters
NoMapServer::connectionCounters() const
{
    NetConnectionCounters c;
    c.accepted = accepted.load(std::memory_order_relaxed);
    c.closed = closed.load(std::memory_order_relaxed);
    // Two separate relaxed loads: a connection accepted between them
    // and closed before the second can make closed > accepted, so
    // clamp instead of letting the unsigned subtraction wrap.
    c.active = clampedDelta(c.accepted, c.closed);
    c.rejected = rejected.load(std::memory_order_relaxed);
    c.acceptFaults = acceptFaults.load(std::memory_order_relaxed);
    c.acceptBackoffs = acceptBackoffs.load(std::memory_order_relaxed);
    c.readErrors = readErrors.load(std::memory_order_relaxed);
    c.writeErrors = writeErrors.load(std::memory_order_relaxed);
    c.decodeErrors = decodeErrors.load(std::memory_order_relaxed);
    c.framesIn = framesIn.load(std::memory_order_relaxed);
    c.framesOut = framesOut.load(std::memory_order_relaxed);
    c.deferredFrames = deferredFrames.load(std::memory_order_relaxed);
    c.bytesIn = bytesIn.load(std::memory_order_relaxed);
    c.bytesOut = bytesOut.load(std::memory_order_relaxed);
    return c;
}

bool
NoMapServer::running() const
{
    std::lock_guard<std::mutex> lock(loopsMutex);
    return !loops.empty();
}

size_t
NoMapServer::loopCount() const
{
    std::lock_guard<std::mutex> lock(loopsMutex);
    return loops.size();
}

ShardedMetricsSnapshot
NoMapServer::metrics() const
{
    ShardedMetricsSnapshot snap = sharded->metrics();
    snap.connections = connectionCounters();
    std::lock_guard<std::mutex> lock(loopsMutex);
    if (loops.empty()) {
        snap.eventLoops = finalLoopCounters;
    } else {
        for (const auto &loop : loops)
            snap.eventLoops.push_back(loop->counters());
    }
    return snap;
}

// ---- EventLoop ---------------------------------------------------------

NoMapServer::EventLoop::EventLoop(NoMapServer &server, uint32_t ordinal)
    : server(server), ordinal(ordinal)
{
}

NoMapServer::EventLoop::~EventLoop()
{
    requestStop();
    join();
    teardown();
}

void
NoMapServer::EventLoop::start()
{
    stopFlag.store(false, std::memory_order_relaxed);
    int pipefd[2];
    if (pipe(pipefd) < 0)
        fatal("pipe() failed: %s", std::strerror(errno));
    wakeR = pipefd[0];
    wakeW = pipefd[1];
    setNonBlocking(wakeR);
    setNonBlocking(wakeW);
    setCloexec(wakeR);
    setCloexec(wakeW);

    if (listenFd >= 0)
        poller.add(listenFd, kPollIn);
    poller.add(wakeR, kPollIn);

    thread = std::thread([this] { loopMain(); });
}

void
NoMapServer::EventLoop::requestStop()
{
    stopFlag.store(true, std::memory_order_release);
    wake();
}

void
NoMapServer::EventLoop::join()
{
    if (thread.joinable())
        thread.join();
}

void
NoMapServer::EventLoop::teardown()
{
    for (auto &entry : conns) {
        close(entry.second->fd);
        server.closed.fetch_add(1, std::memory_order_relaxed);
        loopClosed.fetch_add(1, std::memory_order_relaxed);
    }
    conns.clear();
    connsById.clear();
    poller.clear();
    {
        // Adopted-but-never-installed sockets (fallback handoff raced
        // with shutdown): close without touching accepted/closed.
        std::lock_guard<std::mutex> lock(adoptMutex);
        for (int fd : adopted)
            close(fd);
        adopted.clear();
    }
    if (listenFd >= 0)
        close(listenFd);
    if (wakeR >= 0)
        close(wakeR);
    if (wakeW >= 0)
        close(wakeW);
    listenFd = wakeR = wakeW = -1;
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        completions.clear();
    }
    thread = std::thread();
}

void
NoMapServer::EventLoop::wake()
{
    if (wakeW < 0)
        return;
    ssize_t ignored = write(wakeW, "x", 1);
    (void)ignored;
}

void
NoMapServer::EventLoop::postCompletion(uint64_t connId, std::string frame)
{
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        completions.emplace_back(connId, std::move(frame));
    }
    wake();
}

void
NoMapServer::EventLoop::adoptSocket(int fd)
{
    {
        std::lock_guard<std::mutex> lock(adoptMutex);
        adopted.push_back(fd);
    }
    wake();
}

NetLoopCounters
NoMapServer::EventLoop::counters() const
{
    NetLoopCounters c;
    c.loop = ordinal;
    c.accepted = loopAccepted.load(std::memory_order_relaxed);
    uint64_t closedNow = loopClosed.load(std::memory_order_relaxed);
    c.active = clampedDelta(c.accepted, closedNow);
    c.framesIn = loopFramesIn.load(std::memory_order_relaxed);
    c.framesOut = loopFramesOut.load(std::memory_order_relaxed);
    return c;
}

void
NoMapServer::EventLoop::loopMain()
{
    std::vector<Poller::Event> events;
    while (!stopFlag.load(std::memory_order_acquire)) {
        maybeResumeAccept();

        // Deferred frames (net.frame) are replayed next cycle, so cap
        // the wait whenever any exist; otherwise sleep long — every
        // state change that matters pokes the self-pipe or a socket.
        bool hasDeferred = false;
        for (auto &entry : conns) {
            if (!entry.second->deferred.empty()) {
                hasDeferred = true;
                break;
            }
        }
        int timeout = hasDeferred ? 10 : 500;
        if (acceptPaused) {
            auto now = std::chrono::steady_clock::now();
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(acceptResumeAt -
                                                       now)
                            .count();
            timeout = std::min<long long>(timeout,
                                          std::max<long long>(1, left + 1));
        }
        poller.wait(&events, timeout);

        for (const Poller::Event &event : events) {
            if (event.fd == listenFd) {
                handleAccept();
                continue;
            }
            if (event.fd == wakeR) {
                char buf[256];
                while (read(wakeR, buf, sizeof(buf)) > 0) {
                }
                continue;
            }
            auto it = conns.find(event.fd);
            if (it == conns.end())
                continue; // Closed earlier this batch.
            Conn *conn = it->second.get();
            uint64_t id = conn->id;
            if (event.ready & kPollIn)
                handleReadable(conn);
            if (event.ready & kPollOut) {
                // Re-look-up *and* match the id: the read side may
                // have closed the conn, and an accept earlier in this
                // batch may have reused the fd for a new connection —
                // `conn` would dangle, and the fresh conn must not be
                // flushed for the stale event either.
                auto again = conns.find(event.fd);
                if (again != conns.end() && again->second->id == id)
                    handleWritable(again->second.get());
            }
        }

        drainAdopted();
        drainCompletions();

        // Replay frames net.frame held back one cycle.
        std::vector<std::pair<uint64_t, std::string>> replay;
        for (auto &entry : conns) {
            Conn *conn = entry.second.get();
            for (std::string &payload : conn->deferred)
                replay.emplace_back(conn->id, std::move(payload));
            conn->deferred.clear();
        }
        for (auto &[id, payload] : replay) {
            if (Conn *conn = connById(id))
                processFrame(conn, std::move(payload));
        }
    }
}

void
NoMapServer::EventLoop::pauseAccept()
{
    if (acceptPaused || listenFd < 0)
        return;
    // The listener is level-triggered: with a pending connection we
    // cannot accept, every wait() would return immediately. Drop accept
    // interest and re-arm after the backoff tick instead of spinning.
    acceptPaused = true;
    acceptResumeAt = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(
                         std::max(1, server.cfg.acceptBackoffMs));
    server.acceptBackoffs.fetch_add(1, std::memory_order_relaxed);
    poller.modify(listenFd, 0);
}

void
NoMapServer::EventLoop::maybeResumeAccept()
{
    if (!acceptPaused)
        return;
    if (std::chrono::steady_clock::now() < acceptResumeAt)
        return;
    acceptPaused = false;
    // Level-triggered: a connection still waiting re-fires immediately.
    poller.modify(listenFd, kPollIn);
}

void
NoMapServer::EventLoop::handleAccept()
{
    for (;;) {
        int fd = accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            // Transient resource exhaustion (EMFILE & co): count it,
            // back off, and keep serving the connections we have.
            server.acceptFaults.fetch_add(1, std::memory_order_relaxed);
            pauseAccept();
            return;
        }
        // Injected accept failure: the kernel handed us a socket but
        // the server "fails" it — closed before any byte is served.
        if (server.injector &&
            server.injector->fire(FaultSite::NetAccept)) {
            server.acceptFaults.fetch_add(1, std::memory_order_relaxed);
            close(fd);
            continue;
        }
        // Rejected connections never count as accepted/closed, so
        // "accepted" keeps meaning served. The cap is checked against
        // the server-wide totals; with multiple loops accepting
        // concurrently it is approximate by at most loops-1.
        uint64_t acc = server.accepted.load(std::memory_order_relaxed);
        uint64_t cls = server.closed.load(std::memory_order_relaxed);
        uint64_t live = clampedDelta(acc, cls);
        if (live >= server.cfg.maxConnections) {
            server.rejected.fetch_add(1, std::memory_order_relaxed);
            close(fd);
            continue;
        }
        setNonBlocking(fd);
        setCloexec(fd);
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (server.cfg.sendBufferBytes > 0) {
            int sz = server.cfg.sendBufferBytes;
            setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
        }

        if (server.reuseportMode || server.loops.size() <= 1) {
            installConn(fd);
            continue;
        }
        // Fallback single acceptor: round-robin the socket across all
        // loops (including this one). adoptNext is only ever touched
        // here, on the one loop that owns the listener.
        EventLoop *target =
            server.loops[server.adoptNext++ % server.loops.size()].get();
        if (target == this)
            installConn(fd);
        else
            target->adoptSocket(fd);
    }
}

void
NoMapServer::EventLoop::installConn(int fd)
{
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = server.nextConnId.fetch_add(1, std::memory_order_relaxed);
    connsById[conn->id] = conn.get();
    poller.add(fd, kPollIn);
    conn->interest = kPollIn;
    conns[fd] = std::move(conn);
    server.accepted.fetch_add(1, std::memory_order_relaxed);
    loopAccepted.fetch_add(1, std::memory_order_relaxed);
}

void
NoMapServer::EventLoop::drainAdopted()
{
    std::vector<int> batch;
    {
        std::lock_guard<std::mutex> lock(adoptMutex);
        batch.swap(adopted);
    }
    for (int fd : batch)
        installConn(fd);
}

void
NoMapServer::EventLoop::handleReadable(Conn *conn)
{
    // A closing connection (poisoned decoder) is flush-only: don't
    // read more input, and don't report the same protocol error twice.
    if (conn->closing)
        return;
    for (;;) {
        char buf[64 * 1024];
        size_t want = sizeof(buf);
        // Injected short read: deliver one byte this syscall. The
        // stream content is unchanged — only its arrival granularity —
        // so responses must still be bit-identical.
        if (server.injector && server.injector->fire(FaultSite::NetRead))
            want = 1;
        ssize_t n = read(conn->fd, buf, want);
        if (n > 0) {
            server.bytesIn.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
            conn->decoder.feed(buf, static_cast<size_t>(n));
            if (want == 1)
                break; // One byte per poll cycle while the fault arms.
            if (static_cast<size_t>(n) < want)
                break; // Drained the socket.
            continue;
        }
        if (n == 0) { // Peer closed.
            closeConn(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        server.readErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(conn);
        return;
    }

    // Pull every complete frame out of the decoder.
    for (;;) {
        std::string payload, error;
        FrameDecoder::Result result =
            conn->decoder.next(&payload, &error);
        if (result == FrameDecoder::Result::NeedMore)
            break;
        if (result == FrameDecoder::Result::Error) {
            // Unresynchronizable: answer with one error frame, then
            // close once it flushes.
            server.decodeErrors.fetch_add(1, std::memory_order_relaxed);
            WireResponse wire;
            wire.status = static_cast<uint8_t>(ResponseStatus::Error);
            wire.error = "protocol error: " + error;
            queueResponse(conn, wire);
            conn->closing = true;
            flushConn(conn);
            return;
        }
        server.framesIn.fetch_add(1, std::memory_order_relaxed);
        loopFramesIn.fetch_add(1, std::memory_order_relaxed);
        // Injected frame deferral: hold the decoded frame one poll
        // cycle. Ordering within the connection is preserved (the
        // replay queue is FIFO), so responses stay deterministic.
        if (server.injector &&
            server.injector->fire(FaultSite::NetFrameDefer)) {
            server.deferredFrames.fetch_add(1, std::memory_order_relaxed);
            conn->deferred.push_back(std::move(payload));
            continue;
        }
        // processFrame's malformed-payload path flushes inline, and a
        // hard send() error there (peer already reset) frees *conn —
        // capture the id first and re-check through the table, never
        // through the stale pointer (same discipline as the deferred
        // replay loop below).
        uint64_t frameConnId = conn->id;
        processFrame(conn, std::move(payload));
        if (!connById(frameConnId))
            return; // processFrame closed it.
    }
}

void
NoMapServer::EventLoop::processFrame(Conn *conn, std::string payload)
{
    WireRequest wire;
    std::string error;
    Request request;
    if (!decodeRequestPayload(payload, &wire, &error) ||
        !wireToRequest(wire, &request, &error)) {
        // Malformed request *payload* (framing was fine): the stream
        // is still in sync, so answer Error and keep the connection.
        server.decodeErrors.fetch_add(1, std::memory_order_relaxed);
        WireResponse response;
        response.id = wire.id;
        response.status = static_cast<uint8_t>(ResponseStatus::Error);
        response.error = "bad request: " + error;
        queueResponse(conn, response);
        flushConn(conn);
        return;
    }
    request.connectionId = conn->id;
    request.loop = ordinal;
    conn->pending++;

    uint64_t connId = conn->id;
    server.sharded->submitAsync(
        std::move(request), [this, connId](Response response) {
            // Worker thread (or the loop thread itself when shed
            // inline): encode here, hand the loop finished bytes.
            std::string frame = frameMessage(
                encodeResponsePayload(responseToWire(response)));
            postCompletion(connId, std::move(frame));
        });
}

void
NoMapServer::EventLoop::drainCompletions()
{
    std::vector<std::pair<uint64_t, std::string>> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        batch.swap(completions);
    }
    // Write batching: append every completed frame to its connection
    // first, then flush each touched connection once — one coalesced
    // send per connection per poll cycle, one POLLOUT toggle at most.
    std::vector<Conn *> dirty;
    for (auto &[connId, frame] : batch) {
        Conn *conn = connById(connId);
        if (!conn)
            continue; // Peer vanished before its response landed.
        if (conn->pending > 0)
            conn->pending--;
        conn->outbuf.append(frame);
        server.framesOut.fetch_add(1, std::memory_order_relaxed);
        loopFramesOut.fetch_add(1, std::memory_order_relaxed);
        if (!conn->dirty) {
            conn->dirty = true;
            dirty.push_back(conn);
        }
    }
    for (Conn *conn : dirty) {
        conn->dirty = false;
        flushConn(conn); // May closeConn; each conn appears once.
    }
}

void
NoMapServer::EventLoop::queueResponse(Conn *conn,
                                      const WireResponse &wire)
{
    conn->outbuf.append(frameMessage(encodeResponsePayload(wire)));
    server.framesOut.fetch_add(1, std::memory_order_relaxed);
    loopFramesOut.fetch_add(1, std::memory_order_relaxed);
}

void
NoMapServer::EventLoop::handleWritable(Conn *conn)
{
    flushConn(conn);
}

void
NoMapServer::EventLoop::flushConn(Conn *conn)
{
    while (conn->outPos < conn->outbuf.size()) {
        size_t remaining = conn->outbuf.size() - conn->outPos;
        // Injected short write: one byte per syscall. Content and
        // order are unchanged; only packetization degrades.
        if (server.injector &&
            server.injector->fire(FaultSite::NetWrite))
            remaining = 1;
        ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outPos,
                           remaining, MSG_NOSIGNAL);
        if (n > 0) {
            conn->outPos += static_cast<size_t>(n);
            server.bytesOut.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        server.writeErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(conn);
        return;
    }
    if (conn->outPos == conn->outbuf.size()) {
        conn->outbuf.clear();
        conn->outPos = 0;
        if (conn->closing && conn->pending == 0) {
            closeConn(conn);
            return;
        }
    }
    updateWriteInterest(conn);
}

void
NoMapServer::EventLoop::updateWriteInterest(Conn *conn)
{
    uint32_t want = kPollIn;
    if (conn->outPos < conn->outbuf.size())
        want |= kPollOut;
    // Interest is cached per connection so batched flushes cost one
    // poller syscall per actual edge, not one per frame.
    if (want == conn->interest)
        return;
    poller.modify(conn->fd, want);
    conn->interest = want;
}

void
NoMapServer::EventLoop::closeConn(Conn *conn)
{
    poller.remove(conn->fd);
    close(conn->fd);
    connsById.erase(conn->id);
    conns.erase(conn->fd); // Destroys *conn.
    server.closed.fetch_add(1, std::memory_order_relaxed);
    loopClosed.fetch_add(1, std::memory_order_relaxed);
}

NoMapServer::EventLoop::Conn *
NoMapServer::EventLoop::connById(uint64_t id)
{
    auto it = connsById.find(id);
    return it == connsById.end() ? nullptr : it->second;
}

} // namespace nomap
