#include "net/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.h"

namespace nomap {

namespace {

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("fcntl(O_NONBLOCK) failed: %s", std::strerror(errno));
}

void
setCloexec(int fd)
{
    fcntl(fd, F_SETFD, FD_CLOEXEC);
}

} // namespace

NoMapServer::NoMapServer(ServerConfig config)
    : cfg(std::move(config))
{
    const FaultPlan *plan = cfg.faultPlan;
    if (!plan) {
        if (std::optional<FaultPlan> env = FaultPlan::fromEnv()) {
            envPlan = std::make_unique<FaultPlan>(std::move(*env));
            plan = envPlan.get();
        }
    }
    if (plan && !plan->empty())
        injector = std::make_unique<FaultInjector>(*plan);

    // One resolved plan drives the whole stack: the net.* sites here,
    // service.shardfull at the router, service.* inside each shard.
    ShardedServiceConfig serviceCfg = cfg.service;
    if (!serviceCfg.faultPlan)
        serviceCfg.faultPlan = plan;
    sharded = std::make_unique<ShardedService>(std::move(serviceCfg));
}

NoMapServer::~NoMapServer()
{
    stop();
}

void
NoMapServer::start()
{
    if (loopThread.joinable())
        return;
    stopFlag.store(false, std::memory_order_relaxed);

    listenFd = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal("socket() failed: %s", std::strerror(errno));
    setCloexec(listenFd);
    int one = 1;
    setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg.port);
    if (inet_pton(AF_INET, cfg.bindHost.c_str(), &addr.sin_addr) != 1) {
        close(listenFd);
        listenFd = -1;
        fatal("bad bind address '%s'", cfg.bindHost.c_str());
    }
    if (bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) < 0 ||
        listen(listenFd, cfg.backlog) < 0) {
        int err = errno;
        close(listenFd);
        listenFd = -1;
        fatal("bind/listen on %s:%u failed: %s", cfg.bindHost.c_str(),
              static_cast<unsigned>(cfg.port), std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = ntohs(addr.sin_port);
    setNonBlocking(listenFd);

    int pipefd[2];
    if (pipe(pipefd) < 0) {
        close(listenFd);
        listenFd = -1;
        fatal("pipe() failed: %s", std::strerror(errno));
    }
    wakeR = pipefd[0];
    wakeW = pipefd[1];
    setNonBlocking(wakeR);
    setNonBlocking(wakeW);
    setCloexec(wakeR);
    setCloexec(wakeW);

    poller.add(listenFd, kPollIn);
    poller.add(wakeR, kPollIn);

    loopThread = std::thread([this] { loopMain(); });
}

void
NoMapServer::stop()
{
    if (!loopThread.joinable())
        return;
    stopFlag.store(true, std::memory_order_release);
    ssize_t ignored = write(wakeW, "x", 1);
    (void)ignored;
    loopThread.join();

    // Drain the back-end *before* tearing down the completion plumbing:
    // worker callbacks append completions and poke wakeW until every
    // in-flight request has resolved.
    sharded->shutdown();

    for (auto &entry : conns) {
        close(entry.second->fd);
        closed.fetch_add(1, std::memory_order_relaxed);
    }
    conns.clear();
    connsById.clear();
    poller.clear();
    close(listenFd);
    close(wakeR);
    close(wakeW);
    listenFd = wakeR = wakeW = -1;
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        completions.clear();
    }
    loopThread = std::thread();
}

NetConnectionCounters
NoMapServer::connectionCounters() const
{
    NetConnectionCounters c;
    c.accepted = accepted.load(std::memory_order_relaxed);
    c.closed = closed.load(std::memory_order_relaxed);
    c.active = c.accepted - c.closed;
    c.acceptFaults = acceptFaults.load(std::memory_order_relaxed);
    c.readErrors = readErrors.load(std::memory_order_relaxed);
    c.writeErrors = writeErrors.load(std::memory_order_relaxed);
    c.decodeErrors = decodeErrors.load(std::memory_order_relaxed);
    c.framesIn = framesIn.load(std::memory_order_relaxed);
    c.framesOut = framesOut.load(std::memory_order_relaxed);
    c.deferredFrames = deferredFrames.load(std::memory_order_relaxed);
    c.bytesIn = bytesIn.load(std::memory_order_relaxed);
    c.bytesOut = bytesOut.load(std::memory_order_relaxed);
    return c;
}

ShardedMetricsSnapshot
NoMapServer::metrics() const
{
    ShardedMetricsSnapshot snap = sharded->metrics();
    snap.connections = connectionCounters();
    return snap;
}

// ---- Event loop --------------------------------------------------------

void
NoMapServer::loopMain()
{
    std::vector<Poller::Event> events;
    while (!stopFlag.load(std::memory_order_acquire)) {
        // Deferred frames (net.frame) are replayed next cycle, so cap
        // the wait whenever any exist; otherwise sleep long — every
        // state change that matters pokes the self-pipe or a socket.
        bool hasDeferred = false;
        for (auto &entry : conns) {
            if (!entry.second->deferred.empty()) {
                hasDeferred = true;
                break;
            }
        }
        poller.wait(&events, hasDeferred ? 10 : 500);

        for (const Poller::Event &event : events) {
            if (event.fd == listenFd) {
                handleAccept();
                continue;
            }
            if (event.fd == wakeR) {
                char buf[256];
                while (read(wakeR, buf, sizeof(buf)) > 0) {
                }
                continue;
            }
            auto it = conns.find(event.fd);
            if (it == conns.end())
                continue; // Closed earlier this batch.
            Conn *conn = it->second.get();
            if (event.ready & kPollIn)
                handleReadable(conn);
            // Re-check: the read side may have closed the conn.
            if (conns.count(event.fd) && (event.ready & kPollOut))
                handleWritable(conn);
        }

        drainCompletions();

        // Replay frames net.frame held back one cycle.
        std::vector<std::pair<uint64_t, std::string>> replay;
        for (auto &entry : conns) {
            Conn *conn = entry.second.get();
            for (std::string &payload : conn->deferred)
                replay.emplace_back(conn->id, std::move(payload));
            conn->deferred.clear();
        }
        for (auto &[id, payload] : replay) {
            if (Conn *conn = connById(id))
                processFrame(conn, std::move(payload));
        }
    }
}

void
NoMapServer::handleAccept()
{
    for (;;) {
        int fd = accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            // Transient resource exhaustion (EMFILE & co): count it
            // and keep serving the connections we already have.
            acceptFaults.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        // Injected accept failure: the kernel handed us a socket but
        // the server "fails" it — closed before any byte is served.
        if (injector && injector->fire(FaultSite::NetAccept)) {
            acceptFaults.fetch_add(1, std::memory_order_relaxed);
            close(fd);
            continue;
        }
        if (conns.size() >= cfg.maxConnections) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            closed.fetch_add(1, std::memory_order_relaxed);
            close(fd);
            continue;
        }
        setNonBlocking(fd);
        setCloexec(fd);
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = nextConnId++;
        connsById[conn->id] = conn.get();
        poller.add(fd, kPollIn);
        conns[fd] = std::move(conn);
        accepted.fetch_add(1, std::memory_order_relaxed);
    }
}

void
NoMapServer::handleReadable(Conn *conn)
{
    // A closing connection (poisoned decoder) is flush-only: don't
    // read more input, and don't report the same protocol error twice.
    if (conn->closing)
        return;
    for (;;) {
        char buf[64 * 1024];
        size_t want = sizeof(buf);
        // Injected short read: deliver one byte this syscall. The
        // stream content is unchanged — only its arrival granularity —
        // so responses must still be bit-identical.
        if (injector && injector->fire(FaultSite::NetRead))
            want = 1;
        ssize_t n = read(conn->fd, buf, want);
        if (n > 0) {
            bytesIn.fetch_add(static_cast<uint64_t>(n),
                              std::memory_order_relaxed);
            conn->decoder.feed(buf, static_cast<size_t>(n));
            if (want == 1)
                break; // One byte per poll cycle while the fault arms.
            if (static_cast<size_t>(n) < want)
                break; // Drained the socket.
            continue;
        }
        if (n == 0) { // Peer closed.
            closeConn(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        readErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(conn);
        return;
    }

    // Pull every complete frame out of the decoder.
    for (;;) {
        std::string payload, error;
        FrameDecoder::Result result =
            conn->decoder.next(&payload, &error);
        if (result == FrameDecoder::Result::NeedMore)
            break;
        if (result == FrameDecoder::Result::Error) {
            // Unresynchronizable: answer with one error frame, then
            // close once it flushes.
            decodeErrors.fetch_add(1, std::memory_order_relaxed);
            WireResponse wire;
            wire.status = static_cast<uint8_t>(ResponseStatus::Error);
            wire.error = "protocol error: " + error;
            queueResponse(conn, wire);
            conn->closing = true;
            flushConn(conn);
            return;
        }
        framesIn.fetch_add(1, std::memory_order_relaxed);
        // Injected frame deferral: hold the decoded frame one poll
        // cycle. Ordering within the connection is preserved (the
        // replay queue is FIFO), so responses stay deterministic.
        if (injector && injector->fire(FaultSite::NetFrameDefer)) {
            deferredFrames.fetch_add(1, std::memory_order_relaxed);
            conn->deferred.push_back(std::move(payload));
            continue;
        }
        processFrame(conn, std::move(payload));
        if (!connById(conn->id))
            return; // processFrame closed it.
    }
}

void
NoMapServer::processFrame(Conn *conn, std::string payload)
{
    WireRequest wire;
    std::string error;
    Request request;
    if (!decodeRequestPayload(payload, &wire, &error) ||
        !wireToRequest(wire, &request, &error)) {
        // Malformed request *payload* (framing was fine): the stream
        // is still in sync, so answer Error and keep the connection.
        decodeErrors.fetch_add(1, std::memory_order_relaxed);
        WireResponse response;
        response.id = wire.id;
        response.status = static_cast<uint8_t>(ResponseStatus::Error);
        response.error = "bad request: " + error;
        queueResponse(conn, response);
        flushConn(conn);
        return;
    }
    request.connectionId = conn->id;
    conn->pending++;

    uint64_t connId = conn->id;
    sharded->submitAsync(
        std::move(request), [this, connId](Response response) {
            // Worker thread (or the loop thread itself when shed
            // inline): encode here, hand the loop finished bytes.
            std::string frame =
                frameMessage(encodeResponsePayload(
                    responseToWire(response)));
            {
                std::lock_guard<std::mutex> lock(completionMutex);
                completions.emplace_back(connId, std::move(frame));
            }
            ssize_t ignored = write(wakeW, "x", 1);
            (void)ignored;
        });
}

void
NoMapServer::drainCompletions()
{
    std::vector<std::pair<uint64_t, std::string>> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex);
        batch.swap(completions);
    }
    for (auto &[connId, frame] : batch) {
        Conn *conn = connById(connId);
        if (!conn)
            continue; // Peer vanished before its response landed.
        if (conn->pending > 0)
            conn->pending--;
        conn->outbuf.append(frame);
        framesOut.fetch_add(1, std::memory_order_relaxed);
        flushConn(conn);
    }
}

void
NoMapServer::queueResponse(Conn *conn, const WireResponse &wire)
{
    conn->outbuf.append(frameMessage(encodeResponsePayload(wire)));
    framesOut.fetch_add(1, std::memory_order_relaxed);
}

void
NoMapServer::handleWritable(Conn *conn)
{
    flushConn(conn);
}

void
NoMapServer::flushConn(Conn *conn)
{
    while (conn->outPos < conn->outbuf.size()) {
        size_t remaining = conn->outbuf.size() - conn->outPos;
        // Injected short write: one byte per syscall. Content and
        // order are unchanged; only packetization degrades.
        if (injector && injector->fire(FaultSite::NetWrite))
            remaining = 1;
        ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outPos,
                           remaining, MSG_NOSIGNAL);
        if (n > 0) {
            conn->outPos += static_cast<size_t>(n);
            bytesOut.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        writeErrors.fetch_add(1, std::memory_order_relaxed);
        closeConn(conn);
        return;
    }
    if (conn->outPos == conn->outbuf.size()) {
        conn->outbuf.clear();
        conn->outPos = 0;
        if (conn->closing && conn->pending == 0) {
            closeConn(conn);
            return;
        }
    }
    updateWriteInterest(conn);
}

void
NoMapServer::updateWriteInterest(Conn *conn)
{
    uint32_t want = kPollIn;
    if (conn->outPos < conn->outbuf.size())
        want |= kPollOut;
    poller.modify(conn->fd, want);
}

void
NoMapServer::closeConn(Conn *conn)
{
    poller.remove(conn->fd);
    close(conn->fd);
    connsById.erase(conn->id);
    conns.erase(conn->fd); // Destroys *conn.
    closed.fetch_add(1, std::memory_order_relaxed);
}

NoMapServer::Conn *
NoMapServer::connById(uint64_t id)
{
    auto it = connsById.find(id);
    return it == connsById.end() ? nullptr : it->second;
}

} // namespace nomap
