#ifndef NOMAP_NET_SERVER_H
#define NOMAP_NET_SERVER_H

/**
 * @file
 * NoMapServer: a TCP front-end over ShardedService.
 *
 * Architecture: one event-loop thread owns every socket (accept, read,
 * decode, write); execution happens on the sharded service's worker
 * threads. The two meet at exactly one seam — workers encode the
 * finished response, append it to a mutex-protected completion queue
 * keyed by *connection id* (never by fd, which the kernel recycles),
 * and poke a self-pipe so the loop wakes and flushes. The loop never
 * blocks on execution; workers never touch a socket. That single
 * seam is what keeps the whole stack TSan-clean.
 *
 * Robustness mirrors the engine's HTM discipline — bounded work, then
 * graceful degradation: oversized frames poison the connection (a
 * length-prefixed stream cannot be resynchronized), per-request
 * decode errors answer with a status=Error frame instead of killing
 * the stream, admission control sheds with status=Shed, and the
 * net.accept / net.read / net.write / net.frame fault sites let the
 * chaos suite drive every one of those paths deterministically.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "inject/fault_plan.h"
#include "net/poller.h"
#include "net/wire.h"
#include "service/metrics.h"
#include "service/sharded_service.h"

namespace nomap {

/** Tuning for NoMapServer. */
struct ServerConfig {
    /** Address to bind ("127.0.0.1"; use "0.0.0.0" to serve out). */
    std::string bindHost = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (read it via port()). */
    uint16_t port = 0;
    /** listen(2) backlog. */
    int backlog = 128;
    /** Hard cap on concurrent connections; excess are closed. */
    size_t maxConnections = 4096;
    /** The sharded execution back-end. */
    ShardedServiceConfig service;
    /**
     * Fault plan for net.* sites. Must outlive the server; when null,
     * NOMAP_FAULT_PLAN is consulted. The resolved plan is also handed
     * to the sharded service unless service.faultPlan is already set.
     */
    const FaultPlan *faultPlan = nullptr;
};

/** TCP server fronting ShardedService (see file comment). */
class NoMapServer
{
  public:
    explicit NoMapServer(ServerConfig config = ServerConfig());
    ~NoMapServer();

    NoMapServer(const NoMapServer &) = delete;
    NoMapServer &operator=(const NoMapServer &) = delete;

    /**
     * Bind, listen, and start the event-loop thread. Throws
     * FatalError when the address cannot be bound. Idempotent once
     * running.
     */
    void start();

    /** Stop accepting, drain execution, join the loop. Idempotent. */
    void stop();

    /** The bound TCP port (after start()); 0 before. */
    uint16_t port() const { return boundPort; }

    bool running() const { return loopThread.joinable(); }

    /** The back-end (tests reach through for shard-level asserts). */
    ShardedService &service() { return *sharded; }

    /** Connection-layer counters (monotonic since start). */
    NetConnectionCounters connectionCounters() const;

    /** Full snapshot: shards + router + live connection counters. */
    ShardedMetricsSnapshot metrics() const;
    std::string metricsJson() const { return metrics().toJson(); }

    const ServerConfig &config() const { return cfg; }

  private:
    /** Per-connection state; owned by the event loop. */
    struct Conn {
        int fd = -1;
        uint64_t id = 0;
        FrameDecoder decoder;
        /** Encoded-but-unsent bytes (outPos = sent prefix). */
        std::string outbuf;
        size_t outPos = 0;
        /** Requests submitted but not yet answered on this conn. */
        size_t pending = 0;
        /** Close once outbuf drains and pending hits zero. */
        bool closing = false;
        /** Frames held back one poll cycle by net.frame. */
        std::vector<std::string> deferred;
    };

    void loopMain();
    void handleAccept();
    void handleReadable(Conn *conn);
    void handleWritable(Conn *conn);
    void processFrame(Conn *conn, std::string payload);
    void drainCompletions();
    void queueResponse(Conn *conn, const WireResponse &wire);
    void flushConn(Conn *conn);
    void updateWriteInterest(Conn *conn);
    void closeConn(Conn *conn);
    Conn *connById(uint64_t id);

    ServerConfig cfg;
    /** Plan captured from NOMAP_FAULT_PLAN when cfg.faultPlan null. */
    std::unique_ptr<FaultPlan> envPlan;
    /** Injector for the net.* sites (event-loop thread only). */
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ShardedService> sharded;

    Poller poller;
    int listenFd = -1;
    int wakeR = -1; ///< Self-pipe read end (in the poll set).
    int wakeW = -1; ///< Self-pipe write end (workers poke this).
    uint16_t boundPort = 0;
    std::thread loopThread;
    std::atomic<bool> stopFlag{false};

    /** fd -> connection (loop thread only). */
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    /** id -> connection; completions resolve through this, never fd. */
    std::unordered_map<uint64_t, Conn *> connsById;
    uint64_t nextConnId = 1; ///< 0 is the in-process sentinel.

    /** Worker -> loop handoff: (connection id, encoded frame). */
    std::mutex completionMutex;
    std::vector<std::pair<uint64_t, std::string>> completions;

    // ---- Counters (relaxed atomics; snapshotted for metrics) -----------
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> closed{0};
    std::atomic<uint64_t> acceptFaults{0};
    std::atomic<uint64_t> readErrors{0};
    std::atomic<uint64_t> writeErrors{0};
    std::atomic<uint64_t> decodeErrors{0};
    std::atomic<uint64_t> framesIn{0};
    std::atomic<uint64_t> framesOut{0};
    std::atomic<uint64_t> deferredFrames{0};
    std::atomic<uint64_t> bytesIn{0};
    std::atomic<uint64_t> bytesOut{0};
};

} // namespace nomap

#endif // NOMAP_NET_SERVER_H
