#ifndef NOMAP_NET_SERVER_H
#define NOMAP_NET_SERVER_H

/**
 * @file
 * NoMapServer: a TCP front-end over ShardedService.
 *
 * Architecture: N **event loops** (ServerConfig::loops), each a
 * thread owning a Poller, a self-pipe, completion/adoption inboxes,
 * and its own connection tables. A connection is pinned to the loop
 * that accepted (or adopted) it for its whole life, so all per-conn
 * state — decoder, write backlog, pending count — stays
 * single-threaded-per-loop without locks. Execution happens on the
 * sharded service's worker threads; the two meet at exactly one seam
 * per loop: workers encode the finished response, append it to that
 * loop's mutex-protected completion queue keyed by *connection id*
 * (never by fd, which the kernel recycles), and poke the loop's
 * self-pipe. Loops never block on execution; workers never touch a
 * socket. Those per-loop seams are what keep the stack TSan-clean.
 *
 * Listener scaling: when loops > 1 the server probes SO_REUSEPORT at
 * runtime and, if the kernel supports it, gives every loop its own
 * listening socket bound to the same port — accepts are then
 * kernel-balanced with no shared acceptor state at all. When the
 * probe fails (old kernel, exotic platform) the server falls back to
 * a single acceptor on loop 1 that hands accepted fds to the other
 * loops round-robin through their adoption inboxes + wake pipes.
 *
 * Write batching: completions are drained once per poll cycle into
 * each connection's backlog and flushed with one coalesced send per
 * connection per cycle; POLLOUT interest is an edge (cached mask,
 * modified only on change), not a per-frame syscall.
 *
 * Robustness mirrors the engine's HTM discipline — bounded work, then
 * graceful degradation: oversized frames poison the connection (a
 * length-prefixed stream cannot be resynchronized), per-request
 * decode errors answer with a status=Error frame instead of killing
 * the stream, admission control sheds with status=Shed, connections
 * over maxConnections are *rejected* (counted separately from
 * served accepts), transient accept failures (EMFILE & co.) drop
 * accept interest for a short backoff instead of hot-spinning on the
 * level-triggered listener, and the net.accept / net.read /
 * net.write / net.frame fault sites let the chaos suite drive every
 * one of those paths deterministically.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "inject/fault_plan.h"
#include "net/poller.h"
#include "net/wire.h"
#include "service/metrics.h"
#include "service/sharded_service.h"

namespace nomap {

/** Tuning for NoMapServer. */
struct ServerConfig {
    /** Address to bind ("127.0.0.1"; use "0.0.0.0" to serve out). */
    std::string bindHost = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (read it via port()). */
    uint16_t port = 0;
    /** listen(2) backlog. */
    int backlog = 128;
    /** Hard cap on concurrent connections; excess are rejected. */
    size_t maxConnections = 4096;
    /**
     * Event-loop threads (clamped to >= 1). Each loop gets its own
     * SO_REUSEPORT listener when the kernel supports it; otherwise
     * loop 1 accepts and round-robins fds to the others.
     */
    size_t loops = 1;
    /**
     * After a transient accept(2) failure (EMFILE & co.) the loop
     * drops accept interest for this long instead of spinning on the
     * still-readable listener.
     */
    int acceptBackoffMs = 50;
    /**
     * SO_SNDBUF for accepted sockets; 0 keeps the kernel default.
     * Small values make write-backpressure (POLLOUT cycling)
     * reproducible in tests.
     */
    int sendBufferBytes = 0;
    /** The sharded execution back-end. */
    ShardedServiceConfig service;
    /**
     * Fault plan for net.* sites. Must outlive the server; when null,
     * NOMAP_FAULT_PLAN is consulted. The resolved plan is also handed
     * to the sharded service unless service.faultPlan is already set.
     */
    const FaultPlan *faultPlan = nullptr;
};

/** TCP server fronting ShardedService (see file comment). */
class NoMapServer
{
  public:
    explicit NoMapServer(ServerConfig config = ServerConfig());
    ~NoMapServer();

    NoMapServer(const NoMapServer &) = delete;
    NoMapServer &operator=(const NoMapServer &) = delete;

    /**
     * Bind, listen, and start the event-loop threads. Throws
     * FatalError when the address cannot be bound. Idempotent once
     * running.
     */
    void start();

    /** Stop accepting, drain execution, join the loops. Idempotent. */
    void stop();

    /** The bound TCP port (after start()); 0 before. */
    uint16_t port() const { return boundPort; }

    bool running() const;

    /** Event loops actually running (0 before start()). */
    size_t loopCount() const;

    /**
     * True when every loop owns its own SO_REUSEPORT listener; false
     * in the single-acceptor round-robin fallback (or before start).
     */
    bool reuseportActive() const { return reuseportMode; }

    /** The back-end (tests reach through for shard-level asserts). */
    ShardedService &service() { return *sharded; }

    /** Connection-layer counters (monotonic since start). */
    NetConnectionCounters connectionCounters() const;

    /** Full snapshot: shards + router + live connection counters. */
    ShardedMetricsSnapshot metrics() const;
    std::string metricsJson() const { return metrics().toJson(); }

    const ServerConfig &config() const { return cfg; }

  private:
    /**
     * One event-loop thread: poller + self-pipe + completion and
     * adoption inboxes + connection tables. Connections are pinned
     * here for life; only this loop's thread touches them.
     */
    class EventLoop
    {
      public:
        /** @p ordinal is 1-based (0 tags in-process requests). */
        EventLoop(NoMapServer &server, uint32_t ordinal);
        ~EventLoop();

        /** Hand this loop its own listening socket (before start). */
        void attachListener(int fd) { listenFd = fd; }

        void start();
        void requestStop();
        void join();
        /** Close everything (after join + back-end drain). */
        void teardown();

        /** Worker -> loop handoff (any thread). */
        void postCompletion(uint64_t connId, std::string frame);
        /** Acceptor -> loop fd handoff (fallback mode, any thread). */
        void adoptSocket(int fd);

        NetLoopCounters counters() const;

      private:
        /** Per-connection state; owned by this loop. */
        struct Conn {
            int fd = -1;
            uint64_t id = 0;
            FrameDecoder decoder;
            /** Encoded-but-unsent bytes (outPos = sent prefix). */
            std::string outbuf;
            size_t outPos = 0;
            /** Requests submitted but not yet answered. */
            size_t pending = 0;
            /** Close once outbuf drains and pending hits zero. */
            bool closing = false;
            /** Poller interest currently installed for fd. */
            uint32_t interest = kPollIn;
            /** Already queued for this cycle's coalesced flush. */
            bool dirty = false;
            /** Frames held back one poll cycle by net.frame. */
            std::vector<std::string> deferred;
        };

        void loopMain();
        void wake();
        void handleAccept();
        void pauseAccept();
        void maybeResumeAccept();
        void installConn(int fd);
        void drainAdopted();
        void handleReadable(Conn *conn);
        void handleWritable(Conn *conn);
        void processFrame(Conn *conn, std::string payload);
        void drainCompletions();
        void queueResponse(Conn *conn, const WireResponse &wire);
        void flushConn(Conn *conn);
        void updateWriteInterest(Conn *conn);
        void closeConn(Conn *conn);
        Conn *connById(uint64_t id);

        NoMapServer &server;
        const uint32_t ordinal; ///< 1-based loop id.

        Poller poller;
        int listenFd = -1; ///< Owned; -1 when another loop accepts.
        int wakeR = -1;    ///< Self-pipe read end (in the poll set).
        int wakeW = -1;    ///< Self-pipe write end (workers poke this).
        std::thread thread;
        std::atomic<bool> stopFlag{false};

        /** fd -> connection (loop thread only). */
        std::unordered_map<int, std::unique_ptr<Conn>> conns;
        /** id -> connection; completions resolve through this. */
        std::unordered_map<uint64_t, Conn *> connsById;

        /** Worker -> loop handoff: (connection id, encoded frame). */
        std::mutex completionMutex;
        std::vector<std::pair<uint64_t, std::string>> completions;

        /** Acceptor -> loop handoff (fallback mode). */
        std::mutex adoptMutex;
        std::vector<int> adopted;

        /** Accept backoff (satellite: no hot-spin on EMFILE). */
        bool acceptPaused = false;
        std::chrono::steady_clock::time_point acceptResumeAt{};

        // Per-loop counters for the metrics "event_loops" section.
        std::atomic<uint64_t> loopAccepted{0};
        std::atomic<uint64_t> loopClosed{0};
        std::atomic<uint64_t> loopFramesIn{0};
        std::atomic<uint64_t> loopFramesOut{0};
    };

    /**
     * Create a bound+listening socket. @p wantReuseport probes
     * SO_REUSEPORT; *reuseportOk reports whether the kernel took it.
     * Fatal when @p mustSucceed, else returns -1 on failure.
     */
    int makeListener(uint16_t port, bool wantReuseport,
                     bool *reuseportOk, bool mustSucceed);

    ServerConfig cfg;
    /** Plan captured from NOMAP_FAULT_PLAN when cfg.faultPlan null. */
    std::unique_ptr<FaultPlan> envPlan;
    /**
     * Injector for the net.* sites, shared by every loop: its
     * counters are relaxed atomics, so exact-count triggers stay
     * exact and TSan-clean across loops (same contract as the
     * service-level injector).
     */
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ShardedService> sharded;

    /**
     * Guards loops / finalLoopCounters against a metrics dump racing
     * start()/stop() from another thread (stop() holds it across the
     * join + drain, so a concurrent metrics() blocks until the loops
     * are quiesced). Loop threads themselves never take it: the
     * vector is fully built before any loop starts and only cleared
     * after every loop has joined.
     */
    mutable std::mutex loopsMutex;
    std::vector<std::unique_ptr<EventLoop>> loops;
    /** Per-loop counters snapshotted by stop() for post-stop dumps. */
    std::vector<NetLoopCounters> finalLoopCounters;
    bool reuseportMode = false;
    /** Round-robin cursor of the fallback single acceptor. */
    size_t adoptNext = 0;
    uint16_t boundPort = 0;

    /** Globally unique; 0 is the in-process sentinel. */
    std::atomic<uint64_t> nextConnId{1};

    // ---- Counters (relaxed atomics; snapshotted for metrics) -----------
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> closed{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> acceptFaults{0};
    std::atomic<uint64_t> acceptBackoffs{0};
    std::atomic<uint64_t> readErrors{0};
    std::atomic<uint64_t> writeErrors{0};
    std::atomic<uint64_t> decodeErrors{0};
    std::atomic<uint64_t> framesIn{0};
    std::atomic<uint64_t> framesOut{0};
    std::atomic<uint64_t> deferredFrames{0};
    std::atomic<uint64_t> bytesIn{0};
    std::atomic<uint64_t> bytesOut{0};
};

} // namespace nomap

#endif // NOMAP_NET_SERVER_H
