#include "net/wire.h"

#include <cstring>

#include "support/logging.h"

namespace nomap {

namespace {

// ---- Little-endian primitives -----------------------------------------

void
putU8(std::string *out, uint8_t v)
{
    out->push_back(static_cast<char>(v));
}

void
putU32(std::string *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putString(std::string *out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
}

/** Bounds-checked reader over one payload. */
struct Reader {
    const std::string &data;
    size_t pos = 0;
    bool failed = false;

    bool
    take(void *out, size_t n)
    {
        if (failed || data.size() - pos < n) {
            failed = true;
            return false;
        }
        std::memcpy(out, data.data() + pos, n);
        pos += n;
        return true;
    }

    uint8_t
    u8()
    {
        uint8_t v = 0;
        take(&v, 1);
        return v;
    }

    uint32_t
    u32()
    {
        unsigned char b[4] = {};
        if (!take(b, 4))
            return 0;
        return static_cast<uint32_t>(b[0]) |
               static_cast<uint32_t>(b[1]) << 8 |
               static_cast<uint32_t>(b[2]) << 16 |
               static_cast<uint32_t>(b[3]) << 24;
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        uint64_t hi = u32();
        return lo | hi << 32;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (failed || data.size() - pos < n) {
            failed = true;
            return "";
        }
        std::string s(data, pos, n);
        pos += n;
        return s;
    }

    bool
    done() const
    {
        return !failed && pos == data.size();
    }
};

bool
fail(std::string *error, const char *what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

// ---- Payload codecs ----------------------------------------------------

std::string
encodeRequestPayload(const WireRequest &request)
{
    std::string out;
    putU8(&out, kWireVersion);
    putU8(&out, 'Q'); // Message kind: request.
    putU64(&out, request.id);
    putU8(&out, request.arch);
    putU64(&out, request.timeoutMs);
    putU32(&out, static_cast<uint32_t>(request.maxRetries));
    putU32(&out, request.traceCapacity);
    putString(&out, request.tenant);
    putString(&out, request.source);
    return out;
}

bool
decodeRequestPayload(const std::string &payload, WireRequest *request,
                     std::string *error)
{
    Reader r{payload};
    if (r.u8() != kWireVersion)
        return fail(error, "wire version mismatch");
    if (r.u8() != 'Q')
        return fail(error, "not a request frame");
    request->id = r.u64();
    request->arch = r.u8();
    request->timeoutMs = r.u64();
    request->maxRetries = static_cast<int32_t>(r.u32());
    request->traceCapacity = r.u32();
    request->tenant = r.str();
    request->source = r.str();
    if (r.failed)
        return fail(error, "truncated request payload");
    if (!r.done())
        return fail(error, "trailing bytes after request payload");
    return true;
}

std::string
encodeResponsePayload(const WireResponse &response)
{
    std::string out;
    putU8(&out, kWireVersion);
    putU8(&out, 'R'); // Message kind: response.
    putU64(&out, response.id);
    putU8(&out, response.status);
    putU32(&out, response.shard);
    putU32(&out, response.attempts);
    putU8(&out, response.programCacheHit);
    putString(&out, response.error);
    putString(&out, response.resultString);
    putString(&out, response.printed);
    putU64(&out, response.instructions);
    putU64(&out, response.checks);
    putU64(&out, response.cyclesBits);
    putU64(&out, response.txCommits);
    putU64(&out, response.txAborts);
    putU64(&out, response.deopts);
    return out;
}

bool
decodeResponsePayload(const std::string &payload,
                      WireResponse *response, std::string *error)
{
    Reader r{payload};
    if (r.u8() != kWireVersion)
        return fail(error, "wire version mismatch");
    if (r.u8() != 'R')
        return fail(error, "not a response frame");
    response->id = r.u64();
    response->status = r.u8();
    response->shard = r.u32();
    response->attempts = r.u32();
    response->programCacheHit = r.u8();
    response->error = r.str();
    response->resultString = r.str();
    response->printed = r.str();
    response->instructions = r.u64();
    response->checks = r.u64();
    response->cyclesBits = r.u64();
    response->txCommits = r.u64();
    response->txAborts = r.u64();
    response->deopts = r.u64();
    if (r.failed)
        return fail(error, "truncated response payload");
    if (!r.done())
        return fail(error, "trailing bytes after response payload");
    if (response->status > static_cast<uint8_t>(ResponseStatus::Shed))
        return fail(error, "response status out of range");
    return true;
}

std::string
frameMessage(const std::string &payload)
{
    std::string out;
    out.reserve(payload.size() + 4);
    putU32(&out, static_cast<uint32_t>(payload.size()));
    out.append(payload);
    return out;
}

// ---- FrameDecoder ------------------------------------------------------

void
FrameDecoder::feed(const char *data, size_t size)
{
    if (poisoned)
        return;
    // Compact lazily: only when the consumed prefix dominates, so
    // steady-state streaming is amortized O(bytes).
    if (consumed > 4096 && consumed * 2 > buffer.size()) {
        buffer.erase(0, consumed);
        consumed = 0;
    }
    buffer.append(data, size);
}

FrameDecoder::Result
FrameDecoder::next(std::string *payload, std::string *error)
{
    if (poisoned) {
        if (error)
            *error = poisonReason;
        return Result::Error;
    }
    size_t available = buffer.size() - consumed;
    if (available < 4)
        return Result::NeedMore;
    const unsigned char *p = reinterpret_cast<const unsigned char *>(
        buffer.data() + consumed);
    uint32_t length = static_cast<uint32_t>(p[0]) |
                      static_cast<uint32_t>(p[1]) << 8 |
                      static_cast<uint32_t>(p[2]) << 16 |
                      static_cast<uint32_t>(p[3]) << 24;
    if (length > kMaxFramePayloadBytes) {
        poisoned = true;
        poisonReason = strprintf(
            "frame length %u exceeds cap %u", length,
            kMaxFramePayloadBytes);
        if (error)
            *error = poisonReason;
        return Result::Error;
    }
    if (available - 4 < length)
        return Result::NeedMore;
    payload->assign(buffer, consumed + 4, length);
    consumed += 4 + static_cast<size_t>(length);
    return Result::Frame;
}

// ---- Conversions -------------------------------------------------------

bool
wireToRequest(const WireRequest &wire, Request *request,
              std::string *error)
{
    if (wire.arch >
        static_cast<uint8_t>(Architecture::NoMapRTM)) {
        if (error) {
            *error = strprintf("architecture %u out of range",
                               static_cast<unsigned>(wire.arch));
        }
        return false;
    }
    request->id = wire.id;
    request->source = wire.source;
    request->config = EngineConfig();
    request->config.arch = static_cast<Architecture>(wire.arch);
    request->config.traceCapacity = wire.traceCapacity;
    request->timeoutMs = wire.timeoutMs;
    request->maxRetries = wire.maxRetries;
    request->tenant = wire.tenant;
    return true;
}

WireResponse
responseToWire(const Response &response)
{
    WireResponse wire;
    wire.id = response.id;
    wire.status = static_cast<uint8_t>(response.status);
    wire.shard = response.shard;
    wire.attempts = response.attempts;
    wire.programCacheHit = response.programCacheHit ? 1 : 0;
    wire.error = response.error;
    wire.resultString = response.resultString;
    wire.printed = response.printed;
    wire.instructions = response.stats.totalInstructions();
    wire.checks = response.stats.totalChecks();
    double cycles = response.stats.totalCycles();
    std::memcpy(&wire.cyclesBits, &cycles, sizeof(cycles));
    wire.txCommits = response.stats.txCommits;
    wire.txAborts = response.stats.txAborts;
    wire.deopts = response.stats.deopts;
    return wire;
}

} // namespace nomap
