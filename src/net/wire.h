#ifndef NOMAP_NET_WIRE_H
#define NOMAP_NET_WIRE_H

/**
 * @file
 * The wire protocol: length-prefixed binary frames.
 *
 * Framing: every message is `u32-LE payload-length` followed by
 * exactly that many payload bytes. Lengths above
 * kMaxFramePayloadBytes are a protocol error (a corrupt or hostile
 * length prefix must not make the server buffer gigabytes); the
 * stream cannot be resynchronized after one, so the connection is
 * closed.
 *
 * Payloads are flat little-endian structs with length-prefixed
 * strings — no nested framing, no varints, every field
 * unconditionally present, so truncation is always detectable
 * (decode reads past the end => error) and encode/decode round-trips
 * bit-exactly. A version byte leads each payload; mismatches are
 * decode errors, not best-effort parses.
 *
 * The response carries the execution result plus a **stats digest**
 * (instruction/check/cycle/tx counters, cycles as the raw IEEE-754
 * bit pattern). The digest is what lets a remote client assert the
 * differential guarantee end-to-end: a TCP-served response must be
 * bit-identical — result string, printed output, and digest — to a
 * sequential in-process Engine::run of the same source and config.
 */

#include <cstdint>
#include <string>

#include "service/request.h"

namespace nomap {

/** Wire protocol version; bump on any layout change. */
constexpr uint8_t kWireVersion = 1;

/** Hard cap on one frame's payload (decode error above this). */
constexpr uint32_t kMaxFramePayloadBytes = 8u << 20;

/** The subset of Request a remote client controls. */
struct WireRequest {
    uint64_t id = 0;
    uint8_t arch = 0; ///< Architecture (validated on decode).
    uint64_t timeoutMs = 0;
    int32_t maxRetries = -1;
    uint32_t traceCapacity = 0;
    std::string tenant;
    std::string source;

    bool operator==(const WireRequest &) const = default;
};

/** The wire form of a Response (stats digest, not full stats). */
struct WireResponse {
    uint64_t id = 0;
    uint8_t status = 0; ///< ResponseStatus.
    uint32_t shard = 0;
    uint32_t attempts = 1;
    uint8_t programCacheHit = 0;
    std::string error;
    std::string resultString;
    std::string printed;

    // ---- Stats digest (differential contract over the wire) -----------
    uint64_t instructions = 0;
    uint64_t checks = 0;
    /** totalCycles() as raw IEEE-754 bits: compares bit-exactly. */
    uint64_t cyclesBits = 0;
    uint64_t txCommits = 0;
    uint64_t txAborts = 0;
    uint64_t deopts = 0;

    bool operator==(const WireResponse &) const = default;
};

// ---- Payload codecs ----------------------------------------------------

std::string encodeRequestPayload(const WireRequest &request);
std::string encodeResponsePayload(const WireResponse &response);

/**
 * Decode a payload. Returns false (setting @p error) on version
 * mismatch, truncation, string overrun, bad enum value, or trailing
 * bytes.
 */
bool decodeRequestPayload(const std::string &payload,
                          WireRequest *request, std::string *error);
bool decodeResponsePayload(const std::string &payload,
                           WireResponse *response,
                           std::string *error);

/** Prepend the u32-LE length header to @p payload. */
std::string frameMessage(const std::string &payload);

// ---- Incremental frame decoder -----------------------------------------

/**
 * Feed bytes as they arrive, pull complete payloads out. After Error
 * the decoder is poisoned (the stream cannot be resynchronized) and
 * keeps returning Error.
 */
class FrameDecoder
{
  public:
    enum class Result {
        Frame,    ///< *payload filled with one complete frame.
        NeedMore, ///< No complete frame buffered yet.
        Error,    ///< Protocol error (oversized length); see *error.
    };

    void feed(const char *data, size_t size);

    /** Extract the next complete frame, if any. */
    Result next(std::string *payload, std::string *error);

    size_t bufferedBytes() const { return buffer.size() - consumed; }

  private:
    std::string buffer;
    size_t consumed = 0;
    bool poisoned = false;
    std::string poisonReason;
};

// ---- Request/Response conversions --------------------------------------

/**
 * Build the service Request a decoded wire request denotes. Returns
 * false (setting @p error) on an out-of-range architecture.
 */
bool wireToRequest(const WireRequest &wire, Request *request,
                   std::string *error);

/** Digest a completed Response for the wire. */
WireResponse responseToWire(const Response &response);

} // namespace nomap

#endif // NOMAP_NET_WIRE_H
