#include "nomap/adaptive.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "support/logging.h"

namespace nomap {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

const char *
revisionCauseName(RevisionCause cause)
{
    switch (cause) {
      case RevisionCause::Shrink: return "shrink";
      case RevisionCause::Tighten: return "tighten";
      case RevisionCause::Blacklist: return "blacklist";
      case RevisionCause::Rewiden: return "rewiden";
    }
    return "?";
}

AdaptiveController::AdaptiveController(const AdaptiveConfig &config)
    : cfg(config)
{
    NOMAP_ASSERT(cfg.capacityShrinkStreak > 0);
    NOMAP_ASSERT(cfg.siteBlacklistStreak > 0);
    NOMAP_ASSERT(cfg.stabilityWindowCommits > 0);
}

void
AdaptiveController::propose(uint32_t func_id, FuncState &f,
                            RevisionCause cause, uint32_t level,
                            uint64_t override_bytes, uint32_t added_pc,
                            bool has_added_pc, uint64_t vcycles)
{
    PlanRevision rev;
    rev.funcId = func_id;
    rev.cause = cause;
    rev.prevScopeLevel = f.level;
    rev.prevCapacityOverrideBytes = f.overrideBytes;
    if (has_added_pc) {
        auto it = std::lower_bound(f.blacklistPcs.begin(),
                                   f.blacklistPcs.end(), added_pc);
        if (it == f.blacklistPcs.end() || *it != added_pc) {
            f.blacklistPcs.insert(it, added_pc);
            rev.addedBlacklistPc = added_pc;
            rev.hasAddedBlacklistPc = true;
        }
    }
    f.level = level;
    f.overrideBytes = override_bytes;
    rev.scopeLevel = level;
    rev.capacityOverrideBytes = override_bytes;
    rev.blacklistPcs = f.blacklistPcs;
    rev.vcycles = vcycles;
    rev.ordinal = static_cast<uint32_t>(decidedLog.size()) + 1;

    if (f.revisions == 0) {
        f.abortsBeforeFirst = f.aborts;
        f.commitsBeforeFirst = f.commits;
    }
    f.abortsAtLast = f.aborts;
    f.commitsAtLast = f.commits;
    ++f.revisions;
    if (cause == RevisionCause::Rewiden)
        ++f.rewidens;

    f.pending = rev;
    decidedLog.push_back(rev);
}

void
AdaptiveController::onTxEvent(const TraceEvent &event)
{
    FuncState &f = funcs[event.funcId];
    switch (event.type) {
      case TraceEventType::TxBegin:
        ++f.begins;
        return;

      case TraceEventType::TxCommit: {
        ++f.commits;
        // A clean commit breaks every abort streak (the static
        // policy's "clean call zeroes both counters", per site).
        f.capStreak = 0;
        f.siteStreaks.erase(event.pc);
        ++f.cleanCommits;
        if (f.pending || f.pinnedOff ||
            f.rewidens >= cfg.rewidenBudget ||
            f.cleanCommits < cfg.stabilityWindowCommits ||
            (f.level == 0 && f.overrideBytes == 0)) {
            return;
        }
        // Stability window elapsed: walk one step back. First widen
        // the learned budget toward the model capacity, then (once
        // the override is gone) de-escalate the scope level.
        f.cleanCommits = 0;
        if (f.overrideBytes > 0) {
            uint64_t widened = f.overrideBytes * 2;
            if (cfg.modelCapacityBytes == 0 ||
                widened >= cfg.modelCapacityBytes / 2) {
                widened = 0; // Back to the planner's default budget.
            }
            propose(event.funcId, f, RevisionCause::Rewiden, f.level,
                    widened, 0, false, event.vcycles);
        } else {
            propose(event.funcId, f, RevisionCause::Rewiden,
                    f.level - 1, 0, 0, false, event.vcycles);
        }
        return;
      }

      case TraceEventType::TxAbort:
        break; // Handled below.

      default:
        return; // Not a transaction event; ignore.
    }

    ++f.aborts;
    f.cleanCommits = 0;
    AbortCode code = static_cast<AbortCode>(event.code);

    if (code == AbortCode::Capacity ||
        code == AbortCode::StickyOverflow) {
        ++f.capStreak;
        if (event.bytes > 0) {
            f.minAbortFootprint = std::min(
                f.minAbortFootprint,
                std::max<uint64_t>(event.bytes, kLineSize));
        }
        if (f.pending || f.pinnedOff ||
            f.capStreak < cfg.capacityShrinkStreak || f.level >= 3) {
            return;
        }
        f.capStreak = 0;
        uint64_t learned = 0;
        if (f.minAbortFootprint != UINT64_MAX) {
            learned = std::max<uint64_t>(
                cfg.minOverrideBytes,
                static_cast<uint64_t>(
                    static_cast<double>(f.minAbortFootprint) *
                    cfg.footprintSafetyFraction));
        }
        if (f.level < 2) {
            // Jump straight to the tiled scope with the learned
            // budget: tiles sized from the *observed* capacity fit
            // where the static ladder's estimate-sized tiles do not.
            propose(event.funcId, f, RevisionCause::Shrink, 2, learned,
                    0, false, event.vcycles);
        } else if (f.overrideBytes > cfg.minOverrideBytes) {
            uint64_t tightened =
                std::max(cfg.minOverrideBytes, f.overrideBytes / 2);
            propose(event.funcId, f, RevisionCause::Tighten, 2,
                    tightened, 0, false, event.vcycles);
        } else if (f.overrideBytes == 0 && learned > 0) {
            propose(event.funcId, f, RevisionCause::Tighten, 2, learned,
                    0, false, event.vcycles);
        } else {
            // Still aborting at the floor: give up on transactions.
            propose(event.funcId, f, RevisionCause::Shrink, 3, 0, 0,
                    false, event.vcycles);
        }
        return;
    }

    // ExplicitCheck / Irrevocable: a semantic abort at a specific
    // site. Streaks are per (entry pc), so one pathological loop
    // cannot detransactionalize its siblings.
    uint32_t &streak = f.siteStreaks[event.pc];
    ++streak;
    if (f.pending || f.pinnedOff ||
        streak < cfg.siteBlacklistStreak) {
        return;
    }
    streak = 0;
    bool already =
        std::binary_search(f.blacklistPcs.begin(), f.blacklistPcs.end(),
                           event.pc);
    if (already)
        return;
    propose(event.funcId, f, RevisionCause::Blacklist, f.level,
            f.overrideBytes, event.pc, true, event.vcycles);
}

bool
AdaptiveController::hasPending(uint32_t func_id) const
{
    auto it = funcs.find(func_id);
    return it != funcs.end() && it->second.pending.has_value();
}

std::optional<PlanRevision>
AdaptiveController::takePending(uint32_t func_id)
{
    auto it = funcs.find(func_id);
    if (it == funcs.end() || !it->second.pending)
        return std::nullopt;
    std::optional<PlanRevision> rev = std::move(it->second.pending);
    it->second.pending.reset();
    return rev;
}

void
AdaptiveController::noteVetoed(const PlanRevision &rev)
{
    auto it = funcs.find(rev.funcId);
    if (it == funcs.end())
        return;
    FuncState &f = it->second;
    f.level = rev.prevScopeLevel;
    f.overrideBytes = rev.prevCapacityOverrideBytes;
    if (rev.hasAddedBlacklistPc) {
        auto pos = std::lower_bound(f.blacklistPcs.begin(),
                                    f.blacklistPcs.end(),
                                    rev.addedBlacklistPc);
        if (pos != f.blacklistPcs.end() &&
            *pos == rev.addedBlacklistPc) {
            f.blacklistPcs.erase(pos);
        }
    }
}

void
AdaptiveController::noteForcedBlacklist(uint32_t func_id)
{
    FuncState &f = funcs[func_id];
    f.level = 3;
    f.overrideBytes = 0;
    f.pinnedOff = true;
    f.pending.reset();
}

std::optional<AdaptiveController::FunctionSnapshot>
AdaptiveController::functionSnapshot(uint32_t func_id) const
{
    auto it = funcs.find(func_id);
    if (it == funcs.end())
        return std::nullopt;
    const FuncState &f = it->second;
    FunctionSnapshot snap;
    snap.level = f.level;
    snap.capacityOverrideBytes = f.overrideBytes;
    snap.pinnedOff = f.pinnedOff;
    snap.blacklistPcs = f.blacklistPcs;
    snap.begins = f.begins;
    snap.commits = f.commits;
    snap.aborts = f.aborts;
    snap.revisions = f.revisions;
    snap.rewidens = f.rewidens;
    snap.minAbortFootprintBytes = f.minAbortFootprint;
    snap.abortsBeforeFirstRevision = f.abortsBeforeFirst;
    snap.commitsBeforeFirstRevision = f.commitsBeforeFirst;
    snap.abortsAtLastRevision = f.abortsAtLast;
    snap.commitsAtLastRevision = f.commitsAtLast;
    return snap;
}

std::string
AdaptiveController::report() const
{
    std::string out;
    appendf(out, "adaptive controller: %" PRIu64 " revision(s)\n",
            static_cast<uint64_t>(decidedLog.size()));
    for (const auto &[func_id, f] : funcs) {
        if (f.revisions == 0 && f.aborts == 0)
            continue;
        appendf(out,
                "  fn#%" PRIu32 " level=%" PRIu32 " override=%" PRIu64
                " revisions=%" PRIu32 " rewidens=%" PRIu32
                " commits=%" PRIu64 " aborts=%" PRIu64,
                func_id, f.level, f.overrideBytes, f.revisions,
                f.rewidens, f.commits, f.aborts);
        if (f.pinnedOff)
            out += " pinned-off";
        if (!f.blacklistPcs.empty()) {
            out += " blacklist=[";
            for (size_t i = 0; i < f.blacklistPcs.size(); ++i) {
                if (i)
                    out += ',';
                appendf(out, "%" PRIu32, f.blacklistPcs[i]);
            }
            out += ']';
        }
        out += '\n';
    }
    return out;
}

} // namespace nomap
