#ifndef NOMAP_NOMAP_ADAPTIVE_H
#define NOMAP_NOMAP_ADAPTIVE_H

/**
 * @file
 * Adaptive transaction planning: the feedback controller behind the
 * engine's `adaptive` mode.
 *
 * The static planner (planner.{h,cc}) chooses transaction scopes from
 * compile-time estimates; the runtime's static policy escalates one
 * scope level after repeated aborts. This controller closes the loop
 * the trace layer opened: it consumes the *complete* per-transaction
 * telemetry stream (TxBegin / TxCommit / TxAbort events, with abort
 * code, pre-rollback footprint, and the owning (function, entry-pc)
 * site) and converts it into per-function plan revisions that the
 * engine applies at tier-up boundaries:
 *
 *  - **Shrink on capacity/SOF aborts.** A function whose transactions
 *    keep capacity-aborting is re-planned at the tiled scope with a
 *    *learned* budget: the smallest footprint observed at a capacity
 *    abort is, by definition, just past what the hardware holds, so
 *    half of it is a capacity estimate no static geometry table can
 *    provide (it reflects squeezed ways, limited-set buffers —
 *    whatever the hardware actually did). Sustained aborts keep
 *    halving the budget; at the floor the function gives up and goes
 *    untransactional (level 3).
 *
 *  - **Blacklist explicit-aborting sites.** A site (loop entry pc)
 *    that repeatedly explicit-aborts or goes irrevocable is excluded
 *    from planning by pc — other loops in the function keep their
 *    transactions, unlike the static policy's whole-function level 3.
 *
 *  - **Re-widen after stability.** After a window of clean commits
 *    the controller walks back one step (double the budget toward the
 *    model capacity, then de-escalate the level), bounded by a
 *    per-function re-widen budget so an oscillating workload settles
 *    instead of thrashing (hysteresis: shrinking takes 2 consecutive
 *    aborts, re-widening takes 64 consecutive clean commits).
 *
 * **Determinism.** The controller is a pure function of the telemetry
 * stream: every input (event order, abort codes, footprints,
 * virtual-cycle timestamps) is itself deterministic, no wall clock or
 * randomness enters, and decisions are *made* here — the engine only
 * asks "is a revision pending?" at its (equally deterministic)
 * FTL-call boundaries. Replaying a recorded stream into a fresh
 * controller reproduces the identical revision log, which is exactly
 * what the property tests in tests/test_adaptive.cc assert. On an
 * abort-free run the controller provably does nothing: every state
 * change below is triggered by a TxAbort, so unfaulted paper-suite
 * runs are bit-identical to static planning (the differential test
 * enforces this across all six architectures).
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "htm/transaction.h"
#include "trace/trace.h"

namespace nomap {

/** Why a revision was decided. */
enum class RevisionCause : uint8_t {
    Shrink,    ///< Capacity ladder: jump to tiled scope / level 3.
    Tighten,   ///< Already tiled: halve the learned budget.
    Blacklist, ///< A site repeatedly explicit-aborted; exclude it.
    Rewiden,   ///< Stability window elapsed; walk one step back.
};

/** Printable cause name. */
const char *revisionCauseName(RevisionCause cause);

/**
 * One decided plan revision. The engine applies it by recompiling the
 * function's FTL code with the new scope level, budget override, and
 * site blacklist (see PlannerConfig).
 */
struct PlanRevision {
    uint32_t funcId = 0;
    RevisionCause cause = RevisionCause::Shrink;
    /** Target function-wide scope level (0 nest .. 3 none). */
    uint32_t scopeLevel = 0;
    /** Learned planner budget in bytes; 0 = planner default. */
    uint64_t capacityOverrideBytes = 0;
    /** Cumulative blacklisted loop-header pcs, ascending. */
    std::vector<uint32_t> blacklistPcs;
    /** Virtual-cycle timestamp of the triggering event. */
    uint64_t vcycles = 0;
    /** 1-based decision ordinal across the whole controller. */
    uint32_t ordinal = 0;

    // Rollback data for an injector-vetoed application
    // (adaptive.decision); not part of the decision identity.
    uint32_t prevScopeLevel = 0;
    uint64_t prevCapacityOverrideBytes = 0;
    uint32_t addedBlacklistPc = 0;
    bool hasAddedBlacklistPc = false;

    /** Decision identity (what the determinism property compares). */
    bool
    sameDecision(const PlanRevision &o) const
    {
        return funcId == o.funcId && cause == o.cause &&
               scopeLevel == o.scopeLevel &&
               capacityOverrideBytes == o.capacityOverrideBytes &&
               blacklistPcs == o.blacklistPcs &&
               vcycles == o.vcycles && ordinal == o.ordinal;
    }
};

/** Controller tuning knobs — the hysteresis constants (DESIGN.md §10). */
struct AdaptiveConfig {
    /** Consecutive capacity/SOF aborts (function-wide) per shrink. */
    uint32_t capacityShrinkStreak = 2;
    /** Consecutive explicit/irrevocable aborts at one site before it
     *  is blacklisted (the engine seeds this from
     *  EngineConfig::abortEscalationLimit). */
    uint32_t siteBlacklistStreak = 8;
    /** Consecutive clean commits before one re-widen step. */
    uint32_t stabilityWindowCommits = 64;
    /** Re-widen steps allowed per function, ever (hysteresis bound). */
    uint32_t rewidenBudget = 3;
    /** Learned budget = this fraction of the min abort footprint. */
    double footprintSafetyFraction = 0.5;
    /** Floor for the learned budget (and the give-up threshold). */
    uint64_t minOverrideBytes = 1024;
    /** Write capacity of the attached HTM model (re-widen ceiling);
     *  0 = unknown, re-widen clears the override in one step. */
    uint64_t modelCapacityBytes = 0;
};

/**
 * The feedback controller. Attach to a TransactionManager via
 * setTelemetry(); poll takePending() at tier-up/recompile boundaries.
 */
class AdaptiveController final : public TxTelemetrySink
{
  public:
    explicit AdaptiveController(const AdaptiveConfig &config = {});

    const AdaptiveConfig &config() const { return cfg; }

    // ---- Telemetry input (pure state machine) --------------------------
    void onTxEvent(const TraceEvent &event) override;

    // ---- Engine-side application ---------------------------------------
    /** Is a revision waiting for @p func_id? */
    bool hasPending(uint32_t func_id) const;

    /** Take the pending revision for @p func_id, if any. */
    std::optional<PlanRevision> takePending(uint32_t func_id);

    /**
     * The engine's injector vetoed @p rev (adaptive.decision site):
     * roll the assumed level/override/blacklist back so the
     * controller re-decides once the streaks rebuild.
     */
    void noteVetoed(const PlanRevision &rev);

    /**
     * The engine's injector forced @p func_id untransactional
     * (adaptive.blacklist site): pin level 3 and stop proposing.
     */
    void noteForcedBlacklist(uint32_t func_id);

    // ---- Introspection (tests, benches, reports) -----------------------
    /** Everything the controller believes about one function. */
    struct FunctionSnapshot {
        uint32_t level = 0;
        uint64_t capacityOverrideBytes = 0;
        bool pinnedOff = false; ///< Forced level 3 (injection).
        std::vector<uint32_t> blacklistPcs;
        uint64_t begins = 0;
        uint64_t commits = 0;
        uint64_t aborts = 0;
        uint32_t revisions = 0;
        uint32_t rewidens = 0;
        /** UINT64_MAX when no capacity abort has been observed. */
        uint64_t minAbortFootprintBytes = UINT64_MAX;
        /** Totals frozen at the first / latest decision (for the
         *  convergence metrics: "after" = totals minus AtLast). */
        uint64_t abortsBeforeFirstRevision = 0;
        uint64_t commitsBeforeFirstRevision = 0;
        uint64_t abortsAtLastRevision = 0;
        uint64_t commitsAtLastRevision = 0;
    };

    /** Snapshot for @p func_id (nullopt if never seen). */
    std::optional<FunctionSnapshot>
    functionSnapshot(uint32_t func_id) const;

    /** All decisions, in decision order. */
    const std::vector<PlanRevision> &revisionLog() const
    {
        return decidedLog;
    }

    /** Total decisions made (== revisionLog().size()). */
    uint64_t revisionsDecided() const { return decidedLog.size(); }

    /**
     * Deterministic text summary, one line per adapted function,
     * ordered by function id (for reports and the abort-storm bench).
     */
    std::string report() const;

  private:
    struct FuncState {
        uint32_t level = 0;
        uint64_t overrideBytes = 0;
        bool pinnedOff = false;
        std::vector<uint32_t> blacklistPcs;
        uint32_t capStreak = 0;
        uint32_t cleanCommits = 0;
        uint32_t rewidens = 0;
        std::map<uint32_t, uint32_t> siteStreaks;
        uint64_t minAbortFootprint = UINT64_MAX;
        uint64_t begins = 0;
        uint64_t commits = 0;
        uint64_t aborts = 0;
        uint32_t revisions = 0;
        uint64_t abortsBeforeFirst = 0;
        uint64_t commitsBeforeFirst = 0;
        uint64_t abortsAtLast = 0;
        uint64_t commitsAtLast = 0;
        std::optional<PlanRevision> pending;
    };

    void propose(uint32_t func_id, FuncState &f, RevisionCause cause,
                 uint32_t level, uint64_t override_bytes,
                 uint32_t added_pc, bool has_added_pc,
                 uint64_t vcycles);

    AdaptiveConfig cfg;
    // Ordered map: report() and snapshots iterate deterministically.
    std::map<uint32_t, FuncState> funcs;
    std::vector<PlanRevision> decidedLog;
};

} // namespace nomap

#endif // NOMAP_NOMAP_ADAPTIVE_H
