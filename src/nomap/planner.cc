#include "nomap/planner.h"

#include <algorithm>
#include <cmath>

#include "passes/analysis.h"
#include "support/logging.h"
#include "vm/builtins.h"

namespace nomap {

namespace {

/** Effective trip count of a loop including enclosing repetition. */
double
effectiveTrips(const NaturalLoop &loop,
               const std::vector<NaturalLoop> &loops,
               const FunctionProfile &profile)
{
    double trips = 1.0;
    const NaturalLoop *cur = &loop;
    for (int depth = 0; depth < 8 && cur; ++depth) {
        if (cur->loopId >= 0 &&
            static_cast<size_t>(cur->loopId) < profile.loops.size()) {
            trips *= std::max(
                1.0, profile.loops[cur->loopId].avgTripCount());
        }
        const NaturalLoop *parent = nullptr;
        if (cur->parentHeader >= 0) {
            for (const NaturalLoop &cand : loops) {
                if (cand.header ==
                    static_cast<uint32_t>(cur->parentHeader)) {
                    parent = &cand;
                    break;
                }
            }
        }
        cur = parent;
    }
    return trips;
}

/** Rough write-footprint estimate in bytes for one loop. */
uint64_t
estimateWriteFootprint(const IrFunction &fn, const NaturalLoop &loop,
                       const std::vector<NaturalLoop> &loops,
                       const FunctionProfile &profile)
{
    double bytes = 0.0;
    double outer = effectiveTrips(loop, loops, profile);
    for (uint32_t b : loop.blocks) {
        // Repetition of this block relative to the wrapped loop: the
        // innermost loop containing it.
        double trips = outer;
        for (const NaturalLoop &inner : loops) {
            if (inner.header != loop.header && inner.contains(b) &&
                loop.contains(inner.header)) {
                trips = std::max(trips,
                                 effectiveTrips(inner, loops, profile));
            }
        }
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            switch (instr.op) {
              case IrOp::SetElem:
              case IrOp::GenericSetIndex:
                bytes += 8.0 * trips; // Distinct elements.
                break;
              case IrOp::SetSlot:
              case IrOp::StoreGlobal:
              case IrOp::GenericSetProp:
                bytes += 64.0; // One line, rewritten in place.
                break;
              case IrOp::CallMethod:
                bytes += 8.0 * trips; // push()-style growth.
                break;
              case IrOp::Call:
                bytes += 512.0; // Callee writes, unknown.
                break;
              case IrOp::NewArray:
              case IrOp::NewObject:
                bytes += 64.0 * trips;
                break;
              default:
                break;
            }
        }
    }
    return static_cast<uint64_t>(bytes);
}

bool
containsIrrevocable(const IrFunction &fn, const NaturalLoop &loop)
{
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (instr.op == IrOp::CallNative &&
                static_cast<BuiltinId>(instr.imm) == BuiltinId::Print) {
                return true;
            }
        }
    }
    return false;
}

bool
containsCall(const IrFunction &fn, const NaturalLoop &loop)
{
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (instr.op == IrOp::Call ||
                instr.op == IrOp::CallMethod) {
                return true;
            }
        }
    }
    return false;
}

/** Any loop-header pc in this nest on the adaptive blacklist? */
bool
nestBlacklisted(const IrFunction &fn, const NaturalLoop &nest,
                const std::vector<NaturalLoop> &loops,
                const std::vector<uint32_t> &blacklist_pcs)
{
    if (blacklist_pcs.empty())
        return false;
    auto listed = [&](uint32_t header) {
        return std::binary_search(blacklist_pcs.begin(),
                                  blacklist_pcs.end(),
                                  fn.blocks[header].firstPc);
    };
    if (listed(nest.header))
        return true;
    for (const NaturalLoop &inner : loops) {
        if (inner.header != nest.header &&
            nest.contains(inner.header) && listed(inner.header)) {
            return true;
        }
    }
    return false;
}

bool
loopHasChecks(const IrFunction &fn, const NaturalLoop &loop)
{
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (instr.isCheck())
                return true;
        }
    }
    return false;
}

/** Per-iteration write bytes for the tiling computation. */
double
writeBytesPerIteration(const IrFunction &fn, const NaturalLoop &loop)
{
    double bytes = 0.0;
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            switch (instr.op) {
              case IrOp::SetElem:
              case IrOp::GenericSetIndex:
              case IrOp::CallMethod:
                bytes += 8.0;
                break;
              case IrOp::SetSlot:
              case IrOp::StoreGlobal:
              case IrOp::GenericSetProp:
                bytes += 1.0; // Amortized: same line each iteration.
                break;
              case IrOp::Call:
                bytes += 64.0;
                break;
              default:
                break;
            }
        }
    }
    return bytes;
}

/** Wrap @p loop in a transaction; convert its checks to aborts. */
void
wrapLoop(IrFunction &fn, NaturalLoop &loop, uint32_t tile_every,
         PlanResult &result)
{
    uint32_t converted_before = result.checksConverted;
    uint32_t preheader = ensurePreheader(fn, loop);
    std::vector<uint32_t> exits = ensureDedicatedExits(fn, loop);

    // TxBegin: the transaction's Stack Map Point. An abort re-enters
    // Baseline at the loop-header bytecode pc ("Entry3") with the
    // registers captured here.
    IrInstr begin;
    begin.op = IrOp::TxBegin;
    begin.smpPc = fn.blocks[loop.header].firstPc;
    IrBlock &ph = fn.blocks[preheader];
    ph.instrs.insert(ph.instrs.end() - 1, begin);

    for (uint32_t exit : exits) {
        IrInstr end;
        end.op = IrOp::TxEnd;
        IrBlock &xb = fn.blocks[exit];
        xb.instrs.insert(xb.instrs.begin(), end);
    }

    if (tile_every > 0) {
        IrInstr tile;
        tile.op = IrOp::TxTile;
        tile.imm = tile_every;
        tile.smpPc = fn.blocks[loop.header].firstPc;
        IrBlock &hb = fn.blocks[loop.header];
        hb.instrs.insert(hb.instrs.begin(), tile);
        ++result.tiledLoops;
    }

    // SMP -> abort: it is safe to drop these SMPs because FTL code
    // has no entry points other than the function head (paper IV-B).
    for (uint32_t b : loop.blocks) {
        for (IrInstr &instr : fn.blocks[b].instrs) {
            if (instr.isCheck() && !instr.converted) {
                instr.converted = true;
                ++result.checksConverted;
            }
        }
    }

    TxRegion region;
    region.loopHeader = loop.header;
    region.beginBlock = preheader;
    region.blocks = loop.blocks;
    region.endBlocks = exits;
    fn.txRegions.push_back(std::move(region));
    ++result.transactionsPlaced;
    fn.txAware = true;

    LoopPlan plan;
    plan.headerPc = fn.blocks[loop.header].firstPc;
    plan.loopId =
        loop.loopId >= 0 ? static_cast<uint32_t>(loop.loopId) : 0;
    plan.checksConverted = result.checksConverted - converted_before;
    plan.tileEvery = tile_every;
    result.loops.push_back(plan);
}

} // namespace

PlanResult
planTransactions(IrFunction &fn, const FunctionProfile &profile,
                 const PlannerConfig &config)
{
    PlanResult result;
    if (config.scopeLevel >= 4)
        return result;

    std::vector<uint32_t> idom = computeIdoms(fn);
    std::vector<NaturalLoop> loops = findLoops(fn, idom);

    // An adaptive override *is* the budget (already safety-scaled
    // from observed abort footprints); otherwise budget = fraction of
    // the model capacity, as in the paper.
    uint64_t budget =
        config.budgetOverrideBytes
            ? config.budgetOverrideBytes
            : static_cast<uint64_t>(
                  config.capacityBudgetFraction *
                  static_cast<double>(config.writeCapacityBytes()));

    // Work on top-level nests, outermost first.
    for (NaturalLoop &nest : loops) {
        if (nest.parentHeader >= 0)
            continue;
        if (nestBlacklisted(fn, nest, loops, config.blacklistPcs)) {
            ++result.nestsSkippedBlacklisted;
            continue;
        }
        if (containsIrrevocable(fn, nest)) {
            ++result.nestsSkippedIrrevocable;
            continue;
        }
        if (!loopHasChecks(fn, nest)) {
            // Nothing to convert: a transaction would be pure
            // overhead.
            continue;
        }
        double trips = effectiveTrips(nest, loops, profile);
        if (trips < config.minTripCount) {
            ++result.nestsSkippedCold;
            continue;
        }

        // Candidate scopes, largest first: the nest itself, then the
        // innermost hot loop, then a tiled innermost loop.
        NaturalLoop *innermost = &nest;
        for (NaturalLoop &cand : loops) {
            if (cand.header != nest.header &&
                nest.contains(cand.header) &&
                (innermost == &nest ||
                 cand.blocks.size() < innermost->blocks.size())) {
                innermost = &cand;
            }
        }

        uint32_t level = config.scopeLevel;
        if (level == 0) {
            uint64_t estimate =
                estimateWriteFootprint(fn, nest, loops, profile);
            if (estimate <= budget) {
                wrapLoop(fn, nest, 0, result);
                continue;
            }
            level = 1;
        }
        if (level == 1) {
            if (innermost != &nest) {
                uint64_t estimate = estimateWriteFootprint(
                    fn, *innermost, loops, profile);
                if (estimate <= budget) {
                    wrapLoop(fn, *innermost, 0, result);
                    continue;
                }
            }
            level = 2;
        }
        if (level == 2) {
            // Tile the innermost loop so one tile's writes fit.
            if (containsCall(fn, *innermost)) {
                // Paper: blame the callee; drop the transaction.
                ++result.nestsSkippedCapacity;
                continue;
            }
            double per_iter = writeBytesPerIteration(fn, *innermost);
            uint32_t k = per_iter > 0.0
                             ? static_cast<uint32_t>(
                                   static_cast<double>(budget) /
                                   per_iter)
                             : 4096;
            k = std::clamp<uint32_t>(k, 16, 1u << 20);
            wrapLoop(fn, *innermost, k, result);
            continue;
        }
        // level >= 3: no transaction for this nest.
        ++result.nestsSkippedCapacity;
    }

    fn.verify();
    return result;
}

} // namespace nomap
