#ifndef NOMAP_NOMAP_PLANNER_H
#define NOMAP_NOMAP_PLANNER_H

/**
 * @file
 * The NoMap transaction planner — the paper's core contribution
 * (Sections IV-B and V-C).
 *
 * Operating on freshly built FTL IR (before the optimization passes,
 * exactly as the paper runs its transformation before LLVM's
 * pipeline), the planner:
 *
 *  1. places a transaction around each hot loop nest with SMPs,
 *     choosing the scope by estimated write footprint:
 *     whole nest -> innermost loop -> tiled innermost loop
 *     (commit + reopen every K iterations) -> no transaction;
 *  2. replaces every SMP inside the transaction with a transactional
 *     abort (marks the check `converted`);
 *  3. creates the paper's "Entry3": TxBegin carries the bytecode pc of
 *     the loop header so an abort re-enters the Baseline tier at the
 *     top of the loop with the registers captured at TxBegin.
 *
 * The runtime escalates `scopeLevel` when a transaction keeps
 * aborting on capacity (paper: "NoMap then tries to change the code
 * ... and compiles it again"); level 3 removes transactions from
 * loops that contain calls, blaming the callee's footprint.
 */

#include "bytecode/bytecode.h"
#include "htm/transaction.h"
#include "ir/ir.h"

namespace nomap {

/** Planner tuning knobs. */
struct PlannerConfig {
    HtmMode htmMode = HtmMode::Rot;
    /** Fraction of the write capacity the estimate may consume. */
    double capacityBudgetFraction = 0.6;
    /** Escalation: 0 = nest, 1 = innermost, 2 = tiled, 3 = none. */
    uint32_t scopeLevel = 0;
    /** Minimum average trip count for a loop to be worth wrapping. */
    double minTripCount = 4.0;
    /**
     * Write capacity of the actual HTM model in bytes; 0 derives the
     * paper's cache geometry from htmMode. Set from
     * TransactionManager::writeCapacityBytes() when the engine runs a
     * non-default CapacityModel, so plan and hardware share one
     * capacity oracle.
     */
    uint64_t capacityBytes = 0;
    /**
     * Adaptive-controller budget override in bytes: when nonzero it
     * *is* the budget (already safety-scaled from observed abort
     * footprints), replacing fraction * capacity.
     */
    uint64_t budgetOverrideBytes = 0;
    /**
     * Loop-header pcs the adaptive controller blacklisted
     * (ascending). A nest containing one gets no transaction.
     */
    std::vector<uint32_t> blacklistPcs;

    uint64_t
    writeCapacityBytes() const
    {
        if (capacityBytes)
            return capacityBytes;
        return htmMode == HtmMode::Rot ? 256 * 1024 : 32 * 1024;
    }
};

/** One loop the planner wrapped (feeds per-loop trace reports). */
struct LoopPlan {
    /** Bytecode pc of the loop header (= the TxBegin's entry SMP). */
    uint32_t headerPc = 0;
    uint32_t loopId = 0;
    /** SMP-guarding checks converted to aborts inside this loop. */
    uint32_t checksConverted = 0;
    /** Commit-and-reopen interval; 0 = untiled. */
    uint32_t tileEvery = 0;
};

/** What the planner did (for tests, ablations, and recompilation). */
struct PlanResult {
    uint32_t transactionsPlaced = 0;
    uint32_t checksConverted = 0;
    uint32_t tiledLoops = 0;
    uint32_t nestsSkippedIrrevocable = 0;
    uint32_t nestsSkippedCold = 0;
    uint32_t nestsSkippedCapacity = 0;
    /** Nests dropped because a contained loop-header pc is on the
     *  adaptive controller's blacklist. */
    uint32_t nestsSkippedBlacklisted = 0;
    /** Per-wrapped-loop detail, in placement order. */
    std::vector<LoopPlan> loops;
};

/**
 * Instrument @p fn with transactions. @p profile supplies per-loop
 * trip counts for the footprint estimate.
 */
PlanResult planTransactions(IrFunction &fn,
                            const FunctionProfile &profile,
                            const PlannerConfig &config);

} // namespace nomap

#endif // NOMAP_NOMAP_PLANNER_H
