#include "passes/analysis.h"

#include <algorithm>

#include "support/logging.h"

namespace nomap {

void
collectUses(const IrInstr &instr, std::vector<uint16_t> &uses)
{
    auto add = [&](uint16_t r) { uses.push_back(r); };
    switch (instr.op) {
      case IrOp::Nop:
      case IrOp::Const:
      case IrOp::LoadGlobal:
      case IrOp::Jump:
      case IrOp::ReturnUndef:
      case IrOp::TxBegin:
      case IrOp::TxEnd:
      case IrOp::TxTile:
        break;
      case IrOp::Move:
      case IrOp::NegInt:
      case IrOp::NegDouble:
      case IrOp::BitNotInt:
      case IrOp::ToDouble:
      case IrOp::ToBoolean:
      case IrOp::NotBool:
      case IrOp::CheckInt32:
      case IrOp::CheckNumber:
      case IrOp::CheckShape:
      case IrOp::CheckArray:
      case IrOp::CheckIndexInt:
      case IrOp::CheckOverflow:
      case IrOp::CheckNotHole:
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::StoreGlobal:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::Branch:
      case IrOp::Return:
        add(instr.a);
        break;
      case IrOp::AddInt:
      case IrOp::SubInt:
      case IrOp::MulInt:
      case IrOp::AddDouble:
      case IrOp::SubDouble:
      case IrOp::MulDouble:
      case IrOp::DivDouble:
      case IrOp::ModDouble:
      case IrOp::BitAndInt:
      case IrOp::BitOrInt:
      case IrOp::BitXorInt:
      case IrOp::ShlInt:
      case IrOp::ShrInt:
      case IrOp::UShrInt:
      case IrOp::CmpInt:
      case IrOp::CmpDouble:
      case IrOp::CheckBounds:
      case IrOp::SetSlot:
      case IrOp::GetElem:
      case IrOp::GenericBinary:
      case IrOp::GenericSetProp:
      case IrOp::GenericGetIndex:
        add(instr.a);
        add(instr.b);
        break;
      case IrOp::CheckBoundsRange:
      case IrOp::SetElem:
      case IrOp::GenericSetIndex:
        add(instr.a);
        add(instr.b);
        add(instr.c);
        break;
      case IrOp::NewArray:
        for (uint32_t i = 0; i < instr.imm; ++i)
            add(static_cast<uint16_t>(instr.a + i));
        break;
      case IrOp::NewObject:
        for (uint32_t i = 0; i < instr.b; ++i)
            add(static_cast<uint16_t>(instr.a + i));
        break;
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::Intrinsic:
        for (uint32_t i = 0; i < instr.b; ++i)
            add(static_cast<uint16_t>(instr.a + i));
        break;
      case IrOp::CallMethod: {
        add(instr.a);
        uint32_t nargs = instr.imm % 16;
        for (uint32_t i = 0; i < nargs; ++i)
            add(static_cast<uint16_t>(instr.b + i));
        break;
      }
    }
}

int32_t
defOf(const IrInstr &instr)
{
    return definesDst(instr.op) ? static_cast<int32_t>(instr.dst) : -1;
}

std::vector<uint32_t>
reversePostorder(const IrFunction &fn)
{
    std::vector<uint8_t> state(fn.blocks.size(), 0);
    std::vector<uint32_t> postorder;
    // Iterative DFS.
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[block, next] = stack.back();
        if (next < fn.blocks[block].succs.size()) {
            uint32_t succ = fn.blocks[block].succs[next++];
            if (!state[succ]) {
                state[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            postorder.push_back(block);
            stack.pop_back();
        }
    }
    std::reverse(postorder.begin(), postorder.end());
    return postorder;
}

std::vector<uint32_t>
computeIdoms(const IrFunction &fn)
{
    std::vector<uint32_t> rpo = reversePostorder(fn);
    std::vector<uint32_t> rpo_index(fn.blocks.size(), UINT32_MAX);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpo_index[rpo[i]] = static_cast<uint32_t>(i);

    std::vector<uint32_t> idom(fn.blocks.size(), UINT32_MAX);
    idom[0] = 0;

    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpo_index[a] > rpo_index[b])
                a = idom[a];
            while (rpo_index[b] > rpo_index[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t block : rpo) {
            if (block == 0)
                continue;
            uint32_t new_idom = UINT32_MAX;
            for (uint32_t pred : fn.blocks[block].preds) {
                if (idom[pred] == UINT32_MAX)
                    continue; // Not yet processed / unreachable.
                new_idom = new_idom == UINT32_MAX
                               ? pred
                               : intersect(new_idom, pred);
            }
            if (new_idom != UINT32_MAX && idom[block] != new_idom) {
                idom[block] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<uint32_t> &idom, uint32_t a, uint32_t b)
{
    if (idom[b] == UINT32_MAX)
        return false;
    uint32_t cur = b;
    for (;;) {
        if (cur == a)
            return true;
        if (cur == 0)
            return a == 0;
        cur = idom[cur];
    }
}

std::vector<NaturalLoop>
findLoops(const IrFunction &fn, const std::vector<uint32_t> &idom)
{
    std::vector<NaturalLoop> loops;

    // Collect back edges grouped by header.
    std::vector<std::vector<uint32_t>> latches_of(fn.blocks.size());
    for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
        if (idom[b] == UINT32_MAX && b != 0)
            continue; // Unreachable.
        for (uint32_t succ : fn.blocks[b].succs) {
            if (dominates(idom, succ, b))
                latches_of[succ].push_back(b);
        }
    }

    for (uint32_t header = 0; header < fn.blocks.size(); ++header) {
        if (latches_of[header].empty())
            continue;
        NaturalLoop loop;
        loop.header = header;
        loop.latches = latches_of[header];
        loop.loopId = fn.blocks[header].loopId;

        // Standard natural-loop body discovery.
        std::vector<bool> in_loop(fn.blocks.size(), false);
        in_loop[header] = true;
        std::vector<uint32_t> work = loop.latches;
        while (!work.empty()) {
            uint32_t b = work.back();
            work.pop_back();
            if (in_loop[b])
                continue;
            in_loop[b] = true;
            for (uint32_t pred : fn.blocks[b].preds)
                if (!in_loop[pred])
                    work.push_back(pred);
        }
        for (uint32_t b = 0; b < fn.blocks.size(); ++b) {
            if (in_loop[b])
                loop.blocks.push_back(b);
        }
        for (uint32_t b : loop.blocks) {
            bool exits = false;
            for (uint32_t succ : fn.blocks[b].succs) {
                if (!in_loop[succ]) {
                    exits = true;
                    bool seen = false;
                    for (uint32_t t : loop.exitTargets)
                        seen |= (t == succ);
                    if (!seen)
                        loop.exitTargets.push_back(succ);
                }
            }
            if (exits)
                loop.exitingBlocks.push_back(b);
        }
        loops.push_back(std::move(loop));
    }

    // Parent relations: smallest strictly-containing loop.
    for (size_t i = 0; i < loops.size(); ++i) {
        size_t best = SIZE_MAX;
        for (size_t j = 0; j < loops.size(); ++j) {
            if (i == j)
                continue;
            if (loops[j].contains(loops[i].header) &&
                loops[j].blocks.size() > loops[i].blocks.size()) {
                if (best == SIZE_MAX ||
                    loops[j].blocks.size() < loops[best].blocks.size()) {
                    best = j;
                }
            }
        }
        if (best != SIZE_MAX)
            loops[i].parentHeader =
                static_cast<int32_t>(loops[best].header);
    }

    std::sort(loops.begin(), loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.blocks.size() > b.blocks.size();
              });
    return loops;
}

uint32_t
ensurePreheader(IrFunction &fn, const NaturalLoop &loop)
{
    // Gather non-latch predecessors of the header.
    std::vector<uint32_t> outside;
    for (uint32_t pred : fn.blocks[loop.header].preds) {
        bool is_latch = false;
        for (uint32_t latch : loop.latches)
            is_latch |= (latch == pred);
        if (!is_latch)
            outside.push_back(pred);
    }
    if (outside.size() == 1) {
        uint32_t cand = outside[0];
        const IrBlock &cb = fn.blocks[cand];
        if (cb.succs.size() == 1 && cb.succs[0] == loop.header)
            return cand;
    }

    // Create a fresh preheader block jumping to the header and
    // retarget every outside edge to it.
    uint32_t ph = static_cast<uint32_t>(fn.blocks.size());
    fn.blocks.emplace_back();
    IrBlock &phb = fn.blocks.back();
    phb.firstPc = fn.blocks[loop.header].firstPc;
    IrInstr jump;
    jump.op = IrOp::Jump;
    jump.imm = loop.header;
    phb.instrs.push_back(jump);
    phb.succs.push_back(loop.header);

    auto &header_preds = fn.blocks[loop.header].preds;
    for (uint32_t pred : outside) {
        IrBlock &pb = fn.blocks[pred];
        IrInstr &term = pb.instrs.back();
        if (term.op == IrOp::Jump) {
            if (term.imm == loop.header)
                term.imm = ph;
        } else if (term.op == IrOp::Branch) {
            if (term.imm == loop.header)
                term.imm = ph;
            if (term.imm2 == loop.header)
                term.imm2 = ph;
        }
        for (uint32_t &succ : pb.succs) {
            if (succ == loop.header)
                succ = ph;
        }
        phb.preds.push_back(pred);
        header_preds.erase(std::remove(header_preds.begin(),
                                       header_preds.end(), pred),
                           header_preds.end());
    }
    header_preds.push_back(ph);
    return ph;
}

std::vector<uint32_t>
ensureDedicatedExits(IrFunction &fn, NaturalLoop &loop)
{
    std::vector<uint32_t> trampolines;
    for (uint32_t exiting : loop.exitingBlocks) {
        // Copy successors: we mutate the block while iterating.
        std::vector<uint32_t> succs = fn.blocks[exiting].succs;
        for (uint32_t target : succs) {
            if (loop.contains(target))
                continue;
            uint32_t tramp = static_cast<uint32_t>(fn.blocks.size());
            fn.blocks.emplace_back();
            IrBlock &tb = fn.blocks.back();
            tb.firstPc = fn.blocks[target].firstPc;
            IrInstr jump;
            jump.op = IrOp::Jump;
            jump.imm = target;
            tb.instrs.push_back(jump);
            tb.succs.push_back(target);
            tb.preds.push_back(exiting);

            IrBlock &eb = fn.blocks[exiting];
            IrInstr &term = eb.instrs.back();
            if (term.op == IrOp::Jump) {
                if (term.imm == target)
                    term.imm = tramp;
            } else if (term.op == IrOp::Branch) {
                if (term.imm == target)
                    term.imm = tramp;
                if (term.imm2 == target)
                    term.imm2 = tramp;
            }
            for (uint32_t &succ : eb.succs) {
                if (succ == target)
                    succ = tramp;
            }
            auto &tpreds = fn.blocks[target].preds;
            for (uint32_t &pred : tpreds) {
                if (pred == exiting)
                    pred = tramp;
            }
            trampolines.push_back(tramp);
        }
    }
    loop.exitTargets = trampolines;
    return trampolines;
}

bool
loopHasUnconvertedSmp(const IrFunction &fn, const NaturalLoop &loop)
{
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (instr.isCheck() && !instr.converted)
                return true;
        }
    }
    return false;
}

bool
loopHasOpaqueOps(const IrFunction &fn, const NaturalLoop &loop)
{
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (isOpaqueCall(instr.op))
                return true;
        }
    }
    return false;
}

std::vector<bool>
regsDefinedInLoop(const IrFunction &fn, const NaturalLoop &loop)
{
    std::vector<bool> defined(fn.numRegs, false);
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            int32_t def = defOf(instr);
            if (def >= 0)
                defined[static_cast<size_t>(def)] = true;
        }
    }
    return defined;
}

std::vector<std::vector<bool>>
computeLiveIn(const IrFunction &fn)
{
    size_t nblocks = fn.blocks.size();
    std::vector<std::vector<bool>> live_out(
        nblocks, std::vector<bool>(fn.numRegs, false));
    std::vector<std::vector<bool>> live_in(
        nblocks, std::vector<bool>(fn.numRegs, false));
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t bi = nblocks; bi-- > 0;) {
            const IrBlock &block = fn.blocks[bi];
            std::vector<bool> live = live_out[bi];
            for (size_t ii = block.instrs.size(); ii-- > 0;) {
                const IrInstr &instr = block.instrs[ii];
                int32_t def = defOf(instr);
                if (def >= 0)
                    live[static_cast<size_t>(def)] = false;
                if (!instr.isCheck() || !instr.converted) {
                    std::vector<uint16_t> uses;
                    collectUses(instr, uses);
                    for (uint16_t u : uses)
                        live[u] = true;
                }
                if ((instr.isCheck() && !instr.converted) ||
                    instr.op == IrOp::TxBegin ||
                    instr.op == IrOp::TxTile) {
                    for (uint16_t r = 0; r < fn.bytecodeRegs; ++r)
                        live[r] = true;
                }
            }
            live_in[bi] = live;
            for (uint32_t pred : fn.blocks[bi].preds) {
                auto &pout = live_out[pred];
                for (size_t r = 0; r < live.size(); ++r) {
                    if (live[r] && !pout[r]) {
                        pout[r] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    return live_in;
}

} // namespace nomap
