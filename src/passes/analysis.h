#ifndef NOMAP_PASSES_ANALYSIS_H
#define NOMAP_PASSES_ANALYSIS_H

/**
 * @file
 * Shared CFG analyses: register uses/defs, reverse postorder,
 * dominators, and natural-loop discovery. All passes and the NoMap
 * transaction planner are built on these.
 */

#include <cstdint>
#include <vector>

#include "ir/ir.h"

namespace nomap {

/** Registers read by an instruction (appended to @p uses). */
void collectUses(const IrInstr &instr, std::vector<uint16_t> &uses);

/** Register written, or -1. */
int32_t defOf(const IrInstr &instr);

/** Reverse postorder over reachable blocks from block 0. */
std::vector<uint32_t> reversePostorder(const IrFunction &fn);

/**
 * Immediate dominators (classic iterative algorithm).
 * idom[0] == 0; unreachable blocks get idom == UINT32_MAX.
 */
std::vector<uint32_t> computeIdoms(const IrFunction &fn);

/** True if @p a dominates @p b under @p idom. */
bool dominates(const std::vector<uint32_t> &idom, uint32_t a, uint32_t b);

/** A natural loop. */
struct NaturalLoop {
    uint32_t header = 0;
    /** Blocks in the loop, including the header. */
    std::vector<uint32_t> blocks;
    /** Blocks inside with a successor outside (exit sources). */
    std::vector<uint32_t> exitingBlocks;
    /** Blocks outside with a predecessor inside (exit targets). */
    std::vector<uint32_t> exitTargets;
    /** In-loop predecessors of the header (latches). */
    std::vector<uint32_t> latches;
    /** Loop id from the bytecode LoopHeader, or -1. */
    int32_t loopId = -1;
    /** Header of the innermost enclosing loop, or -1. */
    int32_t parentHeader = -1;

    bool
    contains(uint32_t block) const
    {
        for (uint32_t b : blocks) {
            if (b == block)
                return true;
        }
        return false;
    }
};

/**
 * Find all natural loops (one per header; back edges to the same
 * header are merged). Sorted outermost-first by block count.
 */
std::vector<NaturalLoop> findLoops(const IrFunction &fn,
                                   const std::vector<uint32_t> &idom);

/**
 * Guarantee a dedicated preheader: a block whose single successor is
 * the loop header and which is the only non-latch predecessor of the
 * header. May append a new block to the function (invalidating loop
 * analyses — callers re-run findLoops afterwards if needed).
 *
 * @return The preheader block index.
 */
uint32_t ensurePreheader(IrFunction &fn, const NaturalLoop &loop);

/**
 * Split every loop-exit edge so each exit target reached from the
 * loop is a dedicated trampoline block with only in-loop
 * predecessors (a safe place for sunk stores and combined bounds
 * checks). Returns the trampoline block for each exiting edge.
 * Invalidates dominator/loop analyses.
 */
std::vector<uint32_t> ensureDedicatedExits(IrFunction &fn,
                                           NaturalLoop &loop);

/** True if any instruction in the loop is an un-converted SMP check. */
bool loopHasUnconvertedSmp(const IrFunction &fn, const NaturalLoop &loop);

/** True if the loop contains calls or generic (opaque) operations. */
bool loopHasOpaqueOps(const IrFunction &fn, const NaturalLoop &loop);

/** Registers defined anywhere inside the loop. */
std::vector<bool> regsDefinedInLoop(const IrFunction &fn,
                                    const NaturalLoop &loop);

/**
 * Per-block live-in register sets under the DCE liveness rules:
 * converted-check uses do not count; opaque SMPs, TxBegin, and
 * TxTile keep the whole baseline frame alive.
 */
std::vector<std::vector<bool>> computeLiveIn(const IrFunction &fn);

} // namespace nomap

#endif // NOMAP_PASSES_ANALYSIS_H
