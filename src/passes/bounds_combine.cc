#include "passes/passes.h"

#include "passes/analysis.h"
#include "support/logging.h"

namespace nomap {

namespace {

/** Where a register is defined inside a loop. */
struct DefSite {
    uint32_t block = 0;
    uint32_t index = 0;
    const IrInstr *instr = nullptr;
    uint32_t count = 0;
};

DefSite
findDef(const IrFunction &fn, const NaturalLoop &loop, uint16_t reg)
{
    DefSite site;
    for (uint32_t b : loop.blocks) {
        const auto &instrs = fn.blocks[b].instrs;
        for (uint32_t i = 0; i < instrs.size(); ++i) {
            if (defOf(instrs[i]) == static_cast<int32_t>(reg)) {
                site.block = b;
                site.index = i;
                site.instr = &instrs[i];
                ++site.count;
            }
        }
    }
    return site;
}

/** Follow single-def Move chains inside the loop. */
uint16_t
resolveCopy(const IrFunction &fn, const NaturalLoop &loop, uint16_t reg,
            int depth = 0)
{
    if (depth > 4)
        return reg;
    DefSite site = findDef(fn, loop, reg);
    if (site.count == 1 && site.instr->op == IrOp::Move)
        return resolveCopy(fn, loop, site.instr->a, depth + 1);
    return reg;
}

/**
 * Value-at-site copy resolution: walk backwards from (block, index)
 * through Move chains. A register with no earlier def in the block
 * resolves to itself (its value at block entry). This sees through
 * the bytecode compiler's reused expression temporaries.
 */
uint16_t
resolveCopyAt(const IrFunction &fn, uint32_t block, size_t index,
              uint16_t reg, int depth = 0)
{
    if (depth > 6)
        return reg;
    const auto &instrs = fn.blocks[block].instrs;
    for (size_t i = index; i-- > 0;) {
        if (defOf(instrs[i]) == static_cast<int32_t>(reg)) {
            if (instrs[i].op == IrOp::Move) {
                return resolveCopyAt(fn, block, i, instrs[i].a,
                                     depth + 1);
            }
            return reg;
        }
    }
    return reg;
}

/** Fetch the int32 payload of a Const-defined register, if so. */
bool
constValue(const IrFunction &fn, const NaturalLoop &loop, uint16_t reg,
           int32_t *out)
{
    DefSite site = findDef(fn, loop, reg);
    const IrInstr *def = nullptr;
    if (site.count == 1) {
        def = site.instr;
    } else if (site.count == 0) {
        // Defined outside the loop; find the last def anywhere (must
        // be a unique Const for us to trust it).
        uint32_t found = 0;
        for (const IrBlock &block : fn.blocks) {
            for (const IrInstr &instr : block.instrs) {
                if (defOf(instr) == static_cast<int32_t>(reg)) {
                    def = &instr;
                    ++found;
                }
            }
        }
        if (found != 1)
            return false;
    }
    if (!def || def->op != IrOp::Const)
        return false;
    Value v = fn.constants[def->imm];
    if (!v.isInt32())
        return false;
    *out = v.asInt32();
    return true;
}

/** Detected monotonic induction variable. */
struct Induction {
    uint16_t reg = 0;
    int32_t step = 0; ///< Signed per-iteration delta.
};

/**
 * Recognize `i = i + c` compiled as:
 *   t  <- AddInt/SubInt (copy-of i), cstReg
 *   i  <- Move t
 * with both defs unique in the loop.
 */
bool
detectInduction(const IrFunction &fn, const NaturalLoop &loop,
                uint16_t reg, Induction *out)
{
    DefSite move_site = findDef(fn, loop, reg);
    if (move_site.count != 1 || move_site.instr->op != IrOp::Move)
        return false;
    uint16_t t = move_site.instr->a;
    // The increment lives in a reused expression temporary: find the
    // def that actually reaches the Move, not a globally unique one.
    const auto &minstrs = fn.blocks[move_site.block].instrs;
    const IrInstr *arith = nullptr;
    uint32_t arith_index = 0;
    for (uint32_t j = move_site.index; j-- > 0;) {
        if (defOf(minstrs[j]) == static_cast<int32_t>(t)) {
            arith = &minstrs[j];
            arith_index = j;
            break;
        }
    }
    if (!arith)
        return false;
    if (arith->op != IrOp::AddInt && arith->op != IrOp::SubInt)
        return false;
    if (resolveCopyAt(fn, move_site.block, arith_index, arith->a) !=
        reg) {
        return false;
    }
    int32_t step = 0;
    if (!constValue(fn, loop, arith->b, &step) || step == 0)
        return false;
    if (arith->op == IrOp::SubInt)
        step = -step;
    out->reg = reg;
    out->step = step;
    return true;
}

/**
 * The loop must exit only through its header, and the header
 * condition must compare the induction variable against a
 * loop-invariant register (this guarantees the loop cannot spin on
 * values loaded through a bounds check we are about to remove).
 */
bool
headerExitOnInduction(const IrFunction &fn, const NaturalLoop &loop,
                      uint16_t induction_reg)
{
    if (loop.exitingBlocks.size() != 1 ||
        loop.exitingBlocks[0] != loop.header) {
        return false;
    }
    const IrBlock &header = fn.blocks[loop.header];
    const IrInstr &term = header.instrs.back();
    if (term.op != IrOp::Branch)
        return false;
    // The compare that reaches the branch must involve the induction
    // variable and an invariant operand.
    std::vector<bool> defined = regsDefinedInLoop(fn, loop);
    const auto &hinstrs = header.instrs;
    for (size_t i = hinstrs.size() - 1; i-- > 0;) {
        const IrInstr &instr = hinstrs[i];
        if (defOf(instr) != static_cast<int32_t>(term.a))
            continue;
        if (instr.op != IrOp::CmpInt && instr.op != IrOp::CmpDouble)
            return false;
        uint16_t x = resolveCopyAt(fn, loop.header, i, instr.a);
        uint16_t y = resolveCopyAt(fn, loop.header, i, instr.b);
        bool x_ind = (x == induction_reg);
        bool y_ind = (y == induction_reg);
        if (!x_ind && !y_ind)
            return false;
        uint16_t other = x_ind ? y : x;
        return other == induction_reg || !defined[other];
    }
    // Condition computed outside the header (e.g. while(flag)):
    // cannot prove termination independence; bail.
    return false;
}

void
combineLoop(IrFunction &fn, NaturalLoop &loop, PassStats &stats)
{
    // Collect converted CheckBounds on invariant arrays indexed by a
    // monotonic induction variable.
    // A tiled loop commits before the sunk range check would run;
    // removing its per-iteration checks could commit out-of-bounds
    // garbage, so tiled loops keep their checks.
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (instr.op == IrOp::TxTile)
                return;
        }
    }

    std::vector<bool> defined = regsDefinedInLoop(fn, loop);
    struct Target {
        uint16_t arrReg;
        Induction ind;
    };
    std::vector<Target> targets;
    bool any_candidate = false;

    for (uint32_t b : loop.blocks) {
        const auto &binstrs = fn.blocks[b].instrs;
        for (size_t i = 0; i < binstrs.size(); ++i) {
            const IrInstr &instr = binstrs[i];
            if (instr.op != IrOp::CheckBounds || !instr.converted)
                continue;
            any_candidate = true;
            uint16_t arr = resolveCopyAt(fn, b, i, instr.a);
            if (defined[arr])
                continue; // Array register varies.
            uint16_t idx = resolveCopyAt(fn, b, i, instr.b);
            Induction ind;
            if (!detectInduction(fn, loop, idx, &ind))
                continue;
            if (!headerExitOnInduction(fn, loop, ind.reg))
                continue;
            bool seen = false;
            for (const Target &t : targets) {
                seen |= (t.arrReg == arr && t.ind.reg == ind.reg);
            }
            if (!seen)
                targets.push_back({arr, ind});
        }
    }
    if (!any_candidate || targets.empty())
        return;

    // Snapshot the induction start value in the preheader.
    uint32_t preheader = ensurePreheader(fn, loop);
    std::vector<uint32_t> exits = ensureDedicatedExits(fn, loop);

    for (const Target &target : targets) {
        uint16_t start_copy = fn.allocTemp();
        {
            IrInstr snap;
            snap.op = IrOp::Move;
            snap.dst = start_copy;
            snap.a = target.ind.reg;
            IrBlock &ph = fn.blocks[preheader];
            ph.instrs.insert(ph.instrs.end() - 1, snap);
        }

        // Remove the per-iteration checks for this (array, index).
        uint32_t removed = 0;
        uint32_t smp_pc = kNoSmp;
        for (uint32_t b : loop.blocks) {
            auto &instrs = fn.blocks[b].instrs;
            std::vector<IrInstr> kept;
            kept.reserve(instrs.size());
            for (size_t i = 0; i < instrs.size(); ++i) {
                const IrInstr &instr = instrs[i];
                if (instr.op == IrOp::CheckBounds && instr.converted &&
                    resolveCopyAt(fn, b, i, instr.a) ==
                        target.arrReg &&
                    resolveCopyAt(fn, b, i, instr.b) ==
                        target.ind.reg) {
                    ++removed;
                    smp_pc = instr.smpPc;
                    continue;
                }
                kept.push_back(instr);
            }
            instrs = std::move(kept);
        }
        if (removed == 0)
            continue;
        stats.boundsChecksCombined += removed;

        // Emit the combined range check at every loop exit:
        //   last = i -/+ step; lo/hi per direction;
        //   CheckBoundsRange(arr, lo, hi)  [passes when hi < lo].
        int32_t step_abs =
            target.ind.step > 0 ? target.ind.step : -target.ind.step;
        uint32_t step_const = fn.addConstant(Value::int32(step_abs));
        for (uint32_t exit : exits) {
            IrBlock &xb = fn.blocks[exit];
            uint16_t step_reg = fn.allocTemp();
            uint16_t last_reg = fn.allocTemp();
            IrInstr cst;
            cst.op = IrOp::Const;
            cst.dst = step_reg;
            cst.imm = step_const;
            IrInstr adj;
            adj.op = target.ind.step > 0 ? IrOp::SubInt : IrOp::AddInt;
            adj.dst = last_reg;
            adj.a = target.ind.reg;
            adj.b = step_reg;
            IrInstr check;
            check.op = IrOp::CheckBoundsRange;
            check.a = target.arrReg;
            check.b = target.ind.step > 0 ? start_copy : last_reg;
            check.c = target.ind.step > 0 ? last_reg : start_copy;
            check.smpPc = smp_pc;
            check.converted = true;
            // Insert at the top of the trampoline, before its Jump.
            xb.instrs.insert(xb.instrs.begin(), check);
            xb.instrs.insert(xb.instrs.begin(), adj);
            xb.instrs.insert(xb.instrs.begin(), cst);
        }
    }
    ++stats.boundsLoopsCombined;
}

} // namespace

void
runBoundsCombine(IrFunction &fn, PassStats &stats)
{
    if (fn.txRegions.empty())
        return;
    std::vector<uint32_t> idom = computeIdoms(fn);
    std::vector<NaturalLoop> loops = findLoops(fn, idom);
    // Innermost first; re-derive analyses after each mutation.
    for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
        std::vector<uint32_t> idom2 = computeIdoms(fn);
        std::vector<NaturalLoop> fresh = findLoops(fn, idom2);
        for (NaturalLoop &cand : fresh) {
            if (cand.header == it->header) {
                combineLoop(fn, cand, stats);
                break;
            }
        }
    }
    fn.verify();
}

} // namespace nomap
