#include "passes/passes.h"

#include <algorithm>
#include <unordered_set>

#include "passes/analysis.h"

namespace nomap {

namespace {

/** Canonical encoding of a check fact. */
uint64_t
factKey(const IrInstr &instr)
{
    return (static_cast<uint64_t>(instr.op) << 56) |
           (static_cast<uint64_t>(instr.a) << 40) |
           (static_cast<uint64_t>(instr.b) << 24) |
           (static_cast<uint64_t>(instr.imm) & 0xffffff);
}

using FactSet = std::unordered_set<uint64_t>;

/** Does this fact mention register @p reg as an operand? */
bool
factUsesReg(uint64_t fact, uint16_t reg)
{
    auto op = static_cast<IrOp>(fact >> 56);
    uint16_t a = static_cast<uint16_t>((fact >> 40) & 0xffff);
    uint16_t b = static_cast<uint16_t>((fact >> 24) & 0xffff);
    if (a == reg)
        return true;
    return op == IrOp::CheckBounds && b == reg;
}

/** Is this a heap-dependent fact (invalidated by opaque calls)? */
bool
heapDependent(uint64_t fact)
{
    auto op = static_cast<IrOp>(fact >> 56);
    return op == IrOp::CheckShape || op == IrOp::CheckBounds ||
           op == IrOp::CheckArray;
}

void
transfer(const IrInstr &instr, FactSet &facts)
{
    // Un-converted SMPs are opaque patchpoints: all facts die.
    if (instr.isCheck() && !instr.converted) {
        facts.clear();
        facts.insert(factKey(instr));
        return;
    }
    if (instr.isCheck()) {
        facts.insert(factKey(instr));
        return;
    }
    if (isOpaqueCall(instr.op)) {
        // Calls / generic ops can reshape objects and resize arrays.
        for (auto it = facts.begin(); it != facts.end();) {
            if (heapDependent(*it))
                it = facts.erase(it);
            else
                ++it;
        }
    }
    int32_t def = defOf(instr);
    if (def >= 0) {
        uint16_t reg = static_cast<uint16_t>(def);
        for (auto it = facts.begin(); it != facts.end();) {
            if (factUsesReg(*it, reg))
                it = facts.erase(it);
            else
                ++it;
        }
    }
}

FactSet
intersect(const FactSet &a, const FactSet &b)
{
    FactSet out;
    for (uint64_t f : a) {
        if (b.count(f))
            out.insert(f);
    }
    return out;
}

} // namespace

void
runCheckElim(IrFunction &fn, PassStats &stats)
{
    size_t nblocks = fn.blocks.size();
    std::vector<FactSet> out(nblocks);
    std::vector<bool> visited(nblocks, false);
    std::vector<uint32_t> rpo = reversePostorder(fn);

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            FactSet facts;
            bool first = true;
            if (b != 0) {
                for (uint32_t pred : fn.blocks[b].preds) {
                    if (!visited[pred])
                        continue;
                    if (first) {
                        facts = out[pred];
                        first = false;
                    } else {
                        facts = intersect(facts, out[pred]);
                    }
                }
            }
            for (const IrInstr &instr : fn.blocks[b].instrs)
                transfer(instr, facts);
            if (!visited[b] || facts != out[b]) {
                out[b] = std::move(facts);
                visited[b] = true;
                changed = true;
            }
        }
    }

    // Rewalk with the converged IN sets and drop redundant checks.
    for (uint32_t b = 0; b < nblocks; ++b) {
        FactSet facts;
        bool first = true;
        if (b != 0) {
            for (uint32_t pred : fn.blocks[b].preds) {
                if (first) {
                    facts = out[pred];
                    first = false;
                } else {
                    facts = intersect(facts, out[pred]);
                }
            }
        }
        auto &instrs = fn.blocks[b].instrs;
        std::vector<IrInstr> kept;
        kept.reserve(instrs.size());
        for (IrInstr &instr : instrs) {
            if (instr.isCheck() && facts.count(factKey(instr))) {
                ++stats.checksRemovedRedundant;
                continue;
            }
            transfer(instr, facts);
            kept.push_back(instr);
        }
        instrs = std::move(kept);
    }
}

} // namespace nomap
