#include "passes/passes.h"

#include <unordered_map>

#include "passes/analysis.h"

namespace nomap {

namespace {

/** Alias classes for load value-numbering. */
enum class AliasClass : uint8_t { ObjectSlots, ArrayElems, Globals };

struct MemEpochs {
    uint64_t objectSlots = 0;
    uint64_t arrayElems = 0;
    uint64_t globals = 0;

    uint64_t
    of(AliasClass cls) const
    {
        switch (cls) {
          case AliasClass::ObjectSlots: return objectSlots;
          case AliasClass::ArrayElems: return arrayElems;
          case AliasClass::Globals: return globals;
        }
        return 0;
    }
};

} // namespace

void
runLocalCse(IrFunction &fn, PassStats &stats)
{
    for (IrBlock &block : fn.blocks) {
        // Value numbers per register; bumped on redefinition. Every
        // register starts with a *distinct* number (its own index) so
        // different registers never alias in lookup keys.
        std::vector<uint64_t> reg_version(fn.numRegs);
        for (uint16_t r = 0; r < fn.numRegs; ++r)
            reg_version[r] = r;
        uint64_t next_version = fn.numRegs;
        MemEpochs epochs;

        // key -> (register, version at definition). The version lets
        // us reject entries whose holding register was overwritten.
        std::unordered_map<std::string, std::pair<uint16_t, uint64_t>>
            available;

        auto version_of = [&](uint16_t reg) {
            return reg_version[reg];
        };
        auto invalidate_reg = [&](uint16_t reg) {
            reg_version[reg] = next_version++;
        };

        for (IrInstr &instr : block.instrs) {
            // Un-converted SMPs: opaque — drop every memory fact (LLVM
            // patchpoint behaviour the paper identifies).
            if (instr.isCheck() && !instr.converted) {
                ++epochs.objectSlots;
                ++epochs.arrayElems;
                ++epochs.globals;
            }

            bool subsumable = false;
            std::string key;
            if (isPureValueOp(instr.op) && instr.op != IrOp::Move &&
                instr.op != IrOp::Const) {
                key = std::to_string(static_cast<int>(instr.op)) + ":" +
                      std::to_string(version_of(instr.a)) + ":" +
                      std::to_string(version_of(instr.b)) + ":" +
                      std::to_string(instr.imm);
                subsumable = true;
            } else if (instr.op == IrOp::GetSlot) {
                key = "slot:" + std::to_string(version_of(instr.a)) +
                      ":" + std::to_string(instr.imm) + "@" +
                      std::to_string(epochs.of(AliasClass::ObjectSlots));
                subsumable = true;
            } else if (instr.op == IrOp::GetArrayLen) {
                key = "len:" + std::to_string(version_of(instr.a)) +
                      "@" +
                      std::to_string(epochs.of(AliasClass::ArrayElems));
                subsumable = true;
            } else if (instr.op == IrOp::GetElem) {
                key = "elem:" + std::to_string(version_of(instr.a)) +
                      ":" + std::to_string(version_of(instr.b)) + "@" +
                      std::to_string(epochs.of(AliasClass::ArrayElems));
                subsumable = true;
            } else if (instr.op == IrOp::LoadGlobal) {
                key = "glob:" + std::to_string(instr.imm) + "@" +
                      std::to_string(epochs.of(AliasClass::Globals));
                subsumable = true;
            }

            if (subsumable) {
                auto it = available.find(key);
                if (it != available.end() &&
                    reg_version[it->second.first] ==
                        it->second.second) {
                    // Replace with a register copy.
                    uint16_t src = it->second.first;
                    uint16_t dst = instr.dst;
                    instr = IrInstr();
                    instr.op = IrOp::Move;
                    instr.dst = dst;
                    instr.a = src;
                    invalidate_reg(dst);
                    // dst now shadows src's value: future lookups of
                    // the same key keep pointing at src.
                    ++stats.opsCseEliminated;
                    continue;
                }
            }

            // Effects on memory epochs.
            switch (instr.op) {
              case IrOp::SetSlot:
                ++epochs.objectSlots;
                break;
              case IrOp::SetElem:
                ++epochs.arrayElems;
                break;
              case IrOp::StoreGlobal:
                ++epochs.globals;
                break;
              default:
                if (isOpaqueCall(instr.op)) {
                    ++epochs.objectSlots;
                    ++epochs.arrayElems;
                    ++epochs.globals;
                }
                break;
            }

            int32_t def = defOf(instr);
            if (def >= 0) {
                uint16_t reg = static_cast<uint16_t>(def);
                invalidate_reg(reg);
                if (subsumable)
                    available[key] = {reg, reg_version[reg]};
            }
        }
    }
}

} // namespace nomap
