#include "passes/passes.h"

#include "passes/analysis.h"
#include "vm/builtins.h"

namespace nomap {

namespace {

using BitSet = std::vector<bool>;

void
setBit(BitSet &set, uint16_t reg)
{
    set[reg] = true;
}

bool
unionInto(BitSet &dst, const BitSet &src)
{
    bool changed = false;
    for (size_t i = 0; i < dst.size(); ++i) {
        if (src[i] && !dst[i]) {
            dst[i] = true;
            changed = true;
        }
    }
    return changed;
}

/** Is the instruction always necessary regardless of its result? */
bool
hasSideEffects(const IrInstr &instr)
{
    // Math intrinsics are pure except Math.random (RNG state).
    if (instr.op == IrOp::Intrinsic) {
        return static_cast<BuiltinId>(instr.imm) ==
               BuiltinId::MathRandom;
    }
    switch (instr.op) {
      case IrOp::SetSlot:
      case IrOp::SetElem:
      case IrOp::StoreGlobal:
      case IrOp::GenericSetProp:
      case IrOp::GenericSetIndex:
      case IrOp::Call:
      case IrOp::CallNative:
      case IrOp::CallMethod:
      case IrOp::GenericBinary:
      case IrOp::GenericUnary:
      case IrOp::GenericGetProp:
      case IrOp::GenericGetIndex:
      case IrOp::NewArray:
      case IrOp::NewObject:
      case IrOp::Jump:
      case IrOp::Branch:
      case IrOp::Return:
      case IrOp::ReturnUndef:
      case IrOp::TxBegin:
      case IrOp::TxEnd:
      case IrOp::TxTile:
        return true;
      default:
        return false;
    }
}

/**
 * Do this instruction's uses count toward register liveness? Uses by
 * converted checks do not: a check dies with the value it guards, so
 * counting its uses would keep dead values alive forever.
 */
bool
usesCountForLiveness(const IrInstr &instr)
{
    if (!instr.isCheck())
        return true;
    // CheckBoundsRange is synthesized by bounds combining after DCE
    // runs, but be safe in case of re-runs: its operands are
    // pass-created temporaries with no other uses.
    return !instr.converted;
}

void
runDceOnce(IrFunction &fn, PassStats &stats)
{
    size_t nblocks = fn.blocks.size();
    std::vector<BitSet> live_out(nblocks, BitSet(fn.numRegs, false));

    // Backward liveness to fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t bi = nblocks; bi-- > 0;) {
            const IrBlock &block = fn.blocks[bi];
            BitSet live = live_out[bi];
            for (size_t ii = block.instrs.size(); ii-- > 0;) {
                const IrInstr &instr = block.instrs[ii];
                int32_t def = defOf(instr);
                if (def >= 0)
                    live[static_cast<size_t>(def)] = false;
                if (usesCountForLiveness(instr)) {
                    std::vector<uint16_t> uses;
                    collectUses(instr, uses);
                    for (uint16_t u : uses)
                        setBit(live, u);
                }
                // Opaque SMPs and transaction snapshots need the whole
                // baseline frame reconstructible.
                bool snapshots =
                    (instr.isCheck() && !instr.converted) ||
                    instr.op == IrOp::TxBegin ||
                    instr.op == IrOp::TxTile;
                if (snapshots) {
                    for (uint16_t r = 0; r < fn.bytecodeRegs; ++r)
                        setBit(live, r);
                }
            }
            // Propagate to predecessors' live-out.
            for (uint32_t pred : fn.blocks[bi].preds)
                changed |= unionInto(live_out[pred], live);
        }
    }

    // Sweep: delete pure ops and loads whose result is dead, and
    // converted checks whose guarded registers are all dead.
    for (size_t bi = 0; bi < nblocks; ++bi) {
        IrBlock &block = fn.blocks[bi];
        BitSet live = live_out[bi];
        std::vector<bool> keep(block.instrs.size(), true);
        for (size_t ii = block.instrs.size(); ii-- > 0;) {
            const IrInstr &instr = block.instrs[ii];
            bool removable = false;
            if (!hasSideEffects(instr) && !instr.isCheck()) {
                int32_t def = defOf(instr);
                if (def >= 0 && !live[static_cast<size_t>(def)])
                    removable = true;
            } else if (instr.isCheck() && instr.converted) {
                // A converted check survives only while some operand
                // still feeds live (non-check) computation.
                std::vector<uint16_t> uses;
                collectUses(instr, uses);
                bool any_live = false;
                for (uint16_t u : uses)
                    any_live |= live[u];
                removable = !any_live && !uses.empty();
            }
            if (removable) {
                keep[ii] = false;
                ++stats.deadOpsRemoved;
                continue;
            }
            // Update running liveness.
            int32_t def = defOf(instr);
            if (def >= 0)
                live[static_cast<size_t>(def)] = false;
            if (usesCountForLiveness(instr)) {
                std::vector<uint16_t> uses;
                collectUses(instr, uses);
                for (uint16_t u : uses)
                    setBit(live, u);
            }
            if ((instr.isCheck() && !instr.converted) ||
                instr.op == IrOp::TxBegin || instr.op == IrOp::TxTile) {
                for (uint16_t r = 0; r < fn.bytecodeRegs; ++r)
                    setBit(live, r);
            }
        }
        std::vector<IrInstr> kept;
        kept.reserve(block.instrs.size());
        for (size_t ii = 0; ii < block.instrs.size(); ++ii) {
            if (keep[ii])
                kept.push_back(block.instrs[ii]);
        }
        block.instrs = std::move(kept);
    }
}

} // namespace

void
runDce(IrFunction &fn, PassStats &stats)
{
    // Removing one dead op can make its operands dead; iterate.
    uint32_t before;
    do {
        before = stats.deadOpsRemoved;
        runDceOnce(fn, stats);
    } while (stats.deadOpsRemoved != before);
}

} // namespace nomap
