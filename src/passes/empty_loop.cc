#include "passes/passes.h"

#include "passes/analysis.h"

namespace nomap {

namespace {

/**
 * Ops that are pure loop plumbing: induction updates, comparisons,
 * copies, and the transaction tiling marker. A loop whose body is
 * exclusively plumbing computes nothing.
 */
bool
isPlumbing(const IrInstr &instr)
{
    // Any pure computation plus bare control flow. Like LLVM's
    // LoopDeletion, we assume source loops terminate: a loop that
    // computes nothing observable may be removed even though its trip
    // count is data-dependent.
    if (isPureValueOp(instr.op))
        return true;
    // A converted check in an otherwise-empty loop guards values that
    // died with the loop body: skipping its abort commits the same
    // (empty) observable state the Baseline re-execution would
    // produce. Un-converted checks are real deopt points and block
    // deletion.
    if (instr.isCheck() && instr.converted)
        return true;
    switch (instr.op) {
      case IrOp::Nop:
      case IrOp::Jump:
      case IrOp::Branch:
      case IrOp::TxTile:
        return true;
      default:
        return false;
    }
}

} // namespace

void
runEmptyLoopElim(IrFunction &fn, PassStats &stats)
{
    std::vector<uint32_t> idom = computeIdoms(fn);
    std::vector<NaturalLoop> loops = findLoops(fn, idom);

    for (NaturalLoop &loop : loops) {
        // Only single-exit loops exiting from the header.
        if (loop.exitingBlocks.size() != 1 ||
            loop.exitingBlocks[0] != loop.header ||
            loop.exitTargets.size() != 1) {
            continue;
        }
        // Entire body must be plumbing with no un-converted SMPs
        // (those would need the registers the loop produces).
        bool empty = true;
        for (uint32_t b : loop.blocks) {
            for (const IrInstr &instr : fn.blocks[b].instrs) {
                if (!isPlumbing(instr)) {
                    empty = false;
                    break;
                }
            }
            if (!empty)
                break;
        }
        if (!empty)
            continue;

        // No register defined inside may be consumed after the loop.
        uint32_t exit_target = loop.exitTargets[0];
        std::vector<bool> defined = regsDefinedInLoop(fn, loop);
        std::vector<std::vector<bool>> live_in = computeLiveIn(fn);
        bool escapes = false;
        for (uint16_t r = 0; r < fn.numRegs; ++r)
            escapes |= (defined[r] && live_in[exit_target][r]);
        if (escapes)
            continue;

        // Delete the loop: every outside edge into the header is
        // redirected straight to the exit target.
        for (uint32_t pred : fn.blocks[loop.header].preds) {
            if (loop.contains(pred))
                continue;
            IrBlock &pb = fn.blocks[pred];
            IrInstr &term = pb.instrs.back();
            if (term.op == IrOp::Jump) {
                if (term.imm == loop.header)
                    term.imm = exit_target;
            } else if (term.op == IrOp::Branch) {
                if (term.imm == loop.header)
                    term.imm = exit_target;
                if (term.imm2 == loop.header)
                    term.imm2 = exit_target;
            }
            for (uint32_t &succ : pb.succs) {
                if (succ == loop.header)
                    succ = exit_target;
            }
            fn.blocks[exit_target].preds.push_back(pred);
        }
        // The loop blocks are unreachable now; scrub them into
        // self-consistent stubs so CFG invariants (succ/pred
        // symmetry) keep holding for verify() and later analyses.
        auto &xpreds = fn.blocks[exit_target].preds;
        std::vector<uint32_t> kept_preds;
        for (uint32_t pred : xpreds) {
            if (!loop.contains(pred))
                kept_preds.push_back(pred);
        }
        xpreds = kept_preds;
        for (uint32_t b : loop.blocks) {
            IrBlock &dead = fn.blocks[b];
            dead.instrs.clear();
            IrInstr ret;
            ret.op = IrOp::ReturnUndef;
            dead.instrs.push_back(ret);
            dead.succs.clear();
            dead.preds.clear();
        }
        ++stats.emptyLoopsRemoved;
        // Analyses are stale now; one deletion per invocation of the
        // outer fixpoint is fine.
        break;
    }
}

} // namespace nomap
