#include "passes/passes.h"

#include "passes/analysis.h"
#include "support/logging.h"

namespace nomap {

namespace {

/** Small kind lattice for static inference. */
enum class StaticKind : uint8_t {
    Unknown,  ///< Top: anything.
    Int32,
    Number,   ///< Int32 or double.
    Boolean,
    Array,    ///< Proven array (a register fact: regs don't mutate).
    NotHole,  ///< Known not-undefined, kind otherwise unknown.
};

StaticKind
meet(StaticKind a, StaticKind b)
{
    if (a == b)
        return a;
    auto numeric = [](StaticKind k) {
        return k == StaticKind::Int32 || k == StaticKind::Number;
    };
    if (numeric(a) && numeric(b))
        return StaticKind::Number;
    if (a == StaticKind::Unknown || b == StaticKind::Unknown)
        return StaticKind::Unknown;
    // Different concrete kinds are still known-not-undefined.
    return StaticKind::NotHole;
}

bool
satisfies(StaticKind kind, IrOp check)
{
    switch (check) {
      case IrOp::CheckInt32:
      case IrOp::CheckIndexInt:
        return kind == StaticKind::Int32;
      case IrOp::CheckNumber:
        return kind == StaticKind::Int32 || kind == StaticKind::Number;
      case IrOp::CheckNotHole:
        return kind != StaticKind::Unknown;
      case IrOp::CheckArray:
        return kind == StaticKind::Array;
      default:
        return false; // Shape/bounds/overflow: not register facts.
    }
}

StaticKind
kindOfConstant(Value v)
{
    if (v.isInt32())
        return StaticKind::Int32;
    if (v.isBoxedDouble())
        return StaticKind::Number;
    if (v.isBoolean())
        return StaticKind::Boolean;
    if (v.isUndefined())
        return StaticKind::Unknown;
    return StaticKind::NotHole;
}

/** Transfer function for one instruction; returns refined state. */
void
transfer(const IrFunction &fn, const IrInstr &instr,
         std::vector<StaticKind> &state)
{
    switch (instr.op) {
      case IrOp::Const:
        state[instr.dst] = kindOfConstant(fn.constants[instr.imm]);
        break;
      case IrOp::Move:
        state[instr.dst] = state[instr.a];
        break;
      case IrOp::AddInt:
      case IrOp::SubInt:
      case IrOp::MulInt:
      case IrOp::NegInt:
        // Guarded by CheckOverflow (or by the SOF at commit): the
        // committed result is always an int32.
        state[instr.dst] = StaticKind::Int32;
        break;
      case IrOp::BitAndInt:
      case IrOp::BitOrInt:
      case IrOp::BitXorInt:
      case IrOp::ShlInt:
      case IrOp::ShrInt:
      case IrOp::BitNotInt:
        state[instr.dst] = StaticKind::Int32;
        break;
      case IrOp::UShrInt: // May exceed int32 range (>>> of negative).
      case IrOp::AddDouble:
      case IrOp::SubDouble:
      case IrOp::MulDouble:
      case IrOp::DivDouble:
      case IrOp::ModDouble:
      case IrOp::NegDouble:
      case IrOp::ToDouble:
        state[instr.dst] = StaticKind::Number;
        break;
      case IrOp::CmpInt:
      case IrOp::CmpDouble:
      case IrOp::ToBoolean:
      case IrOp::NotBool:
        state[instr.dst] = StaticKind::Boolean;
        break;
      case IrOp::GetArrayLen:
        state[instr.dst] = StaticKind::Int32;
        break;
      case IrOp::CheckInt32:
      case IrOp::CheckIndexInt:
        state[instr.a] = StaticKind::Int32;
        break;
      case IrOp::CheckNumber:
        if (state[instr.a] != StaticKind::Int32)
            state[instr.a] = StaticKind::Number;
        break;
      case IrOp::CheckNotHole:
        if (state[instr.a] == StaticKind::Unknown)
            state[instr.a] = StaticKind::NotHole;
        break;
      case IrOp::CheckArray:
        state[instr.a] = StaticKind::Array;
        break;
      case IrOp::CheckBounds:
        // A passed bounds check implies the base is an array.
        state[instr.a] = StaticKind::Array;
        break;
      default: {
        int32_t def = defOf(instr);
        if (def >= 0)
            state[static_cast<size_t>(def)] = StaticKind::Unknown;
        break;
      }
    }
}

} // namespace

void
runKindInference(IrFunction &fn, PassStats &stats)
{
    size_t nblocks = fn.blocks.size();
    std::vector<std::vector<StaticKind>> in(
        nblocks, std::vector<StaticKind>(fn.numRegs,
                                         StaticKind::Unknown));
    std::vector<std::vector<StaticKind>> outs = in;
    std::vector<bool> visited(nblocks, false);

    std::vector<uint32_t> rpo = reversePostorder(fn);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            // Meet over visited predecessors (entry starts Unknown —
            // params can be anything).
            std::vector<StaticKind> state(fn.numRegs,
                                          StaticKind::Unknown);
            bool first = true;
            if (b != 0) {
                for (uint32_t pred : fn.blocks[b].preds) {
                    if (!visited[pred])
                        continue;
                    if (first) {
                        state = outs[pred];
                        first = false;
                    } else {
                        for (size_t r = 0; r < state.size(); ++r)
                            state[r] = meet(state[r], outs[pred][r]);
                    }
                }
                if (first) {
                    // No visited preds yet (loop entry in progress):
                    // keep Unknown.
                }
            }
            in[b] = state;
            for (const IrInstr &instr : fn.blocks[b].instrs)
                transfer(fn, instr, state);
            if (!visited[b] || state != outs[b]) {
                outs[b] = std::move(state);
                visited[b] = true;
                changed = true;
            }
        }
    }

    // Delete checks that the inferred kinds prove.
    for (uint32_t b = 0; b < nblocks; ++b) {
        std::vector<StaticKind> state = in[b];
        auto &instrs = fn.blocks[b].instrs;
        std::vector<IrInstr> kept;
        kept.reserve(instrs.size());
        for (IrInstr &instr : instrs) {
            bool removable = instr.isCheck() &&
                             satisfies(state[instr.a], instr.op);
            transfer(fn, instr, state);
            if (removable) {
                ++stats.checksRemovedByKinds;
            } else {
                kept.push_back(instr);
            }
        }
        instrs = std::move(kept);
    }
}

} // namespace nomap
