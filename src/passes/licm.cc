#include "passes/passes.h"

#include <unordered_map>

#include "passes/analysis.h"
#include "support/logging.h"

namespace nomap {

namespace {

/** Can this op ever be hoisted, and under what conditions? */
enum class HoistClass : uint8_t {
    Never,
    Pure,          ///< Always safe to execute early.
    Load,          ///< Needs no clobber + no opaque SMP in loop.
    ConvertedCheck ///< Only when converted (rollback makes it safe).
};

HoistClass
hoistClassOf(const IrInstr &instr)
{
    if (instr.isCheck()) {
        // Bounds/overflow checks have loop-varying operands in
        // practice; the invariance test filters them. Any converted
        // check with invariant operands may move (the abort fires at
        // a different time, which transactional semantics allow).
        return instr.converted ? HoistClass::ConvertedCheck
                               : HoistClass::Never;
    }
    if (isPureValueOp(instr.op) || instr.op == IrOp::Const)
        return HoistClass::Pure;
    switch (instr.op) {
      case IrOp::GetSlot:
      case IrOp::GetArrayLen:
      case IrOp::GetElem:
      case IrOp::LoadGlobal:
        return HoistClass::Load;
      default:
        return HoistClass::Never;
    }
}

/** Does the loop contain stores/calls that could clobber this load? */
bool
loadClobberedInLoop(const IrFunction &fn, const NaturalLoop &loop,
                    const IrInstr &load)
{
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            if (isOpaqueCall(instr.op))
                return true;
            switch (load.op) {
              case IrOp::GetSlot:
                if (instr.op == IrOp::SetSlot &&
                    instr.imm == load.imm) {
                    return true;
                }
                break;
              case IrOp::GetElem:
              case IrOp::GetArrayLen:
                if (instr.op == IrOp::SetElem)
                    return true;
                break;
              case IrOp::LoadGlobal:
                if (instr.op == IrOp::StoreGlobal &&
                    instr.imm == load.imm) {
                    return true;
                }
                break;
              default:
                break;
            }
        }
    }
    return false;
}

void
hoistLoop(IrFunction &fn, const NaturalLoop &loop, uint32_t preheader,
          PassStats &stats)
{
    bool has_opaque_smp = loopHasUnconvertedSmp(fn, loop);
    std::vector<bool> defined = regsDefinedInLoop(fn, loop);

    // Map from loop register -> preheader temp holding the invariant
    // value (built as we hoist chains like check -> load -> check).
    std::unordered_map<uint16_t, uint16_t> invariant_copy;

    auto operand = [&](uint16_t reg) -> uint16_t {
        auto it = invariant_copy.find(reg);
        return it == invariant_copy.end() ? reg : it->second;
    };
    auto is_invariant = [&](uint16_t reg) {
        return !defined[reg] || invariant_copy.count(reg);
    };

    IrBlock &ph = fn.blocks[preheader];
    auto insert_preheader = [&](const IrInstr &instr) {
        // Before the terminator (and therefore after any TxBegin).
        ph.instrs.insert(ph.instrs.end() - 1, instr);
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : loop.blocks) {
            for (IrInstr &instr : fn.blocks[b].instrs) {
                HoistClass cls = hoistClassOf(instr);
                if (cls == HoistClass::Never)
                    continue;
                // Moves are free after register allocation; hoisting
                // them only churns temporaries.
                if (instr.op == IrOp::Move || instr.op == IrOp::Nop)
                    continue;

                // All operands must be invariant.
                std::vector<uint16_t> uses;
                collectUses(instr, uses);
                bool ok = true;
                for (uint16_t u : uses)
                    ok &= is_invariant(u);
                if (!ok)
                    continue;
                if (instr.op == IrOp::NewArray ||
                    instr.op == IrOp::NewObject) {
                    continue; // Allocations are effects.
                }

                if (cls == HoistClass::Pure) {
                    // Hoisting a pure op that writes a baseline
                    // register past an SMP would change the frame a
                    // deopt reconstructs; only temporaries move when
                    // opaque SMPs are present.
                    if (has_opaque_smp &&
                        instr.dst < fn.bytecodeRegs &&
                        instr.op != IrOp::Const) {
                        continue;
                    }
                } else if (cls == HoistClass::Load) {
                    if (has_opaque_smp)
                        continue; // Patchpoint opacity.
                    if (loadClobberedInLoop(fn, loop, instr))
                        continue;
                } else { // ConvertedCheck
                    if (instr.op == IrOp::CheckOverflow)
                        continue; // Operand always loop-defined anyway.
                }

                if (instr.isCheck()) {
                    // Move the check itself to the preheader.
                    IrInstr hoisted = instr;
                    hoisted.a = operand(hoisted.a);
                    hoisted.b = operand(hoisted.b);
                    hoisted.c = operand(hoisted.c);
                    insert_preheader(hoisted);
                    instr.op = IrOp::Nop;
                    instr.smpPc = kNoSmp;
                    ++stats.opsHoisted;
                    changed = true;
                    continue;
                }

                // Value op: compute into a fresh temp in the
                // preheader; the in-loop instruction becomes a copy so
                // every SMP still sees the baseline register written.
                if (invariant_copy.count(instr.dst))
                    continue; // Another def already promoted this reg.
                uint32_t defs = 0;
                for (uint32_t b2 : loop.blocks) {
                    for (const IrInstr &other :
                         fn.blocks[b2].instrs) {
                        if (defOf(other) ==
                            static_cast<int32_t>(instr.dst)) {
                            ++defs;
                        }
                    }
                }

                uint16_t temp = fn.allocTemp();
                IrInstr hoisted = instr;
                hoisted.dst = temp;
                hoisted.a = operand(hoisted.a);
                hoisted.b = operand(hoisted.b);
                hoisted.c = operand(hoisted.c);
                insert_preheader(hoisted);

                uint16_t dst = instr.dst;
                size_t at = static_cast<size_t>(
                    &instr - fn.blocks[b].instrs.data());
                instr = IrInstr();
                instr.op = IrOp::Move;
                instr.dst = dst;
                instr.a = temp;
                if (defs == 1) {
                    // Unique def: every in-loop use sees this value.
                    invariant_copy[dst] = temp;
                } else {
                    // Reused temporary (the bytecode compiler's
                    // expression stack): forward the hoisted value to
                    // the uses this def reaches within its block so
                    // dependent instructions become hoistable too.
                    auto &instrs = fn.blocks[b].instrs;
                    for (size_t j = at + 1; j < instrs.size(); ++j) {
                        IrInstr &later = instrs[j];
                        // Range-operand ops (calls, allocations) use
                        // a/b as a register-window base, not a single
                        // register: stop forwarding there.
                        switch (later.op) {
                          case IrOp::NewArray:
                          case IrOp::NewObject:
                          case IrOp::Call:
                          case IrOp::CallNative:
                          case IrOp::Intrinsic:
                          case IrOp::CallMethod:
                            j = instrs.size();
                            continue;
                          default:
                            break;
                        }
                        if (later.a == dst)
                            later.a = temp;
                        if (later.b == dst)
                            later.b = temp;
                        if (later.c == dst)
                            later.c = temp;
                        if (defOf(later) ==
                            static_cast<int32_t>(dst)) {
                            break;
                        }
                    }
                }
                if (cls == HoistClass::Load)
                    ++stats.loadsPromoted;
                else
                    ++stats.opsHoisted;
                changed = true;
            }
        }
    }

    // Sweep hoisted-check Nops.
    for (uint32_t b : loop.blocks) {
        auto &instrs = fn.blocks[b].instrs;
        std::vector<IrInstr> kept;
        kept.reserve(instrs.size());
        for (const IrInstr &instr : instrs) {
            if (instr.op != IrOp::Nop)
                kept.push_back(instr);
        }
        instrs = std::move(kept);
    }
}

} // namespace

void
runLicm(IrFunction &fn, PassStats &stats)
{
    // Phase 1: make sure every loop has a dedicated preheader (block
    // creation invalidates analyses, so do it up front).
    {
        std::vector<uint32_t> idom = computeIdoms(fn);
        std::vector<NaturalLoop> loops = findLoops(fn, idom);
        for (const NaturalLoop &loop : loops)
            ensurePreheader(fn, loop);
    }

    // Phase 2: hoist, innermost loops first so chains migrate
    // outward through enclosing loops.
    std::vector<uint32_t> idom = computeIdoms(fn);
    std::vector<NaturalLoop> loops = findLoops(fn, idom);
    for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
        uint32_t preheader = ensurePreheader(fn, *it);
        hoistLoop(fn, *it, preheader, stats);
    }
    fn.verify();
}

} // namespace nomap
