#include "passes/passes.h"

#include <unordered_map>
#include <utility>

#include "passes/analysis.h"
#include "vm/builtins.h"

namespace nomap {

namespace {

/** Pure op or pure intrinsic (Math.* except random). */
bool
pureInLoop(const IrInstr &instr)
{
    if (isPureValueOp(instr.op))
        return true;
    if (instr.op == IrOp::Intrinsic) {
        return static_cast<BuiltinId>(instr.imm) !=
               BuiltinId::MathRandom;
    }
    return false;
}

/** Instruction coordinate inside the loop. */
struct Coord {
    uint32_t block;
    uint32_t index;
};

/**
 * Mark-and-sweep context for one loop. Resolves each register use to
 * its reaching def: the nearest earlier def in the same block, or —
 * for cross-block flow — every in-loop def of the register. This
 * sees through the bytecode compiler's reused expression temporaries
 * (a register-level analysis would merge unrelated expressions that
 * happen to share a temp).
 */
class LoopMarker
{
  public:
    LoopMarker(const IrFunction &fn_, const NaturalLoop &loop_)
        : fn(fn_), loop(loop_)
    {
        for (uint32_t b : loop.blocks) {
            const auto &instrs = fn.blocks[b].instrs;
            for (uint32_t i = 0; i < instrs.size(); ++i) {
                int32_t def = defOf(instrs[i]);
                if (def >= 0) {
                    defsOf[static_cast<uint16_t>(def)].push_back(
                        {b, i});
                }
            }
        }
        marked.resize(loop.blocks.size());
        for (size_t li = 0; li < loop.blocks.size(); ++li) {
            blockSlot[loop.blocks[li]] = li;
            marked[li].assign(
                fn.blocks[loop.blocks[li]].instrs.size(), false);
        }
    }

    bool
    isMarked(uint32_t block, uint32_t index) const
    {
        auto it = blockSlot.find(block);
        if (it == blockSlot.end())
            return true; // Outside the loop: untouched.
        return marked[it->second][index];
    }

    void
    mark(uint32_t block, uint32_t index)
    {
        size_t slot = blockSlot.at(block);
        if (marked[slot][index])
            return;
        marked[slot][index] = true;
        work.push_back({block, index});
    }

    /** Mark the defs reaching a use of @p reg at (block, index). */
    void
    markReachingDefs(uint32_t block, uint32_t index, uint16_t reg)
    {
        const auto &instrs = fn.blocks[block].instrs;
        for (uint32_t i = index; i-- > 0;) {
            if (defOf(instrs[i]) == static_cast<int32_t>(reg)) {
                mark(block, i);
                return;
            }
        }
        markAllDefs(reg); // Live-in to the block: any def may reach.
    }

    /** Seed a cross-block (exit-live) use of @p reg. */
    void
    markAllDefs(uint16_t reg)
    {
        auto it = defsOf.find(reg);
        if (it == defsOf.end())
            return; // Defined outside the loop only.
        for (const Coord &coord : it->second)
            mark(coord.block, coord.index);
    }

    void
    propagate()
    {
        while (!work.empty()) {
            Coord coord = work.back();
            work.pop_back();
            const IrInstr &instr =
                fn.blocks[coord.block].instrs[coord.index];
            std::vector<uint16_t> uses;
            collectUses(instr, uses);
            for (uint16_t u : uses)
                markReachingDefs(coord.block, coord.index, u);
        }
    }

  private:
    const IrFunction &fn;
    const NaturalLoop &loop;
    std::unordered_map<uint16_t, std::vector<Coord>> defsOf;
    std::unordered_map<uint32_t, size_t> blockSlot;
    std::vector<std::vector<bool>> marked;
    std::vector<Coord> work;
};

} // namespace

void
runLoopAccumulatorDce(IrFunction &fn, PassStats &stats)
{
    std::vector<uint32_t> idom = computeIdoms(fn);
    std::vector<NaturalLoop> loops = findLoops(fn, idom);
    if (loops.empty())
        return;
    std::vector<std::vector<bool>> live_in = computeLiveIn(fn);

    for (const NaturalLoop &loop : loops) {
        // Opaque SMPs or tiling snapshots need every register.
        bool blocked = false;
        for (uint32_t b : loop.blocks) {
            for (const IrInstr &instr : fn.blocks[b].instrs) {
                if ((instr.isCheck() && !instr.converted) ||
                    instr.op == IrOp::TxTile) {
                    blocked = true;
                }
            }
        }
        if (blocked)
            continue;

        LoopMarker marker(fn, loop);

        // Roots: every non-pure, non-converted-check instruction.
        for (uint32_t b : loop.blocks) {
            const auto &instrs = fn.blocks[b].instrs;
            for (uint32_t i = 0; i < instrs.size(); ++i) {
                const IrInstr &instr = instrs[i];
                if (pureInLoop(instr))
                    continue;
                if (instr.isCheck() && instr.converted)
                    continue;
                marker.mark(b, i);
            }
        }
        // Roots: registers the world after the loop still needs.
        for (uint32_t exiting : loop.exitingBlocks) {
            for (uint32_t succ : fn.blocks[exiting].succs) {
                if (loop.contains(succ))
                    continue;
                for (uint16_t r = 0; r < fn.numRegs; ++r) {
                    if (live_in[succ][r])
                        marker.markAllDefs(r);
                }
            }
        }
        marker.propagate();

        // Sweep: unmarked pure defs die. A converted check dies when
        // a guarded operand's intra-block reaching def died.
        for (uint32_t b : loop.blocks) {
            auto &instrs = fn.blocks[b].instrs;
            std::vector<bool> remove(instrs.size(), false);
            for (uint32_t i = 0; i < instrs.size(); ++i) {
                const IrInstr &instr = instrs[i];
                if (pureInLoop(instr)) {
                    remove[i] = !marker.isMarked(b, i);
                } else if (instr.isCheck() && instr.converted) {
                    std::vector<uint16_t> uses;
                    collectUses(instr, uses);
                    for (uint16_t u : uses) {
                        for (uint32_t j = i; j-- > 0;) {
                            if (defOf(instrs[j]) ==
                                static_cast<int32_t>(u)) {
                                remove[i] =
                                    remove[i] ||
                                    !marker.isMarked(b, j);
                                break;
                            }
                        }
                    }
                }
            }
            std::vector<IrInstr> kept;
            kept.reserve(instrs.size());
            for (uint32_t i = 0; i < instrs.size(); ++i) {
                if (remove[i])
                    ++stats.deadOpsRemoved;
                else
                    kept.push_back(instrs[i]);
            }
            instrs = std::move(kept);
        }
    }
}

} // namespace nomap
