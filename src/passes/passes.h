#ifndef NOMAP_PASSES_PASSES_H
#define NOMAP_PASSES_PASSES_H

/**
 * @file
 * Optimization passes over the IR.
 *
 * The central design rule (mirroring what the paper observes in real
 * FTL): an *un-converted* check — one still carrying a Stack Map
 * Point — behaves like LLVM's patchpoint intrinsics: it is an opaque
 * barrier that kills memory/check availability facts and keeps every
 * baseline register alive. A check whose SMP NoMap converted to a
 * transactional abort is a plain conditional abort: no barrier, no
 * liveness. Each pass queries `instr.isCheck() && !instr.converted`;
 * there are no per-architecture switches inside the passes — the
 * NoMap planner's conversions alone unlock them.
 *
 * Pipelines (assembled in ftl/compile.cc):
 *   DFG       : KindInference, LocalCse
 *   FTL Base  : KindInference, CheckElim, LocalCse, Licm, Dce
 *   FTL NoMap*: (planner first) same pipeline + StoreSink +
 *               EmptyLoopElim [+ BoundsCombine] [+ SofElim]
 *               [+ RemoveConvertedChecks for the BC bound]
 */

#include "ir/ir.h"

namespace nomap {

/** Per-pass change counters, for tests and ablation reporting. */
struct PassStats {
    uint32_t checksRemovedByKinds = 0;
    uint32_t checksRemovedRedundant = 0;
    uint32_t opsCseEliminated = 0;
    uint32_t opsHoisted = 0;
    uint32_t storesSunk = 0;
    uint32_t loadsPromoted = 0;
    uint32_t boundsChecksCombined = 0;
    uint32_t boundsLoopsCombined = 0;
    uint32_t overflowChecksRemoved = 0;
    uint32_t checksRemovedUnsafe = 0;
    uint32_t deadOpsRemoved = 0;
    uint32_t emptyLoopsRemoved = 0;
};

/**
 * Checks deleted or combined, summed across every counter. The pass
 * driver diffs this around each pass to attribute removals per pass
 * in PassReport trace events (the Fig. 3/8/9 explanation signal).
 */
inline uint32_t
totalChecksRemoved(const PassStats &stats)
{
    return stats.checksRemovedByKinds + stats.checksRemovedRedundant +
           stats.boundsChecksCombined + stats.overflowChecksRemoved +
           stats.checksRemovedUnsafe;
}

/** Non-check operations deleted, moved, or promoted, summed. */
inline uint32_t
totalOpsChanged(const PassStats &stats)
{
    return stats.opsCseEliminated + stats.opsHoisted + stats.storesSunk +
           stats.loadsPromoted + stats.deadOpsRemoved +
           stats.emptyLoopsRemoved;
}

/**
 * Static kind inference (models the DFG tier's abstract interpreter):
 * forward dataflow of value kinds through registers; deletes checks
 * whose speculation is already proven (e.g. CheckInt32 on the result
 * of an overflow-checked AddInt). Sound across SMPs, runs everywhere.
 */
void runKindInference(IrFunction &fn, PassStats &stats);

/**
 * Available-check elimination: a check identical to one that
 * dominates it (with no intervening clobber of its operands or of the
 * heap state it depends on) is deleted. Un-converted SMPs kill all
 * facts — in Base compilation this pass therefore achieves almost
 * nothing, exactly the "limited effectiveness" the paper describes.
 */
void runCheckElim(IrFunction &fn, PassStats &stats);

/**
 * Local common-subexpression elimination + redundant-load elimination
 * within basic blocks. Loads are value-numbered against a per-alias-
 * class memory epoch; stores, opaque calls, and un-converted SMPs
 * bump epochs.
 */
void runLocalCse(IrFunction &fn, PassStats &stats);

/**
 * Loop-invariant code motion. Pure ops hoist everywhere; loads and
 * converted checks hoist out of transactional loops (speculative
 * hoisting is safe under rollback); nothing heap-dependent moves
 * across un-converted SMPs.
 */
void runLicm(IrFunction &fn, PassStats &stats);

/**
 * Scalar promotion of loop-invariant object-slot / global locations
 * (the paper's Figure 4(d) `obj.sum` accumulator): load in the
 * preheader, keep the value in a register, store once at the
 * transaction commit points. Only legal inside transactions.
 */
void runStoreSink(IrFunction &fn, PassStats &stats);

/**
 * NoMap_B's bounds-check combining: per-loop monotonic induction
 * indices get their per-iteration CheckBounds replaced by a single
 * CheckBoundsRange at the loop exit (paper Figure 6).
 */
void runBoundsCombine(IrFunction &fn, PassStats &stats);

/**
 * Full NoMap's Sticky-Overflow-Flag optimization: deletes converted
 * CheckOverflow instructions; the outermost XEnd checks the SOF
 * (paper Figure 7).
 */
void runSofElim(IrFunction &fn, PassStats &stats);

/** NoMap_BC unrealistic bound: delete every converted check. */
void runRemoveConvertedChecks(IrFunction &fn, PassStats &stats);

/**
 * Dead-code elimination. Un-converted SMPs and TxBegin/TxTile keep
 * all baseline registers alive (deopt needs them); converted checks
 * keep nothing and die with the values they guard.
 */
void runDce(IrFunction &fn, PassStats &stats);

/**
 * Strong (cycle-aware) dead-code elimination scoped to loops inside
 * transactions: self-feeding accumulators (`a = a + f(i)`) whose
 * values never reach a store, call, branch, or loop exit are deleted
 * even though simple liveness would keep them alive around the back
 * edge. This is what lets whole benchmark kernels become dead code
 * under NoMap (paper Table III).
 */
void runLoopAccumulatorDce(IrFunction &fn, PassStats &stats);

/**
 * Deletes loops whose bodies reduced to pure induction spinning with
 * no live results — the effect that lets NoMap optimize three
 * SunSpider benchmarks away entirely (paper Table III).
 */
void runEmptyLoopElim(IrFunction &fn, PassStats &stats);

} // namespace nomap

#endif // NOMAP_PASSES_PASSES_H
