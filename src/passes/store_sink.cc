#include "passes/passes.h"

#include <map>

#include "passes/analysis.h"
#include "support/logging.h"

namespace nomap {

namespace {

/** A promotable memory location. */
struct Location {
    bool isGlobal = false;
    uint16_t objReg = 0; ///< Invariant object register (slots only).
    uint32_t index = 0;  ///< Slot index or global index.

    bool
    operator<(const Location &other) const
    {
        return std::tie(isGlobal, objReg, index) <
               std::tie(other.isGlobal, other.objReg, other.index);
    }
};

bool
matchLoad(const IrInstr &instr, Location *loc)
{
    if (instr.op == IrOp::GetSlot) {
        loc->isGlobal = false;
        loc->objReg = instr.a;
        loc->index = instr.imm;
        return true;
    }
    if (instr.op == IrOp::LoadGlobal) {
        loc->isGlobal = true;
        loc->objReg = 0;
        loc->index = instr.imm;
        return true;
    }
    return false;
}

bool
matchStore(const IrInstr &instr, Location *loc, uint16_t *src)
{
    if (instr.op == IrOp::SetSlot) {
        loc->isGlobal = false;
        loc->objReg = instr.a;
        loc->index = instr.imm;
        *src = instr.b;
        return true;
    }
    if (instr.op == IrOp::StoreGlobal) {
        loc->isGlobal = true;
        loc->objReg = 0;
        loc->index = instr.imm;
        *src = instr.a;
        return true;
    }
    return false;
}

/** Is this loop fully contained in one of the function's tx regions? */
const TxRegion *
enclosingRegion(const IrFunction &fn, const NaturalLoop &loop)
{
    for (const TxRegion &region : fn.txRegions) {
        bool all = true;
        for (uint32_t b : loop.blocks) {
            bool found = false;
            for (uint32_t rb : region.blocks)
                found |= (rb == b);
            if (!found) {
                all = false;
                break;
            }
        }
        if (all)
            return &region;
    }
    return nullptr;
}

void
promoteLoop(IrFunction &fn, NaturalLoop &loop, const TxRegion &region,
            PassStats &stats)
{
    if (loopHasUnconvertedSmp(fn, loop) || loopHasOpaqueOps(fn, loop))
        return;

    std::vector<bool> defined = regsDefinedInLoop(fn, loop);

    // Gather candidate locations: stored at least once, object
    // register invariant, and no ambiguous aliasing (a second access
    // to the same slot index through a *different* object register,
    // or any SetElem that could be... SetElem writes array storage,
    // which never aliases object slots or globals in this VM).
    struct Candidate {
        uint32_t loads = 0;
        uint32_t stores = 0;
        bool invalid = false;
    };
    std::map<Location, Candidate> candidates;
    for (uint32_t b : loop.blocks) {
        for (const IrInstr &instr : fn.blocks[b].instrs) {
            Location loc;
            uint16_t src;
            if (matchLoad(instr, &loc)) {
                Candidate &cand = candidates[loc];
                ++cand.loads;
                if (!loc.isGlobal && defined[loc.objReg])
                    cand.invalid = true;
            } else if (matchStore(instr, &loc, &src)) {
                Candidate &cand = candidates[loc];
                ++cand.stores;
                if (!loc.isGlobal && defined[loc.objReg])
                    cand.invalid = true;
            }
        }
    }
    // Reject same-slot accesses through different registers (the two
    // registers might hold the same object).
    for (auto &entry : candidates) {
        if (entry.first.isGlobal)
            continue;
        for (auto &other : candidates) {
            if (other.first.isGlobal)
                continue;
            if (entry.first.index == other.first.index &&
                entry.first.objReg != other.first.objReg) {
                entry.second.invalid = true;
                other.second.invalid = true;
            }
        }
    }

    // Decide where the final stores go: this loop's own exit blocks
    // if it is the region loop (before TxEnd), otherwise dedicated
    // exit trampolines inside the enclosing transaction.
    std::vector<uint32_t> sink_blocks;
    if (loop.header == region.loopHeader) {
        sink_blocks = region.endBlocks;
    } else {
        sink_blocks = ensureDedicatedExits(fn, loop);
    }

    for (auto &entry : candidates) {
        const Location &loc = entry.first;
        Candidate &cand = entry.second;
        if (cand.invalid || cand.stores == 0)
            continue;

        uint16_t temp = fn.allocTemp();

        // Preheader (= region begin block for the region loop, or
        // the loop's own preheader): load the initial value. Using
        // the region's begin block is always safe; for inner loops
        // the location is loop-invariant across the outer iterations
        // only if... it is not, so use the loop's own preheader.
        uint32_t ph_block;
        {
            NaturalLoop tmp_loop = loop;
            ph_block = ensurePreheader(fn, tmp_loop);
        }
        IrBlock &ph = fn.blocks[ph_block];
        IrInstr load;
        load.op = loc.isGlobal ? IrOp::LoadGlobal : IrOp::GetSlot;
        load.dst = temp;
        load.a = loc.objReg;
        load.imm = loc.index;
        ph.instrs.insert(ph.instrs.end() - 1, load);

        // Rewrite in-loop accesses.
        for (uint32_t b : loop.blocks) {
            for (IrInstr &instr : fn.blocks[b].instrs) {
                Location l2;
                uint16_t src;
                if (matchLoad(instr, &l2) && !(l2 < loc) &&
                    !(loc < l2)) {
                    uint16_t dst = instr.dst;
                    instr = IrInstr();
                    instr.op = IrOp::Move;
                    instr.dst = dst;
                    instr.a = temp;
                    ++stats.loadsPromoted;
                } else if (matchStore(instr, &l2, &src) &&
                           !(l2 < loc) && !(loc < l2)) {
                    instr = IrInstr();
                    instr.op = IrOp::Move;
                    instr.dst = temp;
                    instr.a = src;
                    ++stats.storesSunk;
                }
            }
        }

        // A tiled loop commits mid-flight: flush the promoted value
        // to memory right before every TxTile so the committed state
        // (and any abort re-entry) sees it.
        for (uint32_t b : loop.blocks) {
            auto &instrs = fn.blocks[b].instrs;
            for (size_t i = 0; i < instrs.size(); ++i) {
                if (instrs[i].op != IrOp::TxTile)
                    continue;
                IrInstr flush;
                if (loc.isGlobal) {
                    flush.op = IrOp::StoreGlobal;
                    flush.a = temp;
                    flush.imm = loc.index;
                } else {
                    flush.op = IrOp::SetSlot;
                    flush.a = loc.objReg;
                    flush.b = temp;
                    flush.imm = loc.index;
                }
                instrs.insert(instrs.begin() + i, flush);
                ++i; // Skip past the TxTile we just shifted.
            }
        }

        // Materialize the final store at every sink block.
        for (uint32_t sb : sink_blocks) {
            IrBlock &block = fn.blocks[sb];
            IrInstr store;
            if (loc.isGlobal) {
                store.op = IrOp::StoreGlobal;
                store.a = temp;
                store.imm = loc.index;
            } else {
                store.op = IrOp::SetSlot;
                store.a = loc.objReg;
                store.b = temp;
                store.imm = loc.index;
            }
            // Before the terminator and before any TxEnd already
            // placed at the top of the block.
            size_t pos = 0;
            block.instrs.insert(block.instrs.begin() + pos, store);
        }
    }
}

} // namespace

void
runStoreSink(IrFunction &fn, PassStats &stats)
{
    if (fn.txRegions.empty())
        return;
    std::vector<uint32_t> idom = computeIdoms(fn);
    std::vector<NaturalLoop> loops = findLoops(fn, idom);
    // Innermost first.
    for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
        const TxRegion *region = enclosingRegion(fn, *it);
        if (region)
            promoteLoop(fn, *it, *region, stats);
        // Loop analyses are invalidated by block splits; recompute.
        idom = computeIdoms(fn);
        std::vector<NaturalLoop> fresh = findLoops(fn, idom);
        // Match remaining loops by header.
        std::vector<NaturalLoop> remaining;
        for (auto jt = it + 1; jt != loops.rend(); ++jt) {
            for (NaturalLoop &cand : fresh) {
                if (cand.header == jt->header) {
                    *jt = cand;
                    break;
                }
            }
        }
    }
    fn.verify();
}

} // namespace nomap
