#include "passes/passes.h"

namespace nomap {

void
runSofElim(IrFunction &fn, PassStats &stats)
{
    // The Sticky Overflow Flag latches any integer overflow inside a
    // transaction; the outermost XEnd checks it and aborts (paper
    // Figure 7). With that hardware behaviour, per-operation overflow
    // checks inside transactions are pure overhead: delete every
    // converted one. Un-converted checks (outside transactions, or in
    // Base compilation) must stay — x86 has no SOF.
    for (IrBlock &block : fn.blocks) {
        std::vector<IrInstr> kept;
        kept.reserve(block.instrs.size());
        for (const IrInstr &instr : block.instrs) {
            if (instr.op == IrOp::CheckOverflow && instr.converted) {
                ++stats.overflowChecksRemoved;
                continue;
            }
            kept.push_back(instr);
        }
        block.instrs = std::move(kept);
    }
}

void
runRemoveConvertedChecks(IrFunction &fn, PassStats &stats)
{
    // NoMap_BC: the paper's unrealistic upper bound where *every*
    // check inside a transaction disappears. Deliberately unsound for
    // corner cases (which is why the paper calls it unrealistic);
    // overflow safety is still preserved by the SOF at XEnd.
    for (IrBlock &block : fn.blocks) {
        std::vector<IrInstr> kept;
        kept.reserve(block.instrs.size());
        for (const IrInstr &instr : block.instrs) {
            if (instr.isCheck() && instr.converted) {
                ++stats.checksRemovedUnsafe;
                continue;
            }
            kept.push_back(instr);
        }
        block.instrs = std::move(kept);
    }
}

} // namespace nomap
