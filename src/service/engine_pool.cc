#include "service/engine_pool.h"

#include <algorithm>
#include <chrono>

#include "support/logging.h"

namespace nomap {

// ---- EnginePool --------------------------------------------------------

EnginePool::EnginePool(size_t max_idle_per_config)
    : maxIdlePerConfig(max_idle_per_config)
{
}

std::string
engineConfigKey(const EngineConfig &config)
{
    // traceCapacity is part of the identity: a shelved traceless
    // isolate must never serve a request that expects a trace buffer.
    // Knobs with no guest-visible effect (perOpAccounting, jitTier —
    // the template tier is pinned bit-identical by the jit
    // differential) stay out of the key on purpose: shelving must not
    // fragment per host-speed flavor.
    return strprintf(
        "%u|%u|%llu|%llu|%llu|%llu|%llu|%u|%u",
        static_cast<unsigned>(config.arch),
        static_cast<unsigned>(config.maxTier),
        static_cast<unsigned long long>(config.baselineThreshold),
        static_cast<unsigned long long>(config.dfgThreshold),
        static_cast<unsigned long long>(config.ftlThreshold),
        static_cast<unsigned long long>(config.rngSeed),
        static_cast<unsigned long long>(config.txWatchdogInstructions),
        static_cast<unsigned>(config.abortEscalationLimit),
        static_cast<unsigned>(config.traceCapacity));
}

std::unique_ptr<Engine>
EnginePool::acquire(const EngineConfig &config)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = idle.find(engineConfigKey(config));
        if (it != idle.end() && !it->second.empty()) {
            std::unique_ptr<Engine> engine =
                std::move(it->second.back());
            it->second.pop_back();
            ++counters.reused;
            return engine;
        }
        ++counters.created;
    }
    return std::make_unique<Engine>(config);
}

void
EnginePool::release(std::unique_ptr<Engine> engine)
{
    if (!engine)
        return;
    // Reset outside the lock: it rebuilds the whole VM.
    engine->reset();
    engine->setProgramCache(nullptr);
    engine->setCancelFlag(nullptr);
    std::lock_guard<std::mutex> lock(mutex);
    auto &shelf = idle[engineConfigKey(engine->config())];
    if (shelf.size() < maxIdlePerConfig) {
        shelf.push_back(std::move(engine));
    } else {
        ++counters.discarded;
    }
}

void
EnginePool::discard(std::unique_ptr<Engine> engine)
{
    if (!engine)
        return;
    engine.reset();
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.discarded;
}

EnginePool::Stats
EnginePool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

size_t
EnginePool::idleCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    size_t n = 0;
    for (const auto &entry : idle)
        n += entry.second.size();
    return n;
}

// ---- ExecutionService --------------------------------------------------

int64_t
ExecutionService::nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

ExecutionService::ExecutionService(ServiceConfig config)
    : cfg(std::move(config)),
      programCache(cfg.programCacheCapacity),
      pool(cfg.maxIdleEnginesPerConfig),
      queue(cfg.queueCapacity),
      startUs(nowUs())
{
    const FaultPlan *plan = cfg.faultPlan;
    if (!plan) {
        if (std::optional<FaultPlan> env = FaultPlan::fromEnv()) {
            envPlan = std::make_unique<FaultPlan>(std::move(*env));
            plan = envPlan.get();
        }
    }
    if (plan && !plan->empty())
        injector = std::make_unique<FaultInjector>(*plan);

    size_t n = cfg.workers ? cfg.workers : 1;
    slots.reserve(n);
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i)
        slots.push_back(std::make_unique<WorkerSlot>());
    for (size_t i = 0; i < n; ++i)
        workers.emplace_back(&ExecutionService::workerMain, this, i);
    watchdog = std::thread(&ExecutionService::watchdogMain, this);
}

ExecutionService::~ExecutionService()
{
    shutdown();
}

void
ExecutionService::shutdown()
{
    std::lock_guard<std::mutex> lock(shutdownMutex);
    if (shutdownDone)
        return;
    queue.close();
    for (std::thread &worker : workers)
        worker.join();
    // The watchdog outlives the workers so draining jobs keep their
    // deadlines enforced.
    watchdogStop.store(true, std::memory_order_release);
    watchdog.join();
    shutdownDone = true;
}

std::future<Response>
ExecutionService::submit(Request request)
{
    return enqueue(std::move(request), /*block=*/true);
}

std::future<Response>
ExecutionService::trySubmit(Request request)
{
    return enqueue(std::move(request), /*block=*/false);
}

bool
ExecutionService::pushJob(Job &&job, bool block, Response *rejection)
{
    if (job.request.id == 0) {
        job.request.id =
            nextRequestId.fetch_add(1, std::memory_order_relaxed);
    }
    job.enqueuedUs = nowUs();
    {
        std::lock_guard<std::mutex> lock(metricsMutex);
        ++submitted;
    }
    bool injected_reject =
        injector && injector->fire(FaultSite::ServiceQueueFull);
    bool accepted = !injected_reject &&
                    (block ? queue.push(std::move(job))
                           : queue.tryPush(std::move(job)));
    if (accepted) {
        // High-water mark of the queue depth: the admission-control
        // signal the shed policy keys on. size() right after the push
        // may already include later pushes, which only ever raises
        // the mark — fine for a maximum.
        uint64_t depth = queue.size();
        std::lock_guard<std::mutex> lock(metricsMutex);
        if (depth > queueDepthHighWater)
            queueDepthHighWater = depth;
        return true;
    }
    // The failed (or skipped) push left the job unmoved: reject in
    // place.
    rejection->id = job.request.id;
    if (injected_reject) {
        rejection->status = ResponseStatus::QueueFull;
        rejection->error = "request queue full (injected fault)";
    } else if (queue.closed()) {
        rejection->status = ResponseStatus::Shutdown;
        rejection->error = "service is shutting down";
    } else {
        rejection->status = ResponseStatus::QueueFull;
        rejection->error = strprintf(
            "request queue full (capacity %llu)",
            static_cast<unsigned long long>(queue.capacity()));
    }
    {
        std::lock_guard<std::mutex> lock(metricsMutex);
        ++rejected;
    }
    return false;
}

std::future<Response>
ExecutionService::enqueue(Request request, bool block)
{
    Job job;
    job.request = std::move(request);
    std::future<Response> future = job.promise.get_future();
    Response rejection;
    if (!pushJob(std::move(job), block, &rejection)) {
        // pushJob left the job unmoved, so its promise is still ours
        // to fulfill.
        job.promise.set_value(std::move(rejection));
    }
    return future;
}

void
ExecutionService::submitAsync(Request request,
                              std::function<void(Response)> done)
{
    Job job;
    job.request = std::move(request);
    job.done = std::move(done);
    Response rejection;
    if (!pushJob(std::move(job), /*block=*/false, &rejection))
        job.done(std::move(rejection));
}

void
ExecutionService::recordShed()
{
    std::lock_guard<std::mutex> lock(metricsMutex);
    ++shedCount;
}

void
ExecutionService::workerMain(size_t index)
{
    WorkerSlot &slot = *slots[index];
    while (auto job = queue.pop()) {
        inFlight.fetch_add(1, std::memory_order_relaxed);
        Response response = execute(*job, slot);
        recordResponse(response);
        inFlight.fetch_sub(1, std::memory_order_relaxed);
        if (job->done)
            job->done(std::move(response));
        else
            job->promise.set_value(std::move(response));
    }
}

void
ExecutionService::watchdogMain()
{
    while (!watchdogStop.load(std::memory_order_acquire)) {
        int64_t now = nowUs();
        for (auto &slot : slots) {
            int64_t deadline =
                slot->deadlineUs.load(std::memory_order_acquire);
            if (deadline != 0 && now >= deadline)
                slot->cancel.store(true, std::memory_order_release);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

Response
ExecutionService::execute(Job &job, WorkerSlot &slot)
{
    Response response;
    response.id = job.request.id;
    response.shard = job.request.shard;
    int64_t started = nowUs();
    response.queueMicros =
        static_cast<double>(started - job.enqueuedUs);

    uint64_t timeout_ms = job.request.timeoutMs
                              ? job.request.timeoutMs
                              : cfg.defaultTimeoutMs;
    int64_t deadline =
        timeout_ms ? job.enqueuedUs +
                         static_cast<int64_t>(timeout_ms) * 1000
                   : 0;
    uint32_t max_retries =
        job.request.maxRetries >= 0
            ? static_cast<uint32_t>(job.request.maxRetries)
            : cfg.defaultMaxRetries;

    if (deadline != 0 && started >= deadline) {
        response.status = ResponseStatus::Timeout;
        response.error = strprintf(
            "deadline of %llu ms expired while queued",
            static_cast<unsigned long long>(timeout_ms));
        response.totalMicros =
            static_cast<double>(nowUs() - job.enqueuedUs);
        return response;
    }

    for (uint32_t attempt = 0;; ++attempt) {
        response.attempts = attempt + 1;
        std::unique_ptr<Engine> engine =
            pool.acquire(job.request.config);
        if (cfg.enableProgramCache)
            engine->setProgramCache(&programCache);
        slot.cancel.store(false, std::memory_order_release);
        engine->setCancelFlag(&slot.cancel);
        if (deadline != 0)
            slot.deadlineUs.store(deadline, std::memory_order_release);
        try {
            if (injector &&
                injector->fire(FaultSite::ServiceRetry)) {
                throw std::runtime_error(
                    "injected transient failure (fault plan)");
            }
            if (cfg.failureInjection &&
                cfg.failureInjection(job.request, attempt)) {
                throw std::runtime_error(
                    "injected transient failure");
            }
            EngineResult result = engine->run(job.request.source);
            slot.deadlineUs.store(0, std::memory_order_release);
            engine->setCancelFlag(nullptr);
            response.status = ResponseStatus::Ok;
            response.resultString = std::move(result.resultString);
            response.printed = std::move(result.printed);
            response.stats = result.stats;
            response.programCacheHit = result.programCacheHit;
            // Drain before release(): reset() clears the buffer.
            if (TraceBuffer *tb = engine->trace()) {
                response.traceEvents = tb->drain();
                response.traceDropped = tb->dropped();
            }
            pool.release(std::move(engine));
            break;
        } catch (const ExecutionCancelled &) {
            slot.deadlineUs.store(0, std::memory_order_release);
            pool.discard(std::move(engine));
            response.status = ResponseStatus::Timeout;
            response.error = strprintf(
                "deadline of %llu ms exceeded during execution",
                static_cast<unsigned long long>(timeout_ms));
            break;
        } catch (const FatalError &e) {
            // Deterministic user error: retrying cannot help.
            slot.deadlineUs.store(0, std::memory_order_release);
            pool.discard(std::move(engine));
            response.status = ResponseStatus::Error;
            response.error = e.what();
            break;
        } catch (const std::exception &e) {
            slot.deadlineUs.store(0, std::memory_order_release);
            pool.discard(std::move(engine));
            if (attempt < max_retries) {
                logMessage(LogLevel::Warning,
                           "request %llu attempt %u failed (%s); "
                           "retrying on a fresh isolate",
                           static_cast<unsigned long long>(
                               job.request.id),
                           attempt + 1, e.what());
                continue;
            }
            response.status = ResponseStatus::Error;
            response.error = strprintf(
                "failed after %u attempts: %s", attempt + 1,
                e.what());
            break;
        }
    }

    int64_t finished = nowUs();
    response.execMicros = static_cast<double>(finished - started);
    response.totalMicros =
        static_cast<double>(finished - job.enqueuedUs);

    // Wrap the engine's events in request-scoped spans. Span
    // timestamps stay in virtual-cycle coordinates so they nest over
    // the transaction events in the exporter; the wall-clock
    // measurements ride along as span payloads (they are the only
    // nondeterministic fields in a trace).
    if (response.ok() && job.request.config.traceCapacity > 0) {
        uint32_t lane = static_cast<uint32_t>(job.request.id);
        uint64_t end_vc = 0;
        for (TraceEvent &event : response.traceEvents) {
            event.tid = lane;
            end_vc = std::max(end_vc, event.vcycles);
        }
        auto span = [lane](TraceEventType type, SpanKind kind,
                           uint64_t vcycles, uint16_t attempt,
                           double micros) {
            TraceEvent event;
            event.vcycles = vcycles;
            event.type = type;
            event.code = static_cast<uint8_t>(kind);
            event.aux = attempt;
            event.bytes =
                micros > 0.0 ? static_cast<uint64_t>(micros) : 0;
            event.tid = lane;
            return event;
        };
        // The Request span carries the routing identity: funcId =
        // shard index, pc = wire connection id, aux = event-loop
        // ordinal (all 0 for in-process submissions). Exporters
        // surface them so traces can be grouped by
        // shard/connection/loop.
        auto tag_routing = [&](TraceEvent event) {
            event.funcId = job.request.shard;
            event.pc =
                static_cast<uint32_t>(job.request.connectionId);
            event.aux = static_cast<uint16_t>(job.request.loop);
            return event;
        };
        std::vector<TraceEvent> wrapped;
        wrapped.reserve(response.traceEvents.size() + 8);
        wrapped.push_back(tag_routing(span(TraceEventType::SpanBegin,
                                           SpanKind::Request, 0, 0,
                                           response.totalMicros)));
        wrapped.push_back(span(TraceEventType::SpanBegin,
                               SpanKind::Queue, 0, 0,
                               response.queueMicros));
        wrapped.push_back(span(TraceEventType::SpanEnd, SpanKind::Queue,
                               0, 0, response.queueMicros));
        for (uint32_t a = 1; a < response.attempts; ++a) {
            uint16_t attempt = static_cast<uint16_t>(a);
            wrapped.push_back(span(TraceEventType::SpanBegin,
                                   SpanKind::Retry, 0, attempt, 0.0));
            wrapped.push_back(span(TraceEventType::SpanEnd,
                                   SpanKind::Retry, 0, attempt, 0.0));
        }
        uint16_t attempts = static_cast<uint16_t>(response.attempts);
        wrapped.push_back(span(TraceEventType::SpanBegin,
                               SpanKind::Execute, 0, attempts,
                               response.execMicros));
        wrapped.insert(wrapped.end(), response.traceEvents.begin(),
                       response.traceEvents.end());
        wrapped.push_back(span(TraceEventType::SpanEnd,
                               SpanKind::Execute, end_vc, attempts,
                               response.execMicros));
        wrapped.push_back(tag_routing(span(TraceEventType::SpanEnd,
                                           SpanKind::Request, end_vc,
                                           0, response.totalMicros)));
        response.traceEvents = std::move(wrapped);
    }
    return response;
}

void
ExecutionService::recordResponse(const Response &response)
{
    std::lock_guard<std::mutex> lock(metricsMutex);
    ++completed;
    switch (response.status) {
      case ResponseStatus::Ok:
        ++succeeded;
        aggregate.merge(response.stats);
        break;
      case ResponseStatus::Timeout:
        ++timeouts;
        break;
      default:
        ++errors;
        break;
    }
    retriesTotal += response.attempts - 1;
    traceEventsTotal += response.traceEvents.size();
    traceDropsTotal += response.traceDropped;
    latency.record(response.totalMicros);
}

ServiceMetricsSnapshot
ExecutionService::metrics() const
{
    ServiceMetricsSnapshot snap;
    snap.uptimeSeconds =
        static_cast<double>(nowUs() - startUs) / 1e6;
    snap.workers = workers.size();
    snap.queueDepth = queue.size();
    snap.queueCapacity = queue.capacity();
    snap.inFlight = inFlight.load(std::memory_order_relaxed);

    {
        std::lock_guard<std::mutex> lock(metricsMutex);
        snap.submitted = submitted;
        snap.rejected = rejected;
        snap.shed = shedCount;
        snap.queueDepthHighWater = queueDepthHighWater;
        snap.completed = completed;
        snap.succeeded = succeeded;
        snap.errors = errors;
        snap.timeouts = timeouts;
        snap.retries = retriesTotal;
        snap.traceEvents = traceEventsTotal;
        snap.traceDrops = traceDropsTotal;
        snap.p50Micros = latency.percentile(50.0);
        snap.p95Micros = latency.percentile(95.0);
        snap.p99Micros = latency.percentile(99.0);
        snap.meanMicros = latency.mean();
        snap.maxMicros = latency.max();
        snap.aggregate = aggregate;
    }
    if (snap.uptimeSeconds > 0.0) {
        snap.throughputRps =
            static_cast<double>(snap.completed) / snap.uptimeSeconds;
    }

    EnginePool::Stats pool_stats = pool.stats();
    snap.enginesCreated = pool_stats.created;
    snap.enginesReused = pool_stats.reused;
    snap.enginesDiscarded = pool_stats.discarded;
    snap.enginesIdle = pool.idleCount();

    ProgramCacheStats cache_stats = programCache.stats();
    snap.cacheHits = cache_stats.hits;
    snap.cacheMisses = cache_stats.misses;
    snap.cacheEntries = programCache.size();
    return snap;
}

} // namespace nomap
